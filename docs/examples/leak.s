# A tiny program that reads a classified key byte and prints it.
        li   t0, 0x2000         # the (classified) key
        lbu  t1, 0(t0)
        li   t2, 0x10000000     # UART
        sw   t1, 0(t2)
        ebreak
