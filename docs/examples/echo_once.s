# Echo a single console byte to the UART.
        li   t0, 0x10010000     # terminal
        lw   t1, 0(t0)          # RXDATA
        li   t2, 0x10000000     # UART
        sw   t1, 0(t2)
        ebreak
