# Immobilizer PIN exfiltration, the `--explain` demo program.
#
# The immobilizer policy (immobilizer.policy) classifies the 16 bytes at
# 0x2000 as the `pin` secret. This program plays the attacker: it copies
# the first four PIN digits byte-by-byte to the UART data register, which
# the policy declares a sink for tainted data. Run it with:
#
#   taintvp-run docs/examples/immo_leak.s \
#       --policy docs/examples/immobilizer.policy --explain
#
# and the explain query walks the recorded taint flow: classification at
# `pin`, the tainted `lbu` in `leak_loop`, and the violating UART store.

        .entry
        j    main

        .align 13               # pad to 0x2000, the classified region
pin:    .ascii "0042THEFTPROOF!!"

main:
        la   s0, pin            # source pointer into the secret
        li   s1, 0x10000000     # UART data register (sink uart.tx)
        li   s2, 4              # leak the four PIN digits
leak_loop:
        lbu  t0, 0(s0)          # tainted load: t0 now carries `pin`
        sb   t0, 0(s1)          # tainted store to the sink -> violation
        addi s0, s0, 1
        addi s2, s2, -1
        bnez s2, leak_loop
        ebreak
