//! Code-injection protection: run one Wilander-Kamkar attack (stack
//! buffer overflow over the return address) with a malicious and a benign
//! input, and print the whole Table I.
//!
//! Run with: `cargo run --release --example code_injection`

use taintvp::attacks::{all_attacks, render_table1, run_attack, table1, Outcome};

fn main() {
    let attacks = all_attacks();
    let atk3 = &attacks[2]; // #3: stack / return address / direct
    println!("attack under test: {atk3:?}");
    println!("  malicious input: {:?}", run_attack(atk3, false));
    println!("  benign input:    {:?} (Undetected = ran clean)", run_attack(atk3, true));
    println!();

    println!("full Table I:");
    let rows = table1();
    print!("{}", render_table1(&rows));
    let detected = rows.iter().filter(|r| r.outcome == Outcome::Detected).count();
    println!("\n{detected}/10 applicable attacks detected.");
}
