//! Quickstart: build a security policy, assemble a tiny guest program,
//! run it on the DIFT-enabled virtual prototype, and watch the engine
//! stop a secret from leaking.
//!
//! Run with: `cargo run --example quickstart`

use taintvp::asm::{Asm, Reg};
use taintvp::core::{AddrRange, SecurityPolicy, Tag};
use taintvp::prelude::{map, Soc, SocBuilder, SocExit};
use taintvp::rv32::Tainted;

fn main() {
    // 1. A policy: the word at 0x2000 is secret; the UART only accepts
    //    public data.
    let secret = Tag::atom(0);
    let policy = SecurityPolicy::builder("quickstart")
        .classify_region("secret-word", AddrRange::new(0x2000, 4), secret)
        .sink("uart.tx", Tag::EMPTY)
        .build();

    // 2. A guest program: print a greeting, then (accidentally) print the
    //    secret word too.
    let mut a = Asm::new(0);
    a.li(Reg::T0, map::UART_BASE as i32);
    for b in "hello ".bytes() {
        a.li(Reg::T1, b as i32);
        a.sw(Reg::T1, 0, Reg::T0);
    }
    a.li(Reg::T2, 0x2000);
    a.lw(Reg::T1, 0, Reg::T2); // load the secret
    a.sw(Reg::T1, 0, Reg::T0); // ... and leak it
    a.ebreak();
    let program = a.assemble().expect("assembles");

    // 3. Run on the DIFT VP+.
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&program);
    soc.ram().borrow_mut().load_image(0x2000, &0xC0FF_EE00u32.to_le_bytes());
    soc.ram().borrow_mut().classify(0x2000, 4, secret);

    match soc.run(10_000) {
        SocExit::Violation(v) => {
            println!("UART printed so far: {:?}", soc.uart().borrow().output_string());
            println!("DIFT engine stopped the program: {v}");
        }
        other => println!("unexpected exit: {other:?}"),
    }
}
