//! Fine-grained HW/SW interaction: the paper's Fig. 4 sensor streams
//! tagged frames at 40 Hz; interrupt-driven firmware copies them to the
//! UART. Flip the sensor's classification to confidential and the same
//! firmware is stopped at the first output byte.
//!
//! Run with: `cargo run --example sensor_stream`

use taintvp::core::{SecurityPolicy, Tag};
use taintvp::firmware::sensor_app;
use taintvp::prelude::{Soc, SocBuilder, SocExit};
use taintvp::rv32::Tainted;

fn main() {
    let workload = sensor_app::build(3);

    // Public sensor data: the stream flows freely.
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().build());
    soc.load_program(&workload.program);
    let exit = soc.run(workload.max_insns);
    println!(
        "public sensor: exit {:?}, {} bytes streamed over {} of simulated time",
        exit,
        soc.uart().borrow().output().len(),
        soc.now()
    );

    // Confidential sensor data ((HC) classification via the policy), with
    // a public-only UART: the DIFT engine intervenes.
    let secret = Tag::atom(0);
    let policy = SecurityPolicy::builder("confidential-sensor")
        .source("sensor.data", secret)
        .sink("uart.tx", Tag::EMPTY)
        .build();
    let cfg = SocBuilder::new().policy(policy).sensor_thread(true).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&workload.program);
    match soc.run(workload.max_insns) {
        SocExit::Violation(v) => println!("confidential sensor: stopped — {v}"),
        other => println!("confidential sensor: unexpected exit {other:?}"),
    }
}
