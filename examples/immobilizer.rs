//! The car-engine immobilizer case study in one sitting: run the
//! challenge-response protocol under the IFP-3 policy, demonstrate the
//! debug-dump leak in the vulnerable firmware, and show the entropy
//! attack that only the per-byte policy catches.
//!
//! Run with: `cargo run --example immobilizer`

use taintvp::immo::scenarios::{run_scenario, Scenario};
use taintvp::immo::{run_session, PolicyKind, Variant};
use taintvp::rv32::Tainted;
use taintvp::soc::SocExit;

fn main() {
    println!("--- authentication protocol (fixed firmware, coarse policy) ---");
    let out = run_session::<Tainted>(Variant::Fixed, PolicyKind::Coarse, 2, b"q");
    println!("exit: {:?}; authentications: {}\n", out.exit, out.authentications);

    println!("--- debug dump on the vulnerable firmware ---");
    let out = run_session::<Tainted>(Variant::Vulnerable, PolicyKind::Coarse, 0, b"dq");
    if let SocExit::Violation(v) = &out.exit {
        println!("detected: {v}\n");
    }

    println!("--- entropy-reduction attack ---");
    let coarse = run_scenario(Scenario::EntropyReduction, false);
    let per_byte = run_scenario(Scenario::EntropyReduction, true);
    println!("coarse policy detected:   {}", coarse.detected);
    println!("per-byte policy detected: {}", per_byte.detected);
    if let Some(v) = per_byte.violation {
        println!("per-byte violation: {v}");
    }
}
