//! The attack the paper's refined policy exists to stop, run for real:
//! recover the immobilizer's 16-byte PIN through the entropy-reduction
//! bug with at most 16×256 AES trials — then watch the per-byte policy
//! block it at step one.
//!
//! Run with: `cargo run --release --example pin_bruteforce`

use taintvp::immo::{crack_pin, CrackOutcome, PolicyKind, PIN};

fn main() {
    println!("attacking under the coarse (whole-PIN) policy…");
    match crack_pin(PolicyKind::Coarse) {
        CrackOutcome::Recovered { pin, trials } => {
            println!("  PIN recovered in {trials} AES trials: {pin:02x?}");
            println!("  (actual PIN:                        {PIN:02x?})");
            assert_eq!(pin, PIN);
        }
        CrackOutcome::Blocked { step } => println!("  unexpectedly blocked at step {step}"),
    }

    println!();
    println!("attacking under the per-byte policy…");
    match crack_pin(PolicyKind::PerByte) {
        CrackOutcome::Blocked { step } => {
            println!("  blocked by a store-clearance violation at step {step} — the");
            println!("  refined policy of §VI-A closes the hole.");
        }
        CrackOutcome::Recovered { .. } => println!("  policy failed to stop the attack!"),
    }
}
