//! The workflow the paper advertises: *developing* a security policy
//! against a binary before hardware exists.
//!
//! We iterate a policy for a small telemetry firmware in three steps:
//! 1. run in **record mode** to see every flow the draft policy flags,
//! 2. use the findings to add the missing declassification-free path
//!    (aggregate statistics are fine to publish, raw samples are not —
//!    so the fix is in the *software*, guided by the violations),
//! 3. re-run enforcing, with an instruction trace around the hot spot.
//!
//! Run with: `cargo run --example policy_development`

use taintvp::asm::{Asm, Reg};
use taintvp::core::{EnforceMode, SecurityPolicy, Tag};
use taintvp::prelude::{map, Soc, SocBuilder, SocExit};
use taintvp::rv32::Tainted;

use Reg::*;

const SENSOR_SECRET: Tag = Tag::from_bits(1);

/// Telemetry firmware, draft 1: publishes MIN/MAX of a sensor frame —
/// and, for "debugging", also the first raw sample.
fn firmware(publish_raw_sample: bool) -> taintvp::asm::Program {
    let mut a = Asm::new(0);
    a.li(S0, map::SENSOR_BASE as i32);
    a.li(S1, 255); // min
    a.li(S2, 0); // max
    a.li(T0, 0);
    a.label("scan");
    a.add(T1, S0, T0);
    a.lbu(T2, 0, T1);
    a.bgeu(S1, T2, "not_min");
    a.label("min_done");
    a.bgeu(S2, T2, "next");
    a.mv(S2, T2);
    a.j("next");
    a.label("not_min");
    a.mv(S1, T2);
    a.j("min_done");
    a.label("next");
    a.addi(T0, T0, 1);
    a.li(T1, 64);
    a.blt(T0, T1, "scan");

    a.li(T3, map::UART_BASE as i32);
    a.sw(S1, 0, T3); // publish min
    a.sw(S2, 0, T3); // publish max
    if publish_raw_sample {
        a.lbu(T2, 0, S0); // "debug": raw sample 0
        a.sw(T2, 0, T3);
    }
    a.ebreak();
    a.assemble().unwrap()
}

fn soc(policy: SecurityPolicy, enforce: EnforceMode, raw: bool) -> Soc<Tainted> {
    let cfg = SocBuilder::new().policy(policy).enforce(enforce).sensor_thread(false).build();
    let mut s = Soc::<Tainted>::new(cfg);
    s.load_program(&firmware(raw));
    s.sensor().borrow_mut().generate_frame();
    s
}

fn main() {
    // Draft policy: sensor data is confidential, UART is public-only…
    // which is too strict — even MIN/MAX are (correctly!) tainted.
    let draft = || {
        SecurityPolicy::builder("telemetry-draft")
            .source("sensor.data", SENSOR_SECRET)
            .sink("uart.tx", Tag::EMPTY)
            .build()
    };

    println!("== step 1: audit the draft policy in record mode ==");
    let mut s = soc(draft(), EnforceMode::Record, true);
    assert_eq!(s.run(100_000), SocExit::Break);
    for v in s.engine().borrow().violations() {
        println!("  finding: {v}");
    }
    println!(
        "  -> every UART write is flagged: MIN/MAX depend on samples, and \
         taint tracking has no notion of 'aggregated enough'.\n"
    );

    println!("== step 2: decide the policy, not the engine, was wrong ==");
    println!(
        "  Aggregates may be published on this product, raw samples may not.\n  \
         DIFT cannot distinguish them (both depend on the data), so the\n  \
         *policy* clears uart.tx for sensor-derived data, and the raw-sample\n  \
         debug write is removed from the firmware instead.\n"
    );

    let shipped = SecurityPolicy::builder("telemetry-v2")
        .source("sensor.data", SENSOR_SECRET)
        .sink("uart.tx", SENSOR_SECRET) // aggregates may leave
        .build();

    println!("== step 3: enforce on the fixed firmware, traced ==");
    let mut s = soc(shipped, EnforceMode::Enforce, false);
    let exit = s.run_traced(12, |r| println!("  {r}"));
    let exit = if matches!(exit, SocExit::InstrLimit) { s.run(100_000) } else { exit };
    println!("  … exit: {exit:?}; UART bytes: {:?}", s.uart().borrow().output());
    assert_eq!(exit, SocExit::Break);
}
