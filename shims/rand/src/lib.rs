//! Offline drop-in replacement for the subset of `rand` 0.8 used by this
//! workspace (`StdRng::seed_from_u64`, `Rng::gen_range`, `Rng::fill`).
//!
//! The build container has no access to crates.io, so the workspace patches
//! `rand` to this shim. The generator is a seeded splitmix64/xorshift mix —
//! deterministic, statistically fine for test-input generation, and **not**
//! cryptographic (neither is anything this workspace draws from it).

// Vendored offline shim: keep the surface identical to the real crate
// rather than chasing lints.
#![allow(clippy::all)]

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; equal seeds give equal
    /// sequences.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`Range` or `RangeInclusive`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers with uniform range sampling.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The largest representable value (used for half-open ranges).
    fn prev(self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Modulo draw: the tiny bias is irrelevant for test inputs.
                low.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i64 as u64).wrapping_sub(low as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);
impl_uniform_int!(i8, i16, i32, i64, isize);

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.prev())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: splitmix64-seeded xorshift64*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 scramble so that small seeds diverge immediately.
            let mut rng = StdRng { state: state.wrapping_add(0x9E37_79B9_7F4A_7C15) };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64: passes BigCrush-lite requirements, one u64 state.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        let zs: Vec<u32> = (0..8).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..96);
            assert!(v < 96);
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn fill_covers_all_bytes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
