//! Offline drop-in replacement for the subset of `proptest` 1.x used by
//! this workspace.
//!
//! The build container cannot reach crates.io, so the workspace patches
//! `proptest` to this shim. It keeps the same *surface*: `proptest!`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, `Strategy` with
//! `prop_map`/`prop_filter_map`, `any`, `Just`, `ProptestConfig`, and the
//! `prop::collection::vec` / `prop::array::uniform4` constructors.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! test shim: inputs are generated from a deterministic per-test RNG (no
//! persisted failure corpus) and failing cases are reported but **not
//! shrunk**.

// Vendored offline shim: keep the surface identical to the real crate
// rather than chasing lints.
#![allow(clippy::all)]

pub mod strategy;
pub mod test_runner;

/// Generation-side modules, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`vec`).
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Fixed-size array strategies (`uniform4`).
    pub mod array {
        pub use crate::strategy::uniform4;
    }
}

/// The conventional glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests. Matches the real macro's grammar for the cases
/// this workspace uses: an optional `#![proptest_config(..)]` header and
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        // `#[test]` arrives as one of the $meta attributes and is re-emitted.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let described = format!("{:?}", ($(&$arg,)*));
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name), case, config.cases, e, described
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between heterogeneous strategies with a common value
/// type (unweighted arms only, as this workspace uses).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new() $(.or($arm))+
    };
}

/// Fails the enclosing property (returning a [`test_runner::TestCaseError`])
/// when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}
