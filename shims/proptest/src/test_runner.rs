//! Test-runner plumbing: configuration, case errors, and the deterministic
//! input generator behind the [`proptest!`](crate::proptest) macro.

use core::fmt;

/// Per-`proptest!` block configuration. Only `cases` is meaningful in the
/// shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic generator feeding strategies. Seeded from the test
/// name so every test has its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a of the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}
