//! Value-generation strategies: the shim's equivalent of
//! `proptest::strategy` plus the collection/array constructors.

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// How many draws `prop_filter_map` attempts before giving up on finding
/// an accepted value.
const FILTER_MAP_RETRIES: u32 = 1_000;

/// A generator of test-case inputs.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly produces one concrete value per case.
pub trait Strategy {
    /// The value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Transforms generated values, redrawing while `f` returns `None`.
    /// `reason` is reported if no value is accepted after many draws.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f, reason }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_MAP_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map found no acceptable value: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain uniform strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws one uniformly random value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 as u64).wrapping_sub(self.start as i64 as u64);
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i64 as u64).wrapping_sub(low as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Uniform choice between heterogeneous strategies sharing a value type.
/// Built by the [`prop_oneof!`](crate::prop_oneof) macro.
pub struct OneOf<V> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> OneOf<V> {
    /// An empty choice; add arms with [`OneOf::or`].
    pub fn new() -> Self {
        OneOf { arms: Vec::new() }
    }

    /// Adds an equally weighted arm.
    pub fn or<S>(mut self, s: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        self.arms.push(Box::new(move |rng| s.generate(rng)));
        self
    }
}

impl<V> Default for OneOf<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

/// `Vec` strategy with a uniformly drawn length in `len` (half-open).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `[T; 4]` strategy drawing each element independently.
pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
    Uniform4 { element }
}

/// See [`uniform4`].
#[derive(Debug, Clone)]
pub struct Uniform4<S> {
    element: S,
}

impl<S: Strategy> Strategy for Uniform4<S> {
    type Value = [S::Value; 4];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
        [
            self.element.generate(rng),
            self.element.generate(rng),
            self.element.generate(rng),
            self.element.generate(rng),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_and_maps_stay_in_bounds");
        let doubled = (0u32..50).prop_map(|v| v * 2);
        for _ in 0..500 {
            let v = (-2048i32..=2047).generate(&mut rng);
            assert!((-2048..=2047).contains(&v));
            assert!(doubled.generate(&mut rng) < 100);
        }
    }

    #[test]
    fn oneof_reaches_every_arm() {
        let mut rng = TestRng::deterministic("oneof_reaches_every_arm");
        let s = OneOf::new().or(Just(1u8)).or(Just(2u8)).or(Just(3u8));
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::deterministic("vec_lengths_respect_range");
        let s = vec(any::<u8>(), 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }
}
