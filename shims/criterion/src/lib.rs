//! Offline drop-in replacement for the subset of `criterion` 0.5 used by
//! this workspace's benches.
//!
//! The build container cannot reach crates.io, so the workspace patches
//! `criterion` to this shim. It keeps the same *surface* — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter`, `black_box`, `criterion_group!`/`criterion_main!` —
//! and performs **real wall-clock measurement**: per benchmark it
//! calibrates an iteration count, warms up, then takes `sample_size`
//! timed samples and reports median/mean ns-per-iteration (and
//! elements/s when a throughput is set). There are no plots, no saved
//! baselines, and no statistical regression analysis.

// Vendored offline shim: keep the surface identical to the real crate
// rather than chasing lints.
#![allow(clippy::all)]

use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One finished benchmark's summary statistics, collected for `--json`.
#[derive(Debug, Clone)]
struct BenchRecord {
    group: String,
    name: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    throughput_elems: Option<u64>,
}

/// Results accumulated across all groups of this bench binary.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());
/// Output path from `--json PATH`, when given.
static JSON_PATH: Mutex<Option<String>> = Mutex::new(None);

/// The suite name: this bench binary's file stem with cargo's trailing
/// `-<hash>` disambiguator removed (`iss-1a2b3c4d…` → `iss`).
fn suite_name() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    strip_bench_hash(&stem).to_string()
}

/// Strips cargo's trailing `-<hex hash>` from a bench binary file stem.
fn strip_bench_hash(stem: &str) -> &str {
    match stem.rfind('-') {
        Some(i) if stem.len() - i > 8 && stem[i + 1..].bytes().all(|b| b.is_ascii_hexdigit()) => {
            &stem[..i]
        }
        _ => stem,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes collected results to the `--json` path (if one was given) in
/// the `taintvp-bench/v1` schema documented in `docs/OBSERVABILITY.md`.
/// Called by `criterion_main!` after all groups finish.
pub fn finalize() {
    let Some(path) = JSON_PATH.lock().unwrap().clone() else { return };
    let records = RECORDS.lock().unwrap();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"taintvp-bench/v1\",\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", json_escape(&suite_name())));
    out.push_str("  \"entries\": [\n");
    for (i, r) in records.iter().enumerate() {
        let throughput = match r.throughput_elems {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"unit\": \"ns/iter\", \"median\": {:.3}, \"mean\": {:.3}, \"min\": {:.3}, \"max\": {:.3}, \"samples\": {}, \"throughput_elems\": {}}}{}\n",
            json_escape(&r.group),
            json_escape(&r.name),
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            throughput,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("\nbench results written to {path}"),
        Err(e) => eprintln!("error: cannot write bench JSON to {path}: {e}"),
    }
}

/// Units used to report per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// One iteration processes this many logical elements.
    Elements(u64),
    /// One iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level benchmark driver handle.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads CLI arguments. Honoured: a positional name filter
    /// (`cargo bench -- <substring>`) and `--json PATH` (write a
    /// `taintvp-bench/v1` summary when the binary finishes); other
    /// flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--json" {
                *JSON_PATH.lock().unwrap() = args.next();
            } else if let Some(path) = arg.strip_prefix("--json=") {
                *JSON_PATH.lock().unwrap() = Some(path.to_string());
            } else if !arg.starts_with('-') && self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    group: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures `f` and prints one report line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&self.group, name, self.throughput);
        self
    }

    /// Ends the group (separator only; nothing is persisted).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

/// Target wall-clock duration of one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Warmup budget before sampling starts.
const WARMUP_TARGET: Duration = Duration::from_millis(150);

impl Bencher {
    /// Times `routine`, keeping its return value live via [`black_box`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fit in one sample window.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET / 4 || iters >= 1 << 30 {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let target = SAMPLE_TARGET.as_secs_f64();
                iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 32);
                break;
            }
            iters = iters.saturating_mul(4);
        }

        // Warmup.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(routine());
        }

        // Timed samples.
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
    }

    fn report(&mut self, group: &str, name: &str, throughput: Option<Throughput>) {
        let full = format!("{group}/{name}");
        if self.samples.is_empty() {
            println!("  {full:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.3} Melem/s", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.3} MiB/s", n as f64 / median * 1e9 / (1024.0 * 1024.0) / 1e6)
            }
            None => String::new(),
        };
        println!("  {full:<40} median {median:>12.1} ns/iter  (mean {mean:>12.1}){rate}");
        RECORDS.lock().unwrap().push(BenchRecord {
            group: group.to_string(),
            name: name.to_string(),
            median_ns: median,
            mean_ns: mean,
            min_ns: self.samples[0],
            max_ns: self.samples[self.samples.len() - 1],
            samples: self.samples.len(),
            throughput_elems: match throughput {
                Some(Throughput::Elements(n)) => Some(n),
                _ => None,
            },
        });
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given group functions in order, then
/// writing the `--json` results file (when requested).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_samples() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 3 };
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            black_box(counter)
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn bench_hash_stripping() {
        assert_eq!(strip_bench_hash("iss-1a2b3c4d5e6f7890"), "iss");
        assert_eq!(strip_bench_hash("obs-deadbeefdeadbeef"), "obs");
        assert_eq!(strip_bench_hash("iss"), "iss");
        assert_eq!(strip_bench_hash("my-bench"), "my-bench", "short suffix kept");
        assert_eq!(strip_bench_hash("iss-notahexsuffix!"), "iss-notahexsuffix!");
    }

    #[test]
    fn finalize_writes_schema_json() {
        let path = std::env::temp_dir().join("criterion_shim_selftest.json");
        let path_str = path.to_str().unwrap().to_string();
        RECORDS.lock().unwrap().push(BenchRecord {
            group: "selftest_group".into(),
            name: "case".into(),
            median_ns: 1.5,
            mean_ns: 2.0,
            min_ns: 1.0,
            max_ns: 3.0,
            samples: 4,
            throughput_elems: Some(7),
        });
        *JSON_PATH.lock().unwrap() = Some(path_str.clone());
        finalize();
        *JSON_PATH.lock().unwrap() = None;
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"schema\": \"taintvp-bench/v1\""), "{text}");
        assert!(text.contains("\"group\": \"selftest_group\""), "{text}");
        assert!(text.contains("\"median\": 1.500"), "{text}");
        assert!(text.contains("\"throughput_elems\": 7"), "{text}");
    }

    #[test]
    fn group_runs_function() {
        let mut c = Criterion::default();
        let mut ran = false;
        {
            let mut g = c.benchmark_group("shim_selftest");
            g.sample_size(2);
            g.throughput(Throughput::Elements(1));
            g.bench_function("noop", |b| {
                ran = true;
                b.iter(|| black_box(1u32 + 1));
            });
            g.finish();
        }
        assert!(ran);
    }
}
