//! End-to-end fleet telemetry: deterministic snapshots across identical
//! runs, and a live `/metrics` scrape whose counters match the fleet's
//! own aggregate.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use vpdift_fleet::telemetry::render_prom;
use vpdift_fleet::{Fleet, FleetConfig, Job, JobOutput, JobStatus, TelemetryHub};
use vpdift_obs::MetricsServer;

fn counting_job(id: u64, insns: u64) -> Job {
    Job::new(id, move |ctx| {
        Ok(JobOutput { payload: format!("{{\"job\":{}}}", ctx.job_id), counts: vec![1], insns })
    })
}

fn run_with_hub(workers: usize, jobs: usize) -> (Arc<TelemetryHub>, Vec<vpdift_fleet::JobResult>) {
    let hub = TelemetryHub::new(workers);
    let config =
        FleetConfig { workers, telemetry: Some(Arc::clone(&hub)), ..FleetConfig::default() };
    let jobs: Vec<Job> = (0..jobs as u64).map(|i| counting_job(i, 100 + i)).collect();
    let results = Fleet::new(config).run(jobs, None, &[]);
    (hub, results)
}

#[test]
fn two_identical_serial_runs_produce_identical_telemetry() {
    // workers=1 pins the job→worker assignment, so everything outside
    // the timing fields must reproduce byte-for-byte.
    let (hub_a, _) = run_with_hub(1, 16);
    let (hub_b, _) = run_with_hub(1, 16);
    let a = hub_a.snapshot().deterministic_json();
    let b = hub_b.snapshot().deterministic_json();
    assert_eq!(a, b, "serial fleet telemetry must be deterministic");
    assert!(a.contains("\"done\":16"), "{a}");
}

#[test]
fn snapshot_matches_fleet_results() {
    let (hub, results) = run_with_hub(3, 20);
    let snap = hub.snapshot();
    assert!(snap.finished);
    assert_eq!(snap.done, results.len() as u64);
    assert_eq!(snap.ok, results.iter().filter(|r| r.status == JobStatus::Ok).count() as u64);
    assert_eq!(snap.running, 0, "no attempt in flight after the run");
    let expected: u64 = (0..20u64).map(|i| 100 + i).sum();
    assert_eq!(snap.insns, expected, "completion-reported insns all land");
    assert_eq!(snap.wall_us.count(), 20, "one wall-time sample per job");
}

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape response");
    response
}

fn prom_value(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

#[test]
fn metrics_endpoint_serves_fleet_counters_mid_run_and_after() {
    let hub = TelemetryHub::new(2);
    let render_hub = Arc::clone(&hub);
    let server = MetricsServer::bind("127.0.0.1:0", Arc::new(move || render_prom(&render_hub)))
        .expect("endpoint binds");
    let addr = server.local_addr();

    // Jobs slow enough that the mid-run scrape observes an unfinished
    // fleet: each sleeps 20ms, and a gate job holds until we scraped.
    let gate = vpdift_obs::StopFlag::new();
    let release = gate.clone();
    let mut jobs: Vec<Job> = (0..8u64)
        .map(|i| {
            Job::new(i, move |ctx| {
                std::thread::sleep(Duration::from_millis(20));
                Ok(JobOutput {
                    payload: format!("{{\"job\":{}}}", ctx.job_id),
                    counts: vec![1],
                    insns: 50,
                })
            })
        })
        .collect();
    jobs.push(Job::new(8, move |_ctx| {
        while !release.is_requested() {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(JobOutput { payload: "{\"job\":8}".into(), counts: vec![1], insns: 50 })
    }));

    let config =
        FleetConfig { workers: 2, telemetry: Some(Arc::clone(&hub)), ..FleetConfig::default() };
    let results = std::thread::scope(|scope| {
        let runner = scope.spawn(|| Fleet::new(config).run(jobs, None, &[]));

        // Mid-run scrape: valid exposition text, counters not yet final.
        let mid = scrape(addr);
        assert!(mid.starts_with("HTTP/1.1 200 OK"), "{mid}");
        assert!(mid.contains("text/plain; version=0.0.4"), "{mid}");
        assert!(mid.contains("# TYPE fleet_jobs_completed_total counter"), "{mid}");
        let mid_done = prom_value(&mid, "fleet_jobs_completed_total")
            .expect("mid-run scrape carries the completed counter");
        assert!(mid_done <= 9.0, "mid-run count cannot exceed the job total");

        gate.request();
        let results = runner.join().expect("fleet run completes");

        // Post-run scrape: counters final and monotone vs. mid-run.
        let after = scrape(addr);
        let done = prom_value(&after, "fleet_jobs_completed_total").unwrap();
        assert_eq!(done, results.len() as f64, "scrape matches the aggregate");
        assert!(done >= mid_done, "counters are monotone across scrapes");
        assert_eq!(prom_value(&after, "fleet_jobs_running"), Some(0.0));
        results
    });
    assert_eq!(results.len(), 9);
    server.shutdown();
}
