//! End-to-end crash-safe resume: a campaign journal truncated mid-write
//! (as SIGKILL leaves it) must resume to the exact bytes an
//! uninterrupted campaign produces, re-running only the missing jobs.

use std::fs;
use std::io::Write as _;

use vpdift_faults::CampaignConfig;
use vpdift_fleet::{run_campaign_fleet, FleetConfig};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-resume-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn truncated_journal_resumes_to_identical_bytes() {
    let config = CampaignConfig { seed: 0xACE, runs: 6, rate: 5e-5 };
    let fleet_config = FleetConfig { workers: 2, ..FleetConfig::default() };

    // The uninterrupted run: journal + aggregate.
    let full_path = temp_path("full.jsonl");
    let full = run_campaign_fleet(&config, &fleet_config, Some(&full_path), false).unwrap();
    assert!(full.failures.is_empty());
    assert_eq!(full.resumed, 0);

    // Simulate SIGKILL mid-campaign: keep the header and the first three
    // intact records, then a torn half-line where the writer died.
    let journal = fs::read_to_string(&full_path).unwrap();
    let keep: Vec<&str> = journal.lines().take(4).collect();
    let interrupted_path = temp_path("interrupted.jsonl");
    {
        let mut f = fs::File::create(&interrupted_path).unwrap();
        for line in &keep {
            writeln!(f, "{line}").unwrap();
        }
        write!(f, "{{\"job\":9,\"status\":\"ok\",\"attem").unwrap();
    }

    // Resume: the three journaled runs are skipped, the rest re-run.
    let resumed =
        run_campaign_fleet(&config, &fleet_config, Some(&interrupted_path), true).unwrap();
    assert_eq!(resumed.resumed, 3, "three intact records recovered");
    assert!(resumed.failures.is_empty());
    assert_eq!(resumed.json, full.json, "resumed campaign renders the uninterrupted bytes");

    // The resumed journal now holds every job exactly once.
    let final_journal = fs::read_to_string(&interrupted_path).unwrap();
    let mut jobs: Vec<u64> = final_journal
        .lines()
        .skip(1)
        .filter_map(vpdift_fleet::parse_record)
        .map(|r| r.job_id)
        .collect();
    jobs.sort_unstable();
    jobs.dedup();
    assert_eq!(jobs, (0..6).collect::<Vec<u64>>());

    fs::remove_file(&full_path).ok();
    fs::remove_file(&interrupted_path).ok();
}
