//! Fleet telemetry: per-worker counters, aggregated snapshots, the
//! `taintvp-telem/v1` stream, live progress rendering, and Prometheus
//! exposition.
//!
//! The design keeps the worker hot path honest about cost:
//!
//! - **Off by default, compile-asserted cheap.** `FleetConfig.telemetry`
//!   is an `Option<Arc<TelemetryHub>>`; niche optimization makes the
//!   disabled handle a null pointer (asserted below), so an untelemetered
//!   fleet pays one pointer null-check per *job*, never per instruction.
//! - **Relaxed atomics only.** Workers bump [`WorkerStats`] counters with
//!   relaxed `fetch_add` at job boundaries; the wall-time histogram is a
//!   lock-free [`AtomicHist`]. Nothing on the worker path takes a lock
//!   for telemetry.
//! - **Snapshots are values.** [`TelemetryHub::snapshot`] folds the
//!   atomics into a plain [`TelemSnapshot`] that renders every output
//!   format: a `taintvp-telem/v1` JSONL line, the one-line progress
//!   display, and the `/metrics` exposition document.
//!
//! The sampler ([`spawn_sampler`]) owns the cadence: it snapshots at
//! `--telemetry-interval-ms`, appends stream lines, and renders progress
//! — overwriting a single line on a real terminal, falling back to
//! periodic plain lines when output is redirected (no `\r` spam in CI
//! logs).

use std::fs::OpenOptions;
use std::io::{self, IsTerminal, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vpdift_obs::expo::Expo;
use vpdift_obs::hist::{AtomicHist, Hist, HistSpec};
use vpdift_obs::InsnCell;

use crate::job::JobStatus;

/// Schema identifier stamped on every telemetry stream line.
pub const TELEM_FORMAT: &str = "taintvp-telem/v1";

/// Job wall-time histogram layout: log2 buckets over microseconds.
pub fn wall_spec() -> HistSpec {
    HistSpec::log2(32)
}

// The zero-cost-when-off contract, checked at compile time: a disabled
// telemetry handle is a null pointer (niche-optimized Option), so the
// per-job guard in the worker loop is a single null test and carries no
// allocation, no refcount traffic, no extra struct size.
const _: () = assert!(
    std::mem::size_of::<Option<Arc<TelemetryHub>>>() == std::mem::size_of::<usize>(),
    "Option<Arc<TelemetryHub>> must be pointer-sized (niche-optimized)"
);

/// Live counters for one worker thread. All updates are relaxed atomics
/// on the owning worker; readers (the sampler, scrape renders) see
/// values at most one in-flight update stale.
#[derive(Debug)]
pub struct WorkerStats {
    completed: AtomicU64,
    ok: AtomicU64,
    crashed: AtomicU64,
    hung: AtomicU64,
    errored: AtomicU64,
    retried: AtomicU64,
    stolen: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    queue_depth: AtomicU64,
    active: AtomicU64,
    insns: InsnCell,
    wall_us: AtomicHist,
}

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            completed: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            crashed: AtomicU64::new(0),
            hung: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            idle_ns: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            active: AtomicU64::new(0),
            insns: InsnCell::new(),
            wall_us: AtomicHist::new(wall_spec()),
        }
    }

    /// The live retired-instruction cell jobs may wire into a session
    /// (`SocBuilder::insn_cell`). Jobs that cannot share the cell report
    /// instructions at completion via `JobOutput::insns` instead — one
    /// path or the other, never both.
    pub fn insn_cell(&self) -> InsnCell {
        self.insns.clone()
    }

    /// Records a steal (this worker took a job from another deque).
    pub fn on_steal(&self) {
        self.stolen.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the worker's own queue depth after a pop.
    pub fn on_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Accumulates time spent parked without work.
    pub fn on_idle(&self, idle: Duration) {
        self.idle_ns.fetch_add(idle.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Marks the worker busy (a job attempt chain is starting).
    pub fn on_job_start(&self) {
        self.active.store(1, Ordering::Relaxed);
    }

    /// Records a terminally-resolved job: classification, attempts
    /// consumed, wall time, and completion-reported instructions.
    pub fn on_job_done(&self, status: JobStatus, attempts: u32, busy: Duration, insns: u64) {
        self.active.store(0, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            JobStatus::Ok => &self.ok,
            JobStatus::Crashed => &self.crashed,
            JobStatus::Hang => &self.hung,
            JobStatus::Error => &self.errored,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.retried.fetch_add(u64::from(attempts.saturating_sub(1)), Ordering::Relaxed);
        self.busy_ns.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        self.wall_us.record(busy.as_micros() as u64);
        if insns > 0 {
            self.insns.add(insns);
        }
    }

    fn snapshot(&self) -> WorkerSnap {
        WorkerSnap {
            completed: self.completed.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
            hung: self.hung.load(Ordering::Relaxed),
            errored: self.errored.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            idle_ns: self.idle_ns.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed) != 0,
            insns: self.insns.get(),
            wall_us: self.wall_us.snapshot(),
        }
    }
}

/// A point-in-time copy of one worker's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnap {
    /// Jobs terminally resolved by this worker.
    pub completed: u64,
    /// ...of which classified `ok`.
    pub ok: u64,
    /// ...of which classified `crashed`.
    pub crashed: u64,
    /// ...of which classified `hang`.
    pub hung: u64,
    /// ...of which classified `error`.
    pub errored: u64,
    /// Retry attempts consumed beyond each job's first.
    pub retried: u64,
    /// Jobs this worker stole from other deques.
    pub stolen: u64,
    /// Nanoseconds spent inside job attempts.
    pub busy_ns: u64,
    /// Nanoseconds spent parked without work.
    pub idle_ns: u64,
    /// Own-deque depth after the last pop.
    pub queue_depth: u64,
    /// Whether a job attempt is in flight right now.
    pub active: bool,
    /// Retired guest instructions attributed to this worker.
    pub insns: u64,
    /// Per-job wall time histogram (microseconds, log2 buckets).
    pub wall_us: Hist,
}

/// Shared telemetry state for one fleet run: per-worker stats plus run
/// totals. Created by the caller, handed to the executor through
/// `FleetConfig.telemetry`, and read by samplers/scrapers.
#[derive(Debug)]
pub struct TelemetryHub {
    workers: Vec<WorkerStats>,
    total: AtomicU64,
    resumed: AtomicU64,
    done: AtomicBool,
    start: Instant,
}

impl TelemetryHub {
    /// A hub sized for `workers` worker threads.
    pub fn new(workers: usize) -> Arc<TelemetryHub> {
        Arc::new(TelemetryHub {
            workers: (0..workers.max(1)).map(|_| WorkerStats::new()).collect(),
            total: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            done: AtomicBool::new(false),
            start: Instant::now(),
        })
    }

    /// Stats slot for worker `w` (clamped: an over-provisioned hub never
    /// panics the executor).
    pub fn worker(&self, w: usize) -> &WorkerStats {
        &self.workers[w.min(self.workers.len() - 1)]
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Declares how many jobs this run will execute (the executor calls
    /// this with the post-skip job count).
    pub fn set_total(&self, jobs: u64) {
        self.total.store(jobs, Ordering::Relaxed);
    }

    /// Adds journal-recovered jobs: they count as completed (their rows
    /// exist) without ever touching a worker.
    pub fn add_resumed(&self, jobs: u64) {
        self.resumed.fetch_add(jobs, Ordering::Relaxed);
    }

    /// Marks the run finished (stops samplers at their next tick).
    pub fn mark_done(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// `true` once the run finished.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Folds every worker's counters into one aggregate snapshot.
    pub fn snapshot(&self) -> TelemSnapshot {
        let workers: Vec<WorkerSnap> = self.workers.iter().map(WorkerStats::snapshot).collect();
        let mut wall_us = Hist::new(wall_spec());
        for w in &workers {
            // Same spec by construction; a mismatch is unreachable.
            let _ = wall_us.merge(&w.wall_us);
        }
        let resumed = self.resumed.load(Ordering::Relaxed);
        TelemSnapshot {
            elapsed: self.start.elapsed(),
            total: self.total.load(Ordering::Relaxed) + resumed,
            resumed,
            done: workers.iter().map(|w| w.completed).sum::<u64>() + resumed,
            running: workers.iter().filter(|w| w.active).count() as u64,
            ok: workers.iter().map(|w| w.ok).sum(),
            crashed: workers.iter().map(|w| w.crashed).sum(),
            hung: workers.iter().map(|w| w.hung).sum(),
            errored: workers.iter().map(|w| w.errored).sum(),
            retried: workers.iter().map(|w| w.retried).sum(),
            stolen: workers.iter().map(|w| w.stolen).sum(),
            insns: workers.iter().map(|w| w.insns).sum(),
            finished: self.is_done(),
            wall_us,
            workers,
        }
    }
}

/// One aggregated telemetry snapshot: everything a stream line, progress
/// display, or scrape needs.
#[derive(Debug, Clone)]
pub struct TelemSnapshot {
    /// Wall time since the hub was created.
    pub elapsed: Duration,
    /// Jobs in the run (including resumed ones).
    pub total: u64,
    /// Jobs recovered from a journal instead of re-run.
    pub resumed: u64,
    /// Terminally resolved jobs (including resumed).
    pub done: u64,
    /// Workers with an attempt in flight.
    pub running: u64,
    /// Jobs classified `ok`.
    pub ok: u64,
    /// Jobs classified `crashed`.
    pub crashed: u64,
    /// Jobs classified `hang`.
    pub hung: u64,
    /// Jobs classified `error`.
    pub errored: u64,
    /// Retry attempts beyond first tries.
    pub retried: u64,
    /// Cross-deque steals.
    pub stolen: u64,
    /// Retired guest instructions (live cells + completion reports).
    pub insns: u64,
    /// Whether the run had finished when this snapshot was taken.
    pub finished: bool,
    /// Merged per-job wall-time histogram (microseconds).
    pub wall_us: Hist,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerSnap>,
}

impl TelemSnapshot {
    /// Completed jobs per second of wall time (excluding resumed jobs,
    /// which cost no wall time this run).
    pub fn jobs_per_s(&self) -> f64 {
        let fresh = self.done.saturating_sub(self.resumed);
        fresh as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Aggregate guest MIPS across all workers.
    pub fn mips(&self) -> f64 {
        self.insns as f64 / self.elapsed.as_micros().max(1) as f64
    }

    /// Estimated wall time to finish at the current rate; `None` before
    /// the first completion.
    pub fn eta(&self) -> Option<Duration> {
        let fresh = self.done.saturating_sub(self.resumed);
        if fresh == 0 || self.done >= self.total {
            return if self.done >= self.total { Some(Duration::ZERO) } else { None };
        }
        let remaining = (self.total - self.done) as f64;
        Some(Duration::from_secs_f64(remaining / self.jobs_per_s().max(1e-9)))
    }

    /// Renders one `taintvp-telem/v1` stream line (single-line JSON,
    /// newline not included).
    pub fn telem_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"format\":\"{TELEM_FORMAT}\",\"t_ms\":{},\"total\":{},\"resumed\":{},\"done\":{},\
             \"running\":{},\"ok\":{},\"crashed\":{},\"hung\":{},\"errored\":{},\"retried\":{},\
             \"stolen\":{},\"insns\":{},\"jobs_per_s\":{:.3},\"mips\":{:.3},\"finished\":{},\
             \"workers\":[",
            self.elapsed.as_millis(),
            self.total,
            self.resumed,
            self.done,
            self.running,
            self.ok,
            self.crashed,
            self.hung,
            self.errored,
            self.retried,
            self.stolen,
            self.insns,
            self.jobs_per_s(),
            self.mips(),
            self.finished,
        );
        for (i, w) in self.workers.iter().enumerate() {
            let comma = if i + 1 < self.workers.len() { "," } else { "" };
            let _ = write!(
                out,
                "{{\"worker\":{i},\"completed\":{},\"ok\":{},\"crashed\":{},\"hung\":{},\
                 \"errored\":{},\"retried\":{},\"stolen\":{},\"busy_ns\":{},\"idle_ns\":{},\
                 \"queue_depth\":{},\"insns\":{},\"wall_p50_us\":{},\"wall_p99_us\":{}}}{comma}",
                w.completed,
                w.ok,
                w.crashed,
                w.hung,
                w.errored,
                w.retried,
                w.stolen,
                w.busy_ns,
                w.idle_ns,
                w.queue_depth,
                w.insns,
                w.wall_us.quantile(0.5),
                w.wall_us.quantile(0.99),
            );
        }
        out.push_str("]}");
        out
    }

    /// The timing-free subset of the snapshot as canonical JSON: what
    /// two identical serial runs must reproduce byte-for-byte (wall
    /// times, rates and queue gauges excluded; counts, classifications
    /// and instruction totals included).
    pub fn deterministic_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"total\":{},\"resumed\":{},\"done\":{},\"ok\":{},\"crashed\":{},\"hung\":{},\
             \"errored\":{},\"retried\":{},\"insns\":{},\"workers\":[",
            self.total,
            self.resumed,
            self.done,
            self.ok,
            self.crashed,
            self.hung,
            self.errored,
            self.retried,
            self.insns,
        );
        for (i, w) in self.workers.iter().enumerate() {
            let comma = if i + 1 < self.workers.len() { "," } else { "" };
            let _ = write!(
                out,
                "{{\"completed\":{},\"ok\":{},\"crashed\":{},\"hung\":{},\"errored\":{},\
                 \"retried\":{},\"insns\":{}}}{comma}",
                w.completed, w.ok, w.crashed, w.hung, w.errored, w.retried, w.insns,
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders the one-line progress display.
    pub fn progress_line(&self) -> String {
        let mut line = format!(
            "[fleet] {}/{} done, {} running, {} retried, {} crashed, {} hung | {:.1} jobs/s",
            self.done,
            self.total,
            self.running,
            self.retried,
            self.crashed,
            self.hung,
            self.jobs_per_s(),
        );
        if self.insns > 0 {
            line.push_str(&format!(", {:.1} MIPS", self.mips()));
        }
        match self.eta() {
            Some(eta) if !self.finished => {
                line.push_str(&format!(", eta {:.1}s", eta.as_secs_f64()));
            }
            _ => {}
        }
        if self.finished {
            line.push_str(&format!(" — finished in {:.2}s", self.elapsed.as_secs_f64()));
        }
        line
    }

    /// Renders the fleet section of the `/metrics` exposition document.
    pub fn render_prom(&self, expo: &mut Expo) {
        expo.gauge("fleet_jobs_total", "Jobs in this fleet run.", &[], self.total as f64);
        expo.counter(
            "fleet_jobs_completed_total",
            "Jobs terminally resolved (all classifications, including journal-resumed).",
            &[],
            self.done,
        );
        for (name, help, v) in [
            ("fleet_jobs_ok_total", "Jobs classified ok.", self.ok),
            ("fleet_jobs_crashed_total", "Jobs classified crashed.", self.crashed),
            ("fleet_jobs_hung_total", "Jobs classified hang.", self.hung),
            ("fleet_jobs_errored_total", "Jobs classified error.", self.errored),
            ("fleet_jobs_resumed_total", "Jobs recovered from the journal.", self.resumed),
            ("fleet_job_retries_total", "Retry attempts beyond first tries.", self.retried),
            ("fleet_job_steals_total", "Jobs taken from another worker's deque.", self.stolen),
            ("fleet_insns_total", "Retired guest instructions.", self.insns),
        ] {
            expo.counter(name, help, &[], v);
        }
        expo.gauge(
            "fleet_jobs_running",
            "Workers with an attempt in flight.",
            &[],
            self.running as f64,
        );
        expo.histogram(
            "fleet_job_wall_seconds",
            "Per-job wall time (all attempts).",
            &[],
            &self.wall_us,
            1e-6,
        );
        for (i, w) in self.workers.iter().enumerate() {
            let worker = i.to_string();
            let labels: &[(&str, &str)] = &[("worker", &worker)];
            expo.counter(
                "fleet_worker_jobs_completed_total",
                "Jobs resolved per worker.",
                labels,
                w.completed,
            );
            expo.counter("fleet_worker_steals_total", "Steals per worker.", labels, w.stolen);
            expo.counter(
                "fleet_worker_insns_total",
                "Retired guest instructions per worker.",
                labels,
                w.insns,
            );
            expo.gauge(
                "fleet_worker_busy_seconds_total",
                "Seconds inside job attempts per worker.",
                labels,
                w.busy_ns as f64 * 1e-9,
            );
            expo.gauge(
                "fleet_worker_idle_seconds_total",
                "Seconds parked without work per worker.",
                labels,
                w.idle_ns as f64 * 1e-9,
            );
            expo.gauge(
                "fleet_worker_queue_depth",
                "Own-deque depth after the last pop.",
                labels,
                w.queue_depth as f64,
            );
        }
    }
}

/// Renders a complete exposition document for one hub (convenience for
/// scrape endpoints).
pub fn render_prom(hub: &TelemetryHub) -> String {
    let mut expo = Expo::new();
    hub.snapshot().render_prom(&mut expo);
    expo.finish()
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Snapshot cadence.
    pub interval: Duration,
    /// Append `taintvp-telem/v1` lines here (created/truncated at spawn).
    pub out: Option<PathBuf>,
    /// Render live progress to stderr.
    pub progress: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig { interval: Duration::from_millis(500), out: None, progress: false }
    }
}

/// Handle on a running sampler thread; [`finish`](SamplerHandle::finish)
/// emits the final snapshot and joins.
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl SamplerHandle {
    /// Stops the sampler after its final snapshot and propagates any
    /// stream-write error.
    pub fn finish(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Release);
        match self.handle.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("telemetry sampler thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Spawns the sampler thread for `hub`. Opens (and truncates) the
/// stream file up front so flag typos fail fast, then snapshots every
/// `config.interval` until the hub is marked done (or the handle is
/// finished/dropped), always emitting one final snapshot.
pub fn spawn_sampler(hub: Arc<TelemetryHub>, config: SamplerConfig) -> io::Result<SamplerHandle> {
    let mut out = match &config.out {
        Some(path) => Some(OpenOptions::new().create(true).write(true).truncate(true).open(path)?),
        None => None,
    };
    let stop = Arc::new(AtomicBool::new(false));
    let stop_thread = Arc::clone(&stop);
    let handle = std::thread::Builder::new().name("fleet-telem".into()).spawn(move || {
        let mut progress = ProgressRenderer::new(config.progress);
        let tick = Duration::from_millis(20).min(config.interval);
        let mut last_emit = Instant::now();
        loop {
            let finished = hub.is_done() || stop_thread.load(Ordering::Acquire);
            if finished || last_emit.elapsed() >= config.interval {
                last_emit = Instant::now();
                let snap = hub.snapshot();
                if let Some(f) = out.as_mut() {
                    writeln!(f, "{}", snap.telem_line())?;
                }
                progress.render(&snap);
                if finished {
                    if let Some(f) = out.as_mut() {
                        f.flush()?;
                    }
                    progress.close();
                    return Ok(());
                }
            }
            std::thread::sleep(tick);
        }
    })?;
    Ok(SamplerHandle { stop, handle: Some(handle) })
}

/// Live progress renderer with non-TTY fallback: on a real terminal it
/// overwrites one stderr line per tick (`\r` + clear-to-EOL); when
/// stderr is redirected it prints a plain line at most every
/// [`PLAIN_PERIOD`], so CI logs get periodic progress instead of
/// carriage-return spam.
struct ProgressRenderer {
    enabled: bool,
    tty: bool,
    last_plain: Option<Instant>,
}

/// Minimum spacing of plain-mode progress lines.
const PLAIN_PERIOD: Duration = Duration::from_secs(2);

impl ProgressRenderer {
    fn new(enabled: bool) -> ProgressRenderer {
        ProgressRenderer { enabled, tty: io::stderr().is_terminal(), last_plain: None }
    }

    fn render(&mut self, snap: &TelemSnapshot) {
        if !self.enabled {
            return;
        }
        let mut err = io::stderr().lock();
        if self.tty {
            let _ = write!(err, "\r\x1b[K{}", snap.progress_line());
            let _ = err.flush();
            return;
        }
        let due = self.last_plain.map(|t| t.elapsed() >= PLAIN_PERIOD).unwrap_or(true);
        if due || snap.finished {
            self.last_plain = Some(Instant::now());
            let _ = writeln!(err, "{}", snap.progress_line());
        }
    }

    /// Ends the overwritten line so subsequent output starts clean.
    fn close(&mut self) {
        if self.enabled && self.tty {
            let mut err = io::stderr().lock();
            let _ = writeln!(err);
            let _ = err.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn do_job(hub: &TelemetryHub, w: usize, status: JobStatus, attempts: u32, insns: u64) {
        let ws = hub.worker(w);
        ws.on_job_start();
        ws.on_job_done(status, attempts, Duration::from_micros(250), insns);
    }

    #[test]
    fn snapshot_aggregates_workers() {
        let hub = TelemetryHub::new(2);
        hub.set_total(5);
        do_job(&hub, 0, JobStatus::Ok, 1, 1000);
        do_job(&hub, 0, JobStatus::Crashed, 2, 0);
        do_job(&hub, 1, JobStatus::Ok, 1, 500);
        hub.worker(1).on_steal();
        let snap = hub.snapshot();
        assert_eq!(snap.total, 5);
        assert_eq!(snap.done, 3);
        assert_eq!((snap.ok, snap.crashed, snap.hung, snap.errored), (2, 1, 0, 0));
        assert_eq!(snap.retried, 1, "second attempt counts as one retry");
        assert_eq!(snap.stolen, 1);
        assert_eq!(snap.insns, 1500);
        assert_eq!(snap.wall_us.count(), 3);
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.workers[0].completed, 2);
    }

    #[test]
    fn resumed_jobs_count_as_done() {
        let hub = TelemetryHub::new(1);
        hub.set_total(4);
        hub.add_resumed(3);
        do_job(&hub, 0, JobStatus::Ok, 1, 0);
        let snap = hub.snapshot();
        assert_eq!(snap.total, 7);
        assert_eq!(snap.done, 4);
        assert_eq!(snap.ok, 1, "resumed rows are not re-classified");
    }

    #[test]
    fn telem_line_is_single_line_json_with_schema() {
        let hub = TelemetryHub::new(1);
        hub.set_total(2);
        do_job(&hub, 0, JobStatus::Ok, 1, 42);
        let line = hub.snapshot().telem_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"format\":\"taintvp-telem/v1\""), "{line}");
        assert!(line.contains("\"done\":1"), "{line}");
        assert!(line.contains("\"insns\":42"), "{line}");
        assert!(line.contains("\"worker\":0"), "{line}");
        vpdift_obs::export::validate_json(&line).expect("stream line is valid JSON");
    }

    #[test]
    fn deterministic_json_excludes_timing() {
        let hub = TelemetryHub::new(1);
        hub.set_total(1);
        do_job(&hub, 0, JobStatus::Ok, 1, 7);
        let d = hub.snapshot().deterministic_json();
        assert!(!d.contains("t_ms") && !d.contains("busy_ns") && !d.contains("jobs_per_s"), "{d}");
        assert!(d.contains("\"insns\":7"), "{d}");
        vpdift_obs::export::validate_json(&d).expect("deterministic subset is valid JSON");
    }

    #[test]
    fn prom_render_exposes_fleet_counters() {
        let hub = TelemetryHub::new(2);
        hub.set_total(3);
        do_job(&hub, 0, JobStatus::Ok, 1, 10);
        do_job(&hub, 1, JobStatus::Hang, 1, 0);
        let text = render_prom(&hub);
        assert!(text.contains("# TYPE fleet_jobs_completed_total counter"), "{text}");
        assert!(text.contains("fleet_jobs_completed_total 2"), "{text}");
        assert!(text.contains("fleet_jobs_hung_total 1"), "{text}");
        assert!(text.contains("fleet_job_wall_seconds_bucket"), "{text}");
        assert!(text.contains("fleet_worker_jobs_completed_total{worker=\"0\"} 1"), "{text}");
    }

    #[test]
    fn eta_and_rates_behave() {
        let hub = TelemetryHub::new(1);
        hub.set_total(10);
        let early = hub.snapshot();
        assert_eq!(early.eta(), None, "no rate before the first completion");
        do_job(&hub, 0, JobStatus::Ok, 1, 0);
        let snap = hub.snapshot();
        assert!(snap.jobs_per_s() > 0.0);
        assert!(snap.eta().is_some());
        let line = snap.progress_line();
        assert!(line.contains("1/10 done"), "{line}");
    }

    #[test]
    fn sampler_writes_stream_and_final_snapshot() {
        let dir = std::env::temp_dir().join(format!("telem-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("telem.jsonl");
        let hub = TelemetryHub::new(1);
        hub.set_total(1);
        let sampler = spawn_sampler(
            Arc::clone(&hub),
            SamplerConfig {
                interval: Duration::from_millis(10),
                out: Some(path.clone()),
                progress: false,
            },
        )
        .expect("sampler spawns");
        do_job(&hub, 0, JobStatus::Ok, 1, 5);
        std::thread::sleep(Duration::from_millis(40));
        hub.mark_done();
        sampler.finish().expect("sampler exits cleanly");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        for l in &lines {
            assert!(l.starts_with("{\"format\":\"taintvp-telem/v1\""), "{l}");
        }
        let last = lines.last().unwrap();
        assert!(last.contains("\"finished\":true"), "final snapshot flagged: {last}");
        assert!(last.contains("\"done\":1"), "{last}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
