//! Fleet jobs: the unit of parallel, isolated, retryable work.
//!
//! A job is a *re-runnable* closure — retries and crash-resume both
//! re-execute it from scratch — that produces a deterministic JSON
//! payload. Everything nondeterministic (wall time, attempt counts,
//! panic messages) lives beside the payload in the [`JobResult`] and is
//! excluded from aggregate output, which is what makes fleet aggregates
//! byte-identical across worker counts.

use std::sync::Arc;

use vpdift_obs::{InsnCell, StopFlag};

/// Per-attempt context handed to the job closure.
///
/// Jobs that run a `Soc` should wire [`JobCtx::stop`] into the session
/// (`SocBuilder::stop_flag`) so a deadline reaper can interrupt a wedged
/// guest from outside; jobs that ignore it can still be deadline-killed
/// only at their own blocking points.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// Stable job identifier (also the aggregate ordering key).
    pub job_id: u64,
    /// 1-based attempt number (increments on transient-error retries).
    pub attempt: u32,
    /// Raised by the deadline reaper when this attempt overruns.
    pub stop: StopFlag,
    /// The worker's live retired-instruction counter. Jobs that run a
    /// `Soc` may share it with the session (`SocBuilder::insn_cell`) so
    /// fleet telemetry sees progress mid-run — even for a wedged guest
    /// the reaper is about to kill. Jobs that wire this cell should
    /// leave [`JobOutput::insns`] at 0 (and vice versa) so instructions
    /// are not counted twice.
    pub insns: InsnCell,
}

/// Why a job attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A transient host fault (I/O hiccough, resource exhaustion):
    /// eligible for seed-stable backoff and retry.
    Transient(String),
    /// A permanent failure: retrying cannot help.
    Fatal(String),
}

/// What a successful attempt produced.
#[derive(Debug, Clone, Default)]
pub struct JobOutput {
    /// Deterministic single-line JSON fragment for the aggregate.
    pub payload: String,
    /// Outcome counts this job contributes to the campaign summary
    /// (indexed however the campaign defines; summed across jobs).
    pub counts: Vec<u64>,
    /// Retired guest instructions, reported at completion for telemetry.
    /// Leave at 0 when the job streams the count live through
    /// [`JobCtx::insns`] instead — the two paths feed the same counter.
    pub insns: u64,
}

/// Terminal classification of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed and produced its payload.
    Ok,
    /// The session panicked; the worker caught the unwind and survived.
    Crashed,
    /// Killed by the per-job deadline: the reaper raised the stop flag
    /// (and the attempt was discarded even if it then returned).
    Hang,
    /// Failed with [`JobError`] after exhausting retries.
    Error,
}

impl JobStatus {
    /// Stable journal/aggregate label.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Crashed => "crashed",
            JobStatus::Hang => "hang",
            JobStatus::Error => "error",
        }
    }

    /// Parses a journal label.
    pub fn parse(s: &str) -> Option<JobStatus> {
        Some(match s {
            "ok" => JobStatus::Ok,
            "crashed" => JobStatus::Crashed,
            "hang" => JobStatus::Hang,
            "error" => JobStatus::Error,
            _ => return None,
        })
    }
}

/// The work function: re-runnable, shared with workers.
pub type JobFn = Arc<dyn Fn(&JobCtx) -> Result<JobOutput, JobError> + Send + Sync>;

/// One schedulable unit: an id plus its work function.
#[derive(Clone)]
pub struct Job {
    /// Stable identifier; results aggregate in id order.
    pub id: u64,
    /// The re-runnable work.
    pub work: JobFn,
}

impl Job {
    /// Wraps `work` under `id`.
    pub fn new<F>(id: u64, work: F) -> Job
    where
        F: Fn(&JobCtx) -> Result<JobOutput, JobError> + Send + Sync + 'static,
    {
        Job { id, work: Arc::new(work) }
    }
}

impl core::fmt::Debug for Job {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Job").field("id", &self.id).finish_non_exhaustive()
    }
}

/// The terminal record of one job, as journaled and aggregated.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's stable id.
    pub job_id: u64,
    /// Terminal classification.
    pub status: JobStatus,
    /// Attempts consumed (1 for a first-try success).
    pub attempts: u32,
    /// Deterministic payload; `None` for failed jobs.
    pub payload: Option<String>,
    /// Summary counts contributed by this job (empty for failed jobs).
    pub counts: Vec<u64>,
    /// Failure detail (panic message, error text) — diagnostic only,
    /// never part of the deterministic aggregate.
    pub detail: Option<String>,
    /// Wall-clock microseconds spent (all attempts) — diagnostic only.
    pub elapsed_us: u64,
}
