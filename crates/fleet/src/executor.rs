//! The work-stealing executor: N workers, panic isolation, deadlines,
//! seed-stable retry.
//!
//! Robustness model:
//! - **Panic isolation** — each attempt runs under
//!   [`std::panic::catch_unwind`]; a poisoned session is classified
//!   [`JobStatus::Crashed`] and the worker thread survives to take the
//!   next job.
//! - **Deadlines** — a reaper thread watches every in-flight attempt and
//!   raises its [`StopFlag`] past the per-job deadline; the session's
//!   run loop exits at the next step boundary and the job is classified
//!   [`JobStatus::Hang`], whatever it returned.
//! - **Retry** — [`JobError::Transient`] failures back off and re-run,
//!   bounded by [`FleetConfig::max_retries`]; the backoff is derived
//!   from `(retry_seed, job_id, attempt)` so a re-run fleet makes the
//!   same scheduling decisions.
//!
//! Determinism model: results carry only deterministic payloads (plus
//! diagnostic fields excluded from aggregates), are keyed by job id, and
//! are returned sorted by job id — so worker count and interleaving
//! never reach the output.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use vpdift_obs::{InsnCell, StopFlag};

use crate::job::{Job, JobCtx, JobError, JobResult, JobStatus};
use crate::journal::Journal;
use crate::telemetry::{TelemetryHub, WorkerStats};

/// Executor tuning.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-attempt wall-clock deadline; `None` disables the reaper.
    pub deadline: Option<Duration>,
    /// Retries allowed per job for transient errors (0 = fail fast).
    pub max_retries: u32,
    /// Seed for the deterministic retry backoff schedule.
    pub retry_seed: u64,
    /// Telemetry hub fed by the workers; `None` (the default) costs one
    /// null-pointer check per job (compile-asserted in
    /// [`crate::telemetry`]), nothing per instruction.
    pub telemetry: Option<Arc<TelemetryHub>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 1,
            deadline: None,
            max_retries: 2,
            retry_seed: 0xF1EE_7000,
            telemetry: None,
        }
    }
}

/// Deterministic backoff for `attempt` of `job_id`: exponential base
/// doubling from 1ms, plus a seed-stable jitter in [0, 1ms). Capped at
/// 50ms so an exhausted-retry job cannot stall a worker for long.
pub fn retry_backoff(retry_seed: u64, job_id: u64, attempt: u32) -> Duration {
    let base_ms = 1u64 << attempt.min(5);
    let jitter_us = splitmix64(retry_seed ^ job_id.rotate_left(17) ^ attempt as u64) % 1000;
    Duration::from_micros((base_ms * 1000 + jitter_us).min(50_000))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Attempt state: the worker's closure is still running.
const ATTEMPT_RUNNING: u8 = 0;
/// Attempt state: the closure returned before any deadline kill.
const ATTEMPT_FINISHED: u8 = 1;
/// Attempt state: the reaper killed the attempt past its deadline.
const ATTEMPT_KILLED: u8 = 2;

/// One in-flight attempt, as watched by the reaper.
///
/// `state` is the race arbiter between the worker (RUNNING → FINISHED
/// when the closure returns) and the reaper (RUNNING → KILLED past the
/// deadline). Both transitions are compare-exchanges from RUNNING, so
/// exactly one side wins: a job whose closure returned just under the
/// deadline commits FINISHED first and can never be classified `Hang`,
/// however late the worker is descheduled afterwards.
struct ActiveAttempt {
    started: Instant,
    stop: StopFlag,
    state: Arc<AtomicU8>,
}

/// Shared mutable executor state.
struct FleetShared {
    /// Per-worker job deques: owners pop the front, thieves steal the
    /// back.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs not yet terminally resolved (drives worker shutdown).
    remaining: AtomicUsize,
    /// In-flight attempts keyed by slot (one per worker).
    active: Vec<Mutex<Option<ActiveAttempt>>>,
    /// Raised when all jobs are resolved; stops the reaper.
    done: AtomicBool,
}

/// The fleet executor. See the module docs for the robustness model.
pub struct Fleet {
    config: FleetConfig,
}

impl Fleet {
    /// An executor with `config`.
    pub fn new(config: FleetConfig) -> Fleet {
        Fleet { config }
    }

    /// Runs `jobs` to completion and returns their results sorted by
    /// job id. When `journal` is given, every result is appended (and
    /// fsync'd per batch) as it arrives, so a killed process can
    /// [`resume`](crate::journal::Journal::open_resume) later.
    ///
    /// `skip` lists job ids already resolved (from a resumed journal);
    /// those jobs are not re-run and are *not* in the returned vector —
    /// merge with the journaled results for the full picture.
    pub fn run(
        &self,
        jobs: Vec<Job>,
        journal: Option<&mut Journal>,
        skip: &[u64],
    ) -> Vec<JobResult> {
        let workers = self.config.workers.max(1);
        let jobs: Vec<Job> = jobs.into_iter().filter(|j| !skip.contains(&j.id)).collect();
        let total = jobs.len();
        if let Some(hub) = &self.config.telemetry {
            hub.set_total(total as u64);
        }

        let mut deques: Vec<Mutex<VecDeque<Job>>> = Vec::new();
        for _ in 0..workers {
            deques.push(Mutex::new(VecDeque::new()));
        }
        // Round-robin initial distribution; stealing evens out skew.
        for (i, job) in jobs.into_iter().enumerate() {
            deques[i % workers].lock().unwrap().push_back(job);
        }

        let shared = Arc::new(FleetShared {
            deques,
            remaining: AtomicUsize::new(total),
            active: (0..workers).map(|_| Mutex::new(None)).collect(),
            done: AtomicBool::new(total == 0),
        });

        let (tx, rx) = mpsc::channel::<JobResult>();
        let mut results: Vec<JobResult> = Vec::with_capacity(total);

        std::thread::scope(|scope| {
            // Deadline reaper: polls in-flight attempts, raises stop
            // flags past the deadline. Cheap (a few compares every 2ms)
            // and only spawned when a deadline is configured.
            if let Some(deadline) = self.config.deadline {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    while !shared.done.load(Ordering::Acquire) {
                        for slot in &shared.active {
                            let guard = slot.lock().unwrap();
                            if let Some(a) = guard.as_ref() {
                                if a.started.elapsed() >= deadline
                                    && a.state
                                        .compare_exchange(
                                            ATTEMPT_RUNNING,
                                            ATTEMPT_KILLED,
                                            Ordering::AcqRel,
                                            Ordering::Acquire,
                                        )
                                        .is_ok()
                                {
                                    a.stop.request();
                                }
                            }
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                });
            }

            for w in 0..workers {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                let config = self.config.clone();
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{w}"))
                    .spawn_scoped(scope, move || worker_loop(w, &shared, &config, &tx))
                    .expect("worker thread spawns");
            }
            drop(tx);

            // The driver thread is the journal writer: drain results as
            // they arrive, append, fsync once per drained batch.
            let mut journal = journal;
            while let Ok(first) = rx.recv() {
                let mut batch = vec![first];
                while let Ok(more) = rx.try_recv() {
                    batch.push(more);
                }
                if let Some(j) = journal.as_deref_mut() {
                    for r in &batch {
                        j.append(r).expect("journal append");
                    }
                    j.sync().expect("journal fsync");
                }
                results.extend(batch);
            }
        });

        if let Some(hub) = &self.config.telemetry {
            hub.mark_done();
        }
        results.sort_by_key(|r| r.job_id);
        results
    }
}

/// Finds work for worker `w`: its own front, then other deques' backs.
/// The boolean is `true` when the job was stolen from a victim deque.
fn find_job(w: usize, shared: &FleetShared) -> Option<(Job, bool)> {
    if let Some(job) = shared.deques[w].lock().unwrap().pop_front() {
        return Some((job, false));
    }
    let n = shared.deques.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(job) = shared.deques[victim].lock().unwrap().pop_back() {
            return Some((job, true));
        }
    }
    None
}

fn worker_loop(w: usize, shared: &FleetShared, config: &FleetConfig, tx: &mpsc::Sender<JobResult>) {
    // One null check per fleet: with telemetry off `stats` is `None` and
    // every telemetry site below is a skipped branch at job granularity.
    let stats: Option<&WorkerStats> = config.telemetry.as_deref().map(|hub| hub.worker(w));
    // Jobs receive a live insn cell either way; without telemetry it is
    // a per-worker dummy nobody reads.
    let insn_cell = stats.map(WorkerStats::insn_cell).unwrap_or_default();
    loop {
        if shared.remaining.load(Ordering::Acquire) == 0 {
            shared.done.store(true, Ordering::Release);
            return;
        }
        let Some((job, stolen)) = find_job(w, shared) else {
            // All deques empty but jobs still in flight elsewhere (or a
            // racing steal): idle briefly and re-check.
            let parked = Instant::now();
            std::thread::sleep(Duration::from_micros(100));
            if let Some(s) = stats {
                s.on_idle(parked.elapsed());
            }
            continue;
        };
        if let Some(s) = stats {
            if stolen {
                s.on_steal();
            }
            s.on_queue_depth(shared.deques[w].lock().unwrap().len() as u64);
            s.on_job_start();
        }
        let busy = Instant::now();
        let (result, insns) = run_job(w, &job, shared, config, &insn_cell);
        if let Some(s) = stats {
            s.on_job_done(result.status, result.attempts, busy.elapsed(), insns);
        }
        shared.remaining.fetch_sub(1, Ordering::AcqRel);
        if shared.remaining.load(Ordering::Acquire) == 0 {
            shared.done.store(true, Ordering::Release);
        }
        // The receiver outlives the workers inside `scope`; a send error
        // means the driver is gone, so there is nobody to report to.
        let _ = tx.send(result);
    }
}

/// Runs one job to a terminal status: attempts, retries, panic capture,
/// deadline classification. The second return value is the job's
/// completion-reported instruction count ([`JobOutput::insns`](crate::job::JobOutput);
/// 0 for failed jobs and for jobs that report live through the cell).
fn run_job(
    w: usize,
    job: &Job,
    shared: &FleetShared,
    config: &FleetConfig,
    insn_cell: &InsnCell,
) -> (JobResult, u64) {
    let started = Instant::now();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let stop = StopFlag::new();
        let state = Arc::new(AtomicU8::new(ATTEMPT_RUNNING));
        let ctx = JobCtx { job_id: job.id, attempt, stop: stop.clone(), insns: insn_cell.clone() };

        *shared.active[w].lock().unwrap() = Some(ActiveAttempt {
            started: Instant::now(),
            stop: stop.clone(),
            state: Arc::clone(&state),
        });
        let outcome = catch_unwind(AssertUnwindSafe(|| (job.work)(&ctx)));
        // Claim completion BEFORE clearing the slot: if this CAS wins,
        // the reaper can no longer kill the attempt, so a job that
        // returned under the deadline keeps its real verdict even if
        // this thread is descheduled right here.
        let killed = state
            .compare_exchange(
                ATTEMPT_RUNNING,
                ATTEMPT_FINISHED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err();
        *shared.active[w].lock().unwrap() = None;

        let elapsed_us = started.elapsed().as_micros() as u64;
        // The attempt only carries the Hang verdict when the reaper won
        // the state race: its output past a kill is a partial artifact,
        // not a result.
        if killed {
            return (
                JobResult {
                    job_id: job.id,
                    status: JobStatus::Hang,
                    attempts: attempt,
                    payload: None,
                    counts: Vec::new(),
                    detail: Some("deadline exceeded".into()),
                    elapsed_us,
                },
                0,
            );
        }

        match outcome {
            Ok(Ok(output)) => {
                return (
                    JobResult {
                        job_id: job.id,
                        status: JobStatus::Ok,
                        attempts: attempt,
                        payload: Some(output.payload),
                        counts: output.counts,
                        detail: None,
                        elapsed_us,
                    },
                    output.insns,
                )
            }
            Ok(Err(JobError::Transient(msg))) if attempt <= config.max_retries => {
                std::thread::sleep(retry_backoff(config.retry_seed, job.id, attempt));
                let _ = msg;
                continue;
            }
            Ok(Err(err)) => {
                let (kind, msg) = match err {
                    JobError::Transient(m) => ("transient (retries exhausted)", m),
                    JobError::Fatal(m) => ("fatal", m),
                };
                return (
                    JobResult {
                        job_id: job.id,
                        status: JobStatus::Error,
                        attempts: attempt,
                        payload: None,
                        counts: Vec::new(),
                        detail: Some(format!("{kind}: {msg}")),
                        elapsed_us,
                    },
                    0,
                );
            }
            Err(panic_payload) => {
                let msg = panic_message(panic_payload.as_ref());
                return (
                    JobResult {
                        job_id: job.id,
                        status: JobStatus::Crashed,
                        attempts: attempt,
                        payload: None,
                        counts: Vec::new(),
                        detail: Some(msg),
                        elapsed_us,
                    },
                    0,
                );
            }
        }
    }
}

/// Best-effort panic payload extraction.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Installs a process-wide panic hook that silences default panic output
/// from fleet worker threads (injected-panic jobs would otherwise spam
/// stderr with backtraces), delegating every other thread's panics to
/// the previous hook. Idempotent; call before running fleets whose jobs
/// are expected to crash.
pub fn quiet_worker_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_worker =
                std::thread::current().name().is_some_and(|n| n.starts_with("fleet-worker-"));
            if !in_worker {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOutput;

    fn ok_job(id: u64) -> Job {
        Job::new(id, move |ctx| {
            Ok(JobOutput {
                payload: format!("{{\"job\":{}}}", ctx.job_id),
                counts: vec![1],
                insns: 0,
            })
        })
    }

    #[test]
    fn runs_all_jobs_and_sorts_by_id() {
        let fleet = Fleet::new(FleetConfig { workers: 4, ..FleetConfig::default() });
        let jobs: Vec<Job> = (0..32).map(ok_job).collect();
        let results = fleet.run(jobs, None, &[]);
        assert_eq!(results.len(), 32);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.job_id, i as u64);
            assert_eq!(r.status, JobStatus::Ok);
            assert_eq!(r.payload.as_deref(), Some(format!("{{\"job\":{i}}}").as_str()));
        }
    }

    #[test]
    fn panic_is_isolated_to_one_job() {
        quiet_worker_panics();
        let fleet = Fleet::new(FleetConfig { workers: 2, ..FleetConfig::default() });
        let mut jobs: Vec<Job> = (0..8).map(ok_job).collect();
        jobs[3] = Job::new(3, |_| panic!("injected panic"));
        let results = fleet.run(jobs, None, &[]);
        assert_eq!(results.len(), 8);
        assert_eq!(results[3].status, JobStatus::Crashed);
        assert_eq!(results[3].detail.as_deref(), Some("injected panic"));
        for r in results.iter().filter(|r| r.job_id != 3) {
            assert_eq!(r.status, JobStatus::Ok, "job {} survived the crash", r.job_id);
        }
    }

    #[test]
    fn deadline_kills_a_wedged_job() {
        let fleet = Fleet::new(FleetConfig {
            workers: 2,
            deadline: Some(Duration::from_millis(30)),
            ..FleetConfig::default()
        });
        let mut jobs: Vec<Job> = (0..4).map(ok_job).collect();
        jobs[1] = Job::new(1, |ctx| {
            // A cooperative spin: checks the stop flag like Soc::run does.
            while !ctx.stop.is_requested() {
                std::hint::spin_loop();
            }
            Ok(JobOutput { payload: "{\"late\":true}".into(), counts: vec![1], insns: 0 })
        });
        let results = fleet.run(jobs, None, &[]);
        assert_eq!(results[1].status, JobStatus::Hang);
        assert!(results[1].payload.is_none(), "killed output is discarded");
        for r in results.iter().filter(|r| r.job_id != 1) {
            assert_eq!(r.status, JobStatus::Ok);
        }
    }

    #[test]
    fn finished_attempt_wins_the_kill_race() {
        // The worker commits FINISHED the moment the closure returns; a
        // reaper firing afterwards (even with elapsed >= deadline and
        // the slot still occupied) must lose the CAS and change nothing.
        let state = AtomicU8::new(ATTEMPT_RUNNING);
        assert!(state
            .compare_exchange(
                ATTEMPT_RUNNING,
                ATTEMPT_FINISHED,
                Ordering::AcqRel,
                Ordering::Acquire
            )
            .is_ok());
        assert!(
            state
                .compare_exchange(
                    ATTEMPT_RUNNING,
                    ATTEMPT_KILLED,
                    Ordering::AcqRel,
                    Ordering::Acquire
                )
                .is_err(),
            "reaper must not reclassify a completed attempt"
        );

        // Reverse order: the reaper killed first, so the worker's
        // completion CAS fails and the attempt is classified Hang.
        let state = AtomicU8::new(ATTEMPT_RUNNING);
        assert!(state
            .compare_exchange(ATTEMPT_RUNNING, ATTEMPT_KILLED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok());
        assert!(state
            .compare_exchange(
                ATTEMPT_RUNNING,
                ATTEMPT_FINISHED,
                Ordering::AcqRel,
                Ordering::Acquire
            )
            .is_err());
    }

    #[test]
    fn fast_jobs_never_classified_hang_under_tight_deadline() {
        // Jobs that return well under the deadline must keep their Ok
        // verdict regardless of reaper timing or worker descheduling.
        let fleet = Fleet::new(FleetConfig {
            workers: 4,
            deadline: Some(Duration::from_millis(200)),
            ..FleetConfig::default()
        });
        let results = fleet.run((0..64).map(ok_job).collect(), None, &[]);
        for r in &results {
            assert_eq!(r.status, JobStatus::Ok, "job {} misclassified", r.job_id);
        }
    }

    #[test]
    fn transient_errors_retry_to_success() {
        use std::sync::atomic::AtomicU32;
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let fleet = Fleet::new(FleetConfig { workers: 1, max_retries: 3, ..Default::default() });
        let job = Job::new(0, move |ctx| {
            t.fetch_add(1, Ordering::Relaxed);
            if ctx.attempt < 3 {
                Err(JobError::Transient("flaky host".into()))
            } else {
                Ok(JobOutput { payload: "{}".into(), counts: vec![], insns: 0 })
            }
        });
        let results = fleet.run(vec![job], None, &[]);
        assert_eq!(results[0].status, JobStatus::Ok);
        assert_eq!(results[0].attempts, 3);
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn exhausted_retries_classify_as_error() {
        let fleet = Fleet::new(FleetConfig { workers: 1, max_retries: 1, ..Default::default() });
        let job = Job::new(0, |_| Err(JobError::Transient("always down".into())));
        let results = fleet.run(vec![job], None, &[]);
        assert_eq!(results[0].status, JobStatus::Error);
        assert_eq!(results[0].attempts, 2, "initial try + one retry");
    }

    #[test]
    fn backoff_is_seed_stable() {
        for attempt in 1..5 {
            assert_eq!(
                retry_backoff(42, 7, attempt),
                retry_backoff(42, 7, attempt),
                "same inputs, same backoff"
            );
        }
        assert_ne!(retry_backoff(42, 7, 1), retry_backoff(43, 7, 1), "seed matters");
    }

    #[test]
    fn skip_list_prevents_reruns() {
        let fleet = Fleet::new(FleetConfig { workers: 2, ..Default::default() });
        let jobs: Vec<Job> = (0..6).map(ok_job).collect();
        let results = fleet.run(jobs, None, &[1, 4]);
        let ids: Vec<u64> = results.iter().map(|r| r.job_id).collect();
        assert_eq!(ids, vec![0, 2, 3, 5]);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let jobs = || -> Vec<Job> { (0..24).map(ok_job).collect() };
        let one =
            Fleet::new(FleetConfig { workers: 1, ..Default::default() }).run(jobs(), None, &[]);
        let four =
            Fleet::new(FleetConfig { workers: 4, ..Default::default() }).run(jobs(), None, &[]);
        let flat = |rs: &[JobResult]| -> Vec<(u64, &'static str, Option<String>)> {
            rs.iter().map(|r| (r.job_id, r.status.label(), r.payload.clone())).collect()
        };
        assert_eq!(flat(&one), flat(&four));
    }
}
