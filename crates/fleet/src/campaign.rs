//! Parallel fault campaigns: the serial `run_campaign` fan-out.
//!
//! The campaign prelude (directed demonstrations, fault-free references)
//! runs once on the driver thread, exactly as the serial runner does;
//! every seeded run then becomes one fleet job whose payload is the
//! *rendered JSON fragment* the serial report emits for that run. The
//! aggregate reassembles fragments in run order, so the output is
//! byte-identical to [`vpdift_faults::render_json`] on a serial
//! [`vpdift_faults::run_campaign`] — regardless of worker count,
//! stealing, or interleaving.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use vpdift_faults::campaign::ReferenceInfo;
use vpdift_faults::{
    campaign_prelude, random_run, run_json, scenario_json, CampaignConfig, CampaignPrelude, Outcome,
};

use crate::executor::{Fleet, FleetConfig};
use crate::job::{Job, JobOutput, JobResult, JobStatus};
use crate::journal::{Journal, JournalHeader};

/// A finished parallel campaign.
#[derive(Debug)]
pub struct FleetCampaign {
    /// The deterministic report JSON (byte-identical to the serial
    /// renderer when every job completed).
    pub json: String,
    /// Jobs that did not complete (`crashed` / `hang` / `error`), by
    /// (job id, status label).
    pub failures: Vec<(u64, &'static str)>,
    /// Jobs resumed from the journal rather than re-run.
    pub resumed: usize,
    /// Fault-free reference facts (for bench trajectories).
    pub references: Vec<ReferenceInfo>,
    /// Outcome totals across directed + completed runs, indexed by
    /// [`Outcome::index`].
    pub summary: Vec<u64>,
}

impl FleetCampaign {
    /// Counts classifications of `outcome` for `scenario` by scanning
    /// the rendered report — the fleet keeps results as journal-ready
    /// strings, and the fragments are this crate's own deterministic
    /// renderer output, so a substring scan is exact.
    pub fn scenario_outcome_count(&self, scenario: &str, outcome: &str) -> u64 {
        count_scenario_outcome(&self.json, scenario, outcome)
    }
}

/// Counts scenario objects in `json` (rendered by
/// [`vpdift_faults::scenario_json`]) naming `scenario` with `outcome`.
pub fn count_scenario_outcome(json: &str, scenario: &str, outcome: &str) -> u64 {
    let open = format!("{{\"scenario\":\"{scenario}\",");
    let want = format!("\"outcome\":\"{outcome}\"");
    let mut count = 0u64;
    let mut rest = json;
    while let Some(at) = rest.find(&open) {
        rest = &rest[at + open.len()..];
        // The outcome key sits inside this scenario object, before its
        // faults array (fixed field order from the renderer).
        let end = rest.find("\"faults\":").unwrap_or(rest.len());
        if rest[..end].contains(&want) {
            count += 1;
        }
    }
    count
}

/// Runs `config` as a parallel campaign on `fleet_config.workers`
/// workers. With `journal_path`, results stream into a crash-safe
/// journal; `resume` recovers previously completed jobs from it instead
/// of re-running them.
pub fn run_campaign_fleet(
    config: &CampaignConfig,
    fleet_config: &FleetConfig,
    journal_path: Option<&Path>,
    resume: bool,
) -> std::io::Result<FleetCampaign> {
    let prelude = campaign_prelude(config);
    let prelude = Arc::new(prelude);
    let campaign = *config;

    let jobs: Vec<Job> = (0..config.runs)
        .map(|i| {
            let prelude = Arc::clone(&prelude);
            Job::new(u64::from(i), move |_ctx| {
                let run = random_run(&prelude.refs, &campaign, i);
                let mut counts = vec![0u64; Outcome::COUNT];
                for s in &run.results {
                    counts[s.outcome.index()] += 1;
                }
                Ok(JobOutput { payload: run_json(&run), counts, insns: run.steps })
            })
        })
        .collect();

    let header = JournalHeader {
        suite: "faultcamp".into(),
        jobs: u64::from(config.runs),
        seed: config.seed,
    };
    let (mut journal, recovered) = match (journal_path, resume) {
        (Some(path), true) => {
            let (j, recovered) = Journal::open_resume(path, &header)?;
            (Some(j), recovered)
        }
        (Some(path), false) => (Some(Journal::create(path, &header)?), Vec::new()),
        (None, _) => (None, Vec::new()),
    };

    let skip: Vec<u64> = recovered.iter().map(|r| r.job_id).collect();
    let resumed = skip.len();
    if let Some(hub) = &fleet_config.telemetry {
        hub.add_resumed(resumed as u64);
    }
    let fresh = Fleet::new(fleet_config.clone()).run(jobs, journal.as_mut(), &skip);

    let mut results = recovered;
    results.extend(fresh);
    results.sort_by_key(|r| r.job_id);

    Ok(assemble(&prelude, config, &results, resumed))
}

/// Reassembles the deterministic report from the prelude and per-run
/// results. Failed runs are rendered as explicit `"failed"` rows (they
/// cost exactly one classified result each — never the campaign).
fn assemble(
    prelude: &CampaignPrelude,
    config: &CampaignConfig,
    results: &[JobResult],
    resumed: usize,
) -> FleetCampaign {
    let mut summary = vec![0u64; Outcome::COUNT];
    for s in &prelude.directed {
        summary[s.outcome.index()] += 1;
    }
    let mut failures = Vec::new();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"campaign\": {{\"seed\": {}, \"runs\": {}, \"rate\": {}}},",
        config.seed, config.runs, config.rate
    );
    out.push_str("  \"references\": [\n");
    for (i, r) in prelude.references.iter().enumerate() {
        let comma = if i + 1 < prelude.references.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scenario\":\"{}\",\"exit\":\"{}\",\"steps\":{}}}{comma}",
            r.scenario, r.exit, r.steps
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"directed\": [\n");
    for (i, s) in prelude.directed.iter().enumerate() {
        let comma = if i + 1 < prelude.directed.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", scenario_json(s));
    }
    out.push_str("  ],\n");

    out.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        match (&r.status, &r.payload) {
            (JobStatus::Ok, Some(payload)) => {
                for (slot, n) in r.counts.iter().enumerate() {
                    if let Some(cell) = summary.get_mut(slot) {
                        *cell += n;
                    }
                }
                let _ = writeln!(out, "    {payload}{comma}");
            }
            _ => {
                failures.push((r.job_id, r.status.label()));
                let _ = writeln!(
                    out,
                    "    {{\"run\":{},\"failed\":\"{}\"}}{comma}",
                    r.job_id,
                    r.status.label()
                );
            }
        }
    }
    out.push_str("  ],\n");

    let rendered: Vec<String> =
        Outcome::ALL.iter().map(|o| format!("\"{}\": {}", o.label(), summary[o.index()])).collect();
    let _ = writeln!(out, "  \"summary\": {{{}}}", rendered.join(", "));
    out.push_str("}\n");

    FleetCampaign { json: out, failures, resumed, references: prelude.references.clone(), summary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_faults::{render_json, run_campaign};

    #[test]
    fn parallel_campaign_is_byte_identical_to_serial() {
        let config = CampaignConfig { seed: 0xFEED, runs: 6, rate: 5e-5 };
        let serial = render_json(&run_campaign(&config));
        for workers in [1, 4] {
            let fleet_config = FleetConfig { workers, ..FleetConfig::default() };
            let fleet = run_campaign_fleet(&config, &fleet_config, None, false).unwrap();
            assert!(fleet.failures.is_empty());
            assert_eq!(
                fleet.json, serial,
                "{workers}-worker campaign must render the serial bytes"
            );
        }
    }
}
