//! `vpdift-fleet` — a fault-tolerant, work-stealing executor for
//! parallel VP session fleets.
//!
//! The campaign, attack-sweep and brute-force runners all execute seeded
//! sessions that are independent by construction; this crate runs them
//! in parallel without giving up the workspace's reproducibility
//! guarantee. Each [`Job`](job::Job) is a re-runnable closure producing
//! a deterministic JSON payload; the executor adds the robustness the
//! runners cannot provide for themselves:
//!
//! - panic isolation (`catch_unwind`): a poisoned session is classified
//!   `crashed`, never fatal to the fleet;
//! - per-job wall-clock deadlines, enforced through the session's
//!   [`StopFlag`](vpdift_obs::StopFlag) and classified `hang`;
//! - bounded, seed-stable retry for transient host faults;
//! - a crash-safe `taintvp-fleet/v1` JSONL journal with torn-tail
//!   tolerant resume.
//!
//! Aggregates are keyed by job id and carry only deterministic fields,
//! so output is byte-identical across worker counts — the property the
//! CI `fleet-campaign` gate pins.
//!
//! See `docs/FLEET.md` for the job spec, journal format and failure
//! taxonomy.

pub mod campaign;
pub mod executor;
pub mod job;
pub mod journal;
pub mod telemetry;

pub use campaign::{run_campaign_fleet, FleetCampaign};
pub use executor::{quiet_worker_panics, retry_backoff, Fleet, FleetConfig};
pub use job::{Job, JobCtx, JobError, JobFn, JobOutput, JobResult, JobStatus};
pub use journal::{parse_record, render_record, Journal, JournalHeader, FORMAT};
pub use telemetry::{
    spawn_sampler, SamplerConfig, SamplerHandle, TelemSnapshot, TelemetryHub, WorkerSnap,
    WorkerStats, TELEM_FORMAT,
};
