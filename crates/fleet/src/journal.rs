//! The crash-safe results journal: `taintvp-fleet/v1` JSONL.
//!
//! Line 1 is the header (format tag, suite name, job count, seed); every
//! following line is one terminal [`JobResult`]. Appends are fsync'd per
//! batch by the executor, so after SIGKILL the file holds every result
//! reported before the last sync plus at most one torn line. Resume
//! ([`Journal::open_resume`]) tolerates that torn tail — it parses what
//! it can, verifies the header matches the campaign being resumed, and
//! hands back the completed results so the executor can skip them.
//!
//! Records are written by this module and parsed by this module, so the
//! parser leans on the writer's fixed field order (`job`, `status`,
//! `attempts`, `elapsed_us`, `counts`, `detail`, `payload` — payload
//! last, because it is itself JSON and runs to the record's final
//! brace). It is *not* a general JSON parser and does not need one.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use crate::job::{JobResult, JobStatus};

/// The format tag every journal opens with.
pub const FORMAT: &str = "taintvp-fleet/v1";

/// Campaign identity, pinned in the header line and re-verified on
/// resume so a journal can never splice results from a different sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Suite name (e.g. `faultcamp`, `immo-fleet`).
    pub suite: String,
    /// Total jobs in the campaign.
    pub jobs: u64,
    /// Master seed.
    pub seed: u64,
}

impl JournalHeader {
    fn render(&self) -> String {
        format!(
            "{{\"format\":\"{FORMAT}\",\"suite\":\"{}\",\"jobs\":{},\"seed\":{}}}",
            escape(&self.suite),
            self.jobs,
            self.seed
        )
    }

    fn parse(line: &str) -> Option<JournalHeader> {
        let format: String = extract_str(line, "format")?;
        if format != FORMAT {
            return None;
        }
        Some(JournalHeader {
            suite: extract_str(line, "suite")?,
            jobs: extract_u64(line, "jobs")?,
            seed: extract_u64(line, "seed")?,
        })
    }
}

/// Renders one result as its journal line (no trailing newline).
pub fn render_record(r: &JobResult) -> String {
    let detail = match &r.detail {
        Some(d) => format!("\"{}\"", escape(d)),
        None => "null".to_string(),
    };
    let counts: Vec<String> = r.counts.iter().map(u64::to_string).collect();
    let payload = r.payload.as_deref().unwrap_or("null");
    format!(
        "{{\"job\":{},\"status\":\"{}\",\"attempts\":{},\"elapsed_us\":{},\"counts\":[{}],\"detail\":{},\"payload\":{}}}",
        r.job_id,
        r.status.label(),
        r.attempts,
        r.elapsed_us,
        counts.join(","),
        detail,
        payload,
    )
}

/// `true` iff `line` is one structurally complete JSON object: tracking
/// string/escape state and `{}`/`[]` depth, the outermost brace must
/// close exactly at the final byte. Any proper prefix of a record leaves
/// the outer brace open (or ends mid-string), so a torn tail that
/// happens to stop at an *internal* `}` — e.g. the end of a nested
/// payload object — is rejected rather than mistaken for a full record.
fn record_is_complete(line: &str) -> bool {
    let bytes = line.as_bytes();
    if bytes.first() != Some(&b'{') {
        return false;
    }
    let mut depth = 0usize;
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            match b {
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                    if depth == 0 {
                        // Outer object closed: complete only if this is
                        // the last byte.
                        return i == bytes.len() - 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    false
}

/// Parses one journal record line; `None` for torn or foreign lines.
pub fn parse_record(line: &str) -> Option<JobResult> {
    let line = line.trim_end();
    if !line.starts_with("{\"job\":") || !record_is_complete(line) {
        return None;
    }
    let job_id = extract_u64(line, "job")?;
    let status = JobStatus::parse(&extract_str(line, "status")?)?;
    let attempts = extract_u64(line, "attempts")? as u32;
    let elapsed_us = extract_u64(line, "elapsed_us")?;
    let counts = extract_u64_array(line, "counts")?;
    let detail = match find_value(line, "detail")? {
        v if v.starts_with("null") => None,
        v if v.starts_with('"') => Some(unescape(&v[1..v.find_unescaped_quote()?])),
        _ => return None,
    };
    let payload_start = line.find("\"payload\":")? + "\"payload\":".len();
    // The payload is the last field and is raw JSON: it runs to the
    // record's closing brace.
    let payload_raw = &line[payload_start..line.len() - 1];
    let payload = if payload_raw == "null" { None } else { Some(payload_raw.to_string()) };
    Some(JobResult { job_id, status, attempts, payload, counts, detail, elapsed_us })
}

trait FindUnescapedQuote {
    fn find_unescaped_quote(&self) -> Option<usize>;
}

impl FindUnescapedQuote for str {
    /// Index of the closing quote of a string value that starts at
    /// byte 0 with the opening quote.
    fn find_unescaped_quote(&self) -> Option<usize> {
        let bytes = self.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return Some(i),
                _ => i += 1,
            }
        }
        None
    }
}

fn find_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    Some(&line[at..])
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let v = find_value(line, key)?;
    let digits: String = v.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let v = find_value(line, key)?;
    if !v.starts_with('"') {
        return None;
    }
    Some(unescape(&v[1..v.find_unescaped_quote()?]))
}

fn extract_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let v = find_value(line, key)?;
    let inner = v.strip_prefix('[')?;
    let end = inner.find(']')?;
    let inner = &inner[..end];
    if inner.trim().is_empty() {
        return Some(Vec::new());
    }
    inner.split(',').map(|n| n.trim().parse().ok()).collect()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// An append handle on a journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Creates (truncating) a fresh journal with `header`, fsync'd
    /// before returning so the campaign identity survives any crash.
    pub fn create(path: &Path, header: &JournalHeader) -> io::Result<Journal> {
        let mut file = File::create(path)?;
        writeln!(file, "{}", header.render())?;
        file.sync_data()?;
        Ok(Journal { file })
    }

    /// Opens an existing journal for resume: verifies the header matches
    /// `expect`, parses every intact record (tolerating a torn tail
    /// line, which is truncated away so appends restart on a clean
    /// record boundary), and returns the append handle plus the
    /// recovered results.
    pub fn open_resume(
        path: &Path,
        expect: &JournalHeader,
    ) -> io::Result<(Journal, Vec<JobResult>)> {
        let mut lines = Vec::new();
        for line in BufReader::new(File::open(path)?).lines() {
            lines.push(line?);
        }
        let header_line = lines
            .first()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty journal"))?;
        let header = JournalHeader::parse(header_line).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "journal header is not taintvp-fleet/v1")
        })?;
        if &header != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal belongs to a different campaign: \
                     found suite={} jobs={} seed={}, expected suite={} jobs={} seed={}",
                    header.suite, header.jobs, header.seed, expect.suite, expect.jobs, expect.seed
                ),
            ));
        }

        // Byte offset past the last intact line — where appends resume.
        let mut intact_end = header_line.len() as u64 + 1;
        let mut results: Vec<JobResult> = Vec::new();
        for line in &lines[1..] {
            match parse_record(line) {
                Some(r) => {
                    intact_end += line.len() as u64 + 1;
                    // Last write wins: a rerun after a torn record may
                    // journal the same job twice.
                    results.retain(|p| p.job_id != r.job_id);
                    results.push(r);
                }
                // Torn tail from the killed writer: recover what parsed,
                // drop the fragment.
                None => break,
            }
        }
        results.sort_by_key(|r| r.job_id);

        // Truncate the torn tail (if any) so the next append starts a
        // fresh line rather than gluing onto the fragment.
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(intact_end)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((Journal { file }, results))
    }

    /// Appends one record (no sync — call [`Journal::sync`] per batch).
    pub fn append(&mut self, r: &JobResult) -> io::Result<()> {
        writeln!(self.file, "{}", render_record(r))
    }

    /// Flushes appended records to disk (fsync).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64, status: JobStatus) -> JobResult {
        JobResult {
            job_id: id,
            status,
            attempts: 1 + (id % 3) as u32,
            payload: match status {
                JobStatus::Ok => Some(format!("{{\"run\":{id},\"results\":[1,2]}}")),
                _ => None,
            },
            counts: vec![id, 0, 7],
            detail: match status {
                JobStatus::Ok => None,
                _ => Some("thread panicked: \"index 3\"\nbacktrace".to_string()),
            },
            elapsed_us: 1234,
        }
    }

    #[test]
    fn record_round_trips() {
        for status in [JobStatus::Ok, JobStatus::Crashed, JobStatus::Hang, JobStatus::Error] {
            let r = sample(5, status);
            let line = render_record(&r);
            let back = parse_record(&line).expect("parses");
            assert_eq!(back.job_id, r.job_id);
            assert_eq!(back.status, r.status);
            assert_eq!(back.attempts, r.attempts);
            assert_eq!(back.payload, r.payload);
            assert_eq!(back.counts, r.counts);
            assert_eq!(back.detail, r.detail);
            assert_eq!(back.elapsed_us, r.elapsed_us);
        }
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let dir = std::env::temp_dir().join(format!("fleet-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let header = JournalHeader { suite: "t".into(), jobs: 4, seed: 9 };
        {
            let mut j = Journal::create(&path, &header).unwrap();
            j.append(&sample(0, JobStatus::Ok)).unwrap();
            j.append(&sample(1, JobStatus::Crashed)).unwrap();
            j.sync().unwrap();
        }
        // Simulate a SIGKILL mid-append: half a record, no newline.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"job\":2,\"status\":\"ok\",\"atte").unwrap();
        }
        let (_j, recovered) = Journal::open_resume(&path, &header).unwrap();
        let ids: Vec<u64> = recovered.iter().map(|r| r.job_id).collect();
        assert_eq!(ids, vec![0, 1], "intact records recovered, torn tail dropped");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_at_internal_brace_is_rejected() {
        // The adversarial tear: a record with a nested JSON payload cut
        // exactly after the payload's own closing brace. The line ends
        // in '}' but the record's outer brace is still open — it must
        // parse as torn, not as a completed job with a truncated payload.
        let full = render_record(&sample(2, JobStatus::Ok));
        let inner_end = full.rfind("]}").expect("payload array close") + "]}".len();
        let torn = &full[..inner_end];
        assert!(torn.ends_with('}'), "tear lands on an internal brace");
        assert!(parse_record(torn).is_none(), "torn-at-internal-brace accepted: {torn}");
        assert!(parse_record(&full).is_some(), "intact record still parses");

        // And end-to-end: resume over such a tail recovers only the
        // intact records.
        let dir = std::env::temp_dir().join(format!("fleet-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn-brace.jsonl");
        let header = JournalHeader { suite: "t".into(), jobs: 4, seed: 9 };
        {
            let mut j = Journal::create(&path, &header).unwrap();
            j.append(&sample(0, JobStatus::Ok)).unwrap();
            j.sync().unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{torn}").unwrap();
        }
        let (_j, recovered) = Journal::open_resume(&path, &header).unwrap();
        let ids: Vec<u64> = recovered.iter().map(|r| r.job_id).collect();
        assert_eq!(ids, vec![0], "truncated payload must not be spliced into the aggregate");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detail_braces_inside_strings_do_not_confuse_completeness() {
        let mut r = sample(3, JobStatus::Crashed);
        r.detail = Some("panicked at {\"depth\": [1, {2}]} mid-line".to_string());
        let line = render_record(&r);
        let back = parse_record(&line).expect("braces inside strings are opaque");
        assert_eq!(back.detail, r.detail);
    }

    #[test]
    fn header_with_quotes_in_suite_round_trips() {
        let header = JournalHeader { suite: "camp \"alpha\" \\ beta".into(), jobs: 2, seed: 1 };
        let parsed = JournalHeader::parse(&header.render()).expect("escaped header parses");
        assert_eq!(parsed, header);

        // And resume against the same header must succeed, not report a
        // foreign-format journal.
        let dir = std::env::temp_dir().join(format!("fleet-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quoted-suite.jsonl");
        Journal::create(&path, &header).unwrap();
        let (_j, recovered) = Journal::open_resume(&path, &header).unwrap();
        assert!(recovered.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_header_refuses_resume() {
        let dir = std::env::temp_dir().join(format!("fleet-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.jsonl");
        let header = JournalHeader { suite: "a".into(), jobs: 4, seed: 9 };
        Journal::create(&path, &header).unwrap();
        let other = JournalHeader { suite: "a".into(), jobs: 4, seed: 10 };
        let err = Journal::open_resume(&path, &other).unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
