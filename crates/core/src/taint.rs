//! The `Taint<T>` data type — Rust rendition of the paper's Fig. 3.
//!
//! A [`Taint<T>`] couples a value with a security [`Tag`]. Arithmetic and
//! logic operators are overloaded so that existing computations propagate
//! tags transparently: the result value is computed as usual and the result
//! tag is the `LUB` of the operand tags. Conversion to and from tagged byte
//! arrays ([`Taint::to_bytes`] / [`Taint::from_bytes`]) lets any word travel
//! through TLM transactions as `Taint<u8>` lanes, exactly as the paper
//! embeds `Taint<uint8_t>` arrays in generic payloads.
//!
//! Unlike the paper's C++ (which consults global `LUB`/`allowedFlow`
//! functions), tags here are atom bitsets, so `LUB` is context-free bitwise
//! OR — no global policy state is needed in the hot path.

use core::fmt;
use core::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Neg, Not, Rem, Shl, Shr, Sub};

use crate::error::{Violation, ViolationKind};
use crate::tag::Tag;

/// A tainted value: data of type `T` plus its security class.
///
/// ```
/// use vpdift_core::{Taint, Tag};
/// let secret = Taint::new(0x2au32, Tag::atom(0));
/// let public = Taint::untainted(1u32);
/// let sum = secret + public;
/// assert_eq!(sum.value(), 0x2b);
/// assert_eq!(sum.tag(), Tag::atom(0)); // secrecy sticks
/// assert!(sum.check_clearance(Tag::EMPTY).is_err()); // may not leave
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Taint<T> {
    value: T,
    tag: Tag,
}

impl<T> Taint<T> {
    /// Creates a tainted value with an explicit security tag.
    pub const fn new(value: T, tag: Tag) -> Self {
        Taint { value, tag }
    }

    /// Creates a fully public, trusted value (bottom tag).
    pub const fn untainted(value: T) -> Self {
        Taint { value, tag: Tag::EMPTY }
    }

    /// The stored tag.
    pub const fn tag(&self) -> Tag {
        self.tag
    }

    /// Replaces the tag in place (paper: `setTag`).
    pub fn set_tag(&mut self, tag: Tag) {
        self.tag = tag;
    }

    /// Returns the same value with `tag` LUB-ed in.
    #[must_use]
    pub fn with_tag_lub(mut self, tag: Tag) -> Self {
        self.tag = self.tag.lub(tag);
        self
    }

    /// Returns the same value re-tagged to exactly `tag` (declassification
    /// and classification sites; guard with policy checks).
    #[must_use]
    pub fn retagged(mut self, tag: Tag) -> Self {
        self.tag = tag;
        self
    }

    /// Applies `f` to the value, keeping the tag (unary data flow).
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Taint<U> {
        Taint { value: f(self.value), tag: self.tag }
    }

    /// Combines two tainted values: `f` on the data, `LUB` on the tags.
    /// This is the single propagation rule behind every overloaded operator.
    pub fn zip_with<U, V>(self, other: Taint<U>, f: impl FnOnce(T, U) -> V) -> Taint<V> {
        Taint { value: f(self.value, other.value), tag: self.tag.lub(other.tag) }
    }

    /// Checks `allowedFlow(tag, required)` and surrenders the raw value on
    /// success — the safe analogue of the paper's implicit conversion that
    /// "requires by default a low confidentiality tag".
    ///
    /// # Errors
    /// Returns a [`Violation`] (kind [`ViolationKind::Custom`]) when the tag
    /// does not flow to `required`.
    pub fn check_clearance(self, required: Tag) -> Result<T, Violation> {
        if self.tag.flows_to(required) {
            Ok(self.value)
        } else {
            Err(Violation::new(
                ViolationKind::Custom { what: "clearance check".into() },
                self.tag,
                required,
            ))
        }
    }
}

impl<T: Copy> Taint<T> {
    /// The stored value (taint is *not* checked; use
    /// [`Taint::check_clearance`] at trust boundaries).
    pub const fn value(&self) -> T {
        self.value
    }
}

impl<T> From<T> for Taint<T> {
    fn from(value: T) -> Self {
        Taint::untainted(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for Taint<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{}", self.value, self.tag)
    }
}

impl<T: fmt::Display> fmt::Display for Taint<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.value, self.tag)
    }
}

/// Fixed-width integer words that can cross the TLM boundary as tagged
/// byte lanes. Sealed: implemented for the primitive integers only.
pub trait TaintWord: Copy + private::Sealed {
    /// Width in bytes.
    const SIZE: usize;
    /// Writes the little-endian bytes of `self` into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != Self::SIZE`.
    fn write_le(self, out: &mut [u8]);
    /// Reads a value from little-endian bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() != Self::SIZE`.
    fn read_le(bytes: &[u8]) -> Self;
}

mod private {
    pub trait Sealed {}
}

macro_rules! impl_taint_word {
    ($($t:ty),*) => {$(
        impl private::Sealed for $t {}
        impl TaintWord for $t {
            const SIZE: usize = core::mem::size_of::<$t>();
            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            fn read_le(bytes: &[u8]) -> Self {
                let mut buf = [0u8; core::mem::size_of::<$t>()];
                buf.copy_from_slice(bytes);
                <$t>::from_le_bytes(buf)
            }
        }
    )*};
}

impl_taint_word!(u8, u16, u32, u64, i8, i16, i32, i64);

impl<T: TaintWord> Taint<T> {
    /// Converts to a little-endian array of tainted bytes; every byte
    /// carries this word's tag (paper Fig. 3, `to_bytes`).
    ///
    /// # Panics
    /// Panics if `out.len() != T::SIZE`.
    pub fn to_bytes(self, out: &mut [Taint<u8>]) {
        assert_eq!(out.len(), T::SIZE, "destination length must equal word size");
        let mut raw = [0u8; 8];
        self.value.write_le(&mut raw[..T::SIZE]);
        for (dst, &b) in out.iter_mut().zip(&raw[..T::SIZE]) {
            *dst = Taint::new(b, self.tag);
        }
    }

    /// Reassembles a word from tainted bytes; the word tag is the `LUB` of
    /// all byte tags (paper Fig. 3, `from_bytes`).
    ///
    /// # Panics
    /// Panics if `bytes.len() != T::SIZE`.
    pub fn from_bytes(bytes: &[Taint<u8>]) -> Self {
        assert_eq!(bytes.len(), T::SIZE, "source length must equal word size");
        let mut raw = [0u8; 8];
        let mut tag = Tag::EMPTY;
        for (dst, b) in raw[..T::SIZE].iter_mut().zip(bytes) {
            *dst = b.value;
            tag |= b.tag;
        }
        Taint::new(T::read_le(&raw[..T::SIZE]), tag)
    }
}

macro_rules! impl_bin_op {
    ($trait:ident, $method:ident, $($t:ty),*) => {$(
        impl $trait for Taint<$t> {
            type Output = Taint<$t>;
            fn $method(self, rhs: Taint<$t>) -> Taint<$t> {
                self.zip_with(rhs, <$t as $trait>::$method)
            }
        }
        impl $trait<$t> for Taint<$t> {
            type Output = Taint<$t>;
            fn $method(self, rhs: $t) -> Taint<$t> {
                self.map(|v| <$t as $trait>::$method(v, rhs))
            }
        }
    )*};
}

macro_rules! impl_all_ops {
    ($($t:ty),*) => {
        impl_bin_op!(Add, add, $($t),*);
        impl_bin_op!(Sub, sub, $($t),*);
        impl_bin_op!(Mul, mul, $($t),*);
        impl_bin_op!(Div, div, $($t),*);
        impl_bin_op!(Rem, rem, $($t),*);
        impl_bin_op!(BitAnd, bitand, $($t),*);
        impl_bin_op!(BitOr, bitor, $($t),*);
        impl_bin_op!(BitXor, bitxor, $($t),*);
        impl_bin_op!(Shl, shl, $($t),*);
        impl_bin_op!(Shr, shr, $($t),*);
        $(
            impl Not for Taint<$t> {
                type Output = Taint<$t>;
                fn not(self) -> Taint<$t> {
                    self.map(|v| !v)
                }
            }
            impl Taint<$t> {
                /// Wrapping addition with tag propagation (ISS semantics).
                #[must_use]
                pub fn wrapping_add(self, rhs: Taint<$t>) -> Taint<$t> {
                    self.zip_with(rhs, <$t>::wrapping_add)
                }
                /// Wrapping subtraction with tag propagation.
                #[must_use]
                pub fn wrapping_sub(self, rhs: Taint<$t>) -> Taint<$t> {
                    self.zip_with(rhs, <$t>::wrapping_sub)
                }
                /// Wrapping multiplication with tag propagation.
                #[must_use]
                pub fn wrapping_mul(self, rhs: Taint<$t>) -> Taint<$t> {
                    self.zip_with(rhs, <$t>::wrapping_mul)
                }
                /// Tainted equality: the *comparison result* depends on both
                /// operands, so it carries their LUB.
                #[must_use]
                pub fn tv_eq(self, rhs: Taint<$t>) -> Taint<bool> {
                    self.zip_with(rhs, |a, b| a == b)
                }
                /// Tainted less-than.
                #[must_use]
                pub fn tv_lt(self, rhs: Taint<$t>) -> Taint<bool> {
                    self.zip_with(rhs, |a, b| a < b)
                }
            }
        )*
    };
}

impl_all_ops!(u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_neg {
    ($($t:ty),*) => {$(
        impl Neg for Taint<$t> {
            type Output = Taint<$t>;
            fn neg(self) -> Taint<$t> {
                self.map(|v| -v)
            }
        }
    )*};
}

impl_neg!(i8, i16, i32, i64);

impl Taint<bool> {
    /// Logical AND with tag propagation.
    #[must_use]
    pub fn and(self, rhs: Taint<bool>) -> Taint<bool> {
        self.zip_with(rhs, |a, b| a && b)
    }
    /// Logical OR with tag propagation.
    #[must_use]
    pub fn or(self, rhs: Taint<bool>) -> Taint<bool> {
        self.zip_with(rhs, |a, b| a || b)
    }
}

impl Not for Taint<bool> {
    type Output = Taint<bool>;
    fn not(self) -> Taint<bool> {
        self.map(|v| !v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Tag = Tag::from_bits(0b01); // "secret"
    const U: Tag = Tag::from_bits(0b10); // "untrusted"

    #[test]
    fn operators_propagate_lub() {
        let a = Taint::new(6u32, S);
        let b = Taint::new(7u32, U);
        assert_eq!((a + b).value(), 13);
        assert_eq!((a + b).tag(), S.lub(U));
        assert_eq!((a * b).value(), 42);
        assert_eq!((a ^ b).value(), 1);
        assert_eq!((a & b).tag(), S.lub(U));
        assert_eq!((a | b).tag(), S.lub(U));
        assert_eq!((a << Taint::new(1u32, U)).value(), 12);
        assert_eq!((a >> 1u32).tag(), S); // plain rhs adds no taint
        assert_eq!((!a).tag(), S);
        assert_eq!((-Taint::new(5i32, S)).value(), -5);
    }

    #[test]
    fn untainted_operand_does_not_dilute() {
        let a = Taint::new(1u32, S);
        let b = Taint::untainted(2u32);
        assert_eq!((a + b).tag(), S);
        assert_eq!((b + a).tag(), S);
    }

    #[test]
    fn wrapping_ops_wrap_and_propagate() {
        let a = Taint::new(u32::MAX, S);
        let b = Taint::new(2u32, U);
        let c = a.wrapping_add(b);
        assert_eq!(c.value(), 1);
        assert_eq!(c.tag(), S.lub(U));
        assert_eq!(Taint::new(0u32, S).wrapping_sub(b).value(), u32::MAX - 1);
        assert_eq!(Taint::new(1u32 << 31, S).wrapping_mul(b).value(), 0);
    }

    #[test]
    fn comparisons_taint_their_result() {
        let secret = Taint::new(42u32, S);
        let probe = Taint::untainted(42u32);
        let eq = secret.tv_eq(probe);
        assert!(eq.value());
        assert_eq!(eq.tag(), S); // branch on this ⇒ implicit flow
        assert!(!secret.tv_lt(probe).value());
    }

    #[test]
    fn clearance_check_follows_subset_rule() {
        let secret = Taint::new(5u32, S);
        assert!(secret.check_clearance(Tag::EMPTY).is_err());
        assert_eq!(secret.check_clearance(S).unwrap(), 5);
        assert_eq!(secret.check_clearance(S.lub(U)).unwrap(), 5);
        assert_eq!(Taint::untainted(7u32).check_clearance(Tag::EMPTY).unwrap(), 7);
    }

    #[test]
    fn to_bytes_spreads_tag_over_every_byte() {
        let w = Taint::new(0xDEAD_BEEFu32, S);
        let mut bytes = [Taint::untainted(0u8); 4];
        w.to_bytes(&mut bytes);
        assert_eq!(
            bytes.iter().map(|b| b.value()).collect::<Vec<_>>(),
            vec![0xEF, 0xBE, 0xAD, 0xDE]
        );
        assert!(bytes.iter().all(|b| b.tag() == S));
    }

    #[test]
    fn from_bytes_lubs_byte_tags() {
        let bytes = [
            Taint::new(0x01u8, Tag::EMPTY),
            Taint::new(0x02u8, S),
            Taint::new(0x03u8, U),
            Taint::new(0x04u8, Tag::EMPTY),
        ];
        let w: Taint<u32> = Taint::from_bytes(&bytes);
        assert_eq!(w.value(), 0x0403_0201);
        assert_eq!(w.tag(), S.lub(U));
    }

    #[test]
    fn byte_round_trip_all_widths() {
        fn rt<T: TaintWord + PartialEq + core::fmt::Debug>(v: T) {
            let w = Taint::new(v, S);
            let mut buf = vec![Taint::untainted(0u8); T::SIZE];
            w.to_bytes(&mut buf);
            let back: Taint<T> = Taint::from_bytes(&buf);
            assert_eq!(back.value, v);
            assert_eq!(back.tag(), S);
        }
        rt(0xABu8);
        rt(0xBEEFu16);
        rt(0xDEAD_BEEFu32);
        rt(0x0123_4567_89AB_CDEFu64);
        rt(-7i8);
        rt(-700i16);
        rt(-70_000i32);
        rt(-7_000_000_000i64);
    }

    #[test]
    #[should_panic(expected = "word size")]
    fn to_bytes_length_checked() {
        let mut buf = [Taint::untainted(0u8); 3];
        Taint::new(1u32, S).to_bytes(&mut buf);
    }

    #[test]
    fn map_zip_retag() {
        let a = Taint::new(10u32, S);
        assert_eq!(a.map(|v| v * 2).value(), 20);
        assert_eq!(a.map(|v| v * 2).tag(), S);
        let b = a.zip_with(Taint::new(1u32, U), |x, y| x - y);
        assert_eq!((b.value(), b.tag()), (9, S.lub(U)));
        assert_eq!(a.retagged(Tag::EMPTY).tag(), Tag::EMPTY);
        assert_eq!(a.with_tag_lub(U).tag(), S.lub(U));
        let mut c = a;
        c.set_tag(U);
        assert_eq!(c.tag(), U);
    }

    #[test]
    fn bool_logic_propagates() {
        let t = Taint::new(true, S);
        let f = Taint::new(false, U);
        assert!(!t.and(f).value());
        assert!(t.or(f).value());
        assert_eq!(t.and(f).tag(), S.lub(U));
        assert!(!(!t).value());
        assert_eq!((!t).tag(), S);
    }

    #[test]
    fn display_and_debug() {
        let v = Taint::new(5u32, S);
        assert_eq!(v.to_string(), "5@{0}");
        assert_eq!(format!("{v:?}"), "5@{0}");
        assert_eq!(Taint::untainted(1u8).to_string(), "1@∅");
    }

    #[test]
    fn from_plain_value_is_untainted() {
        let v: Taint<u32> = 9u32.into();
        assert_eq!(v.tag(), Tag::EMPTY);
    }
}
