//! Security-policy violations raised by the DIFT engine.

use core::fmt;

use crate::tag::Tag;

/// Which check failed. The first three execution-clearance variants
/// correspond exactly to §V-B2 of the paper (branch execution, instruction
/// fetch, memory access); the rest cover data-flow clearance at outputs and
/// storage, plus misuse of declassification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A branch/jump condition (or indirect target) carried insufficient
    /// clearance — implicit information flow through control flow.
    Branch,
    /// A fetched instruction word carried insufficient clearance — implicit
    /// leak through decode behaviour, or code-injection attempt.
    Fetch,
    /// A load/store effective address carried insufficient clearance —
    /// implicit leak through the access pattern.
    MemAddr,
    /// A trap/interrupt handler address carried insufficient clearance
    /// (checked with the branch clearance, as in the paper).
    TrapVector,
    /// Data reached an output interface whose clearance does not admit it
    /// (confidentiality: secret data leaving the system).
    Output {
        /// Name of the output interface (e.g. `"uart.tx"`).
        sink: String,
    },
    /// Data was stored into a protected location whose clearance does not
    /// admit it (integrity: untrusted or differently-classified data
    /// overwriting a sensitive region).
    Store {
        /// Name of the protected region (e.g. `"immo.pin[2]"`).
        region: String,
    },
    /// A component attempted declassification without holding a grant.
    Declassify {
        /// Name of the offending component.
        component: String,
    },
    /// A model-specific check (peripherals may define their own).
    Custom {
        /// Free-form description of the check.
        what: String,
    },
}

impl ViolationKind {
    /// The named check site this kind refers to (sink, region, component,
    /// or custom label), when it carries one. Anonymous CPU-side checks
    /// (branch/fetch/mem-addr/trap-vector) have no site.
    pub fn site(&self) -> Option<&str> {
        match self {
            ViolationKind::Output { sink } => Some(sink),
            ViolationKind::Store { region } => Some(region),
            ViolationKind::Declassify { component } => Some(component),
            ViolationKind::Custom { what } => Some(what),
            _ => None,
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Branch => write!(f, "branch execution clearance"),
            ViolationKind::Fetch => write!(f, "instruction fetch clearance"),
            ViolationKind::MemAddr => write!(f, "memory address clearance"),
            ViolationKind::TrapVector => write!(f, "trap vector clearance"),
            ViolationKind::Output { sink } => write!(f, "output clearance at `{sink}`"),
            ViolationKind::Store { region } => write!(f, "store clearance at `{region}`"),
            ViolationKind::Declassify { component } => {
                write!(f, "unauthorized declassification by `{component}`")
            }
            ViolationKind::Custom { what } => write!(f, "{what}"),
        }
    }
}

/// A recorded security-policy violation.
///
/// Produced whenever `allowedFlow(tag, required)` is false at a check site.
/// Depending on the engine mode this either aborts the simulated operation
/// (enforce) or is merely logged (record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The kind of check that failed.
    pub kind: ViolationKind,
    /// Tag of the offending data.
    pub tag: Tag,
    /// Clearance tag the check site required.
    pub required: Tag,
    /// Program counter of the instruction responsible, when known.
    pub pc: Option<u32>,
    /// Free-form context (sink address, register name, …).
    pub context: String,
}

impl Violation {
    /// Convenience constructor without PC/context.
    pub fn new(kind: ViolationKind, tag: Tag, required: Tag) -> Self {
        Violation { kind, tag, required, pc: None, context: String::new() }
    }

    /// Attaches the program counter.
    #[must_use]
    pub fn at_pc(mut self, pc: u32) -> Self {
        self.pc = Some(pc);
        self
    }

    /// Attaches free-form context.
    #[must_use]
    pub fn with_context(mut self, context: impl Into<String>) -> Self {
        self.context = context.into();
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated: data tag {} exceeds clearance {}",
            self.kind, self.tag, self.required
        )?;
        if let Some(pc) = self.pc {
            write!(f, " at pc={pc:#010x}")?;
        }
        if !self.context.is_empty() {
            write!(f, " ({})", self.context)?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_tags_pc_context() {
        let v = Violation::new(
            ViolationKind::Output { sink: "uart.tx".into() },
            Tag::from_bits(0b1),
            Tag::EMPTY,
        )
        .at_pc(0x8000_0010)
        .with_context("debug dump");
        let s = v.to_string();
        assert!(s.contains("uart.tx"));
        assert!(s.contains("0x80000010"));
        assert!(s.contains("debug dump"));
        assert!(s.contains("{0}"));
    }

    #[test]
    fn kinds_render_distinctly() {
        let kinds = [
            ViolationKind::Branch,
            ViolationKind::Fetch,
            ViolationKind::MemAddr,
            ViolationKind::TrapVector,
            ViolationKind::Output { sink: "s".into() },
            ViolationKind::Store { region: "r".into() },
            ViolationKind::Declassify { component: "c".into() },
            ViolationKind::Custom { what: "w".into() },
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(k.to_string()), "duplicate rendering");
        }
    }
}
