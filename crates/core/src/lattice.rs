//! General Information-Flow-Policy lattices.
//!
//! A security policy's IFP is "a lattice of security classes that describes
//! the allowed information flow in the system" (paper, §IV-A). This module
//! provides:
//!
//! * [`LatticeBuilder`] / [`Lattice`] — arbitrary finite lattices built from
//!   named classes and allowed-flow edges, with full validation (acyclicity,
//!   existence and uniqueness of `LUB`/`GLB` for every pair),
//! * [`Lattice::compile`] — the Birkhoff-style encoding of each class as a
//!   [`Tag`] atom bitset, so the simulator's hot path can use `OR` for `LUB`
//!   and subset tests for `allowedFlow`. Compilation *verifies* that the
//!   encoding is exact and rejects non-distributive lattices,
//! * [`Lattice::product`] — the natural combination used by the paper to
//!   form IFP-3 from IFP-1 × IFP-2.

use core::fmt;
use std::collections::HashMap;

use crate::tag::Tag;
use crate::Violation;

/// Index of a security class within its [`Lattice`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ClassId(pub usize);

/// Errors detected while building or compiling a lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// An edge referenced an unknown class name.
    UnknownClass(String),
    /// Two distinct classes allow flow into each other, so the "order" has a
    /// cycle and is not a partial order.
    FlowCycle(String, String),
    /// Some pair of classes has no common upper bound at all.
    NoUpperBound(String, String),
    /// Some pair of classes has minimal upper bounds that are incomparable,
    /// i.e. no *least* upper bound exists.
    NoLeastUpperBound(String, String),
    /// Some pair of classes has no greatest lower bound.
    NoGreatestLowerBound(String, String),
    /// The lattice has more join-irreducible elements than [`Tag`] atoms.
    TooManyAtoms(usize),
    /// The OR-encoding does not reproduce the lattice exactly; the lattice
    /// is not distributive and cannot be compiled to atom bitsets.
    NotDistributive(String, String),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::DuplicateClass(n) => write!(f, "duplicate security class `{n}`"),
            LatticeError::UnknownClass(n) => write!(f, "unknown security class `{n}`"),
            LatticeError::FlowCycle(a, b) => {
                write!(f, "flow cycle between distinct classes `{a}` and `{b}`")
            }
            LatticeError::NoUpperBound(a, b) => {
                write!(f, "classes `{a}` and `{b}` have no common upper bound")
            }
            LatticeError::NoLeastUpperBound(a, b) => {
                write!(f, "classes `{a}` and `{b}` have no least upper bound")
            }
            LatticeError::NoGreatestLowerBound(a, b) => {
                write!(f, "classes `{a}` and `{b}` have no greatest lower bound")
            }
            LatticeError::TooManyAtoms(n) => write!(
                f,
                "lattice has {n} join-irreducible classes, more than the {} tag atoms",
                Tag::CAPACITY
            ),
            LatticeError::NotDistributive(a, b) => write!(
                f,
                "lattice is not distributive (atom encoding breaks at `{a}`, `{b}`); \
                 tag compilation is unsound"
            ),
        }
    }
}

impl std::error::Error for LatticeError {}

/// Incrementally declares classes and allowed-flow edges, then validates
/// into a [`Lattice`].
///
/// ```
/// use vpdift_core::lattice::LatticeBuilder;
/// // IFP-1 of the paper: Low-Confidentiality flows into High-Confidentiality.
/// let ifp1 = LatticeBuilder::new()
///     .class("LC")
///     .class("HC")
///     .flow("LC", "HC")
///     .build()?;
/// assert!(ifp1.allowed_flow(ifp1.class("LC").unwrap(), ifp1.class("HC").unwrap()));
/// # Ok::<(), vpdift_core::lattice::LatticeError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatticeBuilder {
    names: Vec<String>,
    edges: Vec<(String, String)>,
}

impl LatticeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a security class.
    #[must_use]
    pub fn class(mut self, name: &str) -> Self {
        self.names.push(name.to_owned());
        self
    }

    /// Declares that information may flow from `src` to `dst`.
    #[must_use]
    pub fn flow(mut self, src: &str, dst: &str) -> Self {
        self.edges.push((src.to_owned(), dst.to_owned()));
        self
    }

    /// Validates the declarations into a [`Lattice`].
    ///
    /// # Errors
    /// Returns a [`LatticeError`] if the declared order is not a lattice
    /// (duplicate/unknown classes, cycles, missing unique LUB or GLB).
    pub fn build(self) -> Result<Lattice, LatticeError> {
        Lattice::from_parts(self.names, self.edges)
    }
}

/// A validated finite lattice of security classes.
#[derive(Clone)]
pub struct Lattice {
    names: Vec<String>,
    index: HashMap<String, ClassId>,
    /// `leq[a * n + b]` ⇔ `allowedFlow(a, b)` ⇔ a ⊑ b.
    leq: Vec<bool>,
    lub: Vec<ClassId>,
    glb: Vec<ClassId>,
    bottom: ClassId,
    top: ClassId,
}

impl fmt::Debug for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lattice")
            .field("classes", &self.names)
            .field("bottom", &self.name(self.bottom))
            .field("top", &self.name(self.top))
            .finish()
    }
}

impl Lattice {
    fn from_parts(names: Vec<String>, edges: Vec<(String, String)>) -> Result<Self, LatticeError> {
        let n = names.len();
        let mut index = HashMap::new();
        for (i, name) in names.iter().enumerate() {
            if index.insert(name.clone(), ClassId(i)).is_some() {
                return Err(LatticeError::DuplicateClass(name.clone()));
            }
        }

        let mut leq = vec![false; n * n];
        for (i, _) in names.iter().enumerate() {
            leq[i * n + i] = true;
        }
        for (src, dst) in &edges {
            let s = *index.get(src).ok_or_else(|| LatticeError::UnknownClass(src.clone()))?;
            let d = *index.get(dst).ok_or_else(|| LatticeError::UnknownClass(dst.clone()))?;
            leq[s.0 * n + d.0] = true;
        }
        // Reflexive-transitive closure (Warshall).
        for k in 0..n {
            for i in 0..n {
                if leq[i * n + k] {
                    for j in 0..n {
                        if leq[k * n + j] {
                            leq[i * n + j] = true;
                        }
                    }
                }
            }
        }
        // Antisymmetry.
        for i in 0..n {
            for j in (i + 1)..n {
                if leq[i * n + j] && leq[j * n + i] {
                    return Err(LatticeError::FlowCycle(names[i].clone(), names[j].clone()));
                }
            }
        }

        // LUB table: for each pair, the unique minimal common upper bound.
        let mut lub = vec![ClassId(0); n * n];
        let mut glb = vec![ClassId(0); n * n];
        for a in 0..n {
            for b in 0..n {
                let uppers: Vec<usize> =
                    (0..n).filter(|&u| leq[a * n + u] && leq[b * n + u]).collect();
                if uppers.is_empty() {
                    return Err(LatticeError::NoUpperBound(names[a].clone(), names[b].clone()));
                }
                let least =
                    uppers.iter().copied().find(|&u| uppers.iter().all(|&v| leq[u * n + v]));
                match least {
                    Some(u) => lub[a * n + b] = ClassId(u),
                    None => {
                        return Err(LatticeError::NoLeastUpperBound(
                            names[a].clone(),
                            names[b].clone(),
                        ))
                    }
                }

                let lowers: Vec<usize> =
                    (0..n).filter(|&l| leq[l * n + a] && leq[l * n + b]).collect();
                let greatest =
                    lowers.iter().copied().find(|&l| lowers.iter().all(|&m| leq[m * n + l]));
                match greatest {
                    Some(l) => glb[a * n + b] = ClassId(l),
                    None => {
                        return Err(LatticeError::NoGreatestLowerBound(
                            names[a].clone(),
                            names[b].clone(),
                        ))
                    }
                }
            }
        }

        // Bottom and top exist in every finite lattice.
        let bottom = ClassId(
            (0..n)
                .find(|&b| (0..n).all(|x| leq[b * n + x]))
                .expect("finite lattice with validated GLBs has a bottom"),
        );
        let top = ClassId(
            (0..n)
                .find(|&t| (0..n).all(|x| leq[x * n + t]))
                .expect("finite lattice with validated LUBs has a top"),
        );

        Ok(Lattice { names, index, leq, lub, glb, bottom, top })
    }

    /// Number of security classes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff the lattice has no classes (never constructible via
    /// [`LatticeBuilder::build`], which requires a bottom).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks a class up by name.
    pub fn class(&self, name: &str) -> Option<ClassId> {
        self.index.get(name).copied()
    }

    /// Name of a class.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this lattice.
    pub fn name(&self, id: ClassId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over all classes.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.names.len()).map(ClassId)
    }

    /// The most permissive class (public & trusted).
    pub fn bottom(&self) -> ClassId {
        self.bottom
    }

    /// The most restrictive class.
    pub fn top(&self) -> ClassId {
        self.top
    }

    /// `allowedFlow(src, dst)` from the paper: is there a (transitive)
    /// connection from `src` to `dst`?
    pub fn allowed_flow(&self, src: ClassId, dst: ClassId) -> bool {
        self.leq[src.0 * self.names.len() + dst.0]
    }

    /// Least upper bound of two classes.
    pub fn lub(&self, a: ClassId, b: ClassId) -> ClassId {
        self.lub[a.0 * self.names.len() + b.0]
    }

    /// Greatest lower bound of two classes.
    pub fn glb(&self, a: ClassId, b: ClassId) -> ClassId {
        self.glb[a.0 * self.names.len() + b.0]
    }

    /// The covering relation (Hasse diagram edges): pairs `(a, b)` with
    /// `a ⊏ b` and nothing strictly between.
    pub fn covers(&self) -> Vec<(ClassId, ClassId)> {
        let n = self.names.len();
        let mut out = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b && self.leq[a * n + b] {
                    let direct = !(0..n)
                        .any(|c| c != a && c != b && self.leq[a * n + c] && self.leq[c * n + b]);
                    if direct {
                        out.push((ClassId(a), ClassId(b)));
                    }
                }
            }
        }
        out
    }

    /// Classes that are *join-irreducible*: not the bottom, and not the LUB
    /// of two strictly smaller classes. These become the taint atoms.
    pub fn join_irreducibles(&self) -> Vec<ClassId> {
        let n = self.names.len();
        self.classes()
            .filter(|&x| {
                if x == self.bottom {
                    return false;
                }
                // x is join-reducible iff two strictly smaller classes join to x.
                !(0..n).any(|a| {
                    (0..n).any(|b| {
                        let (a, b) = (ClassId(a), ClassId(b));
                        a != x
                            && b != x
                            && self.allowed_flow(a, x)
                            && self.allowed_flow(b, x)
                            && self.lub(a, b) == x
                    })
                })
            })
            .collect()
    }

    /// `true` iff the lattice is distributive (`a ∧ (b ∨ c) = (a ∧ b) ∨
    /// (a ∧ c)` for all triples) — the precondition for an exact atom
    /// encoding.
    pub fn is_distributive(&self) -> bool {
        for a in self.classes() {
            for b in self.classes() {
                for c in self.classes() {
                    let lhs = self.glb(a, self.lub(b, c));
                    let rhs = self.lub(self.glb(a, b), self.glb(a, c));
                    if lhs != rhs {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Classes that are *meet-irreducible*: not the top, and not the GLB
    /// of two strictly larger classes — the dual of
    /// [`Lattice::join_irreducibles`].
    pub fn meet_irreducibles(&self) -> Vec<ClassId> {
        let n = self.names.len();
        self.classes()
            .filter(|&x| {
                if x == self.top {
                    return false;
                }
                !(0..n).any(|a| {
                    (0..n).any(|b| {
                        let (a, b) = (ClassId(a), ClassId(b));
                        a != x
                            && b != x
                            && self.allowed_flow(x, a)
                            && self.allowed_flow(x, b)
                            && self.glb(a, b) == x
                    })
                })
            })
            .collect()
    }

    /// Height of the lattice: the number of covers on the longest chain
    /// from bottom to top (0 for the one-class lattice).
    pub fn height(&self) -> usize {
        // Longest path in the cover DAG, by memoized DFS from bottom.
        let covers = self.covers();
        let n = self.names.len();
        let mut memo = vec![None::<usize>; n];
        fn depth(
            node: usize,
            covers: &[(ClassId, ClassId)],
            memo: &mut Vec<Option<usize>>,
        ) -> usize {
            if let Some(d) = memo[node] {
                return d;
            }
            let d = covers
                .iter()
                .filter(|(a, _)| a.0 == node)
                .map(|(_, b)| 1 + depth(b.0, covers, memo))
                .max()
                .unwrap_or(0);
            memo[node] = Some(d);
            d
        }
        depth(self.bottom.0, &covers, &mut memo)
    }

    /// Compiles the lattice into per-class [`Tag`] atom bitsets and verifies
    /// the encoding is exact (`LUB` = OR, `allowedFlow` = ⊆).
    ///
    /// # Errors
    /// [`LatticeError::TooManyAtoms`] if more than 32 join-irreducibles;
    /// [`LatticeError::NotDistributive`] if OR-encoding cannot represent
    /// this lattice exactly.
    pub fn compile(&self) -> Result<CompiledLattice, LatticeError> {
        let irr = self.join_irreducibles();
        if irr.len() > Tag::CAPACITY as usize {
            return Err(LatticeError::TooManyAtoms(irr.len()));
        }
        let mut tags = vec![Tag::EMPTY; self.names.len()];
        for c in self.classes() {
            let mut t = Tag::EMPTY;
            for (bit, &j) in irr.iter().enumerate() {
                if self.allowed_flow(j, c) {
                    t |= Tag::atom(bit as u32);
                }
            }
            tags[c.0] = t;
        }
        // Exactness check over every pair.
        for a in self.classes() {
            for b in self.classes() {
                let ok_flow = self.allowed_flow(a, b) == tags[a.0].flows_to(tags[b.0]);
                let ok_lub = tags[self.lub(a, b).0] == tags[a.0].lub(tags[b.0]);
                if !ok_flow || !ok_lub {
                    return Err(LatticeError::NotDistributive(
                        self.name(a).to_owned(),
                        self.name(b).to_owned(),
                    ));
                }
            }
        }
        Ok(CompiledLattice { lattice: self.clone(), tags, atoms: irr })
    }

    /// Product lattice: classes are pairs `(a, b)` ordered component-wise.
    /// This is the paper's "natural combination" forming IFP-3 from
    /// IFP-1 × IFP-2; pair names are rendered `"(A,B)"`.
    pub fn product(&self, other: &Lattice) -> Lattice {
        let mut builder = LatticeBuilder::new();
        let pair_name = |a: ClassId, b: ClassId| format!("({},{})", self.name(a), other.name(b));
        for a in self.classes() {
            for b in other.classes() {
                builder = builder.class(&pair_name(a, b));
            }
        }
        for a1 in self.classes() {
            for b1 in other.classes() {
                for a2 in self.classes() {
                    for b2 in other.classes() {
                        if (a1, b1) != (a2, b2)
                            && self.allowed_flow(a1, a2)
                            && other.allowed_flow(b1, b2)
                        {
                            builder = builder.flow(&pair_name(a1, b1), &pair_name(a2, b2));
                        }
                    }
                }
            }
        }
        builder.build().expect("product of two lattices is a lattice")
    }

    /// Graphviz `dot` rendering of the Hasse diagram (Fig. 1 style).
    pub fn to_dot(&self, title: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!("digraph \"{title}\" {{\n  rankdir=BT;\n"));
        for c in self.classes() {
            s.push_str(&format!("  n{} [label=\"{}\"];\n", c.0, self.name(c)));
        }
        for (a, b) in self.covers() {
            s.push_str(&format!("  n{} -> n{};\n", a.0, b.0));
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lattice: {} classes, bottom={}, top={}",
            self.len(),
            self.name(self.bottom),
            self.name(self.top)
        )?;
        for (a, b) in self.covers() {
            writeln!(f, "  {} -> {}", self.name(a), self.name(b))?;
        }
        Ok(())
    }
}

/// A lattice compiled to [`Tag`] atom bitsets (see [`Lattice::compile`]).
#[derive(Debug, Clone)]
pub struct CompiledLattice {
    lattice: Lattice,
    tags: Vec<Tag>,
    atoms: Vec<ClassId>,
}

impl CompiledLattice {
    /// The source lattice.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The compiled tag of a class.
    pub fn tag(&self, class: ClassId) -> Tag {
        self.tags[class.0]
    }

    /// The compiled tag of a class, looked up by name.
    pub fn tag_of(&self, name: &str) -> Option<Tag> {
        self.lattice.class(name).map(|c| self.tag(c))
    }

    /// Join-irreducible classes, in atom-bit order.
    pub fn atoms(&self) -> &[ClassId] {
        &self.atoms
    }

    /// Maps a tag back to the smallest class whose tag contains it, if any.
    /// (Exact for tags produced from this lattice's classes.)
    pub fn class_of(&self, tag: Tag) -> Option<ClassId> {
        self.lattice
            .classes()
            .filter(|&c| tag.flows_to(self.tags[c.0]))
            .min_by_key(|&c| self.tags[c.0].atom_count())
    }

    /// Builds an explanation of a violation in terms of this lattice's class
    /// names, for diagnostics.
    pub fn explain(&self, violation: &Violation) -> String {
        let nm = |t: Tag| {
            self.class_of(t)
                .map(|c| self.lattice.name(c).to_owned())
                .unwrap_or_else(|| t.to_string())
        };
        format!(
            "{}: data class {} may not flow to clearance {}",
            violation.kind,
            nm(violation.tag),
            nm(violation.required)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ifp1() -> Lattice {
        LatticeBuilder::new().class("LC").class("HC").flow("LC", "HC").build().unwrap()
    }

    fn ifp2() -> Lattice {
        LatticeBuilder::new().class("HI").class("LI").flow("HI", "LI").build().unwrap()
    }

    #[test]
    fn ifp1_orders_confidentiality() {
        let l = ifp1();
        let lc = l.class("LC").unwrap();
        let hc = l.class("HC").unwrap();
        assert!(l.allowed_flow(lc, hc));
        assert!(!l.allowed_flow(hc, lc));
        assert_eq!(l.bottom(), lc);
        assert_eq!(l.top(), hc);
        assert_eq!(l.lub(lc, hc), hc);
        assert_eq!(l.glb(lc, hc), lc);
    }

    #[test]
    fn product_reproduces_ifp3_example() {
        // Example 1 of the paper: in IFP-3, LUB((LC,LI),(HC,HI)) = (HC,LI).
        let ifp3 = ifp1().product(&ifp2());
        assert_eq!(ifp3.len(), 4);
        let a = ifp3.class("(LC,LI)").unwrap();
        let b = ifp3.class("(HC,HI)").unwrap();
        let c = ifp3.class("(HC,LI)").unwrap();
        assert_eq!(ifp3.lub(a, b), c);
        assert_eq!(ifp3.name(ifp3.bottom()), "(LC,HI)");
        assert_eq!(ifp3.name(ifp3.top()), "(HC,LI)");
    }

    #[test]
    fn cycle_detected() {
        let err = LatticeBuilder::new()
            .class("A")
            .class("B")
            .flow("A", "B")
            .flow("B", "A")
            .build()
            .unwrap_err();
        assert!(matches!(err, LatticeError::FlowCycle(..)));
    }

    #[test]
    fn missing_lub_detected() {
        // Two incomparable maximal classes: no common upper bound.
        let err = LatticeBuilder::new()
            .class("bot")
            .class("A")
            .class("B")
            .flow("bot", "A")
            .flow("bot", "B")
            .build()
            .unwrap_err();
        assert_eq!(err, LatticeError::NoUpperBound("A".into(), "B".into()));
    }

    #[test]
    fn ambiguous_lub_detected() {
        // Diamond with two incomparable upper bounds of {A,B}: M4-ish shape.
        //      top
        //     /   \
        //    U     V
        //    |\   /|
        //    | \ / |
        //    A  X  B   (A,B ⊑ U and A,B ⊑ V)
        let err = LatticeBuilder::new()
            .class("bot")
            .class("A")
            .class("B")
            .class("U")
            .class("V")
            .class("top")
            .flow("bot", "A")
            .flow("bot", "B")
            .flow("A", "U")
            .flow("B", "U")
            .flow("A", "V")
            .flow("B", "V")
            .flow("U", "top")
            .flow("V", "top")
            .build()
            .unwrap_err();
        assert!(matches!(err, LatticeError::NoLeastUpperBound(..)));
    }

    #[test]
    fn duplicate_and_unknown_classes() {
        let err = LatticeBuilder::new().class("A").class("A").build().unwrap_err();
        assert_eq!(err, LatticeError::DuplicateClass("A".into()));
        let err = LatticeBuilder::new().class("A").flow("A", "Z").build().unwrap_err();
        assert_eq!(err, LatticeError::UnknownClass("Z".into()));
    }

    #[test]
    fn compile_ifp3_uses_two_atoms() {
        let ifp3 = ifp1().product(&ifp2());
        let c = ifp3.compile().unwrap();
        assert_eq!(c.atoms().len(), 2);
        let bot = c.tag_of("(LC,HI)").unwrap();
        let top = c.tag_of("(HC,LI)").unwrap();
        assert_eq!(bot, Tag::EMPTY);
        assert_eq!(top.atom_count(), 2);
        let secret = c.tag_of("(HC,HI)").unwrap();
        let untrusted = c.tag_of("(LC,LI)").unwrap();
        assert_eq!(secret.lub(untrusted), top);
        assert!(!secret.flows_to(untrusted));
        assert!(!untrusted.flows_to(secret));
        assert!(bot.flows_to(secret));
    }

    #[test]
    fn compile_round_trips_class_of() {
        let ifp3 = ifp1().product(&ifp2());
        let c = ifp3.compile().unwrap();
        for cls in ifp3.classes() {
            assert_eq!(c.class_of(c.tag(cls)), Some(cls), "class {}", ifp3.name(cls));
        }
    }

    #[test]
    fn chain_compiles_to_nested_tags() {
        let l = LatticeBuilder::new()
            .class("public")
            .class("internal")
            .class("secret")
            .flow("public", "internal")
            .flow("internal", "secret")
            .build()
            .unwrap();
        let c = l.compile().unwrap();
        let p = c.tag_of("public").unwrap();
        let i = c.tag_of("internal").unwrap();
        let s = c.tag_of("secret").unwrap();
        assert!(p.flows_to(i) && i.flows_to(s));
        assert!(!s.flows_to(i) && !i.flows_to(p));
        assert_eq!(p, Tag::EMPTY);
        assert_eq!(i.atom_count(), 1);
        assert_eq!(s.atom_count(), 2);
    }

    #[test]
    fn covers_are_hasse_edges_only() {
        let l = LatticeBuilder::new()
            .class("a")
            .class("b")
            .class("c")
            .flow("a", "b")
            .flow("b", "c")
            .flow("a", "c") // transitive edge must not appear as a cover
            .build()
            .unwrap();
        let covers: Vec<_> = l
            .covers()
            .into_iter()
            .map(|(x, y)| (l.name(x).to_owned(), l.name(y).to_owned()))
            .collect();
        assert_eq!(covers, vec![("a".into(), "b".into()), ("b".into(), "c".into())]);
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let dot = ifp1().to_dot("IFP-1");
        assert!(dot.contains("digraph \"IFP-1\""));
        assert!(dot.contains("label=\"LC\""));
        assert!(dot.contains("->"));
    }

    #[test]
    fn distributivity_analysis() {
        assert!(ifp1().is_distributive());
        assert!(ifp1().product(&ifp2()).is_distributive());
        // The diamond M3 (three incomparable middles) is not distributive.
        let m3 = LatticeBuilder::new()
            .class("bot")
            .class("x")
            .class("y")
            .class("z")
            .class("top")
            .flow("bot", "x")
            .flow("bot", "y")
            .flow("bot", "z")
            .flow("x", "top")
            .flow("y", "top")
            .flow("z", "top")
            .build()
            .unwrap();
        assert!(!m3.is_distributive());
        assert!(m3.compile().is_err(), "compile agrees with the analysis");
    }

    #[test]
    fn meet_irreducibles_and_height() {
        let ifp3 = ifp1().product(&ifp2());
        // In the 2x2 diamond, the two middles are both meet-irreducible.
        let mi = ifp3.meet_irreducibles();
        assert_eq!(mi.len(), 2);
        assert!(!mi.contains(&ifp3.top()));
        assert_eq!(ifp3.height(), 2);
        assert_eq!(ifp1().height(), 1);
        let chain = crate::ifp::chain(&["a", "b", "c", "d"]);
        assert_eq!(chain.height(), 3);
        assert_eq!(chain.meet_irreducibles().len(), 3);
        assert_eq!(chain.join_irreducibles().len(), 3);
    }

    #[test]
    fn join_irreducibles_of_diamond() {
        let ifp3 = ifp1().product(&ifp2());
        let irr = ifp3.join_irreducibles();
        let names: Vec<_> = irr.iter().map(|&c| ifp3.name(c)).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"(HC,HI)"));
        assert!(names.contains(&"(LC,LI)"));
    }
}
