//! The run-time DIFT engine: evaluates policy checks, records violations,
//! and counts checks for the performance reports.
//!
//! The engine is deliberately thin — tag *propagation* happens inside
//! [`Taint`](crate::Taint) operators and the ISS, with no engine
//! involvement; the engine is consulted only at *check sites* (outputs,
//! protected stores, execution clearance) and when a violation must be
//! recorded.

use core::fmt;
use std::collections::HashMap;

use vpdift_sync::{shared, Shared};

use crate::census::{SharedCensus, TaintCensus};
use crate::error::{Violation, ViolationKind};
use crate::policy::SecurityPolicy;
use crate::tag::Tag;

/// What the engine does when a check fails.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum EnforceMode {
    /// Fail the offending operation: checks return `Err`, the CPU raises a
    /// DIFT trap. This is the paper's behaviour ("triggering a runtime
    /// error upon violation").
    #[default]
    Enforce,
    /// Record violations but let execution continue — useful when auditing
    /// a policy against a test-suite without stopping at the first finding.
    Record,
}

/// Observer notified at the engine's check sites, so an observability
/// layer can see checks and violations without core depending on it
/// (`vpdift-obs` provides the standard implementation). The engine calls
/// observers synchronously while it is itself borrowed — implementations
/// must not call back into the engine. Observers are `Send` so an engine
/// (and the VP owning it) can migrate between fleet worker threads.
pub trait FlowObserver: Send + Sync {
    /// A clearance check of `kind` was evaluated: `passed` tells whether
    /// `allowedFlow(tag, required)` held.
    fn on_check(
        &mut self,
        kind: &ViolationKind,
        tag: Tag,
        required: Tag,
        pc: Option<u32>,
        passed: bool,
    );

    /// A violation was recorded (covers engine-side check failures *and*
    /// externally detected ones handed to [`DiftEngine::record`]).
    fn on_violation(&mut self, violation: &Violation);

    /// The tag checked at a *named* site (output sink, protected region,
    /// declassify component) differs from the tag last checked there —
    /// the tag set reaching that site changed. Fired on the clearance-check
    /// path, before the pass/fail decision is reported; live-introspection
    /// layers use it for taint watchpoints. The per-site state backing
    /// this notification is only maintained while an observer is attached,
    /// so unobserved runs (the `NullSink` configuration) pay nothing.
    fn on_tag_change(&mut self, _site: &str, _before: Tag, _after: Tag) {}
}

/// A flow observer as shared with the engine.
pub type SharedFlowObserver = Shared<dyn FlowObserver>;

/// Run-time statistics, reported alongside Table II.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Clearance checks evaluated.
    pub checks: u64,
    /// Checks that failed (== recorded violations).
    pub failed: u64,
}

/// The DIFT engine. Usually shared as a [`SharedEngine`] between the CPU
/// and all peripherals of a VP.
///
/// ```
/// use vpdift_core::{DiftEngine, SecurityPolicy, Tag, ViolationKind};
/// let secret = Tag::atom(0);
/// let policy = SecurityPolicy::builder("demo").sink("uart.tx", Tag::EMPTY).build();
/// let mut engine = DiftEngine::new(policy);
/// // Public data may leave ...
/// assert!(engine.check_output("uart.tx", Tag::EMPTY, None).is_ok());
/// // ... secret data may not.
/// let err = engine.check_output("uart.tx", secret, Some(0x80)).unwrap_err();
/// assert_eq!(err.kind, ViolationKind::Output { sink: "uart.tx".into() });
/// assert_eq!(engine.violations().len(), 1);
/// ```
/// # Fail-closed rule
///
/// A tag carrying atoms outside the policy's
/// [atom universe](SecurityPolicy::atom_universe) cannot have been produced
/// by any legitimate classification — it is corrupted tag state (e.g. an
/// injected tag-bit flip, or a bug upstream). The engine **never panics and
/// never silently declassifies** on such a tag: it saturates it to the
/// lattice top (all atoms) before evaluating the check, so the flow is
/// denied by every clearance below top and the recorded violation carries
/// the saturated tag, making the corruption visible in reports. In-universe
/// tags are unaffected.
#[derive(Clone)]
pub struct DiftEngine {
    policy: SecurityPolicy,
    mode: EnforceMode,
    violations: Vec<Violation>,
    stats: EngineStats,
    observer: Option<SharedFlowObserver>,
    /// Cached [`SecurityPolicy::atom_universe`] for the fail-closed check.
    universe: Tag,
    /// Live-tag census shared with tag sources and fast execution engines.
    /// Cloning the engine shares the census — both copies describe the same
    /// architectural tag state.
    census: SharedCensus,
    /// Last tag checked per named site, backing
    /// [`FlowObserver::on_tag_change`]. Empty (and never written) while no
    /// observer is attached.
    site_tags: HashMap<String, Tag>,
}

impl fmt::Debug for DiftEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiftEngine")
            .field("policy", &self.policy.name())
            .field("mode", &self.mode)
            .field("violations", &self.violations.len())
            .field("stats", &self.stats)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl DiftEngine {
    /// Creates an enforcing engine for `policy`.
    pub fn new(policy: SecurityPolicy) -> Self {
        let universe = policy.atom_universe();
        DiftEngine {
            policy,
            mode: EnforceMode::Enforce,
            violations: Vec::new(),
            stats: EngineStats::default(),
            observer: None,
            universe,
            census: TaintCensus::new().into_shared(),
            site_tags: HashMap::new(),
        }
    }

    /// Creates an engine with an explicit mode.
    pub fn with_mode(policy: SecurityPolicy, mode: EnforceMode) -> Self {
        DiftEngine { mode, ..DiftEngine::new(policy) }
    }

    /// Wraps the engine for sharing between VP components.
    pub fn into_shared(self) -> SharedEngine {
        shared(self)
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &SecurityPolicy {
        &self.policy
    }

    /// Current enforcement mode.
    pub fn mode(&self) -> EnforceMode {
        self.mode
    }

    /// Switches enforcement mode at run time.
    pub fn set_mode(&mut self, mode: EnforceMode) {
        self.mode = mode;
    }

    /// Attaches a flow observer; checks and violations from here on are
    /// reported to it.
    pub fn set_observer(&mut self, observer: SharedFlowObserver) {
        self.observer = Some(observer);
    }

    /// Detaches the flow observer, if any.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// The engine's live-tag census. Tag sources (RAM classification, DMA,
    /// tagged MMIO reads) clone this handle and [`arm`](TaintCensus::arm)
    /// it; fast execution engines consult it to skip provably-passing
    /// checks while no tag is live.
    pub fn census(&self) -> &SharedCensus {
        &self.census
    }

    /// Statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// All recorded violations, oldest first.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Removes and returns all recorded violations.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// `true` iff at least one violation has been recorded.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }

    /// The fail-closed rule (see the type-level docs): tags with atoms
    /// outside the policy's universe are corrupted state and saturate to
    /// top instead of panicking or silently declassifying.
    #[inline]
    fn sanitize(&self, tag: Tag) -> Tag {
        if tag.flows_to(self.universe) {
            tag
        } else {
            Tag::from_bits(u32::MAX)
        }
    }

    /// Reports an evaluated check to the attached observer and, when the
    /// check site is *named* (see [`ViolationKind::site`]), fires
    /// [`FlowObserver::on_tag_change`] if the checked tag differs from the
    /// tag last checked there. Entirely skipped — including the per-site
    /// bookkeeping — while no observer is attached, preserving the
    /// zero-cost-when-off guarantee for `NullSink` builds.
    fn notify_check(
        &mut self,
        kind: &ViolationKind,
        tag: Tag,
        required: Tag,
        pc: Option<u32>,
        passed: bool,
    ) {
        let Some(obs) = &self.observer else { return };
        obs.borrow_mut().on_check(kind, tag, required, pc, passed);
        if let Some(site) = kind.site() {
            let before = self.site_tags.get(site).copied().unwrap_or(Tag::EMPTY);
            if before != tag {
                self.site_tags.insert(site.to_owned(), tag);
                obs.borrow_mut().on_tag_change(site, before, tag);
            }
        }
    }

    /// The core check: is `allowedFlow(tag, required)`? On failure a
    /// violation of `kind` is recorded. `tag` is subject to the fail-closed
    /// rule (see the type-level docs).
    ///
    /// # Errors
    /// In [`EnforceMode::Enforce`], returns the recorded [`Violation`]; in
    /// [`EnforceMode::Record`] the failure is logged and `Ok` is returned.
    pub fn check_flow(
        &mut self,
        kind: ViolationKind,
        tag: Tag,
        required: Tag,
        pc: Option<u32>,
    ) -> Result<(), Violation> {
        let tag = self.sanitize(tag);
        self.stats.checks += 1;
        let passed = tag.flows_to(required);
        self.notify_check(&kind, tag, required, pc, passed);
        if passed {
            return Ok(());
        }
        let mut v = Violation::new(kind, tag, required);
        v.pc = pc;
        self.record(v)
    }

    /// Checks data leaving through `sink` against the sink's clearance.
    /// Sinks without a configured clearance are unchecked.
    ///
    /// # Errors
    /// See [`DiftEngine::check_flow`].
    pub fn check_output(&mut self, sink: &str, tag: Tag, pc: Option<u32>) -> Result<(), Violation> {
        match self.policy.sink_clearance(sink) {
            Some(clearance) => {
                self.check_flow(ViolationKind::Output { sink: sink.to_owned() }, tag, clearance, pc)
            }
            None => Ok(()),
        }
    }

    /// Checks a store of data tagged `tag` to address `addr` against any
    /// protected-region rule covering it. `tag` is subject to the
    /// fail-closed rule (see the type-level docs).
    ///
    /// # Errors
    /// See [`DiftEngine::check_flow`].
    pub fn check_store(&mut self, addr: u32, tag: Tag, pc: Option<u32>) -> Result<(), Violation> {
        if let Some((rule, clearance)) = self.policy.write_clearance_at(addr) {
            let region = rule.name.clone();
            let tag = self.sanitize(tag);
            self.stats.checks += 1;
            let passed = tag.flows_to(clearance);
            let kind = ViolationKind::Store { region: region.clone() };
            self.notify_check(&kind, tag, clearance, pc, passed);
            if passed {
                return Ok(());
            }
            let mut v = Violation::new(ViolationKind::Store { region }, tag, clearance)
                .with_context(format!("store to {addr:#010x}"));
            v.pc = pc;
            return self.record(v);
        }
        Ok(())
    }

    /// Records an externally constructed violation (used by the CPU for
    /// execution-clearance failures detected inline).
    ///
    /// # Errors
    /// In [`EnforceMode::Enforce`], echoes the violation back as `Err`.
    pub fn record(&mut self, violation: Violation) -> Result<(), Violation> {
        self.stats.failed += 1;
        if let Some(obs) = &self.observer {
            obs.borrow_mut().on_violation(&violation);
        }
        self.violations.push(violation.clone());
        match self.mode {
            EnforceMode::Enforce => Err(violation),
            EnforceMode::Record => Ok(()),
        }
    }

    /// Clears violations, statistics, and per-site tag-change state (fresh
    /// run on the same policy).
    pub fn reset(&mut self) {
        self.violations.clear();
        self.stats = EngineStats::default();
        self.site_tags.clear();
    }
}

/// The engine as shared between the CPU and peripherals of one VP.
pub type SharedEngine = Shared<DiftEngine>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AddrRange;

    const SECRET: Tag = Tag::from_bits(0b01);
    const UNTRUSTED: Tag = Tag::from_bits(0b10);

    fn engine() -> DiftEngine {
        let policy = SecurityPolicy::builder("t")
            .sink("uart.tx", UNTRUSTED)
            .protect_region("pin", AddrRange::new(0x1000, 4), SECRET)
            .build();
        DiftEngine::new(policy)
    }

    #[test]
    fn output_check_enforces_clearance() {
        let mut e = engine();
        assert!(e.check_output("uart.tx", Tag::EMPTY, None).is_ok());
        assert!(e.check_output("uart.tx", UNTRUSTED, None).is_ok());
        let v = e.check_output("uart.tx", SECRET, Some(4)).unwrap_err();
        assert_eq!(v.pc, Some(4));
        assert_eq!(v.required, UNTRUSTED);
        assert_eq!(e.stats(), EngineStats { checks: 3, failed: 1 });
    }

    #[test]
    fn unknown_sink_is_unchecked() {
        let mut e = engine();
        assert!(e.check_output("debug.port", SECRET, None).is_ok());
        assert_eq!(e.stats().checks, 0);
    }

    #[test]
    fn store_check_consults_region_rules() {
        let mut e = engine();
        // Secret (the PIN itself) may be stored into the PIN region.
        assert!(e.check_store(0x1002, SECRET, None).is_ok());
        // Untrusted data may not.
        let v = e.check_store(0x1002, UNTRUSTED, None).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::Store { ref region } if region == "pin"));
        assert!(v.context.contains("0x00001002"));
        // Outside the region: unchecked.
        assert!(e.check_store(0x2000, UNTRUSTED, None).is_ok());
    }

    #[test]
    fn corrupted_tags_fail_closed() {
        let mut e = engine(); // universe = SECRET ∪ UNTRUSTED
        let corrupt = Tag::atom(7);
        // An out-of-universe atom is denied and recorded saturated to top —
        // corruption never panics and never slips through as declassified.
        let v = e.check_output("uart.tx", corrupt, None).unwrap_err();
        assert_eq!(v.tag, Tag::from_bits(u32::MAX), "violation shows the saturated tag");
        // Same for protected stores, even mixed with legitimate atoms.
        let v = e.check_store(0x1002, SECRET.lub(corrupt), None).unwrap_err();
        assert_eq!(v.tag, Tag::from_bits(u32::MAX));
        // In-universe tags are untouched by the rule.
        assert!(e.check_output("uart.tx", UNTRUSTED, None).is_ok());
        assert!(e.check_store(0x1002, SECRET, None).is_ok());
    }

    #[test]
    fn record_mode_logs_without_failing() {
        let policy = SecurityPolicy::builder("t").sink("uart.tx", Tag::EMPTY).build();
        let mut e = DiftEngine::with_mode(policy, EnforceMode::Record);
        assert!(e.check_output("uart.tx", SECRET, None).is_ok());
        assert_eq!(e.violations().len(), 1);
        assert!(e.violated());
        let taken = e.take_violations();
        assert_eq!(taken.len(), 1);
        assert!(!e.violated());
    }

    #[test]
    fn reset_clears_everything() {
        let mut e = engine();
        let _ = e.check_output("uart.tx", SECRET, None);
        e.reset();
        assert!(!e.violated());
        assert_eq!(e.stats(), EngineStats::default());
    }

    #[test]
    fn mode_switching() {
        let mut e = engine();
        assert_eq!(e.mode(), EnforceMode::Enforce);
        e.set_mode(EnforceMode::Record);
        assert_eq!(e.mode(), EnforceMode::Record);
        assert!(e.check_output("uart.tx", SECRET, None).is_ok());
    }

    #[derive(Default)]
    struct TagChangeLog {
        changes: Vec<(String, Tag, Tag)>,
        checks: usize,
    }

    impl FlowObserver for TagChangeLog {
        fn on_check(&mut self, _: &ViolationKind, _: Tag, _: Tag, _: Option<u32>, _: bool) {
            self.checks += 1;
        }
        fn on_violation(&mut self, _: &Violation) {}
        fn on_tag_change(&mut self, site: &str, before: Tag, after: Tag) {
            self.changes.push((site.to_owned(), before, after));
        }
    }

    #[test]
    fn tag_change_fires_on_named_sites_only_when_tag_set_differs() {
        let mut e = engine();
        let log = shared(TagChangeLog::default());
        e.set_observer(log.clone());
        // First check at a named site: EMPTY -> EMPTY is not a change.
        assert!(e.check_output("uart.tx", Tag::EMPTY, None).is_ok());
        assert!(log.borrow().changes.is_empty());
        // Untrusted arrives: change EMPTY -> UNTRUSTED.
        assert!(e.check_output("uart.tx", UNTRUSTED, None).is_ok());
        // Same tag again: no new change.
        assert!(e.check_output("uart.tx", UNTRUSTED, None).is_ok());
        // Secret joins: change UNTRUSTED -> UNTRUSTED∪SECRET (a violation,
        // but the change still fires — it is evaluated pre-verdict).
        assert!(e.check_output("uart.tx", UNTRUSTED.lub(SECRET), None).is_err());
        // Anonymous CPU-side checks never fire tag changes.
        let _ = e.check_flow(ViolationKind::Branch, SECRET, Tag::EMPTY, None);
        let log = log.borrow();
        assert_eq!(
            log.changes,
            vec![
                ("uart.tx".into(), Tag::EMPTY, UNTRUSTED),
                ("uart.tx".into(), UNTRUSTED, UNTRUSTED.lub(SECRET)),
            ]
        );
        assert_eq!(log.checks, 5);
    }

    #[test]
    fn tag_change_tracks_store_regions_and_resets() {
        let mut e = engine();
        let log = shared(TagChangeLog::default());
        e.set_observer(log.clone());
        assert!(e.check_store(0x1000, SECRET, None).is_ok());
        assert_eq!(log.borrow().changes, vec![("pin".into(), Tag::EMPTY, SECRET)]);
        // reset() forgets per-site state: the same tag change fires again.
        e.reset();
        assert!(e.check_store(0x1000, SECRET, None).is_ok());
        assert_eq!(log.borrow().changes.len(), 2);
    }

    #[test]
    fn unobserved_engine_keeps_no_site_state() {
        let mut e = engine();
        let _ = e.check_output("uart.tx", SECRET, None);
        assert!(e.site_tags.is_empty(), "site tracking must be free under NullSink");
    }

    #[test]
    fn shared_engine_is_usable_through_refcell() {
        let shared = engine().into_shared();
        assert!(shared.borrow_mut().check_output("uart.tx", SECRET, None).is_err());
        assert_eq!(shared.borrow().violations().len(), 1);
    }
}
