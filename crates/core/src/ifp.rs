//! Ready-made Information Flow Policies — the lattices of the paper's
//! Fig. 1 plus helpers for the refined policies of §VI-A.
//!
//! Naming follows the paper: `HC`/`LC` = High/Low Confidentiality,
//! `HI`/`LI` = High/Low Integrity. IFP-3 is the product of IFP-1 and IFP-2.

use crate::lattice::{CompiledLattice, Lattice, LatticeBuilder};
use crate::tag::Tag;

/// IFP-1: confidentiality only. `LC → HC` allowed, never back.
///
/// ```
/// let l = vpdift_core::ifp::confidentiality();
/// let lc = l.class("LC").unwrap();
/// let hc = l.class("HC").unwrap();
/// assert!(l.allowed_flow(lc, hc) && !l.allowed_flow(hc, lc));
/// ```
pub fn confidentiality() -> Lattice {
    LatticeBuilder::new()
        .class("LC")
        .class("HC")
        .flow("LC", "HC")
        .build()
        .expect("IFP-1 is a valid lattice")
}

/// IFP-2: integrity only. `HI → LI` allowed (trusted data may reach
/// untrusted places), never back.
pub fn integrity() -> Lattice {
    LatticeBuilder::new()
        .class("HI")
        .class("LI")
        .flow("HI", "LI")
        .build()
        .expect("IFP-2 is a valid lattice")
}

/// IFP-3: confidentiality × integrity, the "natural combination" of
/// Example 1. Classes are `(LC,HI)`, `(HC,HI)`, `(LC,LI)`, `(HC,LI)`.
pub fn conf_integrity() -> Lattice {
    confidentiality().product(&integrity())
}

/// A linear chain `names[0] ⊑ names[1] ⊑ …` — handy for multi-level
/// confidentiality policies.
///
/// # Panics
/// Panics if `names` is empty or contains duplicates.
pub fn chain(names: &[&str]) -> Lattice {
    assert!(!names.is_empty(), "a chain needs at least one class");
    let mut b = LatticeBuilder::new();
    for n in names {
        b = b.class(n);
    }
    for w in names.windows(2) {
        b = b.flow(w[0], w[1]);
    }
    b.build().expect("chains are valid lattices")
}

/// The compiled tags for the classic IFP-3 policy, pre-bound to readable
/// fields. This is the workhorse policy for the immobilizer case study.
#[derive(Debug, Clone)]
pub struct Ifp3Tags {
    /// The compiled lattice (for reports and diagnostics).
    pub compiled: CompiledLattice,
    /// `(LC,HI)` — public and trusted: the bottom.
    pub public_trusted: Tag,
    /// `(HC,HI)` — secret but trusted (e.g. the PIN).
    pub secret: Tag,
    /// `(LC,LI)` — public but untrusted (external input).
    pub untrusted: Tag,
    /// `(HC,LI)` — secret and untrusted: the top.
    pub top: Tag,
}

/// Compiles IFP-3 and binds its four classes to named tags.
pub fn ifp3_tags() -> Ifp3Tags {
    let compiled = conf_integrity().compile().expect("IFP-3 is distributive");
    let t = |n: &str| compiled.tag_of(n).expect("IFP-3 class exists");
    Ifp3Tags {
        public_trusted: t("(LC,HI)"),
        secret: t("(HC,HI)"),
        untrusted: t("(LC,LI)"),
        top: t("(HC,LI)"),
        compiled,
    }
}

/// Atoms for the §VI-A *refined* immobilizer policy: one confidentiality
/// atom per PIN byte (plus the shared untrusted atom), so that overwriting
/// PIN byte *k* with PIN byte *j≠k* is a store-clearance violation even
/// though both bytes are trusted. Returns `(per_byte_secret_tags,
/// untrusted_tag)`.
///
/// This is the free (powerset) lattice over `n + 1` atoms; no explicit
/// [`Lattice`] object is needed because powersets are always distributive.
///
/// # Panics
/// Panics if `n + 1` exceeds [`Tag::CAPACITY`].
pub fn per_byte_pin_tags(n: usize) -> (Vec<Tag>, Tag) {
    assert!(
        (n as u32) < Tag::CAPACITY,
        "per-byte policy needs n+1 atoms, at most {}",
        Tag::CAPACITY
    );
    let untrusted = Tag::atom(n as u32);
    let per_byte = (0..n as u32).map(Tag::atom).collect();
    (per_byte, untrusted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ifp3_has_four_classes_and_expected_extremes() {
        let l = conf_integrity();
        assert_eq!(l.len(), 4);
        assert_eq!(l.name(l.bottom()), "(LC,HI)");
        assert_eq!(l.name(l.top()), "(HC,LI)");
    }

    #[test]
    fn ifp3_tags_follow_example_1() {
        let t = ifp3_tags();
        // LUB((LC,LI),(HC,HI)) = (HC,LI): untrusted AND secret.
        assert_eq!(t.untrusted.lub(t.secret), t.top);
        // Secret data may not reach an untrusted-cleared output.
        assert!(!t.secret.flows_to(t.untrusted));
        // Public trusted data may go anywhere.
        for dst in [t.public_trusted, t.secret, t.untrusted, t.top] {
            assert!(t.public_trusted.flows_to(dst));
        }
        // Untrusted data must not reach a trusted (HI) sink.
        assert!(!t.untrusted.flows_to(t.secret));
        assert!(!t.untrusted.flows_to(t.public_trusted));
    }

    #[test]
    fn chain_orders_linearly() {
        let l = chain(&["public", "confidential", "secret", "top-secret"]);
        let ids: Vec<_> = ["public", "confidential", "secret", "top-secret"]
            .iter()
            .map(|n| l.class(n).unwrap())
            .collect();
        for i in 0..ids.len() {
            for j in 0..ids.len() {
                assert_eq!(l.allowed_flow(ids[i], ids[j]), i <= j);
            }
        }
    }

    #[test]
    fn per_byte_tags_are_mutually_incomparable() {
        let (bytes, untrusted) = per_byte_pin_tags(16);
        assert_eq!(bytes.len(), 16);
        for (i, a) in bytes.iter().enumerate() {
            assert!(!a.flows_to(untrusted));
            assert!(!untrusted.flows_to(*a));
            for (j, b) in bytes.iter().enumerate() {
                assert_eq!(a.flows_to(*b), i == j, "bytes {i} vs {j}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "atoms")]
    fn per_byte_capacity_enforced() {
        let _ = per_byte_pin_tags(32);
    }

    #[test]
    fn all_fig1_lattices_compile() {
        for l in [confidentiality(), integrity(), conf_integrity()] {
            let c = l.compile().expect("Fig. 1 lattices are distributive");
            assert_eq!(c.tag(l.bottom()), Tag::EMPTY);
        }
    }
}
