//! Security tags as *taint-atom bitsets*.
//!
//! The paper represents each security class of the IFP as a small integer
//! tag and routes every `LUB` through a global policy function. We instead
//! encode each class as the **set of join-irreducible "taint atoms"** below
//! it in the lattice (see [`crate::lattice`]), which makes the two hot
//! operations context-free:
//!
//! * `LUB` is bitwise OR,
//! * `allowedFlow(x, y)` is the subset test `x ⊆ y`.
//!
//! This is sound for every distributive lattice (Birkhoff representation),
//! which covers all policies in the paper — IFP-1/2/3 and the per-PIN-byte
//! refinement. [`crate::lattice::Lattice::compile`] verifies soundness and
//! rejects non-distributive inputs.

use core::fmt;
use core::ops::{BitOr, BitOrAssign};

/// A security tag: a set of up to 32 taint atoms.
///
/// The empty tag is the lattice bottom (fully public / fully trusted data);
/// every set bit adds a restriction (e.g. "depends on the secret PIN" or
/// "influenced by untrusted input").
///
/// ```
/// use vpdift_core::Tag;
/// let conf = Tag::from_bits(0b01);
/// let untrusted = Tag::from_bits(0b10);
/// let both = conf.lub(untrusted);
/// assert!(conf.flows_to(both));
/// assert!(!both.flows_to(conf));
/// assert_eq!(both, conf | untrusted);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Tag(u32);

impl Tag {
    /// The bottom tag: public, trusted data with no restrictions.
    pub const EMPTY: Tag = Tag(0);
    /// Number of distinct atoms a [`Tag`] can hold.
    pub const CAPACITY: u32 = 32;

    /// Creates a tag from a raw atom bitmask.
    pub const fn from_bits(bits: u32) -> Self {
        Tag(bits)
    }

    /// Creates a tag containing the single atom `index`.
    ///
    /// # Panics
    /// Panics if `index >= Tag::CAPACITY`.
    pub const fn atom(index: u32) -> Self {
        assert!(index < Tag::CAPACITY, "taint atom index out of range");
        Tag(1 << index)
    }

    /// Raw atom bitmask.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// `true` iff no atoms are set (bottom / fully public & trusted).
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Least upper bound: the tag of data computed from both operands.
    #[must_use]
    pub const fn lub(self, other: Tag) -> Tag {
        Tag(self.0 | other.0)
    }

    /// `allowedFlow(self, dst)`: may data carrying this tag flow into a
    /// location/sink whose security class is `dst`?
    pub const fn flows_to(self, dst: Tag) -> bool {
        self.0 & !dst.0 == 0
    }

    /// `true` iff every atom of `other` is also set in `self`.
    pub const fn contains(self, other: Tag) -> bool {
        other.0 & !self.0 == 0
    }

    /// Set intersection of two tags (greatest lower bound).
    #[must_use]
    pub const fn glb(self, other: Tag) -> Tag {
        Tag(self.0 & other.0)
    }

    /// Removes the atoms of `other` — the *declassification* primitive.
    /// Only trusted peripherals may invoke this via
    /// [`DeclassifyCap`](crate::policy::DeclassifyCap).
    #[must_use]
    pub const fn without(self, other: Tag) -> Tag {
        Tag(self.0 & !other.0)
    }

    /// Number of atoms set.
    pub const fn atom_count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the indices of set atoms, ascending.
    pub fn atoms(self) -> impl Iterator<Item = u32> {
        let bits = self.0;
        (0..Tag::CAPACITY).filter(move |i| bits & (1 << i) != 0)
    }
}

impl BitOr for Tag {
    type Output = Tag;
    fn bitor(self, rhs: Tag) -> Tag {
        self.lub(rhs)
    }
}

impl BitOrAssign for Tag {
    fn bitor_assign(&mut self, rhs: Tag) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tag({:#b})", self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        write!(f, "{{")?;
        let mut first = true;
        for a in self.atoms() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Binary for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lub_is_union() {
        let a = Tag::from_bits(0b0011);
        let b = Tag::from_bits(0b0110);
        assert_eq!(a.lub(b), Tag::from_bits(0b0111));
        assert_eq!(a | b, a.lub(b));
        let mut c = a;
        c |= b;
        assert_eq!(c, Tag::from_bits(0b0111));
    }

    #[test]
    fn flow_is_subset() {
        let public = Tag::EMPTY;
        let secret = Tag::atom(0);
        assert!(public.flows_to(secret)); // LC -> HC fine
        assert!(!secret.flows_to(public)); // HC -> LC blocked
        assert!(secret.flows_to(secret));
    }

    #[test]
    fn declassify_removes_atoms() {
        let t = Tag::from_bits(0b1011);
        assert_eq!(t.without(Tag::from_bits(0b0010)), Tag::from_bits(0b1001));
        assert_eq!(t.without(t), Tag::EMPTY);
        // Removing atoms that are not set is a no-op.
        assert_eq!(t.without(Tag::from_bits(0b0100)), t);
    }

    #[test]
    fn atoms_iterate_ascending() {
        let t = Tag::from_bits(0b1010_0001);
        assert_eq!(t.atoms().collect::<Vec<_>>(), vec![0, 5, 7]);
        assert_eq!(t.atom_count(), 3);
    }

    #[test]
    fn lattice_laws_hold_for_or_encoding() {
        let vals = [0u32, 1, 2, 3, 0b101, 0b111, u32::MAX];
        for &x in &vals {
            for &y in &vals {
                for &z in &vals {
                    let (x, y, z) = (Tag::from_bits(x), Tag::from_bits(y), Tag::from_bits(z));
                    assert_eq!(x.lub(y), y.lub(x));
                    assert_eq!(x.lub(x), x);
                    assert_eq!(x.lub(y.lub(z)), x.lub(y).lub(z));
                    assert_eq!(x.lub(x.glb(y)), x); // absorption
                    assert_eq!(x.glb(x.lub(y)), x);
                }
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tag::EMPTY.to_string(), "∅");
        assert_eq!(Tag::from_bits(0b101).to_string(), "{0,2}");
        assert_eq!(format!("{:b}", Tag::from_bits(5)), "101");
        assert_eq!(format!("{:x}", Tag::from_bits(255)), "ff");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn atom_index_bounds_checked() {
        let _ = Tag::atom(32);
    }
}
