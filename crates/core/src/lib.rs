//! # vpdift-core — the DIFT engine
//!
//! The paper's primary contribution: a *Dynamic Information Flow Tracking*
//! engine designed to be woven into a virtual prototype so that security
//! policies can be developed and validated against embedded binaries before
//! hardware exists.
//!
//! The crate provides, bottom-up:
//!
//! * [`Tag`] — security classes as taint-atom bitsets; `LUB` is bitwise OR
//!   and `allowedFlow` is a subset test, both context-free.
//! * [`lattice`] — arbitrary finite IFP lattices with validation,
//!   the product construction (IFP-3 = IFP-1 × IFP-2), and verified
//!   compilation to the atom encoding.
//! * [`ifp`] — the ready-made lattices of the paper's Fig. 1.
//! * [`Taint<T>`](Taint) — the tagged value type of Fig. 3 with transparent
//!   operator overloading and TLM byte-lane conversion.
//! * [`policy`] — classification, clearance, execution clearance (§V-B2)
//!   and declassification grants.
//! * [`DiftEngine`] — run-time check evaluation, violation recording and
//!   statistics.
//!
//! ```
//! use vpdift_core::{ifp, DiftEngine, SecurityPolicy, Taint};
//!
//! // IFP-3 from the paper, compiled to tags.
//! let t = ifp::ifp3_tags();
//! let policy = SecurityPolicy::builder("immobilizer")
//!     .sink("can.tx", t.untrusted)        // (LC,LI) clearance on outputs
//!     .allow_declassify("aes")
//!     .build();
//! let mut engine = DiftEngine::new(policy);
//!
//! let pin = Taint::new(0x47u8, t.secret); // classified (HC,HI)
//! let challenge = Taint::new(0x11u8, t.untrusted);
//! let response = pin ^ challenge;          // toy "encryption"
//!
//! // Without declassification the response may not leave on CAN:
//! assert!(engine.check_output("can.tx", response.tag(), None).is_err());
//!
//! // The trusted AES peripheral declassifies the ciphertext:
//! let cap = engine.policy().grant_declassify("aes").unwrap();
//! let declassified = cap.reclassify(response, t.untrusted);
//! assert!(engine.check_output("can.tx", declassified.tag(), None).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod census;
mod engine;
mod error;
pub mod ifp;
pub mod lattice;
pub mod policy;
mod tag;
mod taint;
pub mod textpolicy;

pub use census::{SharedCensus, TaintCensus};
pub use engine::{
    DiftEngine, EnforceMode, EngineStats, FlowObserver, SharedEngine, SharedFlowObserver,
};
pub use error::{Violation, ViolationKind};
pub use lattice::{ClassId, CompiledLattice, Lattice, LatticeBuilder, LatticeError};
pub use policy::{AddrRange, DeclassifyCap, ExecClearance, SecurityPolicy, SecurityPolicyBuilder};
pub use tag::Tag;
pub use taint::{Taint, TaintWord};
pub use textpolicy::{parse_policy, AtomTable, PolicyParseError};
