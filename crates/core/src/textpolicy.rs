//! A small textual format for security policies, so policies can live in
//! files next to the firmware they govern (used by the `taintvp-run` CLI).
//!
//! ```text
//! # immobilizer policy (comments with '#')
//! policy immo-coarse
//!
//! atom secret                      # declare taint atoms (≤ 32)
//! atom untrusted
//!
//! source terminal.rx untrusted     # classification of inputs
//! source can.rx      untrusted
//! sink   uart.tx     untrusted     # clearance of outputs
//! sink   can.tx      untrusted
//!
//! classify 0x2000 +16 secret       # classify a memory region at load
//! protect  0x2000 +16 pin secret   # write clearance for a named region
//!
//! fetch-clearance   untrusted      # execution clearance (§V-B2)
//! branch-clearance  untrusted
//! memaddr-clearance untrusted
//!
//! declassify aes                   # trusted declassifier components
//! ```
//!
//! Tag expressions are atom names joined with `|`, or the keyword
//! `public` (the empty/bottom tag).

use core::fmt;
use std::collections::HashMap;

use crate::policy::{AddrRange, SecurityPolicy, SecurityPolicyBuilder};
use crate::tag::Tag;

/// Errors from [`parse_policy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyParseError {}

fn err(line: usize, message: impl Into<String>) -> PolicyParseError {
    PolicyParseError { line, message: message.into() }
}

/// The atom names declared by a parsed policy, for mapping tags back to
/// human-readable form.
#[derive(Debug, Clone, Default)]
pub struct AtomTable {
    names: Vec<String>,
}

impl AtomTable {
    /// Builds a table directly from atom names, in bit order — for tools
    /// and tests that label atoms without parsing a policy file.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        AtomTable { names: names.into_iter().map(Into::into).collect() }
    }

    /// Resolves a declared atom by name.
    pub fn tag(&self, name: &str) -> Option<Tag> {
        self.names.iter().position(|n| n == name).map(|i| Tag::atom(i as u32))
    }

    /// The name of `atom`, when one was declared for it.
    pub fn name(&self, atom: u32) -> Option<&str> {
        self.names.get(atom as usize).map(String::as_str)
    }

    /// Renders a tag as a `|`-joined list of atom names.
    pub fn describe(&self, tag: Tag) -> String {
        if tag.is_empty() {
            return "public".into();
        }
        let parts: Vec<&str> = tag
            .atoms()
            .map(|i| self.names.get(i as usize).map(String::as_str).unwrap_or("?"))
            .collect();
        parts.join("|")
    }

    /// Declared atom names, in bit order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

fn parse_u32(tok: &str, line: usize) -> Result<u32, PolicyParseError> {
    let t = tok.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        t.parse()
    }
    .map_err(|_| err(line, format!("bad number `{tok}`")))
}

fn parse_range(a: &str, b: &str, line: usize) -> Result<AddrRange, PolicyParseError> {
    let start = parse_u32(a, line)?;
    if let Some(len) = b.strip_prefix('+') {
        let len = parse_u32(len, line)?;
        if len == 0 {
            return Err(err(line, "region length must be non-zero"));
        }
        Ok(AddrRange::new(start, len))
    } else {
        let end = parse_u32(b, line)?;
        if end <= start {
            return Err(err(line, format!("empty region {a}..{b}")));
        }
        Ok(AddrRange::new(start, end - start))
    }
}

fn parse_tag(
    expr: &str,
    atoms: &HashMap<String, u32>,
    line: usize,
) -> Result<Tag, PolicyParseError> {
    let e = expr.trim();
    if e == "public" || e == "bottom" {
        return Ok(Tag::EMPTY);
    }
    let mut tag = Tag::EMPTY;
    for part in e.split('|') {
        let name = part.trim();
        let &bit = atoms
            .get(name)
            .ok_or_else(|| err(line, format!("unknown atom `{name}` (declare with `atom`)")))?;
        tag |= Tag::atom(bit);
    }
    Ok(tag)
}

/// Parses the textual policy format.
///
/// # Errors
/// [`PolicyParseError`] with the offending line.
pub fn parse_policy(source: &str) -> Result<(SecurityPolicy, AtomTable), PolicyParseError> {
    let mut name = "text-policy".to_owned();
    let mut atoms: HashMap<String, u32> = HashMap::new();
    let mut table = AtomTable::default();
    // First pass: name + atoms (so tags can be referenced anywhere).
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("policy") => {
                name = toks.next().ok_or_else(|| err(line_no, "`policy` needs a name"))?.to_owned();
            }
            Some("atom") => {
                let atom =
                    toks.next().ok_or_else(|| err(line_no, "`atom` needs a name"))?.to_owned();
                if atoms.contains_key(&atom) {
                    return Err(err(line_no, format!("duplicate atom `{atom}`")));
                }
                let bit = atoms.len() as u32;
                if bit >= Tag::CAPACITY {
                    return Err(err(line_no, "too many atoms (max 32)"));
                }
                atoms.insert(atom.clone(), bit);
                table.names.push(atom);
            }
            _ => {}
        }
    }

    let mut builder: SecurityPolicyBuilder = SecurityPolicy::builder(&name);
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "policy" | "atom" => {} // handled in the first pass
            "source" => {
                if toks.len() != 3 {
                    return Err(err(line_no, "usage: source <name> <tag>"));
                }
                builder = builder.source(toks[1], parse_tag(toks[2], &atoms, line_no)?);
            }
            "sink" => {
                if toks.len() != 3 {
                    return Err(err(line_no, "usage: sink <name> <tag>"));
                }
                builder = builder.sink(toks[1], parse_tag(toks[2], &atoms, line_no)?);
            }
            "classify" => {
                if toks.len() != 4 {
                    return Err(err(line_no, "usage: classify <start> <end|+len> <tag>"));
                }
                let range = parse_range(toks[1], toks[2], line_no)?;
                let tag = parse_tag(toks[3], &atoms, line_no)?;
                builder =
                    builder.classify_region(&format!("classify@{:#x}", range.start), range, tag);
            }
            "protect" => {
                if toks.len() != 5 {
                    return Err(err(line_no, "usage: protect <start> <end|+len> <name> <tag>"));
                }
                let range = parse_range(toks[1], toks[2], line_no)?;
                let tag = parse_tag(toks[4], &atoms, line_no)?;
                builder = builder.protect_region(toks[3], range, tag);
            }
            "classify-protect" => {
                if toks.len() != 5 {
                    return Err(err(
                        line_no,
                        "usage: classify-protect <start> <end|+len> <name> <tag>",
                    ));
                }
                let range = parse_range(toks[1], toks[2], line_no)?;
                let tag = parse_tag(toks[4], &atoms, line_no)?;
                builder = builder.classify_and_protect(toks[3], range, tag, tag);
            }
            "fetch-clearance" => {
                if toks.len() != 2 {
                    return Err(err(line_no, "usage: fetch-clearance <tag>"));
                }
                builder = builder.fetch_clearance(parse_tag(toks[1], &atoms, line_no)?);
            }
            "branch-clearance" => {
                if toks.len() != 2 {
                    return Err(err(line_no, "usage: branch-clearance <tag>"));
                }
                builder = builder.branch_clearance(parse_tag(toks[1], &atoms, line_no)?);
            }
            "memaddr-clearance" => {
                if toks.len() != 2 {
                    return Err(err(line_no, "usage: memaddr-clearance <tag>"));
                }
                builder = builder.mem_addr_clearance(parse_tag(toks[1], &atoms, line_no)?);
            }
            "declassify" => {
                if toks.len() != 2 {
                    return Err(err(line_no, "usage: declassify <component>"));
                }
                builder = builder.allow_declassify(toks[1]);
            }
            other => return Err(err(line_no, format!("unknown directive `{other}`"))),
        }
    }
    Ok((builder.build(), table))
}

#[cfg(test)]
mod tests {
    use super::*;

    const IMMO: &str = r#"
# the immobilizer coarse policy
policy immo-coarse
atom secret
atom untrusted

source terminal.rx untrusted
source can.rx untrusted
sink uart.tx untrusted
sink can.tx untrusted
classify-protect 0x2000 +16 pin secret
fetch-clearance untrusted
branch-clearance untrusted
memaddr-clearance untrusted
declassify aes
"#;

    #[test]
    fn parses_the_immobilizer_policy() {
        let (p, atoms) = parse_policy(IMMO).unwrap();
        assert_eq!(p.name(), "immo-coarse");
        let secret = atoms.tag("secret").unwrap();
        let untrusted = atoms.tag("untrusted").unwrap();
        assert_ne!(secret, untrusted);
        assert_eq!(p.source_tag("terminal.rx"), untrusted);
        assert_eq!(p.sink_clearance("uart.tx"), Some(untrusted));
        assert_eq!(p.classify_at(0x2005), Some(secret));
        assert_eq!(p.write_clearance_at(0x200F).unwrap().1, secret);
        assert_eq!(p.classify_at(0x2010), None);
        assert_eq!(p.exec().fetch, Some(untrusted));
        assert!(p.may_declassify("aes"));
        assert_eq!(atoms.describe(secret | untrusted), "secret|untrusted");
        assert_eq!(atoms.describe(Tag::EMPTY), "public");
    }

    #[test]
    fn tag_unions_and_keywords() {
        let src = "atom a\natom b\nsink s a|b\nsink t public\n";
        let (p, atoms) = parse_policy(src).unwrap();
        assert_eq!(p.sink_clearance("s"), Some(atoms.tag("a").unwrap() | atoms.tag("b").unwrap()));
        assert_eq!(p.sink_clearance("t"), Some(Tag::EMPTY));
    }

    #[test]
    fn range_forms() {
        let src = "atom a\nclassify 0x100 0x104 a\nclassify 0x200 +8 a\n";
        let (p, _) = parse_policy(src).unwrap();
        assert!(p.classify_at(0x103).is_some());
        assert!(p.classify_at(0x104).is_none());
        assert!(p.classify_at(0x207).is_some());
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = parse_policy("atom a\nsink s nosuch\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("nosuch"));
        let e = parse_policy("bogus x\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_policy("atom a\natom a\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = parse_policy("atom a\nclassify 0x10 0x10 a\n").unwrap_err();
        assert!(e.message.contains("empty"));
    }

    #[test]
    fn atom_capacity_enforced() {
        let mut src = String::new();
        for i in 0..33 {
            src.push_str(&format!("atom a{i}\n"));
        }
        let e = parse_policy(&src).unwrap_err();
        assert!(e.message.contains("too many"));
    }

    #[test]
    fn forward_atom_references_work() {
        // Atoms are gathered in a first pass, so order doesn't matter.
        let src = "sink s late\natom late\n";
        let (p, atoms) = parse_policy(src).unwrap();
        assert_eq!(p.sink_clearance("s"), Some(atoms.tag("late").unwrap()));
    }
}
