//! Security policies: classification, clearance, execution clearance and
//! declassification grants (paper §IV-A and §V-B2).
//!
//! A [`SecurityPolicy`] is pure configuration — it owns no simulation state.
//! The [`crate::engine::DiftEngine`] evaluates checks against it at
//! run-time, and the SoC applies its classification rules when loading
//! programs and wiring peripherals.

use core::fmt;
use std::collections::{HashMap, HashSet};

use crate::tag::Tag;
use crate::taint::Taint;

/// A half-open address range `[start, end)` in the SoC physical address
/// space.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct AddrRange {
    /// First address covered.
    pub start: u32,
    /// One past the last address covered.
    pub end: u32,
}

impl AddrRange {
    /// Builds a range from start and length.
    ///
    /// # Panics
    /// Panics if the range would overflow the 32-bit address space or is empty.
    pub fn new(start: u32, len: u32) -> Self {
        assert!(len > 0, "empty address range");
        let end = start.checked_add(len).expect("address range overflows u32");
        AddrRange { start, end }
    }

    /// `true` iff `addr` lies inside the range.
    pub const fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Number of bytes covered.
    pub const fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Ranges are never empty by construction.
    pub const fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#010x},{:#010x})", self.start, self.end)
    }
}

/// A rule attached to a memory region.
#[derive(Clone, Debug)]
pub struct RegionRule {
    /// Diagnostic name (e.g. `"immo.pin"`).
    pub name: String,
    /// Addresses the rule covers.
    pub range: AddrRange,
    /// Tag stamped onto the region's bytes at classification time (program
    /// load / reset), if any.
    pub classify: Option<Tag>,
    /// Clearance required of *data written into* the region (integrity
    /// protection), if any. A write of data whose tag does not flow to this
    /// clearance is a [`crate::ViolationKind::Store`] violation.
    pub write_clearance: Option<Tag>,
}

/// Execution clearances for the three implicit-flow-relevant CPU operations
/// identified in §V-B2. `None` disables the corresponding check.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecClearance {
    /// Required clearance of every fetched instruction word.
    pub fetch: Option<Tag>,
    /// Required clearance of branch/jump conditions and indirect targets
    /// (also applied to trap-vector addresses).
    pub branch: Option<Tag>,
    /// Required clearance of load/store effective addresses.
    pub mem_addr: Option<Tag>,
}

impl ExecClearance {
    /// No execution-clearance checking at all (the plain-VP behaviour).
    pub const UNCHECKED: ExecClearance =
        ExecClearance { fetch: None, branch: None, mem_addr: None };

    /// The paper's "safe approximation": require `clearance` on all three
    /// operations.
    pub const fn uniform(clearance: Tag) -> Self {
        ExecClearance { fetch: Some(clearance), branch: Some(clearance), mem_addr: Some(clearance) }
    }
}

/// A complete security policy.
///
/// Build one with [`SecurityPolicy::builder`]:
///
/// ```
/// use vpdift_core::{policy::SecurityPolicy, Tag};
/// let untrusted = Tag::atom(0);
/// let policy = SecurityPolicy::builder("code-injection")
///     .source("terminal.rx", untrusted)
///     .sink("uart.tx", untrusted)          // untrusted data may leave
///     .fetch_clearance(Tag::EMPTY)         // but never execute
///     .build();
/// assert_eq!(policy.source_tag("terminal.rx"), untrusted);
/// assert_eq!(policy.exec().fetch, Some(Tag::EMPTY));
/// ```
#[derive(Clone, Debug)]
pub struct SecurityPolicy {
    name: String,
    exec: ExecClearance,
    regions: Vec<RegionRule>,
    sinks: HashMap<String, Tag>,
    sources: HashMap<String, Tag>,
    declass_grants: HashSet<String>,
}

impl SecurityPolicy {
    /// Starts building a policy.
    pub fn builder(name: &str) -> SecurityPolicyBuilder {
        SecurityPolicyBuilder {
            policy: SecurityPolicy {
                name: name.to_owned(),
                exec: ExecClearance::UNCHECKED,
                regions: Vec::new(),
                sinks: HashMap::new(),
                sources: HashMap::new(),
                declass_grants: HashSet::new(),
            },
        }
    }

    /// A permissive policy that classifies nothing and checks nothing —
    /// the behaviour of the original (non-DIFT) VP.
    pub fn permissive() -> SecurityPolicy {
        SecurityPolicy::builder("permissive").build()
    }

    /// Policy name, for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The execution clearances.
    pub fn exec(&self) -> ExecClearance {
        self.exec
    }

    /// Classification tag of an input source; untagged sources produce
    /// bottom (public, trusted) data.
    pub fn source_tag(&self, source: &str) -> Tag {
        self.sources.get(source).copied().unwrap_or(Tag::EMPTY)
    }

    /// Clearance of an output sink; unlisted sinks are unchecked (`None`).
    pub fn sink_clearance(&self, sink: &str) -> Option<Tag> {
        self.sinks.get(sink).copied()
    }

    /// All region rules, in declaration order.
    pub fn regions(&self) -> &[RegionRule] {
        &self.regions
    }

    /// The first region rule covering `addr` that declares a write
    /// clearance.
    pub fn write_clearance_at(&self, addr: u32) -> Option<(&RegionRule, Tag)> {
        self.regions
            .iter()
            .find_map(|r| r.write_clearance.filter(|_| r.range.contains(addr)).map(|t| (r, t)))
    }

    /// The classification tag for `addr` at load time, if any rule covers it.
    pub fn classify_at(&self, addr: u32) -> Option<Tag> {
        self.regions.iter().find_map(|r| r.classify.filter(|_| r.range.contains(addr)))
    }

    /// Issues a declassification capability to `component`, if the policy
    /// trusts it. Only trusted HW peripherals should ever be granted one
    /// (paper §IV-A).
    pub fn grant_declassify(&self, component: &str) -> Option<DeclassifyCap> {
        self.declass_grants
            .contains(component)
            .then(|| DeclassifyCap { holder: component.to_owned() })
    }

    /// `true` iff `component` holds a declassification grant.
    pub fn may_declassify(&self, component: &str) -> bool {
        self.declass_grants.contains(component)
    }

    /// The union of every atom the policy mentions anywhere — source tags,
    /// sink clearances, region classification and write clearances, and
    /// execution clearances.
    ///
    /// A tag carrying atoms *outside* this universe cannot have been
    /// produced by any legitimate classification under this policy; the
    /// engine treats such tags as corrupted state and fails closed (see
    /// [`crate::DiftEngine`]'s fail-closed rule).
    pub fn atom_universe(&self) -> Tag {
        let mut u = Tag::EMPTY;
        for t in self.sources.values().chain(self.sinks.values()) {
            u = u.lub(*t);
        }
        for r in &self.regions {
            if let Some(t) = r.classify {
                u = u.lub(t);
            }
            if let Some(t) = r.write_clearance {
                u = u.lub(t);
            }
        }
        for t in [self.exec.fetch, self.exec.branch, self.exec.mem_addr].into_iter().flatten() {
            u = u.lub(t);
        }
        u
    }
}

/// Builder for [`SecurityPolicy`]; see there for an example.
#[derive(Clone, Debug)]
pub struct SecurityPolicyBuilder {
    policy: SecurityPolicy,
}

impl SecurityPolicyBuilder {
    /// Assigns a classification tag to data entering from `source`.
    #[must_use]
    pub fn source(mut self, source: &str, tag: Tag) -> Self {
        self.policy.sources.insert(source.to_owned(), tag);
        self
    }

    /// Assigns an output clearance to `sink`.
    #[must_use]
    pub fn sink(mut self, sink: &str, clearance: Tag) -> Self {
        self.policy.sinks.insert(sink.to_owned(), clearance);
        self
    }

    /// Adds a region rule that classifies bytes at load time.
    #[must_use]
    pub fn classify_region(mut self, name: &str, range: AddrRange, tag: Tag) -> Self {
        self.policy.regions.push(RegionRule {
            name: name.to_owned(),
            range,
            classify: Some(tag),
            write_clearance: None,
        });
        self
    }

    /// Adds a region rule that requires `clearance` of all data stored into
    /// `range` (integrity protection).
    #[must_use]
    pub fn protect_region(mut self, name: &str, range: AddrRange, clearance: Tag) -> Self {
        self.policy.regions.push(RegionRule {
            name: name.to_owned(),
            range,
            classify: None,
            write_clearance: Some(clearance),
        });
        self
    }

    /// Adds a region rule with both classification and write clearance.
    #[must_use]
    pub fn classify_and_protect(
        mut self,
        name: &str,
        range: AddrRange,
        classify: Tag,
        write_clearance: Tag,
    ) -> Self {
        self.policy.regions.push(RegionRule {
            name: name.to_owned(),
            range,
            classify: Some(classify),
            write_clearance: Some(write_clearance),
        });
        self
    }

    /// Sets the instruction-fetch execution clearance.
    #[must_use]
    pub fn fetch_clearance(mut self, clearance: Tag) -> Self {
        self.policy.exec.fetch = Some(clearance);
        self
    }

    /// Sets the branch-condition execution clearance.
    #[must_use]
    pub fn branch_clearance(mut self, clearance: Tag) -> Self {
        self.policy.exec.branch = Some(clearance);
        self
    }

    /// Sets the memory-address execution clearance.
    #[must_use]
    pub fn mem_addr_clearance(mut self, clearance: Tag) -> Self {
        self.policy.exec.mem_addr = Some(clearance);
        self
    }

    /// Sets all three execution clearances at once.
    #[must_use]
    pub fn exec_clearance(mut self, exec: ExecClearance) -> Self {
        self.policy.exec = exec;
        self
    }

    /// Grants `component` the right to declassify data.
    #[must_use]
    pub fn allow_declassify(mut self, component: &str) -> Self {
        self.policy.declass_grants.insert(component.to_owned());
        self
    }

    /// Finishes the policy.
    pub fn build(self) -> SecurityPolicy {
        self.policy
    }
}

/// A capability to declassify data, issued by
/// [`SecurityPolicy::grant_declassify`] only to components the policy
/// trusts. Possession of the capability *is* the authorization, so
/// peripherals holding one (e.g. the AES engine) can lower tags without
/// consulting the engine on every datum.
#[derive(Clone, Debug)]
pub struct DeclassifyCap {
    holder: String,
}

impl DeclassifyCap {
    /// Name of the component the capability was issued to.
    pub fn holder(&self) -> &str {
        &self.holder
    }

    /// Removes `atoms` from the tag of `value`.
    #[must_use]
    pub fn declassify<T>(&self, value: Taint<T>, atoms: Tag) -> Taint<T> {
        let tag = value.tag().without(atoms);
        value.retagged(tag)
    }

    /// Re-tags `value` to exactly `tag` (full reclassification).
    #[must_use]
    pub fn reclassify<T>(&self, value: Taint<T>, tag: Tag) -> Taint<T> {
        value.retagged(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: Tag = Tag::from_bits(0b01);
    const UNTRUSTED: Tag = Tag::from_bits(0b10);

    #[test]
    fn addr_range_semantics() {
        let r = AddrRange::new(0x100, 0x10);
        assert!(r.contains(0x100) && r.contains(0x10F));
        assert!(!r.contains(0x110) && !r.contains(0xFF));
        assert_eq!(r.len(), 0x10);
        assert_eq!(r.to_string(), "[0x00000100,0x00000110)");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn addr_range_rejects_empty() {
        let _ = AddrRange::new(0, 0);
    }

    #[test]
    fn region_lookup_first_match_wins() {
        let p = SecurityPolicy::builder("t")
            .classify_and_protect("pin", AddrRange::new(0x1000, 16), SECRET, SECRET)
            .protect_region("all-ram", AddrRange::new(0, 0x10000), UNTRUSTED)
            .build();
        let (rule, clearance) = p.write_clearance_at(0x1005).unwrap();
        assert_eq!(rule.name, "pin");
        assert_eq!(clearance, SECRET);
        assert_eq!(p.classify_at(0x1005), Some(SECRET));
        assert_eq!(p.classify_at(0x2000), None);
        let (rule, _) = p.write_clearance_at(0x2000).unwrap();
        assert_eq!(rule.name, "all-ram");
        assert!(p.write_clearance_at(0x2000_0000).is_none());
    }

    #[test]
    fn sources_and_sinks_default_open() {
        let p = SecurityPolicy::builder("t")
            .source("can.rx", UNTRUSTED)
            .sink("can.tx", UNTRUSTED)
            .build();
        assert_eq!(p.source_tag("can.rx"), UNTRUSTED);
        assert_eq!(p.source_tag("unknown"), Tag::EMPTY);
        assert_eq!(p.sink_clearance("can.tx"), Some(UNTRUSTED));
        assert_eq!(p.sink_clearance("unknown"), None);
    }

    #[test]
    fn declassify_requires_grant() {
        let p = SecurityPolicy::builder("t").allow_declassify("aes").build();
        assert!(p.may_declassify("aes"));
        assert!(!p.may_declassify("uart"));
        assert!(p.grant_declassify("uart").is_none());
        let cap = p.grant_declassify("aes").unwrap();
        assert_eq!(cap.holder(), "aes");
        let ct = Taint::new(0xAAu8, SECRET.lub(UNTRUSTED));
        assert_eq!(cap.declassify(ct, SECRET).tag(), UNTRUSTED);
        assert_eq!(cap.reclassify(ct, Tag::EMPTY).tag(), Tag::EMPTY);
    }

    #[test]
    fn exec_clearance_uniform_and_unchecked() {
        assert_eq!(ExecClearance::UNCHECKED.fetch, None);
        let u = ExecClearance::uniform(Tag::EMPTY);
        assert_eq!(u.fetch, Some(Tag::EMPTY));
        assert_eq!(u.branch, Some(Tag::EMPTY));
        assert_eq!(u.mem_addr, Some(Tag::EMPTY));
        let p = SecurityPolicy::builder("t")
            .branch_clearance(SECRET)
            .mem_addr_clearance(UNTRUSTED)
            .build();
        assert_eq!(p.exec().branch, Some(SECRET));
        assert_eq!(p.exec().mem_addr, Some(UNTRUSTED));
        assert_eq!(p.exec().fetch, None);
    }

    #[test]
    fn atom_universe_unions_every_mention() {
        let p = SecurityPolicy::builder("t")
            .source("can.rx", UNTRUSTED)
            .sink("uart.tx", Tag::EMPTY)
            .classify_region("s", AddrRange::new(0, 4), SECRET)
            .protect_region("p", AddrRange::new(8, 4), Tag::atom(4))
            .branch_clearance(Tag::atom(5))
            .build();
        let u = p.atom_universe();
        for atom in [0, 1, 4, 5] {
            assert!(u.contains(Tag::atom(atom)), "atom {atom}");
        }
        assert_eq!(u.atom_count(), 4);
        assert_eq!(SecurityPolicy::permissive().atom_universe(), Tag::EMPTY);
    }

    #[test]
    fn permissive_checks_nothing() {
        let p = SecurityPolicy::permissive();
        assert_eq!(p.exec(), ExecClearance::UNCHECKED);
        assert!(p.regions().is_empty());
        assert_eq!(p.sink_clearance("uart.tx"), None);
    }
}
