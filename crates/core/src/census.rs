//! Live-tag census: a one-way latch telling fast execution engines
//! whether any taint can be live in the VP.
//!
//! The tainted VP pays for tag propagation and clearance checks on every
//! instruction, even while *no tag exists anywhere* — which is the common
//! case before the first classification source fires (demand-driven DIFT
//! designs such as PAGURUS exploit exactly this). The census is the cheap
//! side of that optimisation: every component that can *introduce* a
//! non-empty tag into architectural state (host classification, tagged DMA
//! writes, tagged MMIO read data, tag-bit fault injection) calls
//! [`TaintCensus::arm`]. While the census is still clear, all register,
//! RAM and peripheral tags are provably [`Tag::EMPTY`](crate::Tag::EMPTY),
//! so every clearance check trivially passes and an engine may skip them.
//!
//! The latch is deliberately one-way: once armed it stays armed for the
//! rest of the run. Tracking taint *death* would require a full census
//! over registers + memory on every kill site, which is exactly the cost
//! the fast path avoids. A one-way latch is sound (never skips a check
//! that could fail) at the price of not re-entering the fast path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One-way latch recording whether any non-empty tag may be live.
///
/// Shared via [`SharedCensus`] between the tag sources (RAM classification,
/// DMA, MMIO) and the execution engine that wants to gate checks on it.
#[derive(Debug, Default)]
pub struct TaintCensus {
    live: AtomicBool,
    arms: AtomicU64,
}

impl TaintCensus {
    /// A fresh, clear census.
    pub fn new() -> Self {
        TaintCensus::default()
    }

    /// Wraps the census for sharing.
    pub fn into_shared(self) -> SharedCensus {
        Arc::new(self)
    }

    /// Latches the census: some non-empty tag has entered architectural
    /// state. Idempotent; counts arming events for diagnostics.
    #[inline]
    pub fn arm(&self) {
        self.live.store(true, Ordering::Relaxed);
        self.arms.fetch_add(1, Ordering::Relaxed);
    }

    /// `true` once any tag source has fired. While `false`, all
    /// architectural tags are empty and clearance checks cannot fail.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.live.load(Ordering::Relaxed)
    }

    /// Number of arming events seen (≥ 1 iff [`is_live`](Self::is_live)).
    pub fn arm_events(&self) -> u64 {
        self.arms.load(Ordering::Relaxed)
    }
}

/// A census as shared between tag sources and execution engines.
pub type SharedCensus = Arc<TaintCensus>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_is_one_way() {
        let c = TaintCensus::new().into_shared();
        assert!(!c.is_live());
        assert_eq!(c.arm_events(), 0);
        c.arm();
        c.arm();
        assert!(c.is_live());
        assert_eq!(c.arm_events(), 2);
    }

    #[test]
    fn shared_handles_observe_the_same_latch() {
        let a = TaintCensus::new().into_shared();
        let b = a.clone();
        b.arm();
        assert!(a.is_live());
    }
}
