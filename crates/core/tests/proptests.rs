//! Property-based tests for the DIFT core invariants.

use proptest::prelude::*;
use vpdift_core::lattice::LatticeBuilder;
use vpdift_core::{Tag, Taint};

fn tag_strategy() -> impl Strategy<Value = Tag> {
    any::<u32>().prop_map(Tag::from_bits)
}

proptest! {
    /// LUB on tags is a join-semilattice: commutative, associative,
    /// idempotent, with EMPTY as identity.
    #[test]
    fn tag_lub_laws(a in tag_strategy(), b in tag_strategy(), c in tag_strategy()) {
        prop_assert_eq!(a.lub(b), b.lub(a));
        prop_assert_eq!(a.lub(a), a);
        prop_assert_eq!(a.lub(b.lub(c)), a.lub(b).lub(c));
        prop_assert_eq!(a.lub(Tag::EMPTY), a);
    }

    /// `flows_to` is the partial order induced by LUB: a ⊑ b ⇔ a∨b = b.
    #[test]
    fn flow_consistent_with_lub(a in tag_strategy(), b in tag_strategy()) {
        prop_assert_eq!(a.flows_to(b), a.lub(b) == b);
        // Reflexivity and monotonicity of LUB.
        prop_assert!(a.flows_to(a));
        prop_assert!(a.flows_to(a.lub(b)));
        prop_assert!(b.flows_to(a.lub(b)));
    }

    /// Declassification removes exactly the requested atoms and is the only
    /// tag-lowering operation: `without` then `lub` never exceeds original∪removed.
    #[test]
    fn declassify_algebra(a in tag_strategy(), r in tag_strategy()) {
        let d = a.without(r);
        prop_assert!(d.flows_to(a));
        prop_assert_eq!(d.glb(r), Tag::EMPTY);
        prop_assert_eq!(d.lub(a.glb(r)), a);
    }

    /// Taint propagation through arithmetic never *drops* taint: the result
    /// tag always contains both operand tags ("no silent declassification").
    #[test]
    fn arithmetic_is_taint_monotone(
        x in any::<u32>(), y in any::<u32>(),
        ta in tag_strategy(), tb in tag_strategy(),
    ) {
        let a = Taint::new(x, ta);
        let b = Taint::new(y, tb);
        for r in [
            a.wrapping_add(b), a.wrapping_sub(b), a.wrapping_mul(b),
            a & b, a | b, a ^ b,
        ] {
            prop_assert!(ta.flows_to(r.tag()));
            prop_assert!(tb.flows_to(r.tag()));
            prop_assert_eq!(r.tag(), ta.lub(tb));
        }
        prop_assert_eq!((!a).tag(), ta);
        prop_assert_eq!(a.tv_eq(b).tag(), ta.lub(tb));
    }

    /// Byte-lane round trip: `from_bytes(to_bytes(w)) == w` for all values
    /// and tags, and per-byte tags LUB into the word tag.
    #[test]
    fn byte_lane_round_trip(v in any::<u64>(), t in tag_strategy()) {
        let w = Taint::new(v, t);
        let mut lanes = [Taint::untainted(0u8); 8];
        w.to_bytes(&mut lanes);
        let back: Taint<u64> = Taint::from_bytes(&lanes);
        prop_assert_eq!(back.value(), v);
        prop_assert_eq!(back.tag(), t);
    }

    /// Mixed-tag byte lanes reassemble with the exact LUB of lane tags.
    #[test]
    fn byte_lane_lub(vals in prop::array::uniform4(any::<u8>()),
                     tags in prop::array::uniform4(tag_strategy())) {
        let lanes: Vec<Taint<u8>> =
            vals.iter().zip(&tags).map(|(&v, &t)| Taint::new(v, t)).collect();
        let w: Taint<u32> = Taint::from_bytes(&lanes);
        let expect = tags.iter().fold(Tag::EMPTY, |acc, &t| acc.lub(t));
        prop_assert_eq!(w.tag(), expect);
        prop_assert_eq!(w.value(), u32::from_le_bytes(vals));
    }
}

/// Strategy producing random *valid* lattices: layered DAGs with a shared
/// bottom and top, which always form a lattice when every middle class is
/// connected to both.
fn fence_lattice(middles: usize) -> vpdift_core::Lattice {
    let mut b = LatticeBuilder::new().class("bot").class("top");
    for i in 0..middles {
        let name = format!("m{i}");
        b = b.class(&name).flow("bot", &name).flow(&name, "top");
    }
    b = b.flow("bot", "top");
    b.build().expect("fence lattices are valid")
}

proptest! {
    /// For every compilable lattice, the atom encoding agrees with the
    /// table semantics on all pairs (soundness of `compile`), here checked
    /// on the "fence" family M(k) — which is non-distributive for k ≥ 3 and
    /// must be *rejected*, and distributive for k ≤ 2 and must round-trip.
    #[test]
    fn compile_soundness_fence_family(k in 0usize..6) {
        let l = fence_lattice(k);
        match l.compile() {
            Ok(c) => {
                prop_assert!(k <= 2, "M({k}) with k >= 3 is not distributive");
                for a in l.classes() {
                    for b in l.classes() {
                        prop_assert_eq!(
                            l.allowed_flow(a, b),
                            c.tag(a).flows_to(c.tag(b))
                        );
                        prop_assert_eq!(c.tag(l.lub(a, b)), c.tag(a).lub(c.tag(b)));
                    }
                }
            }
            Err(e) => {
                prop_assert!(k >= 3, "M({k}) should compile but got {e}");
            }
        }
    }

    /// Product lattices preserve component-wise flow and LUB.
    #[test]
    fn product_componentwise(seed in 0usize..4) {
        let a = vpdift_core::ifp::confidentiality();
        let b = vpdift_core::ifp::integrity();
        let p = a.product(&b);
        let classes: Vec<_> = p.classes().collect();
        let x = classes[seed % classes.len()];
        let y = classes[(seed * 7 + 1) % classes.len()];
        // Flow in the product implies the LUB equals the target when x ⊑ y.
        if p.allowed_flow(x, y) {
            prop_assert_eq!(p.lub(x, y), y);
        }
        prop_assert_eq!(p.lub(x, x), x);
        prop_assert!(p.allowed_flow(p.bottom(), x));
        prop_assert!(p.allowed_flow(x, p.top()));
    }
}
