//! Execution engines: the predecoded basic-block cache and its
//! taint-idle fast path.
//!
//! The interpreter ([`Cpu::step`]) re-fetches and re-decodes every
//! instruction from memory on every step — simple, and the reference
//! semantics. This module adds a second engine, [`BlockCache`], that
//! decodes straight-line code once into flat per-block instruction
//! vectors and afterwards dispatches from the cache. Two mechanisms keep
//! it observably identical to the interpreter:
//!
//! * **Self-modifying-code invalidation.** Every retired CPU store
//!   reports its `(addr, size)` back to the engine, which checks it
//!   against a per-64-byte-line refcount of cached code and kills any
//!   overlapping blocks (the Wilander–Kamkar attack suite *injects* code,
//!   so this is mandatory, not an optimisation). Mutations that bypass
//!   the CPU — DMA bursts, host classification, fault-injected bit flips
//!   — are caught by the bus's [`mutation_epoch`](crate::Bus::mutation_epoch)
//!   counter, which triggers a full flush on change.
//! * **Taint-idle gating.** In the tainted VP, while the attached
//!   [`TaintCensus`](vpdift_core::TaintCensus) is still clear, every
//!   architectural tag is provably [`Tag::EMPTY`], so every clearance
//!   check would trivially pass — the engine disables the CPU's check
//!   sites wholesale and blocks execute with plain-VP cost. The first
//!   classification source re-arms the checked path for the rest of the
//!   run.
//!
//! The engine dispatches *one instruction per [`BlockCache::step`]*, so a
//! caller interleaving interrupt-line sampling, watchdogs or time
//! accounting between steps (as `vpdift-soc` does) sees exactly the
//! interpreter's timing; the saving is the skipped fetch/decode work, not
//! batching.

use std::collections::HashMap;
use std::str::FromStr;

use vpdift_asm::Insn;
use vpdift_core::{SharedCensus, Tag, Violation};
use vpdift_obs::ObsSink;

use crate::bus::Bus;
use crate::cpu::{Cpu, RunExit, Step};
use crate::mode::{TaintMode, Word};

/// Which execution engine drives the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Fetch-decode-execute every instruction from memory — the reference
    /// engine.
    #[default]
    Interp,
    /// Predecoded basic-block cache with taint-idle fast path
    /// ([`BlockCache`]).
    BlockCache,
}

impl ExecMode {
    /// Stable lower-case label (CLI / bench naming).
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Interp => "interp",
            ExecMode::BlockCache => "block",
        }
    }
}

impl core::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" | "interpreter" => Ok(ExecMode::Interp),
            "block" | "block-cache" | "blockcache" | "cached" => Ok(ExecMode::BlockCache),
            other => Err(format!("unknown engine '{other}' (expected 'interp' or 'block')")),
        }
    }
}

/// Block-cache counters, reported through the observability layer and the
/// CLI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Steps dispatched from a cached block (cursor or index hit).
    pub hits: u64,
    /// Block-cache lookups that had to (re)build or fall back.
    pub misses: u64,
    /// Blocks killed by store-range invalidation.
    pub invalidations: u64,
    /// Whole-cache flushes (external mutation epoch changed, or capacity).
    pub flushes: u64,
    /// Steps executed with clearance checks skipped (taint census clear).
    pub idle_steps: u64,
    /// Steps executed with the full checked semantics.
    pub checked_steps: u64,
}

/// Code-line granularity for store invalidation: 64-byte lines.
const LINE_SHIFT: u32 = 6;
/// Longest block, in instructions.
const BLOCK_CAP: usize = 32;
/// Arena capacity backstop; exceeding it flushes (never expected in
/// practice — RAM-resident guest code is far smaller).
const MAX_BLOCKS: usize = 4096;

/// One predecoded instruction, carrying everything [`Cpu::exec_insn`] and
/// the retirement event need.
#[derive(Debug, Clone, Copy)]
struct CachedInsn {
    insn: Insn,
    /// Address of the following sequential instruction (`pc + len`).
    next_pc: u32,
    len: u32,
    /// The fetched parcel as the interpreter would report it (16-bit
    /// parcels zero-extended).
    raw: u32,
    compressed: bool,
    /// LUB of the executed parcel's byte tags at decode time; stores into
    /// the block and external mutations invalidate it, so it is always
    /// current when dispatched.
    fetch_tag: Tag,
    /// Whether interrupt state must be re-polled after this instruction.
    /// Inside a straight-line slice, `mstatus`/`mie`/`mip` are reachable
    /// only through CSR writes and bus side effects (`mret` and `wfi` end
    /// the block; traps diverge), so only loads, stores and CSR ops set it.
    poll: bool,
}

#[derive(Debug)]
struct Block {
    start: u32,
    insns: Vec<CachedInsn>,
    alive: bool,
    first_line: u32,
    last_line: u32,
}

/// Continue-point inside a block: the next dispatch is `insns[idx]`
/// provided the CPU's pc still equals `expected_pc` (any divergence —
/// taken branch, trap, interrupt — falls back to an index lookup).
#[derive(Debug, Clone, Copy)]
struct Cursor {
    block: usize,
    idx: usize,
    expected_pc: u32,
}

/// The predecoded basic-block execution engine. See the module docs for
/// the invalidation and taint-idle machinery.
///
/// ```
/// use vpdift_asm::{Asm, Reg};
/// use vpdift_rv32::{BlockCache, Cpu, FlatMemory, Plain, RunExit};
///
/// let mut a = Asm::new(0);
/// a.li(Reg::A0, 21);
/// a.add(Reg::A0, Reg::A0, Reg::A0);
/// a.ebreak();
/// let prog = a.assemble().unwrap();
///
/// let mut mem = FlatMemory::<Plain>::new(0, 4096);
/// mem.load_image(0, prog.image());
/// let mut cpu = Cpu::<Plain>::new();
/// let mut engine = BlockCache::new();
/// assert_eq!(engine.run(&mut cpu, &mut mem, 100), RunExit::Break);
/// assert_eq!(cpu.reg(Reg::A0), 42);
/// ```
#[derive(Debug, Default)]
pub struct BlockCache {
    arena: Vec<Block>,
    index: HashMap<u32, usize>,
    /// Per-64-byte-line count of live blocks containing code from that
    /// line; a store only pays the invalidation walk when its line count
    /// is non-zero.
    line_refs: Vec<u16>,
    line_blocks: HashMap<u32, Vec<usize>>,
    cursor: Option<Cursor>,
    epoch: u64,
    census: Option<SharedCensus>,
    stats: CacheStats,
}

impl BlockCache {
    /// An empty cache.
    pub fn new() -> Self {
        BlockCache::default()
    }

    /// Attaches the live-tag census enabling the taint-idle fast path.
    /// Without one, the tainted VP always runs the checked semantics.
    pub fn set_census(&mut self, census: SharedCensus) {
        self.census = Some(census);
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Executes (at most) one instruction, exactly like [`Cpu::step`] but
    /// dispatching from the block cache where possible.
    ///
    /// # Errors
    /// Returns the [`Violation`] when an enforced DIFT check fails.
    pub fn step<M: TaintMode, S: ObsSink>(
        &mut self,
        cpu: &mut Cpu<M, S>,
        bus: &mut impl Bus<M>,
    ) -> Result<Step, Violation> {
        if let Some(step) = cpu.pre_step()? {
            return Ok(step);
        }
        let epoch = bus.mutation_epoch();
        if epoch != self.epoch {
            // Memory changed behind the CPU's back (DMA, classification,
            // fault injection): all cached decodes and fetch tags are
            // suspect.
            self.epoch = epoch;
            self.flush();
        }
        if M::TRACKING {
            let live = self.census.as_ref().is_none_or(|c| c.is_live());
            cpu.set_checks_enabled(live);
            if live {
                self.stats.checked_steps += 1;
            } else {
                self.stats.idle_steps += 1;
            }
        }

        let pc = cpu.pc();
        let (bi, ii) = match self.cursor {
            Some(c) if c.expected_pc == pc => {
                self.stats.hits += 1;
                (c.block, c.idx)
            }
            _ => {
                self.cursor = None;
                match self.index.get(&pc).copied().filter(|&bi| self.arena[bi].alive) {
                    Some(bi) => {
                        self.stats.hits += 1;
                        (bi, 0)
                    }
                    None => {
                        self.stats.misses += 1;
                        match self.build(bus, pc) {
                            Some(bi) => (bi, 0),
                            None => {
                                // Unfetchable/undecodable/misaligned pc:
                                // one reference-interpreter step raises
                                // the identical trap.
                                let r = cpu.fetch_decode_exec(bus)?;
                                if let Some((addr, size)) = r.store {
                                    self.on_store(addr, size);
                                }
                                return Ok(r.step);
                            }
                        }
                    }
                }
            }
        };

        let d = self.arena[bi].insns[ii];
        if M::TRACKING {
            cpu.fetch_clearance_check(d.fetch_tag, pc)?;
        }
        let r = cpu.exec_insn(bus, d.insn, pc, d.len, d.raw, d.compressed, d.fetch_tag)?;
        let next = ii + 1;
        // Set the cursor before invalidation: a store into the current
        // block must clear it so the remaining cached tail is re-decoded.
        self.cursor = if next < self.arena[bi].insns.len() {
            Some(Cursor { block: bi, idx: next, expected_pc: d.next_pc })
        } else {
            None
        };
        if let Some((addr, size)) = r.store {
            self.on_store(addr, size);
        }
        Ok(r.step)
    }

    /// Runs until `ebreak`, an enforced violation, `wfi` with nothing
    /// pending, or `max_insns` retirements — [`Cpu::run`] on this engine.
    ///
    /// Unlike repeated [`BlockCache::step`] calls, `run` dispatches whole
    /// cached blocks per cache probe: the mutation-epoch read, cursor
    /// bookkeeping and statistics updates are paid per *block*, not per
    /// instruction. Observable behaviour stays identical: the epoch is
    /// re-read after every store, and interrupts are re-polled after every
    /// instruction that can change interrupt state (loads, stores, CSR
    /// ops — nothing else inside a straight-line slice can reach
    /// `mstatus`/`mie`/`mip`).
    pub fn run<M: TaintMode, S: ObsSink>(
        &mut self,
        cpu: &mut Cpu<M, S>,
        bus: &mut impl Bus<M>,
        max_insns: u64,
    ) -> RunExit {
        let limit = cpu.instret() + max_insns;
        while cpu.instret() < limit {
            match self.run_slice(cpu, bus, limit) {
                Ok(Step::Executed) => {}
                Ok(Step::Break) => return RunExit::Break,
                Ok(Step::WaitingForInterrupt) => return RunExit::Wfi,
                Ok(Step::TrapLoop) => return RunExit::TrapLoop,
                Err(v) => return RunExit::Violation(v),
            }
        }
        RunExit::MaxInsns
    }

    /// Executes a run of consecutive instructions from one cached block —
    /// observationally a sequence of [`BlockCache::step`] calls, ending at
    /// block end, control-flow divergence, the retirement `limit`, or any
    /// non-`Executed` step.
    fn run_slice<M: TaintMode, S: ObsSink>(
        &mut self,
        cpu: &mut Cpu<M, S>,
        bus: &mut impl Bus<M>,
        limit: u64,
    ) -> Result<Step, Violation> {
        if let Some(step) = cpu.pre_step()? {
            return Ok(step);
        }
        let epoch = bus.mutation_epoch();
        if epoch != self.epoch {
            self.epoch = epoch;
            self.flush();
        }
        // The census is a one-way latch: once live it stays live, so the
        // re-sample below only runs while the fast path is still on.
        let mut live = true;
        if M::TRACKING {
            live = self.census.as_ref().is_none_or(|c| c.is_live());
            cpu.set_checks_enabled(live);
        }

        let mut pc = cpu.pc();
        let (bi, mut ii) = match self.cursor {
            Some(c) if c.expected_pc == pc => (c.block, c.idx),
            _ => {
                self.cursor = None;
                match self.index.get(&pc).copied().filter(|&bi| self.arena[bi].alive) {
                    Some(bi) => (bi, 0),
                    None => match self.build(bus, pc) {
                        Some(bi) => {
                            self.stats.misses += 1;
                            (bi, 0)
                        }
                        None => {
                            self.stats.misses += 1;
                            if M::TRACKING {
                                self.count_gating(1, live);
                            }
                            let r = cpu.fetch_decode_exec(bus)?;
                            if let Some((addr, size)) = r.store {
                                self.on_store(addr, size);
                            }
                            return Ok(r.step);
                        }
                    },
                }
            }
        };

        // The block's instruction vector is moved out of the arena for the
        // duration of the slice so the hot loop reads a local, provably
        // unaliased slice; it is put back below unless the whole cache was
        // flushed mid-slice (blocks are never rebuilt inside the loop).
        let start = self.arena[bi].start;
        let insns = std::mem::take(&mut self.arena[bi].insns);
        let mut remaining = limit - cpu.instret();
        let mut executed: u64 = 0;
        let (mut checked, mut idle) = (0u64, 0u64);
        // `pre_step` already ran above; it is re-run mid-slice only after
        // instructions whose `poll` flag is set (see [`CachedInsn::poll`]).
        let mut need_poll = false;
        let res = loop {
            if need_poll {
                match cpu.pre_step() {
                    Ok(None) => {}
                    Ok(Some(step)) => break Ok(step),
                    Err(v) => {
                        self.cursor = None;
                        break Err(v);
                    }
                }
            }
            if M::TRACKING && !live {
                live = self.census.as_ref().is_none_or(|c| c.is_live());
                if live {
                    cpu.set_checks_enabled(true);
                }
            }
            let d = &insns[ii];
            if M::TRACKING {
                if live {
                    checked += 1;
                } else {
                    idle += 1;
                }
                if let Err(v) = cpu.fetch_clearance_check(d.fetch_tag, pc) {
                    self.cursor = None;
                    break Err(v);
                }
            }
            let r = match cpu.exec_insn(bus, d.insn, pc, d.len, d.raw, d.compressed, d.fetch_tag) {
                Ok(r) => r,
                Err(v) => {
                    self.cursor = None;
                    executed += 1;
                    break Err(v);
                }
            };
            executed += 1;
            remaining -= 1;
            if let Some((addr, size)) = r.store {
                self.on_store(addr, size);
                let e = bus.mutation_epoch();
                if e != self.epoch {
                    self.epoch = e;
                    self.flush();
                    break Ok(r.step);
                }
                if !self.arena[bi].alive {
                    self.cursor = None;
                    break Ok(r.step);
                }
            }
            if !matches!(r.step, Step::Executed) {
                self.cursor = None;
                break Ok(r.step);
            }
            ii += 1;
            if ii >= insns.len() {
                self.cursor = None;
                break Ok(Step::Executed);
            }
            if cpu.pc() != d.next_pc {
                // Taken branch or trap: next probe starts fresh.
                self.cursor = None;
                break Ok(Step::Executed);
            }
            pc = d.next_pc;
            if remaining == 0 {
                self.cursor = Some(Cursor { block: bi, idx: ii, expected_pc: pc });
                break Ok(Step::Executed);
            }
            need_poll = d.poll;
        };
        if let Some(b) = self.arena.get_mut(bi) {
            if b.start == start {
                b.insns = insns;
            }
        }
        self.stats.hits += executed;
        if M::TRACKING {
            self.stats.checked_steps += checked;
            self.stats.idle_steps += idle;
        }
        res
    }

    #[inline]
    fn count_gating(&mut self, n: u64, live: bool) {
        if live {
            self.stats.checked_steps += n;
        } else {
            self.stats.idle_steps += n;
        }
    }

    /// Decodes the straight-line block starting at `pc` and registers it.
    /// `None` when not even the first instruction could be decoded — the
    /// caller falls back to the interpreter for faithful trap behaviour.
    fn build<M: TaintMode>(&mut self, bus: &mut impl Bus<M>, pc: u32) -> Option<usize> {
        if !pc.is_multiple_of(2) {
            return None;
        }
        let mut insns: Vec<CachedInsn> = Vec::with_capacity(8);
        let mut cur = pc;
        while let Ok(word) = bus.fetch(cur) {
            let compressed = vpdift_asm::is_compressed(word.val() as u16);
            let (raw, fetch_tag, len) = if compressed {
                // Mirror the interpreter: narrow to the executed 16-bit
                // parcel so the cached fetch tag is byte-precise.
                if M::TRACKING {
                    match bus.load(cur, 2) {
                        Ok(p) => (p.val() & 0xFFFF, p.tag(), 2u32),
                        Err(_) => break,
                    }
                } else {
                    (word.val() & 0xFFFF, Tag::EMPTY, 2u32)
                }
            } else {
                (word.val(), word.tag(), 4u32)
            };
            let decoded =
                if compressed { vpdift_asm::decompress(raw as u16) } else { Insn::decode(raw) };
            let Ok(insn) = decoded else { break };
            let next_pc = cur.wrapping_add(len);
            let poll = matches!(
                insn,
                Insn::Load { .. }
                    | Insn::Store { .. }
                    | Insn::Csr { .. }
                    | Insn::Lr { .. }
                    | Insn::Sc { .. }
                    | Insn::Amo { .. }
            );
            insns.push(CachedInsn { insn, next_pc, len, raw, compressed, fetch_tag, poll });
            // Unconditional control transfers end the block; conditional
            // branches may fall through, so the block continues past them.
            let terminal = matches!(
                insn,
                Insn::Jal { .. }
                    | Insn::Jalr { .. }
                    | Insn::Mret
                    | Insn::Ecall
                    | Insn::Ebreak
                    | Insn::Wfi
                    | Insn::FenceI
            );
            cur = next_pc;
            if terminal || insns.len() >= BLOCK_CAP {
                break;
            }
        }
        if insns.is_empty() {
            return None;
        }
        let end = insns.last().map(|d| d.next_pc).unwrap_or(pc);
        let block = Block {
            start: pc,
            insns,
            alive: true,
            first_line: pc >> LINE_SHIFT,
            last_line: (end - 1) >> LINE_SHIFT,
        };
        Some(self.insert(block))
    }

    fn insert(&mut self, block: Block) -> usize {
        if self.arena.len() >= MAX_BLOCKS {
            self.flush();
        }
        let bi = self.arena.len();
        for line in block.first_line..=block.last_line {
            let li = line as usize;
            if self.line_refs.len() <= li {
                self.line_refs.resize(li + 1, 0);
            }
            self.line_refs[li] += 1;
            self.line_blocks.entry(line).or_default().push(bi);
        }
        self.index.insert(block.start, bi);
        self.arena.push(block);
        bi
    }

    /// Store-range invalidation: kill every live block whose code lines
    /// overlap the written range. The common case (store into data) costs
    /// one or two refcount probes.
    #[inline]
    fn on_store(&mut self, addr: u32, size: u32) {
        let first = addr >> LINE_SHIFT;
        let last = addr.wrapping_add(size.saturating_sub(1)) >> LINE_SHIFT;
        for line in first..=last {
            if (line as usize) < self.line_refs.len() && self.line_refs[line as usize] > 0 {
                self.invalidate_line(line);
            }
        }
    }

    fn invalidate_line(&mut self, line: u32) {
        if let Some(blocks) = self.line_blocks.remove(&line) {
            for bi in blocks {
                self.kill(bi);
            }
        }
    }

    fn kill(&mut self, bi: usize) {
        if !self.arena[bi].alive {
            return;
        }
        self.arena[bi].alive = false;
        let (start, first, last) = {
            let b = &self.arena[bi];
            (b.start, b.first_line, b.last_line)
        };
        self.index.remove(&start);
        for line in first..=last {
            self.line_refs[line as usize] -= 1;
        }
        if self.cursor.is_some_and(|c| c.block == bi) {
            self.cursor = None;
        }
        self.stats.invalidations += 1;
    }

    /// Drops every cached block (external mutation or capacity).
    fn flush(&mut self) {
        self.cursor = None;
        if self.arena.is_empty() {
            return;
        }
        self.arena.clear();
        self.index.clear();
        self.line_refs.clear();
        self.line_blocks.clear();
        self.stats.flushes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FlatMemory;
    use crate::mode::{Plain, Tainted};
    use vpdift_asm::{Asm, Reg};
    use vpdift_core::{ExecClearance, TaintCensus};

    fn looped_sum() -> vpdift_asm::Program {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 0);
        a.li(Reg::T0, 50);
        a.label("loop");
        a.add(Reg::A0, Reg::A0, Reg::T0);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::Zero, "loop");
        a.ebreak();
        a.assemble().unwrap()
    }

    fn run_both(prog: &vpdift_asm::Program) -> (RunExit, RunExit, u64, u64) {
        let mut mem_i = FlatMemory::<Plain>::new(0, 4096);
        mem_i.load_image(0, prog.image());
        let mut cpu_i = Cpu::<Plain>::new();
        let exit_i = cpu_i.run(&mut mem_i, 10_000);

        let mut mem_b = FlatMemory::<Plain>::new(0, 4096);
        mem_b.load_image(0, prog.image());
        let mut cpu_b = Cpu::<Plain>::new();
        let mut eng = BlockCache::new();
        let exit_b = eng.run(&mut cpu_b, &mut mem_b, 10_000);

        (exit_i, exit_b, cpu_i.state_digest(), cpu_b.state_digest())
    }

    #[test]
    fn cached_loop_matches_interpreter() {
        let prog = looped_sum();
        let (exit_i, exit_b, d_i, d_b) = run_both(&prog);
        assert_eq!(exit_i, RunExit::Break);
        assert_eq!(exit_b, RunExit::Break);
        assert_eq!(d_i, d_b);
    }

    #[test]
    fn cache_hits_dominate_on_hot_loops() {
        let prog = looped_sum();
        let mut mem = FlatMemory::<Plain>::new(0, 4096);
        mem.load_image(0, prog.image());
        let mut cpu = Cpu::<Plain>::new();
        let mut eng = BlockCache::new();
        assert_eq!(eng.run(&mut cpu, &mut mem, 10_000), RunExit::Break);
        let st = eng.stats();
        assert!(st.hits > 10 * st.misses, "hits {} misses {}", st.hits, st.misses);
    }

    #[test]
    fn store_into_cached_block_invalidates() {
        // A loop body is cached, then the guest overwrites one of its
        // instructions; the patched semantics must take effect exactly as
        // under the interpreter.
        let addi_a0_a0_100: i32 = 0x0645_0513u32 as i32; // addi a0, a0, 100
        let mut a = Asm::new(0);
        a.li(Reg::A0, 0);
        a.li(Reg::T0, 2); // two passes
        a.label("loop");
        a.label("patch");
        a.addi(Reg::A0, Reg::A0, 1); // pass 1: +1; overwritten to +100
        a.li(Reg::T1, addi_a0_a0_100);
        a.la(Reg::T2, "patch");
        a.sw(Reg::T1, 0, Reg::T2);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::Zero, "loop");
        a.ebreak();
        let prog = a.assemble().unwrap();

        let (exit_i, exit_b, d_i, d_b) = run_both(&prog);
        assert_eq!(exit_i, RunExit::Break);
        assert_eq!(exit_b, RunExit::Break);
        assert_eq!(d_i, d_b);

        // And the patched value is what the interpreter computes: 1 + 100.
        let mut mem = FlatMemory::<Plain>::new(0, 4096);
        mem.load_image(0, prog.image());
        let mut cpu = Cpu::<Plain>::new();
        let mut eng = BlockCache::new();
        assert_eq!(eng.run(&mut cpu, &mut mem, 10_000), RunExit::Break);
        assert_eq!(cpu.reg(Reg::A0), 101);
        assert!(eng.stats().invalidations > 0);
    }

    #[test]
    fn csr_raised_interrupt_is_taken_mid_block() {
        // A `csrw mip` raising MSIP inside a straight-line block must be
        // serviced before the following instruction — exactly where the
        // batched dispatch re-polls only after poll-flagged instructions.
        use vpdift_asm::csr;
        let mut a = Asm::new(0);
        a.la(Reg::T0, "handler");
        a.csrw(csr::MTVEC, Reg::T0);
        a.li(Reg::T1, 8); // MSIE / mstatus.MIE
        a.csrw(csr::MIE, Reg::T1);
        a.csrw(csr::MSTATUS, Reg::T1);
        a.li(Reg::A0, 0);
        a.li(Reg::A1, 8);
        a.csrw(csr::MIP, Reg::A1); // raise MSIP: interrupt pends *here*
        a.addi(Reg::A0, Reg::A0, 1); // must run only after the handler
        a.ebreak();
        a.label("handler");
        a.li(Reg::A2, 77);
        a.csrc(csr::MIP, Reg::A1);
        a.mret();
        let prog = a.assemble().unwrap();

        let (exit_i, exit_b, d_i, d_b) = run_both(&prog);
        assert_eq!(exit_i, RunExit::Break);
        assert_eq!(exit_b, RunExit::Break);
        assert_eq!(d_i, d_b, "engines disagree on mid-block interrupt");

        let mut mem = FlatMemory::<Plain>::new(0, 4096);
        mem.load_image(0, prog.image());
        let mut cpu = Cpu::<Plain>::new();
        let mut eng = BlockCache::new();
        assert_eq!(eng.run(&mut cpu, &mut mem, 10_000), RunExit::Break);
        assert_eq!(cpu.reg(Reg::A2), 77, "handler must have run");
        assert_eq!(cpu.reg(Reg::A0), 1);
    }

    #[test]
    fn external_mutation_epoch_flushes() {
        let prog = looped_sum();
        let mut mem = FlatMemory::<Plain>::new(0, 4096);
        mem.load_image(0, prog.image());
        let mut cpu = Cpu::<Plain>::new();
        let mut eng = BlockCache::new();
        for _ in 0..8 {
            eng.step(&mut cpu, &mut mem).unwrap();
        }
        assert!(!eng.arena.is_empty());
        // Host-side image reload bumps the epoch; next step flushes.
        mem.load_image(0, prog.image());
        eng.step(&mut cpu, &mut mem).unwrap();
        assert!(eng.stats().flushes > 0);
    }

    #[test]
    fn census_gates_clearance_checks() {
        // Fetch clearance of EMPTY over classified code: the checked
        // path must flag it, the idle path must be skipped until armed.
        let prog = looped_sum();
        let clearance = ExecClearance { fetch: Some(Tag::EMPTY), ..ExecClearance::UNCHECKED };

        let census = TaintCensus::new().into_shared();
        let mut mem = FlatMemory::<Tainted>::new(0, 4096);
        mem.load_image(0, prog.image());
        mem.classify(0, 64, Tag::atom(0));
        let mut cpu = Cpu::<Tainted>::new();
        cpu.set_exec_clearance(clearance);
        let mut eng = BlockCache::new();
        eng.set_census(census.clone());
        // Census clear → checks skipped → the run completes.
        assert_eq!(eng.run(&mut cpu, &mut mem, 10_000), RunExit::Break);
        assert!(eng.stats().idle_steps > 0);
        assert_eq!(eng.stats().checked_steps, 0);

        // Armed census → the very same program trips the fetch check.
        census.arm();
        let mut cpu = Cpu::<Tainted>::new();
        cpu.set_exec_clearance(clearance);
        let mut mem2 = FlatMemory::<Tainted>::new(0, 4096);
        mem2.load_image(0, prog.image());
        mem2.classify(0, 64, Tag::atom(0));
        let mut eng2 = BlockCache::new();
        eng2.set_census(census);
        assert!(matches!(eng2.run(&mut cpu, &mut mem2, 10_000), RunExit::Violation(_)));
    }
}
