//! Taint-mode abstraction: the same ISS source compiles to the *original*
//! VP (no tracking, plain `u32` words) and to the DIFT-enabled *VP+*
//! (`Taint<u32>` words) — this is what makes the paper's Table II
//! VP-vs-VP+ comparison honest: in [`Plain`] mode tag storage and tag
//! operations are compiled away entirely.

use core::fmt::Debug;

use vpdift_core::{Tag, Taint};

/// A machine word as the ISS manipulates it: a 32-bit value that may or may
/// not carry a security tag. Sealed to the two modes below.
pub trait Word: Copy + Default + Debug + PartialEq + 'static + private::Sealed {
    /// Builds a word from a raw value with the bottom tag.
    fn from_u32(value: u32) -> Self;
    /// Builds a word from a value and a tag (the tag is dropped in plain
    /// mode).
    fn with_tag(value: u32, tag: Tag) -> Self;
    /// The raw 32-bit value.
    fn val(self) -> u32;
    /// The tag (always [`Tag::EMPTY`] in plain mode).
    fn tag(self) -> Tag;
    /// Replaces the value, keeping the tag.
    #[must_use]
    fn map_val(self, f: impl FnOnce(u32) -> u32) -> Self;
    /// Combines two words: `f` on the values, `LUB` on the tags.
    #[must_use]
    fn binop(self, other: Self, f: impl FnOnce(u32, u32) -> u32) -> Self;
    /// LUBs `tag` into this word (no-op in plain mode).
    #[must_use]
    fn lub_tag(self, tag: Tag) -> Self;
}

mod private {
    use vpdift_core::Taint;
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for Taint<u32> {}
}

impl Word for u32 {
    #[inline(always)]
    fn from_u32(value: u32) -> Self {
        value
    }
    #[inline(always)]
    fn with_tag(value: u32, _tag: Tag) -> Self {
        value
    }
    #[inline(always)]
    fn val(self) -> u32 {
        self
    }
    #[inline(always)]
    fn tag(self) -> Tag {
        Tag::EMPTY
    }
    #[inline(always)]
    fn map_val(self, f: impl FnOnce(u32) -> u32) -> Self {
        f(self)
    }
    #[inline(always)]
    fn binop(self, other: Self, f: impl FnOnce(u32, u32) -> u32) -> Self {
        f(self, other)
    }
    #[inline(always)]
    fn lub_tag(self, _tag: Tag) -> Self {
        self
    }
}

impl Word for Taint<u32> {
    #[inline(always)]
    fn from_u32(value: u32) -> Self {
        Taint::untainted(value)
    }
    #[inline(always)]
    fn with_tag(value: u32, tag: Tag) -> Self {
        Taint::new(value, tag)
    }
    #[inline(always)]
    fn val(self) -> u32 {
        self.value()
    }
    #[inline(always)]
    fn tag(self) -> Tag {
        Taint::tag(&self)
    }
    #[inline(always)]
    fn map_val(self, f: impl FnOnce(u32) -> u32) -> Self {
        self.map(f)
    }
    #[inline(always)]
    fn binop(self, other: Self, f: impl FnOnce(u32, u32) -> u32) -> Self {
        self.zip_with(other, f)
    }
    #[inline(always)]
    fn lub_tag(self, tag: Tag) -> Self {
        self.with_tag_lub(tag)
    }
}

/// Selects whether the ISS tracks information flow. Sealed: exactly
/// [`Plain`] (the original VP) and [`Tainted`] (VP+) exist.
pub trait TaintMode: 'static + private_mode::SealedMode {
    /// The machine word representation.
    type Word: Word;
    /// `true` when tags exist; lets cold paths be compiled out in plain
    /// mode.
    const TRACKING: bool;
}

mod private_mode {
    pub trait SealedMode {}
    impl SealedMode for super::Plain {}
    impl SealedMode for super::Tainted {}
}

/// The original VP: no taint storage, no checks, maximum simulation speed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Plain;

impl TaintMode for Plain {
    type Word = u32;
    const TRACKING: bool = false;
}

/// The DIFT-enabled VP+ of the paper.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Tainted;

impl TaintMode for Tainted {
    type Word = Taint<u32>;
    const TRACKING: bool = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Tag = Tag::from_bits(1);

    #[test]
    fn plain_words_drop_tags() {
        let w = <u32 as Word>::with_tag(7, S);
        assert_eq!(w.val(), 7);
        assert_eq!(w.tag(), Tag::EMPTY);
        assert_eq!(w.lub_tag(S).tag(), Tag::EMPTY);
        assert_eq!(w.binop(3, |a, b| a + b), 10);
        const { assert!(!Plain::TRACKING) };
    }

    #[test]
    fn tainted_words_carry_tags() {
        let w = <Taint<u32> as Word>::with_tag(7, S);
        assert_eq!(w.val(), 7);
        assert_eq!(Word::tag(w), S);
        let x = w.binop(Word::from_u32(3), |a, b| a + b);
        assert_eq!(x.val(), 10);
        assert_eq!(Word::tag(x), S);
        assert_eq!(Word::tag(w.lub_tag(Tag::from_bits(2))), Tag::from_bits(3));
        const { assert!(Tainted::TRACKING) };
    }

    #[test]
    fn map_val_keeps_tag() {
        let w = <Taint<u32> as Word>::with_tag(0x80, S);
        let s = w.map_val(|v| v << 1);
        assert_eq!(s.val(), 0x100);
        assert_eq!(Word::tag(s), S);
    }
}
