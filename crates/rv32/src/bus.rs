//! The CPU-side memory interface.
//!
//! The ISS is generic over a [`Bus`], so unit tests can run against the
//! in-crate [`FlatMemory`] while the full VP (in `vpdift-soc`) provides a
//! bus with a fast RAM path, TLM-routed MMIO, and DIFT store-clearance
//! checks.

use vpdift_core::{Tag, Violation};

use crate::mode::{TaintMode, Word};

/// Why a memory access could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// No device claims the address (→ load/store access fault).
    Fault {
        /// The offending address.
        addr: u32,
    },
    /// The access straddles an alignment boundary the platform rejects.
    Misaligned {
        /// The offending address.
        addr: u32,
    },
    /// A DIFT check failed inside the memory system (e.g. store clearance
    /// into a protected region, or an output-clearance violation in a
    /// peripheral reached via MMIO).
    Dift(Violation),
}

impl core::fmt::Display for MemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemError::Fault { addr } => write!(f, "access fault at {addr:#010x}"),
            MemError::Misaligned { addr } => write!(f, "misaligned access at {addr:#010x}"),
            MemError::Dift(v) => write!(f, "DIFT violation: {v}"),
        }
    }
}

impl std::error::Error for MemError {}

/// The ISS's view of the memory system.
pub trait Bus<M: TaintMode> {
    /// Fetches the 32-bit instruction word at `pc` (already
    /// alignment-checked by the CPU). The returned word's tag is the LUB of
    /// the four byte tags.
    ///
    /// # Errors
    /// [`MemError`] on faults.
    fn fetch(&mut self, pc: u32) -> Result<M::Word, MemError>;

    /// Loads `size` ∈ {1, 2, 4} bytes at `addr`, zero-extended into the
    /// word value; the tag is the LUB of the byte tags.
    ///
    /// # Errors
    /// [`MemError`] on faults.
    fn load(&mut self, addr: u32, size: u32) -> Result<M::Word, MemError>;

    /// Stores the low `size` bytes of `value` at `addr`. `pc` is the
    /// program counter of the storing instruction, attached to any DIFT
    /// violation raised by protected-region checks.
    ///
    /// # Errors
    /// [`MemError`] on faults.
    fn store(&mut self, addr: u32, size: u32, value: M::Word, pc: u32) -> Result<(), MemError>;

    /// A counter that changes whenever memory (data *or* tags) is mutated
    /// by anything other than CPU stores through this bus — DMA bursts,
    /// host-side classification/image loads, injected bit flips. Execution
    /// engines that cache decoded code compare it every step and flush on
    /// change; CPU stores are instead reported precisely by the CPU, so
    /// they must *not* bump it. Buses without external mutators keep the
    /// default constant `0`.
    fn mutation_epoch(&self) -> u64 {
        0
    }

    /// `true` iff `addr..addr+size` supports atomic (LR/SC/AMO) access.
    /// Atomics are only defined on idempotent backing store: a bus routing
    /// MMIO returns `false` for device regions so the CPU raises an access
    /// fault instead of performing a read-modify-write on a register with
    /// side effects. The default (plain memories) accepts everything the
    /// bus can address.
    fn atomic_supported(&self, addr: u32, size: u32) -> bool {
        let _ = (addr, size);
        true
    }
}

/// A flat byte-addressable memory with per-byte tags (elided in plain
/// mode by `M::Word`'s tag handling — the tag array is only materialised
/// when `M::TRACKING`).
///
/// Primarily for tests and small standalone programs; the full SoC memory
/// lives in `vpdift-periph`.
#[derive(Debug, Clone)]
pub struct FlatMemory<M: TaintMode> {
    base: u32,
    data: Vec<u8>,
    tags: Vec<Tag>,
    epoch: u64,
    _mode: core::marker::PhantomData<M>,
}

impl<M: TaintMode> FlatMemory<M> {
    /// Creates `size` bytes of zeroed memory based at `base`.
    pub fn new(base: u32, size: usize) -> Self {
        FlatMemory {
            base,
            data: vec![0; size],
            tags: if M::TRACKING { vec![Tag::EMPTY; size] } else { Vec::new() },
            epoch: 0,
            _mode: core::marker::PhantomData,
        }
    }

    /// Base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the memory has zero bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn index(&self, addr: u32, size: u32) -> Result<usize, MemError> {
        let off = addr.wrapping_sub(self.base) as usize;
        if addr < self.base || off + size as usize > self.data.len() {
            return Err(MemError::Fault { addr });
        }
        Ok(off)
    }

    /// Copies a program image into memory.
    ///
    /// # Panics
    /// Panics if the image does not fit.
    pub fn load_image(&mut self, addr: u32, image: &[u8]) {
        let off = addr.wrapping_sub(self.base) as usize;
        self.data[off..off + image.len()].copy_from_slice(image);
        self.epoch += 1;
    }

    /// Stamps `tag` onto a byte range (classification).
    ///
    /// # Panics
    /// Panics if the range does not fit.
    pub fn classify(&mut self, addr: u32, len: usize, tag: Tag) {
        if !M::TRACKING {
            return;
        }
        let off = addr.wrapping_sub(self.base) as usize;
        for t in &mut self.tags[off..off + len] {
            *t = tag;
        }
        self.epoch += 1;
    }

    /// Reads one byte with its tag (diagnostics).
    pub fn byte_at(&self, addr: u32) -> Option<(u8, Tag)> {
        let off = addr.wrapping_sub(self.base) as usize;
        let v = *self.data.get(off)?;
        let t = if M::TRACKING { self.tags[off] } else { Tag::EMPTY };
        Some((v, t))
    }
}

impl<M: TaintMode> Bus<M> for FlatMemory<M> {
    fn fetch(&mut self, pc: u32) -> Result<M::Word, MemError> {
        self.load(pc, 4)
    }

    fn load(&mut self, addr: u32, size: u32) -> Result<M::Word, MemError> {
        let off = self.index(addr, size)?;
        let mut value = 0u32;
        let mut tag = Tag::EMPTY;
        for i in 0..size as usize {
            value |= (self.data[off + i] as u32) << (8 * i);
            if M::TRACKING {
                tag = tag.lub(self.tags[off + i]);
            }
        }
        Ok(M::Word::with_tag(value, tag))
    }

    fn store(&mut self, addr: u32, size: u32, value: M::Word, _pc: u32) -> Result<(), MemError> {
        let off = self.index(addr, size)?;
        let v = value.val();
        for i in 0..size as usize {
            self.data[off + i] = (v >> (8 * i)) as u8;
            if M::TRACKING {
                self.tags[off + i] = value.tag();
            }
        }
        Ok(())
    }

    fn mutation_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{Plain, Tainted};
    use vpdift_core::Taint;

    #[test]
    fn flat_memory_word_round_trip_tainted() {
        let mut m = FlatMemory::<Tainted>::new(0x1000, 64);
        let w = Taint::new(0xAABB_CCDD, Tag::from_bits(0b10));
        m.store(0x1010, 4, w, 0).unwrap();
        let r = Bus::<Tainted>::load(&mut m, 0x1010, 4).unwrap();
        assert_eq!(r, w);
        // Partial reload LUBs only covered bytes.
        let h = Bus::<Tainted>::load(&mut m, 0x1012, 2).unwrap();
        assert_eq!(h.value(), 0xAABB);
        assert_eq!(Word::tag(h), Tag::from_bits(0b10));
    }

    #[test]
    fn flat_memory_plain_has_no_tag_storage() {
        let mut m = FlatMemory::<Plain>::new(0, 16);
        m.store(4, 4, 0x1234_5678u32, 0).unwrap();
        assert_eq!(Bus::<Plain>::load(&mut m, 4, 4).unwrap(), 0x1234_5678);
        assert_eq!(m.tags.len(), 0);
        m.classify(0, 8, Tag::from_bits(1)); // no-op, must not panic
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = FlatMemory::<Plain>::new(0x100, 16);
        assert_eq!(
            Bus::<Plain>::load(&mut m, 0x90, 4).unwrap_err(),
            MemError::Fault { addr: 0x90 }
        );
        assert_eq!(
            Bus::<Plain>::load(&mut m, 0x10E, 4).unwrap_err(),
            MemError::Fault { addr: 0x10E }
        );
        assert!(m.store(0x200, 1, 0u32, 0).is_err());
    }

    #[test]
    fn classify_stamps_tags() {
        let mut m = FlatMemory::<Tainted>::new(0, 32);
        m.load_image(0, &[1, 2, 3, 4]);
        m.classify(1, 2, Tag::from_bits(1));
        assert_eq!(m.byte_at(0), Some((1, Tag::EMPTY)));
        assert_eq!(m.byte_at(1), Some((2, Tag::from_bits(1))));
        assert_eq!(m.byte_at(2), Some((3, Tag::from_bits(1))));
        assert_eq!(m.byte_at(3), Some((4, Tag::EMPTY)));
        assert_eq!(m.byte_at(100), None);
        // A word load spanning classified bytes LUBs their tags in.
        let w = Bus::<Tainted>::load(&mut m, 0, 4).unwrap();
        assert_eq!(Word::tag(w), Tag::from_bits(1));
    }

    #[test]
    fn mem_error_display() {
        assert!(MemError::Fault { addr: 0x10 }.to_string().contains("0x00000010"));
        assert!(MemError::Misaligned { addr: 3 }.to_string().contains("misaligned"));
    }
}
