//! # vpdift-rv32 — RV32IM ISS with transparent taint propagation
//!
//! The CPU core of the virtual prototype. One exec implementation compiles
//! into two cores via the [`TaintMode`] abstraction:
//!
//! * [`Cpu<Plain>`](Cpu) — the original VP: plain `u32` machine words, no
//!   tag storage, no checks.
//! * [`Cpu<Tainted>`](Cpu) — the paper's VP+: every register, CSR and
//!   memory byte carries a security [`Tag`](vpdift_core::Tag); tags
//!   propagate through every instruction via LUB, and the three
//!   execution-clearance checks of §V-B2 (instruction fetch, branch
//!   condition / indirect target, memory address) guard implicit flows.
//!
//! Memory is abstracted behind the [`Bus`] trait; the full SoC bus lives in
//! `vpdift-soc`, while [`FlatMemory`] serves tests and bare-metal snippets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bus;
mod cpu;
mod csr;
mod engine;
mod mode;

pub use bus::{Bus, FlatMemory, MemError};
pub use cpu::{Cpu, RunExit, Step, DEFAULT_TRAP_LOOP_THRESHOLD};
pub use csr::CsrFile;
pub use engine::{BlockCache, CacheStats, ExecMode};
pub use mode::{Plain, TaintMode, Tainted, Word};
