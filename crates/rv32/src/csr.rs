//! Machine-mode control and status registers.
//!
//! Only the CSRs the VP's firmware actually uses are modeled; reads of
//! unimplemented CSRs return 0 and writes are ignored (matching the
//! permissive behaviour of the original RISC-V VP for benign software).
//! CSR values are [`Word`]s, so tags flow through CSRs in tainted mode —
//! e.g. a tainted `mepc` is caught by the trap-return clearance check.

use vpdift_asm::csr;

use crate::mode::{TaintMode, Word};

/// The machine-mode CSR file.
#[derive(Debug, Clone)]
pub struct CsrFile<M: TaintMode> {
    /// Machine status (`MIE`/`MPIE` bits are honoured).
    pub mstatus: M::Word,
    /// Machine interrupt enable.
    pub mie: M::Word,
    /// Machine interrupt pending (externally driven bits).
    pub mip: M::Word,
    /// Trap vector (direct mode; low two bits ignored).
    pub mtvec: M::Word,
    /// Exception PC.
    pub mepc: M::Word,
    /// Trap cause.
    pub mcause: M::Word,
    /// Trap value.
    pub mtval: M::Word,
    /// Scratch register.
    pub mscratch: M::Word,
}

impl<M: TaintMode> Default for CsrFile<M> {
    fn default() -> Self {
        CsrFile {
            mstatus: M::Word::from_u32(0),
            mie: M::Word::from_u32(0),
            mip: M::Word::from_u32(0),
            mtvec: M::Word::from_u32(0),
            mepc: M::Word::from_u32(0),
            mcause: M::Word::from_u32(0),
            mtval: M::Word::from_u32(0),
            mscratch: M::Word::from_u32(0),
        }
    }
}

impl<M: TaintMode> CsrFile<M> {
    /// Creates a zeroed CSR file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a CSR. `instret` supplies the retired-instruction counter for
    /// the shadow counters.
    pub fn read(&self, addr: u16, instret: u64) -> M::Word {
        match addr {
            csr::MSTATUS => self.mstatus,
            csr::MIE => self.mie,
            csr::MIP => self.mip,
            csr::MTVEC => self.mtvec,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::MTVAL => self.mtval,
            csr::MSCRATCH => self.mscratch,
            csr::MISA => M::Word::from_u32((1 << 30) | (1 << 8) | (1 << 12)), // RV32IM
            csr::MHARTID => M::Word::from_u32(0),
            csr::CYCLE | csr::INSTRET => M::Word::from_u32(instret as u32),
            csr::CYCLEH | csr::INSTRETH => M::Word::from_u32((instret >> 32) as u32),
            _ => M::Word::from_u32(0),
        }
    }

    /// Writes a CSR; read-only and unimplemented CSRs ignore writes.
    pub fn write(&mut self, addr: u16, value: M::Word) {
        match addr {
            csr::MSTATUS => self.mstatus = value,
            csr::MIE => self.mie = value,
            csr::MIP => self.mip = value,
            csr::MTVEC => self.mtvec = value,
            csr::MEPC => self.mepc = value,
            csr::MCAUSE => self.mcause = value,
            csr::MTVAL => self.mtval = value,
            csr::MSCRATCH => self.mscratch = value,
            _ => {}
        }
    }

    /// Sets or clears a bit in `mip` from an external interrupt line.
    pub fn set_mip_bit(&mut self, bit: u32, level: bool) {
        let mask = 1u32 << bit;
        self.mip = self.mip.map_val(|v| if level { v | mask } else { v & !mask });
    }

    /// `true` iff global machine interrupts are enabled.
    pub fn mie_enabled(&self) -> bool {
        self.mstatus.val() & csr::MSTATUS_MIE != 0
    }

    /// Enabled-and-pending interrupt bits.
    pub fn pending(&self) -> u32 {
        self.mie.val() & self.mip.val()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{Plain, Tainted};
    use vpdift_core::{Tag, Taint};

    #[test]
    fn read_write_round_trip() {
        let mut c = CsrFile::<Plain>::new();
        c.write(csr::MTVEC, 0x100);
        c.write(csr::MEPC, 0x204);
        assert_eq!(c.read(csr::MTVEC, 0), 0x100);
        assert_eq!(c.read(csr::MEPC, 0), 0x204);
        // Read-only / unimplemented.
        c.write(csr::MHARTID, 9);
        assert_eq!(c.read(csr::MHARTID, 0), 0);
        c.write(0x7C0, 5);
        assert_eq!(c.read(0x7C0, 0), 0);
    }

    #[test]
    fn counters_shadow_instret() {
        let c = CsrFile::<Plain>::new();
        let n = 0x1_2345_6789u64;
        assert_eq!(c.read(csr::CYCLE, n), 0x2345_6789);
        assert_eq!(c.read(csr::CYCLEH, n), 1);
        assert_eq!(c.read(csr::INSTRET, n), 0x2345_6789);
    }

    #[test]
    fn mip_bit_setting_and_pending() {
        let mut c = CsrFile::<Plain>::new();
        c.set_mip_bit(7, true);
        assert_eq!(c.read(csr::MIP, 0), 1 << 7);
        assert_eq!(c.pending(), 0, "mie gate closed");
        c.write(csr::MIE, csr::MIE_MTIE);
        assert_eq!(c.pending(), csr::MIE_MTIE);
        assert!(!c.mie_enabled());
        c.write(csr::MSTATUS, csr::MSTATUS_MIE);
        assert!(c.mie_enabled());
        c.set_mip_bit(7, false);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn tainted_csrs_keep_tags() {
        let mut c = CsrFile::<Tainted>::new();
        c.write(csr::MEPC, Taint::new(0x80, Tag::from_bits(1)));
        assert_eq!(Word::tag(c.read(csr::MEPC, 0)), Tag::from_bits(1));
        // set_mip_bit preserves existing tag on mip.
        c.write(csr::MIP, Taint::new(0, Tag::from_bits(2)));
        c.set_mip_bit(3, true);
        assert_eq!(c.read(csr::MIP, 0).value(), 1 << 3);
        assert_eq!(Word::tag(c.read(csr::MIP, 0)), Tag::from_bits(2));
    }

    #[test]
    fn misa_reports_rv32im() {
        let c = CsrFile::<Plain>::new();
        let misa = c.read(csr::MISA, 0);
        assert_ne!(misa & (1 << 8), 0, "I");
        assert_ne!(misa & (1 << 12), 0, "M");
        assert_ne!(misa & (1 << 30), 0, "XLEN=32");
    }
}
