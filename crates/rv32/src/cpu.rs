//! The RV32IM instruction-set simulator with transparent taint propagation
//! and the paper's three execution-clearance checks (§V-B2).
//!
//! The CPU is generic over [`TaintMode`]: `Cpu<Plain>` is the original VP
//! core, `Cpu<Tainted>` is the DIFT-enabled VP+ core. All tag handling
//! routes through the [`Word`] abstraction, so the plain instantiation
//! compiles tag work away entirely.

use vpdift_asm::csr as csrn;
use vpdift_asm::{AluOp, BranchCond, CsrSrc, Insn, MulOp, Reg};
use vpdift_core::{ExecClearance, SharedEngine, Tag, Violation, ViolationKind};
use vpdift_obs::{CheckKind, NullSink, ObsEvent, ObsSink};
use vpdift_sync::{shared, Shared};

use crate::bus::{Bus, MemError};
use crate::csr::CsrFile;
use crate::mode::{TaintMode, Word};

/// Outcome of a single [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// One instruction retired.
    Executed,
    /// The core is parked in `wfi` with no enabled interrupt pending; no
    /// instruction retired. The caller should advance simulated time.
    WaitingForInterrupt,
    /// An `ebreak` retired — by VP convention this stops the simulation
    /// (guest programs end with `ebreak`).
    Break,
    /// The configured number of consecutive *identical* synchronous traps
    /// (same pc, same cause, no instruction retired in between) was
    /// reached — the guest is wedged in a trap loop (e.g. a fetch fault on
    /// the `mtvec` target) and can make no further progress.
    TrapLoop,
}

/// Outcome of one fetch-decode-execute round, as needed by execution
/// engines: the architectural [`Step`] plus the memory range written by a
/// retired store (so a block cache can invalidate overlapping code).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Retired {
    pub step: Step,
    /// `(addr, size)` of a successful data store, if the instruction was
    /// one. Suppressed (trapped/faulted) stores report `None`.
    pub store: Option<(u32, u32)>,
}

impl Retired {
    #[inline]
    pub(crate) fn of(step: Step) -> Self {
        Retired { step, store: None }
    }
}

/// Why [`Cpu::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// Guest executed `ebreak`.
    Break,
    /// The instruction budget was exhausted.
    MaxInsns,
    /// The core is waiting for an interrupt.
    Wfi,
    /// An enforced DIFT violation stopped execution.
    Violation(Violation),
    /// The trap-loop detector fired (see [`Step::TrapLoop`]).
    TrapLoop,
}

/// The RV32IM core.
///
/// ```
/// use vpdift_rv32::{Cpu, FlatMemory, Plain, RunExit};
/// use vpdift_asm::{Asm, Reg};
///
/// let mut a = Asm::new(0);
/// a.li(Reg::A0, 21);
/// a.add(Reg::A0, Reg::A0, Reg::A0);
/// a.ebreak();
/// let prog = a.assemble().unwrap();
///
/// let mut mem = FlatMemory::<Plain>::new(0, 4096);
/// mem.load_image(0, prog.image());
/// let mut cpu = Cpu::<Plain>::new();
/// assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
/// assert_eq!(cpu.reg(Reg::A0), 42);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu<M: TaintMode, S: ObsSink = NullSink> {
    pc: u32,
    regs: [M::Word; 32],
    csrs: CsrFile<M>,
    exec_clearance: ExecClearance,
    engine: Option<SharedEngine>,
    instret: u64,
    in_wfi: bool,
    traps_taken: u64,
    trap_loop_threshold: u32,
    last_trap: Option<(u32, u32, u64)>,
    same_trap_count: u32,
    /// Gate for the taint-idle fast path: while `false`, clearance checks
    /// are skipped wholesale. Only ever cleared by an execution engine that
    /// has *proved* all architectural tags empty (census clear); the
    /// interpreter leaves it `true`.
    checks_enabled: bool,
    /// LR/SC reservation: the word address registered by the last `lr.w`,
    /// cleared by any store, by `sc.w` (success or failure) and by traps.
    /// Lives on the core so both execution engines share one implementation.
    reservation: Option<u32>,
    obs: Shared<S>,
}

/// Default consecutive-identical-trap count after which the trap-loop
/// detector fires.
pub const DEFAULT_TRAP_LOOP_THRESHOLD: u32 = 16;

impl<M: TaintMode, S: ObsSink + Default> Default for Cpu<M, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: TaintMode, S: ObsSink + Default> Cpu<M, S> {
    /// Creates a core reset to PC 0 with unchecked execution clearance.
    pub fn new() -> Self {
        Self::with_obs(shared(S::default()))
    }
}

impl<M: TaintMode, S: ObsSink> Cpu<M, S> {
    /// Creates a core emitting observability events into `obs`.
    pub fn with_obs(obs: Shared<S>) -> Self {
        Cpu {
            pc: 0,
            regs: [M::Word::from_u32(0); 32],
            csrs: CsrFile::new(),
            exec_clearance: ExecClearance::UNCHECKED,
            engine: None,
            instret: 0,
            in_wfi: false,
            traps_taken: 0,
            trap_loop_threshold: DEFAULT_TRAP_LOOP_THRESHOLD,
            last_trap: None,
            same_trap_count: 0,
            checks_enabled: true,
            reservation: None,
            obs,
        }
    }

    /// The attached observability sink.
    pub fn obs(&self) -> &Shared<S> {
        &self.obs
    }

    /// Resets the core to start execution at `pc` (registers preserved,
    /// counters cleared).
    pub fn reset(&mut self, pc: u32) {
        self.pc = pc;
        self.instret = 0;
        self.in_wfi = false;
        self.traps_taken = 0;
        self.last_trap = None;
        self.same_trap_count = 0;
        self.reservation = None;
    }

    /// The active LR/SC reservation address, if any (for tests).
    pub fn reservation(&self) -> Option<u32> {
        self.reservation
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Reads a register (x0 is always zero).
    pub fn reg(&self, r: Reg) -> M::Word {
        self.regs[r.num() as usize]
    }

    /// Writes a register (writes to x0 are ignored).
    pub fn set_reg(&mut self, r: Reg, value: M::Word) {
        if r != Reg::Zero {
            self.regs[r.num() as usize] = value;
        }
    }

    /// The CSR file (e.g. for test setup).
    pub fn csrs(&self) -> &CsrFile<M> {
        &self.csrs
    }

    /// Mutable CSR file access.
    pub fn csrs_mut(&mut self) -> &mut CsrFile<M> {
        &mut self.csrs
    }

    /// Retired instruction count.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Synchronous (non-interrupt) traps taken since reset.
    pub fn traps_taken(&self) -> u64 {
        self.traps_taken
    }

    /// Configures the trap-loop detector: after `threshold` consecutive
    /// identical synchronous traps with no retirement in between,
    /// [`Cpu::step`] returns [`Step::TrapLoop`]. `0` disables detection.
    pub fn set_trap_loop_threshold(&mut self, threshold: u32) {
        self.trap_loop_threshold = threshold;
    }

    /// `true` while parked in `wfi`.
    pub fn is_waiting(&self) -> bool {
        self.in_wfi
    }

    /// Configures the execution clearances (from the security policy).
    pub fn set_exec_clearance(&mut self, exec: ExecClearance) {
        self.exec_clearance = exec;
    }

    /// Engine-side gate for the taint-idle fast path (see
    /// [`BlockCache`](crate::BlockCache)). Safe only while the caller can
    /// prove all architectural tags empty.
    pub(crate) fn set_checks_enabled(&mut self, enabled: bool) {
        self.checks_enabled = enabled;
    }

    /// The instruction-fetch clearance check (§V-B2b), exposed so a block
    /// cache replaying predecoded instructions can apply it to the cached
    /// fetch tag exactly as the interpreter would.
    pub(crate) fn fetch_clearance_check(&mut self, tag: Tag, pc: u32) -> Result<(), Violation> {
        self.exec_check(ViolationKind::Fetch, tag, self.exec_clearance.fetch, pc)
    }

    /// FNV-1a digest of the full architectural state (pc, registers with
    /// tags, CSRs with tags, retirement count, wait state). Used by the
    /// differential engine harness to assert bit-identical final state.
    pub fn state_digest(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.pc as u64);
        for r in &self.regs {
            h = fnv1a(h, r.val() as u64);
            h = fnv1a(h, r.tag().bits() as u64);
        }
        for c in [
            self.csrs.mstatus,
            self.csrs.mie,
            self.csrs.mip,
            self.csrs.mtvec,
            self.csrs.mepc,
            self.csrs.mcause,
            self.csrs.mtval,
            self.csrs.mscratch,
        ] {
            h = fnv1a(h, c.val() as u64);
            h = fnv1a(h, c.tag().bits() as u64);
        }
        h = fnv1a(h, self.instret);
        h = fnv1a(h, self.in_wfi as u64);
        // Reservation state distinguishes "no reservation" from "reserved
        // at address 0" so differential runs compare it exactly.
        fnv1a(
            h,
            match self.reservation {
                Some(addr) => 0x8000_0000_0000_0000 | addr as u64,
                None => 0,
            },
        )
    }

    /// Attaches the DIFT engine used to record violations.
    pub fn set_engine(&mut self, engine: SharedEngine) {
        self.engine = Some(engine);
    }

    /// Drives the machine timer interrupt pending bit (from the CLINT).
    pub fn set_timer_irq(&mut self, level: bool) {
        self.csrs.set_mip_bit(7, level);
    }

    /// Drives the machine software interrupt pending bit.
    pub fn set_soft_irq(&mut self, level: bool) {
        self.csrs.set_mip_bit(3, level);
    }

    /// Drives the machine external interrupt pending bit (from the PLIC).
    pub fn set_external_irq(&mut self, level: bool) {
        self.csrs.set_mip_bit(11, level);
    }

    /// Writes a register, reporting tag propagation to the sink when the
    /// destination tag changes or the incoming value is tagged.
    fn obs_set_reg(&mut self, r: Reg, value: M::Word, pc: u32) {
        if S::ENABLED && r != Reg::Zero {
            let before = self.regs[r.num() as usize].tag();
            let after = value.tag();
            if before != after || !after.is_empty() {
                self.obs.borrow_mut().event(&ObsEvent::TagWrite {
                    pc,
                    reg: r.num() as u8,
                    before,
                    after,
                });
            }
        }
        self.set_reg(r, value);
    }

    /// Records an execution-clearance violation; in `Enforce` mode the
    /// violation is returned as `Err` and the instruction is suppressed.
    ///
    /// The check itself (pass or fail) is reported to the sink from here;
    /// the *violation* event comes from the engine's own observer when the
    /// failure is recorded, so the two are never double-counted.
    fn exec_check(
        &mut self,
        kind: ViolationKind,
        tag: Tag,
        required: Option<Tag>,
        pc: u32,
    ) -> Result<(), Violation> {
        if !M::TRACKING {
            return Ok(());
        }
        if !self.checks_enabled {
            // Taint-idle fast path: the owning engine has proved every
            // architectural tag empty, so the check would trivially pass.
            return Ok(());
        }
        let Some(required) = required else { return Ok(()) };
        let passed = tag.flows_to(required);
        if S::ENABLED {
            let (check, site) = CheckKind::of_violation(&kind);
            self.obs.borrow_mut().event(&ObsEvent::Check {
                kind: check,
                tag,
                required,
                pc: Some(pc),
                passed,
                site: site.map(str::to_owned),
            });
        }
        if passed {
            return Ok(());
        }
        let v = Violation::new(kind, tag, required).at_pc(pc);
        match &self.engine {
            Some(e) => e.borrow_mut().record(v),
            None => {
                if S::ENABLED {
                    self.obs.borrow_mut().event(&ObsEvent::Violation(v.clone()));
                }
                Err(v)
            }
        }
    }

    /// Takes a trap: saves state, vectors to `mtvec`. The trap-vector
    /// address is clearance-checked like a branch target (paper §V-B2a).
    ///
    /// Synchronous traps feed the trap-loop detector: traps never retire
    /// an instruction (every trap site returns before `instret` is
    /// bumped), so a repeated `(pc, cause)` at an unchanged `instret`
    /// proves the guest made no progress between two traps. After the
    /// configured threshold of consecutive identical traps the returned
    /// step is [`Step::TrapLoop`]. Interrupts never count: their handlers
    /// retire at least one instruction before any re-entry.
    fn take_trap(
        &mut self,
        cause: u32,
        is_irq: bool,
        tval: u32,
        pc: u32,
    ) -> Result<Step, Violation> {
        let mtvec = self.csrs.mtvec;
        // Traps conservatively break any LR/SC reservation (the handler may
        // touch the reserved word; the spec permits spurious SC failure).
        self.reservation = None;
        self.exec_check(ViolationKind::TrapVector, mtvec.tag(), self.exec_clearance.branch, pc)?;
        if S::ENABLED {
            self.obs.borrow_mut().event(&ObsEvent::Trap { pc, cause, irq: is_irq });
        }
        self.csrs.mepc = M::Word::from_u32(pc);
        self.csrs.mcause = M::Word::from_u32(cause | if is_irq { 0x8000_0000 } else { 0 });
        self.csrs.mtval = M::Word::from_u32(tval);
        let mut st = self.csrs.mstatus.val();
        let mie = (st >> 3) & 1;
        st = (st & !(csrn::MSTATUS_MIE | csrn::MSTATUS_MPIE)) | (mie << 7);
        self.csrs.mstatus = self.csrs.mstatus.map_val(|_| st);
        self.pc = mtvec.val() & !0x3;
        if !is_irq {
            self.traps_taken += 1;
            if self.trap_loop_threshold != 0 {
                let key = (pc, cause, self.instret);
                if self.last_trap == Some(key) {
                    self.same_trap_count += 1;
                } else {
                    self.last_trap = Some(key);
                    self.same_trap_count = 1;
                }
                if self.same_trap_count >= self.trap_loop_threshold {
                    return Ok(Step::TrapLoop);
                }
            }
        }
        Ok(Step::Executed)
    }

    /// Checks for an enabled pending interrupt and takes it. Priority
    /// follows the privileged spec: external > software > timer.
    fn poll_interrupts(&mut self) -> Result<bool, Violation> {
        if !self.csrs.mie_enabled() {
            return Ok(false);
        }
        let pending = self.csrs.pending();
        if pending == 0 {
            return Ok(false);
        }
        let cause = if pending & csrn::MIE_MEIE != 0 {
            csrn::cause::M_EXT_IRQ
        } else if pending & csrn::MIE_MSIE != 0 {
            csrn::cause::M_SOFT_IRQ
        } else {
            csrn::cause::M_TIMER_IRQ
        };
        self.in_wfi = false;
        let _ = self.take_trap(cause, true, 0, self.pc)?;
        Ok(true)
    }

    /// Executes (at most) one instruction.
    ///
    /// # Errors
    /// Returns the [`Violation`] when an *enforced* DIFT check fails; the
    /// simulation should stop (the paper's `ClearanceException`).
    pub fn step(&mut self, bus: &mut impl Bus<M>) -> Result<Step, Violation> {
        if let Some(step) = self.pre_step()? {
            return Ok(step);
        }
        self.fetch_decode_exec(bus).map(|r| r.step)
    }

    /// The interrupt/WFI preamble of [`Cpu::step`]: polls for enabled
    /// pending interrupts and handles the parked-in-`wfi` state. Returns
    /// `Some(step)` when the step completes here (interrupt taken or still
    /// waiting), `None` when an instruction should be executed.
    pub(crate) fn pre_step(&mut self) -> Result<Option<Step>, Violation> {
        if self.poll_interrupts()? {
            // Interrupt taken; fall through to execute the first handler
            // instruction on the next call.
            return Ok(Some(Step::Executed));
        }
        if self.in_wfi {
            // WFI resumes when an enabled interrupt becomes *pending*,
            // even with mstatus.MIE clear (privileged spec) — execution
            // then continues sequentially without trapping.
            if self.csrs.pending() != 0 {
                self.in_wfi = false;
            } else {
                return Ok(Some(Step::WaitingForInterrupt));
            }
        }
        Ok(None)
    }

    /// One full fetch-decode-execute round (everything in [`Cpu::step`]
    /// after [`pre_step`](Self::pre_step)). Also the block cache's
    /// fallback when a block cannot be built at the current pc.
    pub(crate) fn fetch_decode_exec(
        &mut self,
        bus: &mut impl Bus<M>,
    ) -> Result<Retired, Violation> {
        let pc = self.pc;
        // RV32C allows 2-byte alignment; only odd PCs are misaligned.
        if !pc.is_multiple_of(2) {
            return self.take_trap(csrn::cause::MISALIGNED_FETCH, false, pc, pc).map(Retired::of);
        }

        // --- fetch, with instruction-fetch clearance (§V-B2b) -----------
        let word = match bus.fetch(pc) {
            Ok(w) => w,
            Err(e) => return self.mem_trap(e, true, pc).map(Retired::of),
        };
        let compressed = vpdift_asm::is_compressed(word.val() as u16);
        let (fetched, insn_len) = if compressed {
            // Narrow to the 16-bit parcel so the clearance check sees only
            // the bytes actually executed (precise tags in tainted mode).
            let parcel = if M::TRACKING {
                match bus.load(pc, 2) {
                    Ok(p) => p,
                    Err(e) => return self.mem_trap(e, true, pc).map(Retired::of),
                }
            } else {
                word.map_val(|v| v & 0xFFFF)
            };
            (parcel, 2u32)
        } else {
            (word, 4u32)
        };
        self.fetch_clearance_check(fetched.tag(), pc)?;

        let decoded = if compressed {
            vpdift_asm::decompress(fetched.val() as u16)
        } else {
            Insn::decode(fetched.val())
        };
        let insn = match decoded {
            Ok(i) => i,
            Err(_) => {
                return self
                    .take_trap(csrn::cause::ILLEGAL_INSN, false, fetched.val(), pc)
                    .map(Retired::of);
            }
        };

        self.exec_insn(bus, insn, pc, insn_len, fetched.val(), compressed, fetched.tag())
    }

    /// Executes one already-decoded instruction at `pc`. `raw`,
    /// `compressed` and `fetch_tag` describe the fetched parcel for the
    /// retirement event, so cached dispatch emits events identical to the
    /// interpreter's.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_insn(
        &mut self,
        bus: &mut impl Bus<M>,
        insn: Insn,
        pc: u32,
        insn_len: u32,
        raw: u32,
        compressed: bool,
        fetch_tag: Tag,
    ) -> Result<Retired, Violation> {
        let mut next_pc = pc.wrapping_add(insn_len);
        let mut store: Option<(u32, u32)> = None;
        let mut outcome = Step::Executed;

        macro_rules! rs {
            ($r:expr) => {
                self.reg($r)
            };
        }

        match insn {
            Insn::Lui { rd, imm20 } => self.obs_set_reg(rd, M::Word::from_u32(imm20 << 12), pc),
            Insn::Auipc { rd, imm20 } => {
                self.obs_set_reg(rd, M::Word::from_u32(pc.wrapping_add(imm20 << 12)), pc)
            }
            Insn::Jal { rd, offset } => {
                self.obs_set_reg(rd, M::Word::from_u32(next_pc), pc);
                next_pc = pc.wrapping_add(offset as u32);
            }
            Insn::Jalr { rd, rs1, offset } => {
                let base = rs!(rs1);
                // Indirect targets reveal the pointer: branch clearance.
                self.exec_check(ViolationKind::Branch, base.tag(), self.exec_clearance.branch, pc)?;
                self.obs_set_reg(rd, M::Word::from_u32(next_pc), pc);
                next_pc = base.val().wrapping_add(offset as u32) & !1;
            }
            Insn::Branch { cond, rs1, rs2, offset } => {
                let a = rs!(rs1);
                let b = rs!(rs2);
                // The branch *condition* carries both operand tags (§V-B2a).
                self.exec_check(
                    ViolationKind::Branch,
                    a.tag().lub(b.tag()),
                    self.exec_clearance.branch,
                    pc,
                )?;
                let taken = match cond {
                    BranchCond::Eq => a.val() == b.val(),
                    BranchCond::Ne => a.val() != b.val(),
                    BranchCond::Lt => (a.val() as i32) < (b.val() as i32),
                    BranchCond::Ge => (a.val() as i32) >= (b.val() as i32),
                    BranchCond::Ltu => a.val() < b.val(),
                    BranchCond::Geu => a.val() >= b.val(),
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Insn::Load { width, rd, rs1, offset } => {
                let base = rs!(rs1);
                let addr = base.val().wrapping_add(offset as u32);
                // Load addresses leak via access patterns (§V-B2c).
                self.exec_check(
                    ViolationKind::MemAddr,
                    base.tag(),
                    self.exec_clearance.mem_addr,
                    pc,
                )?;
                let size = width.size();
                if !addr.is_multiple_of(size) {
                    return self
                        .take_trap(csrn::cause::MISALIGNED_LOAD, false, addr, pc)
                        .map(Retired::of);
                }
                let loaded = match bus.load(addr, size) {
                    Ok(w) => w,
                    Err(e) => return self.mem_trap(e, false, pc).map(Retired::of),
                };
                if S::ENABLED {
                    self.obs.borrow_mut().event(&ObsEvent::Load {
                        pc,
                        addr,
                        size,
                        tag: loaded.tag(),
                    });
                }
                let value = loaded.map_val(|v| match width {
                    vpdift_asm::LoadWidth::B => v as u8 as i8 as i32 as u32,
                    vpdift_asm::LoadWidth::H => v as u16 as i16 as i32 as u32,
                    _ => v,
                });
                self.obs_set_reg(rd, value, pc);
            }
            Insn::Store { width, rs2, rs1, offset } => {
                let base = rs!(rs1);
                let addr = base.val().wrapping_add(offset as u32);
                self.exec_check(
                    ViolationKind::MemAddr,
                    base.tag(),
                    self.exec_clearance.mem_addr,
                    pc,
                )?;
                let size = width.size();
                if !addr.is_multiple_of(size) {
                    return self
                        .take_trap(csrn::cause::MISALIGNED_STORE, false, addr, pc)
                        .map(Retired::of);
                }
                if S::ENABLED {
                    self.obs.borrow_mut().event(&ObsEvent::Store {
                        pc,
                        addr,
                        size,
                        tag: rs!(rs2).tag(),
                    });
                }
                if let Err(e) = bus.store(addr, size, rs!(rs2), pc) {
                    return self.mem_trap(e, false, pc).map(Retired::of);
                }
                store = Some((addr, size));
                // Any intervening store breaks an LR/SC reservation.
                self.reservation = None;
            }
            Insn::Lr { rd, rs1 } => {
                let base = rs!(rs1);
                let addr = base.val();
                self.exec_check(
                    ViolationKind::MemAddr,
                    base.tag(),
                    self.exec_clearance.mem_addr,
                    pc,
                )?;
                if !addr.is_multiple_of(4) {
                    return self
                        .take_trap(csrn::cause::MISALIGNED_LOAD, false, addr, pc)
                        .map(Retired::of);
                }
                if !bus.atomic_supported(addr, 4) {
                    // Atomics are only defined on idempotent memory (RAM);
                    // an LR on MMIO is an access fault, not a side effect.
                    return self
                        .take_trap(csrn::cause::LOAD_FAULT, false, addr, pc)
                        .map(Retired::of);
                }
                let loaded = match bus.load(addr, 4) {
                    Ok(w) => w,
                    Err(e) => return self.mem_trap(e, false, pc).map(Retired::of),
                };
                if S::ENABLED {
                    self.obs.borrow_mut().event(&ObsEvent::Load {
                        pc,
                        addr,
                        size: 4,
                        tag: loaded.tag(),
                    });
                }
                self.reservation = Some(addr);
                self.obs_set_reg(rd, loaded, pc);
            }
            Insn::Sc { rd, rs2, rs1 } => {
                let base = rs!(rs1);
                let addr = base.val();
                self.exec_check(
                    ViolationKind::MemAddr,
                    base.tag(),
                    self.exec_clearance.mem_addr,
                    pc,
                )?;
                if !addr.is_multiple_of(4) {
                    return self
                        .take_trap(csrn::cause::MISALIGNED_STORE, false, addr, pc)
                        .map(Retired::of);
                }
                if !bus.atomic_supported(addr, 4) {
                    return self
                        .take_trap(csrn::cause::STORE_FAULT, false, addr, pc)
                        .map(Retired::of);
                }
                // An SC consumes the reservation whether it succeeds or not.
                let reserved = self.reservation.take() == Some(addr);
                if reserved {
                    if S::ENABLED {
                        self.obs.borrow_mut().event(&ObsEvent::Store {
                            pc,
                            addr,
                            size: 4,
                            tag: rs!(rs2).tag(),
                        });
                    }
                    if let Err(e) = bus.store(addr, 4, rs!(rs2), pc) {
                        return self.mem_trap(e, false, pc).map(Retired::of);
                    }
                    store = Some((addr, 4));
                }
                // The 0/1 success code is architecturally generated, not
                // data-derived: it carries no tag.
                self.obs_set_reg(rd, M::Word::from_u32(!reserved as u32), pc);
            }
            Insn::Amo { op, rd, rs2, rs1 } => {
                let base = rs!(rs1);
                let addr = base.val();
                self.exec_check(
                    ViolationKind::MemAddr,
                    base.tag(),
                    self.exec_clearance.mem_addr,
                    pc,
                )?;
                if !addr.is_multiple_of(4) {
                    return self
                        .take_trap(csrn::cause::MISALIGNED_STORE, false, addr, pc)
                        .map(Retired::of);
                }
                if !bus.atomic_supported(addr, 4) {
                    return self
                        .take_trap(csrn::cause::STORE_FAULT, false, addr, pc)
                        .map(Retired::of);
                }
                let loaded = match bus.load(addr, 4) {
                    Ok(w) => w,
                    Err(e) => return self.mem_trap(e, false, pc).map(Retired::of),
                };
                if S::ENABLED {
                    self.obs.borrow_mut().event(&ObsEvent::Load {
                        pc,
                        addr,
                        size: 4,
                        tag: loaded.tag(),
                    });
                }
                // Read-modify-write taint rule: the written word carries
                // LUB(loaded tag, rs2 tag) — `binop` computes exactly that.
                let written = loaded.binop(rs!(rs2), |l, r| op.apply(l, r));
                if S::ENABLED {
                    self.obs.borrow_mut().event(&ObsEvent::Store {
                        pc,
                        addr,
                        size: 4,
                        tag: written.tag(),
                    });
                }
                if let Err(e) = bus.store(addr, 4, written, pc) {
                    return self.mem_trap(e, false, pc).map(Retired::of);
                }
                store = Some((addr, 4));
                // An AMO is a store: it breaks any reservation, including
                // one on its own address.
                self.reservation = None;
                self.obs_set_reg(rd, loaded, pc);
            }
            Insn::AluImm { op, rd, rs1, imm } => {
                let a = rs!(rs1);
                let r = alu_imm::<M>(op, a, imm);
                self.obs_set_reg(rd, r, pc);
            }
            Insn::Alu { op, rd, rs1, rs2 } => {
                let r = alu::<M>(op, rs!(rs1), rs!(rs2));
                self.obs_set_reg(rd, r, pc);
            }
            Insn::MulDiv { op, rd, rs1, rs2 } => {
                let r = muldiv::<M>(op, rs!(rs1), rs!(rs2));
                self.obs_set_reg(rd, r, pc);
            }
            Insn::Csr { op, rd, csr, src } => {
                let old = self.csrs.read(csr, self.instret);
                let (sval, write_always) = match src {
                    CsrSrc::Reg(r) => (rs!(r), r != Reg::Zero),
                    CsrSrc::Imm(i) => (M::Word::from_u32(i as u32), i != 0),
                };
                match op {
                    vpdift_asm::CsrOp::Rw => self.csrs.write(csr, sval),
                    vpdift_asm::CsrOp::Rs if write_always => {
                        self.csrs.write(csr, old.binop(sval, |o, s| o | s))
                    }
                    vpdift_asm::CsrOp::Rc if write_always => {
                        self.csrs.write(csr, old.binop(sval, |o, s| o & !s))
                    }
                    _ => {}
                }
                self.obs_set_reg(rd, old, pc);
            }
            Insn::Fence | Insn::FenceI => {}
            Insn::Ecall => {
                // mepc points at the ecall itself; the handler returns past
                // it by adding 4 (standard RISC-V convention).
                return self.take_trap(csrn::cause::ECALL_M, false, 0, pc).map(Retired::of);
            }
            Insn::Ebreak => {
                outcome = Step::Break;
            }
            Insn::Mret => {
                let mepc = self.csrs.mepc;
                // Returning to a secret/untrusted address is an indirect
                // control transfer: branch clearance applies.
                self.exec_check(ViolationKind::Branch, mepc.tag(), self.exec_clearance.branch, pc)?;
                let mut st = self.csrs.mstatus.val();
                let mpie = (st >> 7) & 1;
                st = (st & !csrn::MSTATUS_MIE) | (mpie << 3) | csrn::MSTATUS_MPIE;
                self.csrs.mstatus = self.csrs.mstatus.map_val(|_| st);
                next_pc = mepc.val() & !0x3;
            }
            Insn::Wfi => {
                self.in_wfi = true;
            }
        }

        self.pc = next_pc;
        self.instret += 1;
        if S::ENABLED {
            self.obs.borrow_mut().event(&ObsEvent::InsnRetired {
                pc,
                word: raw,
                compressed,
                fetch_tag,
                instret: self.instret,
            });
        }
        Ok(Retired { step: outcome, store })
    }

    fn mem_trap(&mut self, e: MemError, is_fetch: bool, pc: u32) -> Result<Step, Violation> {
        let _ = is_fetch; // fetch faults reuse the load-fault cause in this VP
        match e {
            MemError::Fault { addr } => self.take_trap(csrn::cause::LOAD_FAULT, false, addr, pc),
            MemError::Misaligned { addr } => {
                self.take_trap(csrn::cause::MISALIGNED_LOAD, false, addr, pc)
            }
            MemError::Dift(v) => Err(v),
        }
    }

    /// Runs until `ebreak`, an enforced violation, `wfi` with nothing
    /// pending, or `max_insns` retirements.
    pub fn run(&mut self, bus: &mut impl Bus<M>, max_insns: u64) -> RunExit {
        let limit = self.instret + max_insns;
        while self.instret < limit {
            match self.step(bus) {
                Ok(Step::Executed) => {}
                Ok(Step::Break) => return RunExit::Break,
                Ok(Step::WaitingForInterrupt) => return RunExit::Wfi,
                Ok(Step::TrapLoop) => return RunExit::TrapLoop,
                Err(v) => return RunExit::Violation(v),
            }
        }
        RunExit::MaxInsns
    }
}

/// FNV-1a offset basis (64-bit).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one 64-bit quantity into an FNV-1a digest, byte by byte.
#[inline]
pub(crate) fn fnv1a(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn alu_imm<M: TaintMode>(op: AluOp, a: M::Word, imm: i32) -> M::Word {
    let b = imm as u32;
    a.map_val(|av| alu_val(op, av, b))
}

fn alu<M: TaintMode>(op: AluOp, a: M::Word, b: M::Word) -> M::Word {
    a.binop(b, |av, bv| alu_val(op, av, bv))
}

fn alu_val(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1F),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1F),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

fn muldiv<M: TaintMode>(op: MulOp, a: M::Word, b: M::Word) -> M::Word {
    a.binop(b, |av, bv| muldiv_val(op, av, bv))
}

fn muldiv_val(op: MulOp, a: u32, b: u32) -> u32 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        MulOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
        MulOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        MulOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a // overflow: MIN / -1 = MIN
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        MulOp::Remu => a.checked_rem(b).unwrap_or(a),
    }
}
