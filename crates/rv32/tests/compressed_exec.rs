//! Execution of RV32C code on the ISS: 2-byte PC stepping, mixed 16/32-bit
//! streams, link values, and tag-precise fetch clearance.

use vpdift_asm::{AluOp, Insn, Reg};
use vpdift_core::{DiftEngine, EnforceMode, ExecClearance, SecurityPolicy, Tag, ViolationKind};
use vpdift_rv32::{Cpu, FlatMemory, Plain, RunExit, Tainted, Word};

fn image16(parcels: &[u16]) -> Vec<u8> {
    parcels.iter().flat_map(|p| p.to_le_bytes()).collect()
}

#[test]
fn pure_compressed_stream() {
    // c.li a0, 5; c.addi a0, -1; c.mv a1, a0; c.ebreak
    let image = image16(&[0x4515, 0x157D, 0x85AA, 0x9002]);
    let mut mem = FlatMemory::<Plain>::new(0, 4096);
    mem.load_image(0, &image);
    let mut cpu = Cpu::<Plain>::new();
    assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
    assert_eq!(cpu.reg(Reg::A0).val(), 4);
    assert_eq!(cpu.reg(Reg::A1).val(), 4);
    assert_eq!(cpu.instret(), 4);
    assert_eq!(cpu.pc(), 8, "pc advanced by 2 per compressed insn (incl. ebreak)");
}

#[test]
fn mixed_width_stream() {
    // c.li a0, 7 (2 bytes), then a 32-bit addi a0, a0, 10 at pc=2,
    // then c.ebreak at pc=6.
    let addi = Insn::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 10 }.encode();
    let mut image = image16(&[0x451D]); // c.li a0, 7
    image.extend_from_slice(&addi.to_le_bytes());
    image.extend_from_slice(&0x9002u16.to_le_bytes());
    let mut mem = FlatMemory::<Plain>::new(0, 4096);
    mem.load_image(0, &image);
    let mut cpu = Cpu::<Plain>::new();
    assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
    assert_eq!(cpu.reg(Reg::A0).val(), 17);
    assert_eq!(cpu.instret(), 3);
}

#[test]
fn compressed_jal_links_pc_plus_2() {
    // c.jal +6 (to the 32-bit ebreak-equivalent landing pad), pad with
    // c.nops. Layout: 0: c.jal +6; 2: c.nop; 4: c.nop; 6: c.ebreak.
    // CJ offset 6: offset[2:1] -> inst[4:3]: offset2=1 -> inst4, offset1=1 -> inst3.
    let cjal = 0x2001u16 | (1 << 4) | (1 << 3); // funct3=001, op=01, offset=6
    let image = image16(&[cjal, 0x0001, 0x0001, 0x9002]);
    let mut mem = FlatMemory::<Plain>::new(0, 4096);
    mem.load_image(0, &image);
    let mut cpu = Cpu::<Plain>::new();
    assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
    assert_eq!(cpu.reg(Reg::Ra).val(), 2, "C.JAL links pc+2");
}

#[test]
#[allow(clippy::unusual_byte_groupings)] // groups mirror the CB-format fields
fn compressed_branch_loop() {
    // c.li a0, 3; loop: c.addi a0, -1; c.bnez a0, -2; c.ebreak
    // CB offset -2: offset1=1 -> inst3; sign bit offset8=1 -> inst12;
    // offsets 2..7 = 1 -> inst[4], inst[10], inst[11], inst[2], inst[5], inst[6].
    let bnez_m2: u16 = {
        // offset = -2 -> 9-bit two's complement 0b111111110
        let mut p: u16 = 0b111_0_00_000_00_0_00_01; // funct3=111, op=01, rs1'=a0(010)
        p |= 0b010 << 7; // rs1' = a0
                         // offset bits: [8]=1->12, [7]=1->6, [6]=1->5, [5]=1->2, [4]=1->11,
                         // [3]=1->10, [2]=1->4, [1]=1->3  (offset -2: all set except bit1? )
                         // -2 = ...111111110: bits 1..8 = 1,1,1,1,1,1,1,1 except bit1=1? -2>>1 = -1,
                         // so offset[8:1] = 11111111.
        p |= 1 << 12;
        p |= 1 << 6;
        p |= 1 << 5;
        p |= 1 << 2;
        p |= 1 << 11;
        p |= 1 << 10;
        p |= 1 << 4;
        p |= 1 << 3;
        p
    };
    let image =
        image16(&[0x450D /* c.li a0, 3 */, 0x157D /* c.addi a0, -1 */, bnez_m2, 0x9002]);
    let mut mem = FlatMemory::<Plain>::new(0, 4096);
    mem.load_image(0, &image);
    let mut cpu = Cpu::<Plain>::new();
    assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
    assert_eq!(cpu.reg(Reg::A0).val(), 0);
    assert_eq!(cpu.instret(), 1 + 3 * 2 + 1);
}

#[test]
fn fetch_clearance_is_parcel_precise() {
    // Two adjacent compressed instructions; only the *second* parcel is
    // classified low-integrity. The first must execute, the second must
    // violate — proving the check narrows to 2 bytes.
    let li = Tag::from_bits(1);
    let image = image16(&[0x4515 /* c.li a0,5 */, 0x157D /* c.addi a0,-1 */, 0x9002]);
    let mut mem = FlatMemory::<Tainted>::new(0, 4096);
    mem.load_image(0, &image);
    mem.classify(2, 2, li);
    let mut cpu = Cpu::<Tainted>::new();
    let exec = ExecClearance { fetch: Some(Tag::EMPTY), branch: None, mem_addr: None };
    let policy = SecurityPolicy::builder("c-fetch").exec_clearance(exec).build();
    cpu.set_engine(DiftEngine::with_mode(policy, EnforceMode::Enforce).into_shared());
    cpu.set_exec_clearance(exec);
    match cpu.run(&mut mem, 100) {
        RunExit::Violation(v) => {
            assert_eq!(v.kind, ViolationKind::Fetch);
            assert_eq!(v.pc, Some(2), "violation at the tainted parcel, not before");
        }
        other => panic!("expected fetch violation, got {other:?}"),
    }
    assert_eq!(cpu.reg(Reg::A0).val(), 5, "first parcel executed");
}

#[test]
fn odd_pc_traps_misaligned() {
    let mut mem = FlatMemory::<Plain>::new(0, 4096);
    let mut cpu = Cpu::<Plain>::new();
    cpu.set_pc(1);
    // mtvec = 0 -> handler at 0 (zeros decode as the illegal all-zero
    // parcel -> illegal-instruction trap loop). Just check the first trap.
    let _ = cpu.step(&mut mem).unwrap();
    assert_eq!(cpu.csrs().mcause.val(), 0, "misaligned fetch cause");
    assert_eq!(cpu.csrs().mtval.val(), 1);
}

#[test]
fn compressed_stack_ops() {
    // c.addi16sp -32; c.swsp a0, 12(sp); c.lwsp a1, 12(sp); c.ebreak
    let image = image16(&[0x713D, 0xC62A, 0x45B2, 0x9002]);
    let mut mem = FlatMemory::<Plain>::new(0, 65536);
    mem.load_image(0, &image);
    let mut cpu = Cpu::<Plain>::new();
    cpu.set_reg(Reg::Sp, 0x8000);
    cpu.set_reg(Reg::A0, 0xDEAD);
    assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
    assert_eq!(cpu.reg(Reg::Sp).val(), 0x8000 - 32);
    assert_eq!(cpu.reg(Reg::A1).val(), 0xDEAD);
}
