//! Property test: the Plain (VP) and Tainted (VP+) cores compute identical
//! architectural values on random ALU/memory programs — taint tracking must
//! never change functional behaviour (paper: "works without any further
//! modification").

use proptest::prelude::*;
use vpdift_asm::{Asm, Reg};
use vpdift_rv32::{Cpu, FlatMemory, Plain, RunExit, TaintMode, Tainted, Word};

#[derive(Debug, Clone)]
enum Op {
    Li(u8, i32),
    Add(u8, u8, u8),
    Sub(u8, u8, u8),
    Xor(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Sll(u8, u8, u8),
    Srl(u8, u8, u8),
    Sra(u8, u8, u8),
    Mul(u8, u8, u8),
    Div(u8, u8, u8),
    Rem(u8, u8, u8),
    Slt(u8, u8, u8),
    StoreLoad(u8, u8), // sw rs, off(base=0x2000); lw rd back
}

/// Working registers: t0..t2, a0..a5 (avoid sp/ra).
const REGS: [Reg; 9] =
    [Reg::T0, Reg::T1, Reg::T2, Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];

fn r(i: u8) -> Reg {
    REGS[i as usize % REGS.len()]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let idx = 0u8..9;
    prop_oneof![
        (idx.clone(), any::<i32>()).prop_map(|(d, v)| Op::Li(d, v)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Add(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Sub(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Xor(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::And(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Or(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Sll(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Srl(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Sra(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Mul(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Div(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Rem(d, a, b)),
        (idx.clone(), idx.clone(), idx.clone()).prop_map(|(d, a, b)| Op::Slt(d, a, b)),
        (idx.clone(), idx).prop_map(|(d, a)| Op::StoreLoad(d, a)),
    ]
}

fn build(ops: &[Op]) -> Vec<u8> {
    let mut a = Asm::new(0);
    // Deterministic initial values.
    for (i, reg) in REGS.iter().enumerate() {
        a.li(*reg, (i as i32 + 1) * 0x1111);
    }
    for (n, op) in ops.iter().enumerate() {
        match *op {
            Op::Li(d, v) => {
                a.li(r(d), v);
            }
            Op::Add(d, x, y) => {
                a.add(r(d), r(x), r(y));
            }
            Op::Sub(d, x, y) => {
                a.sub(r(d), r(x), r(y));
            }
            Op::Xor(d, x, y) => {
                a.xor(r(d), r(x), r(y));
            }
            Op::And(d, x, y) => {
                a.and(r(d), r(x), r(y));
            }
            Op::Or(d, x, y) => {
                a.or(r(d), r(x), r(y));
            }
            Op::Sll(d, x, y) => {
                a.sll(r(d), r(x), r(y));
            }
            Op::Srl(d, x, y) => {
                a.srl(r(d), r(x), r(y));
            }
            Op::Sra(d, x, y) => {
                a.sra(r(d), r(x), r(y));
            }
            Op::Mul(d, x, y) => {
                a.mul(r(d), r(x), r(y));
            }
            Op::Div(d, x, y) => {
                a.div(r(d), r(x), r(y));
            }
            Op::Rem(d, x, y) => {
                a.rem(r(d), r(x), r(y));
            }
            Op::Slt(d, x, y) => {
                a.slt(r(d), r(x), r(y));
            }
            Op::StoreLoad(d, s) => {
                let off = (n % 32) as i32 * 4;
                a.li(Reg::T6, 0x2000);
                a.sw(r(s), off, Reg::T6);
                a.lw(r(d), off, Reg::T6);
            }
        }
    }
    a.ebreak();
    a.assemble().unwrap().image().to_vec()
}

fn exec<M: TaintMode>(image: &[u8]) -> Vec<u32> {
    let mut mem = FlatMemory::<M>::new(0, 64 * 1024);
    mem.load_image(0, image);
    let mut cpu = Cpu::<M>::new();
    assert_eq!(cpu.run(&mut mem, 100_000), RunExit::Break);
    REGS.iter().map(|&reg| cpu.reg(reg).val()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plain_and_tainted_agree(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let image = build(&ops);
        prop_assert_eq!(exec::<Plain>(&image), exec::<Tainted>(&image));
    }
}
