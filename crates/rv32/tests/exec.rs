//! Per-instruction semantics tests for the ISS, run in both taint modes.

use vpdift_asm::{Asm, Reg};
use vpdift_core::Tag;
use vpdift_rv32::{Cpu, FlatMemory, Plain, RunExit, TaintMode, Tainted, Word};

const RAM: usize = 64 * 1024;

/// Assembles `build`, runs it until `ebreak`, and returns the CPU.
fn run_prog<M: TaintMode>(build: impl FnOnce(&mut Asm)) -> (Cpu<M>, FlatMemory<M>) {
    let mut a = Asm::new(0);
    build(&mut a);
    let prog = a.assemble().expect("test program assembles");
    let mut mem = FlatMemory::<M>::new(0, RAM);
    mem.load_image(0, prog.image());
    let mut cpu = Cpu::<M>::new();
    // Stack at top of RAM.
    cpu.set_reg(Reg::Sp, M::Word::from_u32(RAM as u32 - 16));
    let exit = cpu.run(&mut mem, 2_000_000);
    assert_eq!(exit, RunExit::Break, "program must end at ebreak");
    (cpu, mem)
}

fn check<M: TaintMode>(build: impl FnOnce(&mut Asm), expect: &[(Reg, u32)]) {
    let (cpu, _) = run_prog::<M>(build);
    for &(r, v) in expect {
        assert_eq!(cpu.reg(r).val(), v, "register {r}");
    }
}

/// Runs in both modes and checks register values agree with expectations.
fn check_both(build: impl Fn(&mut Asm) + Copy, expect: &[(Reg, u32)]) {
    check::<Plain>(build, expect);
    check::<Tainted>(build, expect);
}

use Reg::*;

#[test]
fn arithmetic_basics() {
    check_both(
        |a| {
            a.li(T0, 100);
            a.li(T1, -7);
            a.add(A0, T0, T1); // 93
            a.sub(A1, T0, T1); // 107
            a.xor(A2, T0, T1);
            a.or(A3, T0, T1);
            a.and(A4, T0, T1);
            a.ebreak();
        },
        &[
            (A0, 93),
            (A1, 107),
            (A2, 100 ^ (-7i32 as u32)),
            (A3, 100 | (-7i32 as u32)),
            (A4, 100 & (-7i32 as u32)),
        ],
    );
}

#[test]
fn immediates_and_comparisons() {
    check_both(
        |a| {
            a.li(T0, 5);
            a.addi(A0, T0, -10); // -5
            a.slti(A1, T0, 6); // 1
            a.slti(A2, T0, 5); // 0
            a.sltiu(A3, T0, 6); // 1
            a.li(T1, -1);
            a.sltu(A4, T0, T1); // 5 < 0xFFFFFFFF unsigned -> 1
            a.slt(A5, T1, T0); // -1 < 5 signed -> 1
            a.ebreak();
        },
        &[(A0, -5i32 as u32), (A1, 1), (A2, 0), (A3, 1), (A4, 1), (A5, 1)],
    );
}

#[test]
fn shifts() {
    check_both(
        |a| {
            a.li(T0, -16); // 0xFFFFFFF0
            a.slli(A0, T0, 4);
            a.srli(A1, T0, 4);
            a.srai(A2, T0, 4);
            a.li(T1, 36); // shift amount uses low 5 bits -> 4
            a.sll(A3, T0, T1);
            a.srl(A4, T0, T1);
            a.sra(A5, T0, T1);
            a.ebreak();
        },
        &[
            (A0, 0xFFFF_FF00),
            (A1, 0x0FFF_FFFF),
            (A2, 0xFFFF_FFFF),
            (A3, 0xFFFF_FF00),
            (A4, 0x0FFF_FFFF),
            (A5, 0xFFFF_FFFF),
        ],
    );
}

#[test]
fn lui_auipc() {
    check_both(
        |a| {
            a.lui(A0, 0xDEAD5);
            a.auipc(A1, 0); // pc of this insn = 4
            a.ebreak();
        },
        &[(A0, 0xDEAD_5000), (A1, 4)],
    );
}

#[test]
fn mul_div_rem_semantics() {
    check_both(
        |a| {
            a.li(T0, -7);
            a.li(T1, 3);
            a.mul(A0, T0, T1); // -21
            a.div(A1, T0, T1); // -2 (toward zero)
            a.rem(A2, T0, T1); // -1
            a.divu(A3, T0, T1); // huge
            a.remu(A4, T0, T1);
            a.mulh(A5, T0, T1); // high of -21 = -1
            a.mulhu(A6, T0, T1);
            a.ebreak();
        },
        &[
            (A0, -21i32 as u32),
            (A1, -2i32 as u32),
            (A2, -1i32 as u32),
            (A3, (u32::MAX - 6) / 3),
            (A4, (u32::MAX - 6) % 3),
            (A5, u32::MAX),
            (A6, ((((u32::MAX - 6) as u64) * 3) >> 32) as u32),
        ],
    );
}

#[test]
fn div_by_zero_and_overflow() {
    check_both(
        |a| {
            a.li(T0, 42);
            a.li(T1, 0);
            a.div(A0, T0, T1); // -1
            a.divu(A1, T0, T1); // 0xFFFFFFFF
            a.rem(A2, T0, T1); // 42
            a.remu(A3, T0, T1); // 42
            a.li(T2, i32::MIN);
            a.li(T3, -1);
            a.div(A4, T2, T3); // MIN
            a.rem(A5, T2, T3); // 0
            a.ebreak();
        },
        &[(A0, u32::MAX), (A1, u32::MAX), (A2, 42), (A3, 42), (A4, 0x8000_0000), (A5, 0)],
    );
}

#[test]
fn loads_and_stores_all_widths() {
    check_both(
        |a| {
            a.li(T0, 0x1000);
            a.li(T1, -2); // 0xFFFFFFFE
            a.sw(T1, 0, T0);
            a.lw(A0, 0, T0);
            a.lh(A1, 0, T0); // 0xFFFE sign-extended -> -2
            a.lhu(A2, 0, T0); // 0xFFFE
            a.lb(A3, 0, T0); // -2
            a.lbu(A4, 0, T0); // 0xFE
            a.li(T2, 0x1234);
            a.sh(T2, 4, T0);
            a.lhu(A5, 4, T0);
            a.sb(T2, 8, T0);
            a.lbu(A6, 8, T0);
            a.ebreak();
        },
        &[
            (A0, 0xFFFF_FFFE),
            (A1, 0xFFFF_FFFE),
            (A2, 0xFFFE),
            (A3, 0xFFFF_FFFE),
            (A4, 0xFE),
            (A5, 0x1234),
            (A6, 0x34),
        ],
    );
}

#[test]
fn branches_and_loops() {
    // Sum 1..=10 with a bne loop; gcd(252, 105) with blt/bge logic.
    check_both(
        |a| {
            a.li(T0, 10);
            a.li(A0, 0);
            a.label("sum");
            a.add(A0, A0, T0);
            a.addi(T0, T0, -1);
            a.bnez(T0, "sum");

            // gcd by subtraction
            a.li(T1, 252);
            a.li(T2, 105);
            a.label("gcd");
            a.beq(T1, T2, "done");
            a.bltu(T1, T2, "swap");
            a.sub(T1, T1, T2);
            a.j("gcd");
            a.label("swap");
            a.sub(T2, T2, T1);
            a.j("gcd");
            a.label("done");
            a.mv(A1, T1);
            a.ebreak();
        },
        &[(A0, 55), (A1, 21)],
    );
}

#[test]
fn jal_jalr_call_ret() {
    check_both(
        |a| {
            a.li(A0, 5);
            a.call("double");
            a.call("double");
            a.j("end");
            a.label("double");
            a.add(A0, A0, A0);
            a.ret();
            a.label("end");
            a.ebreak();
        },
        &[(A0, 20)],
    );
}

#[test]
fn function_pointer_via_jalr() {
    check_both(
        |a| {
            a.la(T0, "target");
            a.jalr(Ra, T0, 0);
            a.ebreak();
            a.label("target");
            a.li(A0, 99);
            a.ret();
        },
        &[(A0, 99)],
    );
}

#[test]
fn x0_is_hardwired_zero() {
    check_both(
        |a| {
            a.li(T0, 7);
            a.add(Zero, T0, T0); // write ignored
            a.mv(A0, Zero);
            a.ebreak();
        },
        &[(A0, 0)],
    );
}

#[test]
fn memory_retains_taint_across_store_load() {
    // Only meaningful in tainted mode.
    let mut a = Asm::new(0);
    a.li(T0, 0x2000);
    a.lw(T1, 0, T0); // load the classified word
    a.sw(T1, 64, T0); // copy it
    a.lw(A0, 64, T0); // reload the copy
    a.ebreak();
    let prog = a.assemble().unwrap();
    let mut mem = FlatMemory::<Tainted>::new(0, RAM);
    mem.load_image(0, prog.image());
    mem.load_image(0x2000, &0xCAFE_F00Du32.to_le_bytes());
    let secret = Tag::atom(0);
    mem.classify(0x2000, 4, secret);
    let mut cpu = Cpu::<Tainted>::new();
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A0).val(), 0xCAFE_F00D);
    assert_eq!(Word::tag(cpu.reg(A0)), secret, "taint survives store/load round trip");
    // And the copy location in memory is tagged byte-by-byte.
    for i in 0..4 {
        assert_eq!(mem.byte_at(0x2040 + i).unwrap().1, secret);
    }
}

#[test]
fn arithmetic_mixes_taint() {
    let mut a = Asm::new(0);
    a.li(T0, 0x2000);
    a.lw(T1, 0, T0); // secret
    a.li(T2, 1); // public
    a.add(A0, T1, T2); // secret
    a.sub(A1, T2, T2); // public
    a.xor(A2, T1, T1); // still secret (tag-wise)
    a.ebreak();
    let prog = a.assemble().unwrap();
    let mut mem = FlatMemory::<Tainted>::new(0, RAM);
    mem.load_image(0, prog.image());
    let secret = Tag::atom(2);
    mem.classify(0x2000, 4, secret);
    let mut cpu = Cpu::<Tainted>::new();
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(Word::tag(cpu.reg(A0)), secret);
    assert_eq!(Word::tag(cpu.reg(A1)), Tag::EMPTY);
    assert_eq!(Word::tag(cpu.reg(A2)), secret);
}

#[test]
fn partial_byte_load_picks_up_only_covered_tags() {
    let mut a = Asm::new(0);
    a.li(T0, 0x2000);
    a.lbu(A0, 0, T0); // classified byte
    a.lbu(A1, 1, T0); // unclassified byte
    a.ebreak();
    let prog = a.assemble().unwrap();
    let mut mem = FlatMemory::<Tainted>::new(0, RAM);
    mem.load_image(0, prog.image());
    mem.classify(0x2000, 1, Tag::atom(1));
    let mut cpu = Cpu::<Tainted>::new();
    assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
    assert_eq!(Word::tag(cpu.reg(A0)), Tag::atom(1));
    assert_eq!(Word::tag(cpu.reg(A1)), Tag::EMPTY);
}
