//! RV32A semantics tests: LR/SC reservation behavior and all nine AMOs,
//! including the read-modify-write taint rule (written tag =
//! LUB(loaded tag, rs2 tag)).

use vpdift_asm::{AmoOp, Asm, Reg};
use vpdift_core::{Tag, Taint};
use vpdift_rv32::{Bus, Cpu, FlatMemory, Plain, RunExit, TaintMode, Tainted, Word};

const RAM: usize = 64 * 1024;
const CELL: u32 = 0x1000;

/// Assembles `build`, runs it until `ebreak`, and returns CPU + memory.
fn run_prog<M: TaintMode>(build: impl FnOnce(&mut Asm)) -> (Cpu<M>, FlatMemory<M>) {
    let mut a = Asm::new(0);
    build(&mut a);
    let prog = a.assemble().expect("test program assembles");
    let mut mem = FlatMemory::<M>::new(0, RAM);
    mem.load_image(0, prog.image());
    let mut cpu = Cpu::<M>::new();
    cpu.set_reg(Reg::Sp, M::Word::from_u32(RAM as u32 - 16));
    let exit = cpu.run(&mut mem, 2_000_000);
    assert_eq!(exit, RunExit::Break, "program must end at ebreak");
    (cpu, mem)
}

fn check_both(build: impl Fn(&mut Asm) + Copy, expect: &[(Reg, u32)]) {
    for_mode::<Plain>(build, expect);
    for_mode::<Tainted>(build, expect);
}

fn for_mode<M: TaintMode>(build: impl FnOnce(&mut Asm), expect: &[(Reg, u32)]) {
    let (cpu, _) = run_prog::<M>(build);
    for &(r, v) in expect {
        assert_eq!(cpu.reg(r).val(), v, "register {r}");
    }
}

use Reg::*;

#[test]
fn lr_sc_success_path() {
    check_both(
        |a| {
            a.li(T0, CELL as i32);
            a.li(T1, 41);
            a.sw(T1, 0, T0);
            a.lr_w(A0, T0); // a0 = 41, reservation on CELL
            a.addi(A1, A0, 1);
            a.sc_w(A2, A1, T0); // succeeds: a2 = 0, mem = 42
            a.lw(A3, 0, T0);
            a.ebreak();
        },
        &[(A0, 41), (A2, 0), (A3, 42)],
    );
}

#[test]
fn sc_without_reservation_fails() {
    check_both(
        |a| {
            a.li(T0, CELL as i32);
            a.li(T1, 7);
            a.sw(T1, 0, T0);
            a.li(A1, 99);
            a.sc_w(A2, A1, T0); // no prior lr.w: a2 = 1, mem untouched
            a.lw(A3, 0, T0);
            a.ebreak();
        },
        &[(A2, 1), (A3, 7)],
    );
}

#[test]
fn sc_after_intervening_store_fails() {
    check_both(
        |a| {
            a.li(T0, CELL as i32);
            a.li(T2, (CELL + 64) as i32);
            a.li(T1, 5);
            a.sw(T1, 0, T0);
            a.lr_w(A0, T0);
            // Store to an unrelated address still breaks the reservation
            // (conservative single-reservation model).
            a.sw(T1, 0, T2);
            a.li(A1, 123);
            a.sc_w(A2, A1, T0); // fails: a2 = 1
            a.lw(A3, 0, T0);
            a.ebreak();
        },
        &[(A0, 5), (A2, 1), (A3, 5)],
    );
}

#[test]
fn sc_to_wrong_address_fails_and_consumes_reservation() {
    check_both(
        |a| {
            a.li(T0, CELL as i32);
            a.li(T2, (CELL + 8) as i32);
            a.lr_w(A0, T0);
            a.li(A1, 77);
            a.sc_w(A2, A1, T2); // wrong address: fails
            a.sc_w(A4, A1, T0); // reservation consumed by the failed SC
            a.lw(A3, 0, T0);
            a.ebreak();
        },
        &[(A2, 1), (A4, 1), (A3, 0)],
    );
}

#[test]
fn amo_arithmetic_results() {
    // amoadd: rd gets the OLD value, memory the sum.
    check_both(
        |a| {
            a.li(T0, CELL as i32);
            a.li(T1, 40);
            a.sw(T1, 0, T0);
            a.li(T2, 2);
            a.amoadd_w(A0, T2, T0); // a0 = 40, mem = 42
            a.lw(A1, 0, T0);
            a.amoswap_w(A2, T1, T0); // a2 = 42, mem = 40
            a.lw(A3, 0, T0);
            a.ebreak();
        },
        &[(A0, 40), (A1, 42), (A2, 42), (A3, 40)],
    );
}

#[test]
fn amo_min_max_signedness() {
    check_both(
        |a| {
            a.li(T0, CELL as i32);
            a.li(T1, -3);
            a.sw(T1, 0, T0);
            a.li(T2, 2);
            a.amomin_w(A0, T2, T0); // signed min(-3, 2) = -3
            a.lw(A1, 0, T0);
            a.li(T1, -3);
            a.sw(T1, 0, T0);
            a.amominu_w(A2, T2, T0); // unsigned min(0xFFFF_FFFD, 2) = 2
            a.lw(A3, 0, T0);
            a.li(T1, -3);
            a.sw(T1, 0, T0);
            a.amomax_w(A4, T2, T0); // signed max = 2
            a.lw(A5, 0, T0);
            a.li(T1, -3);
            a.sw(T1, 0, T0);
            a.amomaxu_w(A6, T2, T0); // unsigned max = 0xFFFF_FFFD
            a.lw(A7, 0, T0);
            a.ebreak();
        },
        &[
            (A0, -3i32 as u32),
            (A1, -3i32 as u32),
            (A2, -3i32 as u32),
            (A3, 2),
            (A4, -3i32 as u32),
            (A5, 2),
            (A6, -3i32 as u32),
            (A7, -3i32 as u32),
        ],
    );
}

#[test]
fn amo_bitwise_results() {
    check_both(
        |a| {
            a.li(T0, CELL as i32);
            a.li(T1, 0b1100);
            a.li(T2, 0b1010);
            a.sw(T1, 0, T0);
            a.amoxor_w(A0, T2, T0);
            a.lw(A1, 0, T0);
            a.sw(T1, 0, T0);
            a.amoand_w(A2, T2, T0);
            a.lw(A3, 0, T0);
            a.sw(T1, 0, T0);
            a.amoor_w(A4, T2, T0);
            a.lw(A5, 0, T0);
            a.ebreak();
        },
        &[(A0, 0b1100), (A1, 0b0110), (A2, 0b1100), (A3, 0b1000), (A4, 0b1100), (A5, 0b1110)],
    );
}

#[test]
fn amo_breaks_reservation() {
    check_both(
        |a| {
            a.li(T0, CELL as i32);
            a.lr_w(A0, T0);
            a.li(T2, 1);
            a.amoadd_w(A4, T2, T0); // a store: breaks the reservation
            a.li(A1, 9);
            a.sc_w(A2, A1, T0); // fails
            a.lw(A3, 0, T0);
            a.ebreak();
        },
        &[(A2, 1), (A3, 1)],
    );
}

/// The written word's tag is LUB(loaded tag, rs2 tag); rd carries the
/// loaded tag only.
#[test]
fn amo_taint_is_lub_of_loaded_and_rs2() {
    let mut a = Asm::new(0);
    a.li(T0, CELL as i32);
    a.li(T2, 2);
    a.amoadd_w(A0, T2, T0);
    a.lw(A1, 0, T0);
    a.ebreak();
    let prog = a.assemble().unwrap();

    let mut mem = FlatMemory::<Tainted>::new(0, RAM);
    mem.load_image(0, prog.image());
    // Memory cell carries tag bit 0; make rs2 (T2) carry tag bit 1 by
    // classifying the immediate's source... simpler: classify the cell and
    // poke the register after reset via a pre-seeded register.
    mem.store(CELL, 4, Taint::new(40u32, Tag::from_bits(0b01)), 0).unwrap();
    let mut cpu = Cpu::<Tainted>::new();
    cpu.set_reg(Reg::Sp, Taint::untainted(RAM as u32 - 16));
    // Run the first two insns (li is 1-2 insns; use step-until-pc), then
    // taint T2 before the AMO executes. Easier: run whole program with an
    // untainted T2 first to find expectations, then use the taint from the
    // memory cell only.
    let exit = cpu.run(&mut mem, 1000);
    assert_eq!(exit, RunExit::Break);
    // rd got the old value and the loaded tag.
    assert_eq!(cpu.reg(A0).value(), 40);
    assert_eq!(cpu.reg(A0).tag(), Tag::from_bits(0b01));
    // The written-back sum carries the loaded tag (rs2 was untainted).
    assert_eq!(cpu.reg(A1).value(), 42);
    assert_eq!(cpu.reg(A1).tag(), Tag::from_bits(0b01));

    // Second run: rs2 tainted too — the memory word must carry the LUB.
    let mut a = Asm::new(0);
    a.li(T0, CELL as i32);
    a.lw(T2, 4, T0); // T2 from a cell tagged 0b10
    a.amoadd_w(A0, T2, T0);
    a.lw(A1, 0, T0);
    a.ebreak();
    let prog = a.assemble().unwrap();
    let mut mem = FlatMemory::<Tainted>::new(0, RAM);
    mem.load_image(0, prog.image());
    mem.store(CELL, 4, Taint::new(40u32, Tag::from_bits(0b01)), 0).unwrap();
    mem.store(CELL + 4, 4, Taint::new(2u32, Tag::from_bits(0b10)), 0).unwrap();
    let mut cpu = Cpu::<Tainted>::new();
    cpu.set_reg(Reg::Sp, Taint::untainted(RAM as u32 - 16));
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A1).value(), 42);
    assert_eq!(cpu.reg(A1).tag(), Tag::from_bits(0b11), "written tag = LUB(loaded, rs2)");
    // rd keeps only the loaded tag.
    assert_eq!(cpu.reg(A0).tag(), Tag::from_bits(0b01));
}

/// LR propagates the loaded tag into rd; a successful SC writes rs2's tag
/// to memory and produces an untainted success code.
#[test]
fn lr_sc_taint_propagation() {
    let mut a = Asm::new(0);
    a.li(T0, CELL as i32);
    a.lr_w(A0, T0);
    a.lw(T2, 4, T0);
    // Reservation must survive loads (only stores break it).
    a.sc_w(A2, T2, T0);
    a.lw(A1, 0, T0);
    a.ebreak();
    let prog = a.assemble().unwrap();
    let mut mem = FlatMemory::<Tainted>::new(0, RAM);
    mem.load_image(0, prog.image());
    mem.store(CELL, 4, Taint::new(1u32, Tag::from_bits(0b01)), 0).unwrap();
    mem.store(CELL + 4, 4, Taint::new(5u32, Tag::from_bits(0b10)), 0).unwrap();
    let mut cpu = Cpu::<Tainted>::new();
    cpu.set_reg(Reg::Sp, Taint::untainted(RAM as u32 - 16));
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A0).tag(), Tag::from_bits(0b01), "lr.w propagates the loaded tag");
    assert_eq!(cpu.reg(A2).value(), 0, "sc.w succeeded");
    assert_eq!(cpu.reg(A2).tag(), Tag::EMPTY, "success code is architecturally generated");
    assert_eq!(cpu.reg(A1).value(), 5);
    assert_eq!(cpu.reg(A1).tag(), Tag::from_bits(0b10), "sc.w stored rs2's tag");
}

#[test]
fn misaligned_amo_traps() {
    for_misaligned::<Plain>();
    for_misaligned::<Tainted>();
}

fn for_misaligned<M: TaintMode>() {
    let mut a = Asm::new(0);
    a.j("start");
    a.align(4);
    a.label("handler");
    a.ebreak();
    a.label("start");
    a.la(T1, "handler");
    a.csrw(vpdift_asm::csr::MTVEC, T1);
    a.li(T0, (CELL + 2) as i32);
    a.li(T2, 1);
    a.amoadd_w(A0, T2, T0);
    a.ebreak();
    let prog = a.assemble().unwrap();
    let mut mem = FlatMemory::<M>::new(0, RAM);
    mem.load_image(0, prog.image());
    let mut cpu = Cpu::<M>::new();
    let exit = cpu.run(&mut mem, 1000);
    assert_eq!(exit, RunExit::Break);
    assert_eq!(cpu.traps_taken(), 1, "misaligned AMO must trap");
    assert_eq!(cpu.csrs().mcause.val(), 6, "store/AMO address misaligned");
    assert_eq!(cpu.csrs().mtval.val(), CELL + 2);
}

#[test]
fn reservation_visible_and_cleared() {
    let mut a = Asm::new(0);
    a.li(T0, CELL as i32);
    a.lr_w(A0, T0);
    a.ebreak();
    let prog = a.assemble().unwrap();
    let mut mem = FlatMemory::<Plain>::new(0, RAM);
    mem.load_image(0, prog.image());
    let mut cpu = Cpu::<Plain>::new();
    assert_eq!(cpu.reservation(), None);
    assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
    assert_eq!(cpu.reservation(), Some(CELL));
    cpu.reset(0);
    assert_eq!(cpu.reservation(), None, "reset clears the reservation");
}

/// The reservation state is part of the architectural digest.
#[test]
fn reservation_changes_state_digest() {
    let mut a = Asm::new(0);
    a.li(T0, CELL as i32);
    a.lr_w(A0, T0);
    a.ebreak();
    let prog = a.assemble().unwrap();

    let mut b = Asm::new(0);
    b.li(T0, CELL as i32);
    b.lw(A0, 0, T0);
    b.ebreak();
    let prog2 = b.assemble().unwrap();

    let digest = |p: &vpdift_asm::Program| {
        let mut mem = FlatMemory::<Plain>::new(0, RAM);
        mem.load_image(0, p.image());
        let mut cpu = Cpu::<Plain>::new();
        assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
        cpu.state_digest()
    };
    // Same registers, same pc/instret — only the reservation differs.
    assert_ne!(digest(&prog), digest(&prog2));
}

/// `AmoOp::apply` matches the executed semantics for every op.
#[test]
fn every_amo_op_executes() {
    for op in AmoOp::ALL {
        let old = 0x8000_0001u32; // negative as i32, large as u32
        let rhs = 7u32;
        let (cpu, _) = run_prog::<Plain>(|a| {
            a.li(T0, CELL as i32);
            a.li(T1, old as i32);
            a.sw(T1, 0, T0);
            a.li(T2, rhs as i32);
            a.amo_w(op, A0, T2, T0);
            a.lw(A1, 0, T0);
            a.ebreak();
        });
        assert_eq!(cpu.reg(A0).val(), old, "{op:?}: rd = old value");
        assert_eq!(cpu.reg(A1).val(), op.apply(old, rhs), "{op:?}: memory = apply(old, rs2)");
    }
}
