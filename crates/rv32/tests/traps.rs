//! Trap, interrupt and execution-clearance tests for the ISS.

use vpdift_asm::{csr, Asm, Reg};
use vpdift_core::{DiftEngine, EnforceMode, ExecClearance, SecurityPolicy, Tag, ViolationKind};
use vpdift_rv32::{Cpu, FlatMemory, Plain, RunExit, Step, Tainted, Word};

use Reg::*;

const RAM: usize = 64 * 1024;

fn setup(build: impl FnOnce(&mut Asm)) -> (Cpu<Tainted>, FlatMemory<Tainted>) {
    let mut a = Asm::new(0);
    build(&mut a);
    let prog = a.assemble().unwrap();
    let mut mem = FlatMemory::<Tainted>::new(0, RAM);
    mem.load_image(0, prog.image());
    let mut cpu = Cpu::<Tainted>::new();
    cpu.set_reg(Sp, vpdift_core::Taint::untainted(RAM as u32 - 16));
    (cpu, mem)
}

#[test]
fn ecall_vectors_to_mtvec_and_mret_returns() {
    let (mut cpu, mut mem) = setup(|a| {
        // Set mtvec to the handler, make an ecall, check a0 set by handler.
        a.la(T0, "handler");
        a.csrw(csr::MTVEC, T0);
        a.li(A0, 0);
        a.ecall();
        a.ebreak(); // reached only after mret

        a.label("handler");
        a.li(A0, 123);
        a.csrr(T1, csr::MEPC);
        a.addi(T1, T1, 4); // skip the ecall
        a.csrw(csr::MEPC, T1);
        a.mret();
    });
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A0).val(), 123);
    assert_eq!(cpu.csrs().mcause.val(), 11, "ecall from M-mode");
}

#[test]
fn illegal_instruction_traps_with_mtval() {
    let (mut cpu, mut mem) = setup(|a| {
        a.la(T0, "handler");
        a.csrw(csr::MTVEC, T0);
        a.word(0xFFFF_FFFF); // illegal
        a.label("handler");
        a.csrr(A0, csr::MCAUSE);
        a.csrr(A1, csr::MTVAL);
        a.ebreak();
    });
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A0).val(), 2, "illegal instruction cause");
    assert_eq!(cpu.reg(A1).val(), 0xFFFF_FFFF);
}

#[test]
fn misaligned_load_traps() {
    let (mut cpu, mut mem) = setup(|a| {
        a.la(T0, "handler");
        a.csrw(csr::MTVEC, T0);
        a.li(T1, 0x1001);
        a.lw(A0, 0, T1); // misaligned
        a.label("handler");
        a.csrr(A0, csr::MCAUSE);
        a.csrr(A1, csr::MTVAL);
        a.ebreak();
    });
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A0).val(), 4);
    assert_eq!(cpu.reg(A1).val(), 0x1001);
}

#[test]
fn load_fault_on_unmapped_address() {
    let (mut cpu, mut mem) = setup(|a| {
        a.la(T0, "handler");
        a.csrw(csr::MTVEC, T0);
        a.li(T1, 0x4000_0000u32 as i32);
        a.lw(A0, 0, T1);
        a.label("handler");
        a.csrr(A0, csr::MCAUSE);
        a.ebreak();
    });
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A0).val(), 5, "load access fault");
}

#[test]
fn timer_interrupt_preempts_and_wfi_wakes() {
    let (mut cpu, mut mem) = setup(|a| {
        a.la(T0, "handler");
        a.csrw(csr::MTVEC, T0);
        a.li(T1, csr::MIE_MTIE as i32);
        a.csrw(csr::MIE, T1);
        a.li(T1, csr::MSTATUS_MIE as i32);
        a.csrw(csr::MSTATUS, T1);
        a.li(A0, 0);
        a.wfi();
        a.ebreak(); // resumed here after handler returns

        a.label("handler");
        a.li(A0, 7);
        a.mret();
    });
    // Run until parked in wfi.
    let exit = cpu.run(&mut mem, 1000);
    assert_eq!(exit, RunExit::Wfi);
    assert!(cpu.is_waiting());
    // Fire the timer line (as the CLINT would).
    cpu.set_timer_irq(true);
    let step = cpu.step(&mut mem).unwrap();
    assert_eq!(step, Step::Executed, "interrupt taken");
    assert_eq!(cpu.csrs().mcause.val(), 0x8000_0007);
    cpu.set_timer_irq(false);
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A0).val(), 7);
}

#[test]
fn interrupt_priority_external_over_timer() {
    let (mut cpu, mut mem) = setup(|a| {
        a.la(T0, "handler");
        a.csrw(csr::MTVEC, T0);
        a.li(T1, (csr::MIE_MTIE | csr::MIE_MEIE) as i32);
        a.csrw(csr::MIE, T1);
        a.li(T1, csr::MSTATUS_MIE as i32);
        a.csrw(csr::MSTATUS, T1);
        a.label("spin");
        a.j("spin");
        a.label("handler");
        a.csrr(A0, csr::MCAUSE);
        a.ebreak();
    });
    cpu.set_timer_irq(true);
    cpu.set_external_irq(true);
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A0).val(), 0x8000_000B, "external wins");
}

#[test]
fn mstatus_mie_gates_interrupts() {
    let (mut cpu, mut mem) = setup(|a| {
        a.li(T1, csr::MIE_MTIE as i32);
        a.csrw(csr::MIE, T1);
        // mstatus.MIE left clear: interrupt must NOT fire.
        a.li(A0, 41);
        a.addi(A0, A0, 1);
        a.ebreak();
    });
    cpu.set_timer_irq(true);
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
    assert_eq!(cpu.reg(A0).val(), 42);
}

// ---------------------------------------------------------------------
// Execution clearance (§V-B2)
// ---------------------------------------------------------------------

const SECRET: Tag = Tag::from_bits(0b01);

fn engine_with_exec(exec: ExecClearance, mode: EnforceMode) -> vpdift_core::SharedEngine {
    let policy = SecurityPolicy::builder("exec-test").exec_clearance(exec).build();
    DiftEngine::with_mode(policy, mode).into_shared()
}

#[test]
fn branch_on_secret_condition_violates() {
    let (mut cpu, mut mem) = setup(|a| {
        a.li(T0, 0x2000);
        a.lw(T1, 0, T0); // secret value
        a.beqz(T1, "zero"); // branch on secret -> violation
        a.label("zero");
        a.ebreak();
    });
    mem.classify(0x2000, 4, SECRET);
    let exec = ExecClearance { branch: Some(Tag::EMPTY), fetch: None, mem_addr: None };
    let engine = engine_with_exec(exec, EnforceMode::Enforce);
    cpu.set_engine(engine.clone());
    cpu.set_exec_clearance(exec);
    match cpu.run(&mut mem, 1000) {
        RunExit::Violation(v) => {
            assert_eq!(v.kind, ViolationKind::Branch);
            assert_eq!(v.tag, SECRET);
        }
        other => panic!("expected violation, got {other:?}"),
    }
    assert!(engine.borrow().violated());
}

#[test]
fn branch_on_public_condition_is_fine() {
    let (mut cpu, mut mem) = setup(|a| {
        a.li(T1, 0);
        a.beqz(T1, "zero");
        a.label("zero");
        a.ebreak();
    });
    let exec = ExecClearance { branch: Some(Tag::EMPTY), fetch: None, mem_addr: None };
    cpu.set_engine(engine_with_exec(exec, EnforceMode::Enforce));
    cpu.set_exec_clearance(exec);
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
}

#[test]
fn indirect_jump_through_secret_pointer_violates() {
    let (mut cpu, mut mem) = setup(|a| {
        a.li(T0, 0x2000);
        a.lw(T1, 0, T0); // secret function pointer
        a.jalr(Ra, T1, 0);
        a.ebreak();
    });
    mem.load_image(0x2000, &16u32.to_le_bytes());
    mem.classify(0x2000, 4, SECRET);
    let exec = ExecClearance { branch: Some(Tag::EMPTY), fetch: None, mem_addr: None };
    cpu.set_engine(engine_with_exec(exec, EnforceMode::Enforce));
    cpu.set_exec_clearance(exec);
    match cpu.run(&mut mem, 1000) {
        RunExit::Violation(v) => assert_eq!(v.kind, ViolationKind::Branch),
        other => panic!("expected violation, got {other:?}"),
    }
}

#[test]
fn memory_access_with_secret_address_violates() {
    let (mut cpu, mut mem) = setup(|a| {
        a.li(T0, 0x2000);
        a.lw(T1, 0, T0); // secret value used as address
        a.lw(A0, 0, T1); // Mem[secret]
        a.ebreak();
    });
    mem.load_image(0x2000, &0x3000u32.to_le_bytes());
    mem.classify(0x2000, 4, SECRET);
    let exec = ExecClearance { mem_addr: Some(Tag::EMPTY), fetch: None, branch: None };
    cpu.set_engine(engine_with_exec(exec, EnforceMode::Enforce));
    cpu.set_exec_clearance(exec);
    match cpu.run(&mut mem, 1000) {
        RunExit::Violation(v) => assert_eq!(v.kind, ViolationKind::MemAddr),
        other => panic!("expected violation, got {other:?}"),
    }
}

#[test]
fn fetching_low_integrity_instruction_violates() {
    // Integrity atom: program code is trusted (empty tag); the "injected"
    // region carries the untrusted atom, and fetch clearance is empty.
    let untrusted = Tag::from_bits(0b10);
    let (mut cpu, mut mem) = setup(|a| {
        a.la(T0, "payload");
        a.jalr(Ra, T0, 0);
        a.ebreak();
        a.label("payload");
        a.li(A0, 666); // "malicious" code
        a.ret();
    });
    let payload_addr = {
        // find label address: it was assembled at fixed layout; easiest is
        // to recompute via a second assembly of the same program.
        let mut a = Asm::new(0);
        a.la(T0, "payload");
        a.jalr(Ra, T0, 0);
        a.ebreak();
        a.label("payload");
        a.li(A0, 666);
        a.ret();
        a.assemble().unwrap().symbol("payload").unwrap()
    };
    mem.classify(payload_addr, 12, untrusted);
    let exec = ExecClearance { fetch: Some(Tag::EMPTY), branch: None, mem_addr: None };
    let engine = engine_with_exec(exec, EnforceMode::Enforce);
    cpu.set_engine(engine);
    cpu.set_exec_clearance(exec);
    match cpu.run(&mut mem, 1000) {
        RunExit::Violation(v) => {
            assert_eq!(v.kind, ViolationKind::Fetch);
            assert_eq!(v.pc, Some(payload_addr));
        }
        other => panic!("expected fetch violation, got {other:?}"),
    }
}

#[test]
fn record_mode_logs_but_continues() {
    let (mut cpu, mut mem) = setup(|a| {
        a.li(T0, 0x2000);
        a.lw(T1, 0, T0);
        a.beqz(T1, "zero");
        a.label("zero");
        a.li(A0, 1);
        a.ebreak();
    });
    mem.classify(0x2000, 4, SECRET);
    let exec = ExecClearance { branch: Some(Tag::EMPTY), fetch: None, mem_addr: None };
    let engine = engine_with_exec(exec, EnforceMode::Record);
    cpu.set_engine(engine.clone());
    cpu.set_exec_clearance(exec);
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break, "record mode continues");
    assert_eq!(cpu.reg(A0).val(), 1);
    assert_eq!(engine.borrow().violations().len(), 1);
}

#[test]
fn plain_mode_never_checks() {
    // Same secret-branch program in Plain mode: no tags exist, no checks.
    let mut a = Asm::new(0);
    a.li(T0, 0x2000);
    a.lw(T1, 0, T0);
    a.beqz(T1, "zero");
    a.label("zero");
    a.ebreak();
    let prog = a.assemble().unwrap();
    let mut mem = FlatMemory::<Plain>::new(0, RAM);
    mem.load_image(0, prog.image());
    let mut cpu = Cpu::<Plain>::new();
    cpu.set_exec_clearance(ExecClearance::uniform(Tag::EMPTY));
    assert_eq!(cpu.run(&mut mem, 1000), RunExit::Break);
}

#[test]
fn tainted_mepc_is_checked_on_mret() {
    let (mut cpu, mut mem) = setup(|a| {
        a.li(T0, 0x2000);
        a.lw(T1, 0, T0); // secret target
        a.csrw(csr::MEPC, T1);
        a.mret();
        a.ebreak();
    });
    mem.load_image(0x2000, &8u32.to_le_bytes());
    mem.classify(0x2000, 4, SECRET);
    let exec = ExecClearance { branch: Some(Tag::EMPTY), fetch: None, mem_addr: None };
    cpu.set_engine(engine_with_exec(exec, EnforceMode::Enforce));
    cpu.set_exec_clearance(exec);
    match cpu.run(&mut mem, 1000) {
        RunExit::Violation(v) => assert_eq!(v.kind, ViolationKind::Branch),
        other => panic!("expected violation, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Trap-loop detection
// ---------------------------------------------------------------------

#[test]
fn misconfigured_trap_vector_exits_as_trap_loop() {
    // mtvec points at a word that is itself an illegal instruction, so the
    // illegal-instruction trap re-enters itself forever: same pc, same
    // cause, no retirement. The detector must stop this as TrapLoop long
    // before the instruction budget runs out.
    let (mut cpu, mut mem) = setup(|a| {
        a.la(T0, "bad_vector");
        a.csrw(csr::MTVEC, T0);
        a.word(0xFFFF_FFFF); // illegal: enters the trap loop
        a.label("bad_vector");
        a.word(0xFFFF_FFFF); // the "handler" is illegal too
    });
    assert_eq!(cpu.run(&mut mem, 1_000_000), RunExit::TrapLoop);
    assert!(
        cpu.traps_taken() >= u64::from(vpdift_rv32::DEFAULT_TRAP_LOOP_THRESHOLD),
        "detector waited for the configured threshold"
    );
    assert_eq!(cpu.csrs().mcause.val(), 2, "last trap was the illegal instruction");
}

#[test]
fn trap_loop_detection_can_be_disabled() {
    let (mut cpu, mut mem) = setup(|a| {
        a.word(0xFFFF_FFFF); // illegal; mtvec = 0 re-enters it forever
    });
    // With detection off the CPU spins trap-after-trap indefinitely (and,
    // because traps never retire, a retirement budget would never expire —
    // the pre-watchdog hang this PR makes classifiable).
    cpu.set_trap_loop_threshold(0);
    for _ in 0..10_000 {
        assert_eq!(cpu.step(&mut mem).unwrap(), Step::Executed);
    }
    assert_eq!(cpu.instret(), 0, "nothing ever retires in the loop");
    assert_eq!(cpu.traps_taken(), 10_000);
}

#[test]
fn recovering_trap_handler_is_not_flagged() {
    // A handler that fixes up mepc and retires instructions: many traps,
    // but progress in between — never a loop.
    let (mut cpu, mut mem) = setup(|a| {
        a.la(T0, "handler");
        a.csrw(csr::MTVEC, T0);
        a.li(S0, 0);
        a.label("again");
        a.ecall(); // traps every iteration
        a.addi(S0, S0, 1);
        a.li(T1, 64);
        a.blt(S0, T1, "again");
        a.ebreak();

        a.label("handler");
        a.csrr(T2, csr::MEPC);
        a.addi(T2, T2, 4);
        a.csrw(csr::MEPC, T2);
        a.mret();
    });
    assert_eq!(cpu.run(&mut mem, 100_000), RunExit::Break);
    assert_eq!(cpu.traps_taken(), 64, "every ecall trapped");
    assert_eq!(cpu.reg(S0).val(), 64);
}

#[test]
fn instret_counts_retired_instructions() {
    let (mut cpu, mut mem) = setup(|a| {
        a.nop();
        a.nop();
        a.nop();
        a.ebreak();
    });
    assert_eq!(cpu.run(&mut mem, 100), RunExit::Break);
    assert_eq!(cpu.instret(), 4);
    // CSR shadow matches.
    let (mut cpu2, mut mem2) = setup(|a| {
        a.nop();
        a.csrr(A0, csr::CYCLE);
        a.ebreak();
    });
    assert_eq!(cpu2.run(&mut mem2, 100), RunExit::Break);
    assert_eq!(cpu2.reg(A0).val(), 1, "cycle read after 1 retired insn");
}
