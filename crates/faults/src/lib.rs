//! # vpdift-faults — deterministic fault injection and resilience campaigns
//!
//! The paper's VP argues DIFT catches *software* attacks; this crate asks
//! what happens when the *platform* misbehaves: seeded, reproducible fault
//! injection across every layer of the VP, plus the campaign machinery
//! that classifies how gracefully the stack degrades.
//!
//! ## Fault model
//!
//! * **RAM** — single-bit flips in data bytes ([`FaultKind::RamDataFlip`])
//!   and, independently, in the taint-tag plane
//!   ([`FaultKind::RamTagFlip`]) — the latter corrupts the DIFT engine's
//!   *metadata*, not the architecture.
//! * **Bus** — TLM-level faults through the SoC's interposing
//!   `FaultRouter`: payload corruption, dropped transactions, forced error
//!   responses (`TlmCorrupt` / `TlmDrop` / `TlmError`).
//! * **Peripherals** — CAN frame corruption/loss on the wire, sensor
//!   stuck-at values, DMA mid-burst aborts.
//! * **Interrupts** — spurious PLIC sources and interrupt storms.
//!
//! ## Resilience machinery exercised
//!
//! * the memory-mapped **watchdog** (`SocExit::WatchdogTimeout`),
//! * the CPU's **trap-loop detector** (`SocExit::TrapLoop`),
//! * CAN **bounded retry** on injected frame loss,
//! * the DIFT engine's **fail-closed rule** (out-of-universe tags saturate
//!   to lattice top instead of silently declassifying).
//!
//! ## Campaigns
//!
//! [`run_campaign`] replays the immobilizer case study and the §VI-B
//! attack suite under `N` seeded fault schedules and classifies every run
//! as `masked` / `dift_detected` / `precise_trap` / `watchdog_timeout` /
//! `trap_loop` / `hang` / `sdc`. The same seed produces a byte-identical
//! JSON report ([`render_json`]); no wall-clock time or global state is
//! consulted anywhere.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod config;
pub mod hooks;
pub mod injector;
pub mod report;

pub use campaign::{
    campaign_prelude, classify, random_run, run_campaign, CampaignConfig, CampaignPrelude,
    CampaignReport, Outcome, RunOutcomes, ScenarioKind, ScenarioOutcome, ScenarioRun,
};
pub use config::{generate_plan, FaultKind, PlannedFault};
pub use hooks::{ArmedBusFault, BusFaultKind, LossyCanFault};
pub use injector::{apply_fault, run_with_faults, FaultRecord, InjectorState};
pub use report::{render_json, run_json, scenario_json};
