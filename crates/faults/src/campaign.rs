//! Fault campaigns over the paper's workloads: run the immobilizer case
//! study and the §VI-B attack suite under seeded fault schedules and
//! classify how the platform degraded.
//!
//! Three *random* scenarios take per-run generated schedules; three
//! *directed* scenarios carry fixed schedules constructed to demonstrate
//! one resilience mechanism each (trap-loop detection, the watchdog, and
//! the DIFT fail-closed rule), so every campaign — regardless of seed —
//! contains at least one `trap_loop`, one `watchdog_timeout` and one
//! `dift_detected` classification.

use vpdift_asm::{Asm, Reg};
use vpdift_attacks::{all_attacks, code_injection_policy, LI};
use vpdift_core::{SecurityPolicy, Tag};
use vpdift_firmware::rt::emit_runtime;
use vpdift_immo::firmware::{self as immo_fw, Variant, CHALLENGE_ID};
use vpdift_immo::policy as immo_policy;
use vpdift_immo::protocol::{policy_for, prepare_session, PolicyKind};
use vpdift_immo::scenarios::{build_program as build_leak_program, Scenario};
use vpdift_kernel::SimTime;
use vpdift_periph::can::regs as can_regs;
use vpdift_periph::CanFrame;
use vpdift_rv32::Tainted;
use vpdift_soc::{map, ExecConfig, Soc, SocBuilder, SocExit};
use vpdift_sync::shared;

use crate::config::{generate_plan, FaultKind, PlannedFault};
use crate::hooks::LossyCanFault;
use crate::injector::{run_with_faults, FaultRecord};

/// RAM window targeted by random RAM faults: covers every workload image
/// plus its working data (see [`generate_plan`]).
const RAM_FAULT_WINDOW: u32 = 0x4000;

/// Campaign parameters. Equal configs produce byte-identical reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; per-run schedule seeds are derived from it.
    pub seed: u64,
    /// Number of seeded random-schedule runs.
    pub runs: u32,
    /// Faults per CPU step of the reference run (schedule density). The
    /// derived per-run fault count is clamped to `1..=32`.
    pub rate: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { seed: 0xD1F7_FA17, runs: 10, rate: 5e-5 }
    }
}

/// The campaign's workload scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Immobilizer challenge-response session (fixed firmware, per-byte
    /// policy) under a random fault schedule.
    ImmoSession,
    /// §VI-A scenario 1a (direct PIN leak) under the per-byte policy —
    /// the reference run *is* a violation, so the interesting outcome is
    /// a fault that masks detection.
    ImmoLeak,
    /// One §VI-B code-injection attack under the fetch-clearance policy.
    AttackInjection,
    /// Directed: a RAM bit flip turns the only instruction of a spin loop
    /// illegal — with `mtvec` still at the reset vector, the trap target
    /// *is* the corrupted word, and the trap-loop detector must fire.
    DirectedTrapLoop,
    /// Directed: the CAN line eats the only challenge frame while the
    /// guest spin-waits for it; the armed watchdog must bite.
    DirectedWatchdog,
    /// Directed: a taint-tag bit flip plants an atom no policy rule ever
    /// mentions on a byte headed for the UART; the DIFT engine's
    /// fail-closed rule must saturate it and stop the output.
    DirectedTagCorruption,
}

impl ScenarioKind {
    /// Scenarios driven by per-run random schedules.
    pub const RANDOM: [ScenarioKind; 3] =
        [ScenarioKind::ImmoSession, ScenarioKind::ImmoLeak, ScenarioKind::AttackInjection];

    /// Scenarios with fixed, purpose-built schedules.
    pub const DIRECTED: [ScenarioKind; 3] = [
        ScenarioKind::DirectedTrapLoop,
        ScenarioKind::DirectedWatchdog,
        ScenarioKind::DirectedTagCorruption,
    ];

    /// Stable scenario name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::ImmoSession => "immo-session",
            ScenarioKind::ImmoLeak => "immo-leak",
            ScenarioKind::AttackInjection => "attack-injection",
            ScenarioKind::DirectedTrapLoop => "directed-trap-loop",
            ScenarioKind::DirectedWatchdog => "directed-watchdog",
            ScenarioKind::DirectedTagCorruption => "directed-tag-corruption",
        }
    }

    /// Per-scenario schedule-seed salt, so the same run seed draws
    /// independent schedules for each scenario.
    fn salt(self) -> u64 {
        match self {
            ScenarioKind::ImmoSession => 0x5E55_1001,
            ScenarioKind::ImmoLeak => 0x1EA6_0CAF,
            ScenarioKind::AttackInjection => 0x00A7_7ACC,
            _ => 0,
        }
    }

    /// Step budget for the *reference* (fault-free) run.
    fn reference_budget(self) -> u64 {
        match self {
            ScenarioKind::ImmoSession => 50_000_000,
            ScenarioKind::ImmoLeak | ScenarioKind::AttackInjection => 10_000_000,
            // Directed references are open loops; a small budget bounds
            // them (their classification never depends on the budget).
            ScenarioKind::DirectedTrapLoop => 20_000,
            ScenarioKind::DirectedWatchdog => 2_000_000,
            ScenarioKind::DirectedTagCorruption => 100_000,
        }
    }
}

/// Everything observed about one scenario execution.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// How the simulation ended.
    pub exit: SocExit,
    /// UART output (the architectural result surface).
    pub uart: Vec<u8>,
    /// Successful ECU authentications (immobilizer session only).
    pub auths: u32,
    /// CPU steps consumed (retired instructions + taken traps).
    pub steps: u64,
    /// Taken traps alone.
    pub traps: u64,
    /// Simulated time at exit.
    pub sim_time: SimTime,
    /// Faults actually applied.
    pub faults: Vec<FaultRecord>,
}

/// How a faulted run compares to its fault-free reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Architecturally identical to the reference — the fault was
    /// absorbed.
    Masked,
    /// The DIFT engine raised a violation the reference did not (or a
    /// different one) — the fault was *detected* by the policy layer.
    DiftDetected,
    /// Same architectural result, but the platform took extra precise
    /// traps to get there.
    PreciseTrap,
    /// The armed watchdog expired.
    WatchdogTimeout,
    /// The CPU's trap-loop detector fired.
    TrapLoop,
    /// The run neither finished nor tripped a resilience mechanism
    /// within its budget.
    Hang,
    /// Outputs match the reference but the scenario's success metric
    /// regressed (fewer authentications): the failure is *visible* at
    /// the protocol level — fail-secure, not silent.
    Degraded,
    /// Silent data corruption: the run completed with a different
    /// architectural result, gained authentications it should not have,
    /// or lost a detection the reference made.
    Sdc,
}

impl Outcome {
    /// Number of outcome classes.
    pub const COUNT: usize = 8;

    /// All outcomes, in report order.
    pub const ALL: [Outcome; Outcome::COUNT] = [
        Outcome::Masked,
        Outcome::DiftDetected,
        Outcome::PreciseTrap,
        Outcome::WatchdogTimeout,
        Outcome::TrapLoop,
        Outcome::Hang,
        Outcome::Degraded,
        Outcome::Sdc,
    ];

    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::DiftDetected => "dift_detected",
            Outcome::PreciseTrap => "precise_trap",
            Outcome::WatchdogTimeout => "watchdog_timeout",
            Outcome::TrapLoop => "trap_loop",
            Outcome::Hang => "hang",
            Outcome::Degraded => "degraded",
            Outcome::Sdc => "sdc",
        }
    }

    /// Dense index into summary arrays.
    pub fn index(self) -> usize {
        match self {
            Outcome::Masked => 0,
            Outcome::DiftDetected => 1,
            Outcome::PreciseTrap => 2,
            Outcome::WatchdogTimeout => 3,
            Outcome::TrapLoop => 4,
            Outcome::Hang => 5,
            Outcome::Degraded => 6,
            Outcome::Sdc => 7,
        }
    }
}

/// Classifies a faulted run against its fault-free reference.
pub fn classify(reference: &ScenarioRun, run: &ScenarioRun) -> Outcome {
    match &run.exit {
        SocExit::WatchdogTimeout => Outcome::WatchdogTimeout,
        SocExit::TrapLoop => Outcome::TrapLoop,
        SocExit::Violation(v) => match &reference.exit {
            // The reference already violated: the same violation kind
            // means the fault changed nothing the policy layer sees; a
            // *different* kind means the engine caught the fault itself.
            SocExit::Violation(r) if r.kind == v.kind => Outcome::Masked,
            _ => Outcome::DiftDetected,
        },
        SocExit::Break => {
            if matches!(reference.exit, SocExit::Violation(_)) {
                // The reference was stopped by the policy; completing
                // cleanly means the fault *suppressed* a detection.
                Outcome::Sdc
            } else if run.uart == reference.uart && run.auths == reference.auths {
                if run.traps > reference.traps {
                    Outcome::PreciseTrap
                } else {
                    Outcome::Masked
                }
            } else if run.uart == reference.uart && run.auths < reference.auths {
                // A corrupted or lost exchange that the protocol refused:
                // the engine stays locked — fail-secure, visibly degraded.
                Outcome::Degraded
            } else {
                Outcome::Sdc
            }
        }
        // A cooperative stop never happens inside a campaign (no serve
        // session drives these runs); treat a stray one like a budget
        // exit so the classification stays total.
        SocExit::InstrLimit | SocExit::Idle | SocExit::Stopped => {
            // Directed references are open loops that also hit the
            // budget; matching behavior there is absorption, not a hang.
            if matches!(reference.exit, SocExit::InstrLimit | SocExit::Idle)
                && run.uart == reference.uart
            {
                Outcome::Masked
            } else {
                Outcome::Hang
            }
        }
    }
}

fn observe<S: vpdift_obs::ObsSink>(
    soc: &Soc<Tainted, S>,
    exit: SocExit,
    auths: u32,
    faults: Vec<FaultRecord>,
) -> ScenarioRun {
    ScenarioRun {
        exit,
        uart: soc.uart().borrow().output().to_vec(),
        auths,
        steps: soc.instret() + soc.cpu().traps_taken(),
        traps: soc.cpu().traps_taken(),
        sim_time: soc.now(),
        faults,
    }
}

/// Every campaign SoC starts from the one validated [`ExecConfig`] entry
/// point; scenario-specific knobs (typed policies, the disabled sensor
/// thread) layer on top of the resolved builder.
fn base_builder() -> SocBuilder {
    SocBuilder::from_exec_config(&ExecConfig::default())
        .expect("the default exec config is valid")
        .sensor_thread(false)
}

/// Runs a *random-schedule* scenario under `plan`. `watchdog` arms the
/// host-side hang detector (always `None` for the reference run: an
/// un-kicked dog would bite every long reference).
pub fn faulted_run(
    kind: ScenarioKind,
    plan: &[PlannedFault],
    watchdog: Option<SimTime>,
    budget: u64,
) -> ScenarioRun {
    match kind {
        ScenarioKind::ImmoSession => {
            let fw = immo_fw::build(Variant::Fixed);
            let cfg = base_builder().policy(policy_for(PolicyKind::PerByte, &fw)).build();
            let mut soc = Soc::<Tainted>::new(cfg);
            let (mut ecu, challenges) = prepare_session(&mut soc, &fw, 1, b"q", 0xEC0);
            if let Some(t) = watchdog {
                soc.watchdog().borrow_mut().arm(t);
            }
            let (exit, faults) = run_with_faults(&mut soc, budget, plan);
            let auths =
                challenges.iter().filter(|ch| ecu.verify_response(soc.can_host(), ch)).count()
                    as u32;
            observe(&soc, exit, auths, faults)
        }
        ScenarioKind::ImmoLeak => {
            let program = build_leak_program(Scenario::DirectLeakUart);
            let pin_addr = program.symbol("pin").expect("leak program has a pin label");
            let (policy, _tags) = immo_policy::per_byte(pin_addr, 16);
            let cfg = base_builder().policy(policy).build();
            let mut soc = Soc::<Tainted>::new(cfg);
            soc.load_program(&program);
            soc.terminal().borrow_mut().feed(b"Z");
            if let Some(t) = watchdog {
                soc.watchdog().borrow_mut().arm(t);
            }
            let (exit, faults) = run_with_faults(&mut soc, budget, plan);
            observe(&soc, exit, 0, faults)
        }
        ScenarioKind::AttackInjection => {
            let attack = all_attacks()
                .into_iter()
                .find(|a| a.form.is_some())
                .expect("the suite contains applicable attacks");
            let form = attack.form.expect("filtered on is_some");
            let cfg = base_builder().policy(code_injection_policy()).build();
            let mut soc = Soc::<Tainted>::new(cfg);
            soc.load_program(&form.program);
            let payload = form.program.symbol("payload").expect("payload symbol");
            let end = form.program.symbol("payload_end").expect("payload end marker");
            soc.ram().borrow_mut().classify(payload, (end - payload) as usize, LI);
            let input = (form.malicious_input)(&form.program);
            soc.terminal().borrow_mut().feed(&input);
            if let Some(t) = watchdog {
                soc.watchdog().borrow_mut().arm(t);
            }
            let (exit, faults) = run_with_faults(&mut soc, budget, plan);
            observe(&soc, exit, 0, faults)
        }
        directed => directed_run(directed, !plan.is_empty()),
    }
}

/// Runs a random-schedule scenario with no faults — the reference.
pub fn reference_run(kind: ScenarioKind) -> ScenarioRun {
    if ScenarioKind::DIRECTED.contains(&kind) {
        directed_run(kind, false)
    } else {
        faulted_run(kind, &[], None, kind.reference_budget())
    }
}

/// Runs a *directed* scenario; `faulted` selects the purpose-built fault
/// schedule, `false` the fault-free twin.
pub fn directed_run(kind: ScenarioKind, faulted: bool) -> ScenarioRun {
    match kind {
        ScenarioKind::DirectedTrapLoop => directed_trap_loop(faulted),
        ScenarioKind::DirectedWatchdog => directed_watchdog(faulted),
        ScenarioKind::DirectedTagCorruption => directed_tag_corruption(faulted),
        other => panic!("{} is not a directed scenario", other.name()),
    }
}

/// A one-instruction spin loop at the reset vector: `j 0` (0x0000006F).
/// Flipping bit 6 of its first byte turns the word into 0x0000002F — an
/// AMO opcode this RV32IM core does not implement. The illegal-instruction
/// trap lands at `mtvec` (still the reset value 0), which *is* the
/// corrupted word: a textbook zero-progress trap loop.
fn directed_trap_loop(faulted: bool) -> ScenarioRun {
    let cfg = base_builder().build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.ram().borrow_mut().load_image(0, &0x0000_006Fu32.to_le_bytes());
    soc.cpu_mut().reset(0);
    let plan = if faulted {
        vec![PlannedFault { at_step: 50, kind: FaultKind::RamDataFlip { offset: 0, bit: 6 } }]
    } else {
        Vec::new()
    };
    let (exit, faults) =
        run_with_faults(&mut soc, ScenarioKind::DirectedTrapLoop.reference_budget(), &plan);
    observe(&soc, exit, 0, faults)
}

/// The guest spin-waits for a CAN challenge frame. In the faulted twin the
/// line eats the single frame the ECU sends and the armed watchdog is the
/// only thing standing between the platform and an unbounded spin.
fn directed_watchdog(faulted: bool) -> ScenarioRun {
    let mut a = Asm::new(0);
    a.entry();
    a.li(Reg::S0, map::CAN_BASE as i32);
    a.label("poll");
    a.lw(Reg::T0, can_regs::RX_AVAIL as i32, Reg::S0);
    a.beqz(Reg::T0, "poll");
    a.lw(Reg::T1, can_regs::RX_ID as i32, Reg::S0);
    a.ebreak();
    let program = a.assemble().expect("watchdog guest assembles");
    let cfg = base_builder().build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&program);
    let mut faults = Vec::new();
    if faulted {
        let line = shared(LossyCanFault::default());
        line.borrow_mut().arm_drop(1);
        soc.can_host().set_line_fault(line);
        soc.watchdog().borrow_mut().arm(SimTime::from_ms(1));
        faults.push(FaultRecord { step: 0, site: "can", kind: "can_drop", addr: None, detail: 1 });
    }
    let delivered = soc.can_host().send(CanFrame::new(CHALLENGE_ID, &[1, 2, 3, 4, 5, 6, 7, 8]));
    debug_assert_eq!(delivered, !faulted, "the line fault decides delivery");
    let (exit, _) =
        run_with_faults(&mut soc, ScenarioKind::DirectedWatchdog.reference_budget(), &[]);
    observe(&soc, exit, 0, faults)
}

/// The guest prints one clean byte. The faulted twin flips a taint-tag
/// atom on that byte before it is read — an atom no rule of the policy
/// mentions, so the engine's fail-closed rule must saturate it to lattice
/// top and refuse the UART write instead of silently declassifying.
fn directed_tag_corruption(faulted: bool) -> ScenarioRun {
    let mut a = Asm::new(0);
    a.entry();
    a.j("main");
    a.align(4);
    a.label("buf");
    a.bytes(b"A");
    a.align(4);
    a.label("main");
    a.la(Reg::T0, "buf");
    a.lbu(Reg::A0, 0, Reg::T0);
    a.call("rt_putc");
    a.ebreak();
    emit_runtime(&mut a);
    let program = a.assemble().expect("tag-corruption guest assembles");
    let policy = SecurityPolicy::builder("fault-demo").sink("uart.tx", Tag::EMPTY).build();
    let cfg = base_builder().policy(policy).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&program);
    let buf = program.symbol("buf").expect("buf symbol");
    let plan = if faulted {
        vec![PlannedFault { at_step: 1, kind: FaultKind::RamTagFlip { offset: buf, atom: 9 } }]
    } else {
        Vec::new()
    };
    let (exit, faults) =
        run_with_faults(&mut soc, ScenarioKind::DirectedTagCorruption.reference_budget(), &plan);
    observe(&soc, exit, 0, faults)
}

/// A classified scenario execution, as reported.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: &'static str,
    /// Exit label (`SocExit::label`).
    pub exit: &'static str,
    /// Classification against the reference.
    pub outcome: Outcome,
    /// Faults applied in this run.
    pub faults: Vec<FaultRecord>,
}

/// One seeded random-schedule run across all random scenarios.
#[derive(Debug, Clone)]
pub struct RunOutcomes {
    /// Run index.
    pub run: u32,
    /// Derived schedule seed.
    pub seed: u64,
    /// Per-scenario results.
    pub results: Vec<ScenarioOutcome>,
    /// Total CPU steps consumed across all scenarios in this run —
    /// telemetry fuel for fleet throughput (MIPS) accounting. Excluded
    /// from [`run_json`](crate::report::run_json), so reports stay
    /// byte-identical to pre-telemetry output.
    pub steps: u64,
}

/// Reference-run facts included in the report.
#[derive(Debug, Clone)]
pub struct ReferenceInfo {
    /// Scenario name.
    pub scenario: &'static str,
    /// Exit label of the fault-free run.
    pub exit: &'static str,
    /// Steps the fault-free run consumed.
    pub steps: u64,
}

/// The complete campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The configuration that produced this report.
    pub config: CampaignConfig,
    /// Fault-free reference facts, one per scenario.
    pub references: Vec<ReferenceInfo>,
    /// The three directed demonstrations.
    pub directed: Vec<ScenarioOutcome>,
    /// The seeded random-schedule runs.
    pub random: Vec<RunOutcomes>,
    /// Outcome counts across directed + random results, indexed by
    /// [`Outcome::index`].
    pub summary: [u64; Outcome::COUNT],
}

impl CampaignReport {
    /// Total classifications of `outcome` across the whole campaign.
    pub fn total(&self, outcome: Outcome) -> u64 {
        self.summary[outcome.index()]
    }

    /// Classifications of `outcome` for one scenario name.
    pub fn scenario_count(&self, scenario: &str, outcome: Outcome) -> u64 {
        let directed =
            self.directed.iter().filter(|s| s.scenario == scenario && s.outcome == outcome).count()
                as u64;
        let random = self
            .random
            .iter()
            .flat_map(|r| &r.results)
            .filter(|s| s.scenario == scenario && s.outcome == outcome)
            .count() as u64;
        directed + random
    }
}

/// Derives the schedule seed of run `i` from the master seed.
fn run_seed(master: u64, i: u32) -> u64 {
    master.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Schedule size for a reference that took `steps` steps.
fn plan_size(steps: u64, rate: f64) -> u32 {
    (((steps as f64) * rate).ceil() as u64).clamp(1, 32) as u32
}

/// Everything a campaign computes exactly once before the seeded runs
/// fan out: the three directed demonstrations and the fault-free
/// references for every random scenario. A parallel executor computes
/// this on the driver thread, then hands [`random_run`] jobs to workers.
#[derive(Debug, Clone)]
pub struct CampaignPrelude {
    /// Fault-free reference facts, one per scenario (directed first, in
    /// the same order [`run_campaign`] reports them).
    pub references: Vec<ReferenceInfo>,
    /// The three directed demonstrations, classified.
    pub directed: Vec<ScenarioOutcome>,
    /// Reference runs keyed by random scenario — what every seeded run
    /// needs to generate its plan and classify its outcome.
    pub refs: Vec<(ScenarioKind, ScenarioRun)>,
}

/// Runs the once-per-campaign work: directed demonstrations and
/// fault-free references. Deterministic for equal configs.
pub fn campaign_prelude(_config: &CampaignConfig) -> CampaignPrelude {
    let mut references = Vec::new();
    let mut directed = Vec::new();

    // Directed demonstrations: fixed schedules, once per campaign.
    for &kind in &ScenarioKind::DIRECTED {
        let reference = directed_run(kind, false);
        let run = directed_run(kind, true);
        let outcome = classify(&reference, &run);
        references.push(ReferenceInfo {
            scenario: kind.name(),
            exit: reference.exit.label(),
            steps: reference.steps,
        });
        directed.push(ScenarioOutcome {
            scenario: kind.name(),
            exit: run.exit.label(),
            outcome,
            faults: run.faults,
        });
    }

    // Fault-free references for the random scenarios, once per campaign.
    let refs: Vec<(ScenarioKind, ScenarioRun)> =
        ScenarioKind::RANDOM.iter().map(|&kind| (kind, reference_run(kind))).collect();
    for (kind, r) in &refs {
        references.push(ReferenceInfo {
            scenario: kind.name(),
            exit: r.exit.label(),
            steps: r.steps,
        });
    }

    CampaignPrelude { references, directed, refs }
}

/// Executes seeded run `i`: every random scenario under the fault
/// schedule derived from the campaign seed. This is the unit of work a
/// fleet executor parallelizes; calling it for `0..runs` in order is
/// exactly what the serial [`run_campaign`] does, so a parallel campaign
/// that reassembles these results in run order is byte-identical.
pub fn random_run(
    refs: &[(ScenarioKind, ScenarioRun)],
    config: &CampaignConfig,
    i: u32,
) -> RunOutcomes {
    let seed = run_seed(config.seed, i);
    let mut results = Vec::new();
    let mut steps = 0u64;
    for (kind, reference) in refs {
        let plan = generate_plan(
            seed ^ kind.salt(),
            plan_size(reference.steps, config.rate),
            reference.steps.max(1),
            RAM_FAULT_WINDOW,
        );
        let budget = reference.steps * 4 + 10_000;
        // Host-side hang detection: well beyond anything the
        // reference needed, in both time and steps.
        let watchdog = (reference.sim_time * 4).saturating_add(SimTime::from_ms(1));
        let run = faulted_run(*kind, &plan, Some(watchdog), budget);
        let outcome = classify(reference, &run);
        steps += run.steps;
        results.push(ScenarioOutcome {
            scenario: kind.name(),
            exit: run.exit.label(),
            outcome,
            faults: run.faults,
        });
    }
    RunOutcomes { run: i, seed, results, steps }
}

/// Runs the full campaign. Equal configs produce equal reports — no
/// wall-clock time, host randomness or map iteration order is involved.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let prelude = campaign_prelude(config);
    let random: Vec<RunOutcomes> =
        (0..config.runs).map(|i| random_run(&prelude.refs, config, i)).collect();

    let mut summary = [0u64; Outcome::COUNT];
    for s in prelude.directed.iter().chain(random.iter().flat_map(|r| &r.results)) {
        summary[s.outcome.index()] += 1;
    }
    CampaignReport {
        config: *config,
        references: prelude.references,
        directed: prelude.directed,
        random,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_trap_loop_is_caught() {
        let reference = directed_run(ScenarioKind::DirectedTrapLoop, false);
        assert_eq!(reference.exit, SocExit::InstrLimit, "fault-free spin burns the budget");
        let run = directed_run(ScenarioKind::DirectedTrapLoop, true);
        assert_eq!(run.exit, SocExit::TrapLoop, "corrupted spin is detected, not simulated");
        assert_eq!(classify(&reference, &run), Outcome::TrapLoop);
        assert!(run.steps < reference.steps, "detection saves the rest of the budget");
    }

    #[test]
    fn directed_watchdog_bites_on_lost_frame() {
        let reference = directed_run(ScenarioKind::DirectedWatchdog, false);
        assert_eq!(reference.exit, SocExit::Break, "delivered frame ends the wait");
        let run = directed_run(ScenarioKind::DirectedWatchdog, true);
        assert_eq!(run.exit, SocExit::WatchdogTimeout, "lost frame + armed dog = timeout");
        assert_eq!(classify(&reference, &run), Outcome::WatchdogTimeout);
    }

    #[test]
    fn directed_tag_corruption_fails_closed() {
        let reference = directed_run(ScenarioKind::DirectedTagCorruption, false);
        assert_eq!(reference.exit, SocExit::Break);
        assert_eq!(reference.uart, b"A", "clean byte reaches the UART");
        let run = directed_run(ScenarioKind::DirectedTagCorruption, true);
        match &run.exit {
            SocExit::Violation(v) => {
                assert_eq!(v.tag, Tag::from_bits(u32::MAX), "unknown atom saturated to top");
            }
            other => panic!("corrupted tag must violate, got {other:?}"),
        }
        assert!(run.uart.is_empty(), "nothing left the UART");
        assert_eq!(classify(&reference, &run), Outcome::DiftDetected);
    }

    #[test]
    fn references_are_healthy() {
        for &kind in &ScenarioKind::RANDOM {
            let r = reference_run(kind);
            match kind {
                ScenarioKind::ImmoSession => {
                    assert_eq!(r.exit, SocExit::Break);
                    assert_eq!(r.auths, 1, "the one round authenticates");
                }
                ScenarioKind::ImmoLeak | ScenarioKind::AttackInjection => {
                    assert!(
                        matches!(r.exit, SocExit::Violation(_)),
                        "{}: reference must be detected, got {:?}",
                        kind.name(),
                        r.exit
                    );
                }
                _ => unreachable!(),
            }
            assert!(r.steps > 0);
        }
    }

    #[test]
    fn small_campaign_is_fully_classified() {
        let cfg = CampaignConfig { seed: 0xCAFE, runs: 2, rate: 5e-5 };
        let report = run_campaign(&cfg);
        assert_eq!(report.directed.len(), 3);
        assert_eq!(report.random.len(), 2);
        let classified: u64 = report.summary.iter().sum();
        assert_eq!(
            classified,
            3 + 2 * ScenarioKind::RANDOM.len() as u64,
            "every execution lands in exactly one class"
        );
        // The directed trio guarantees the three resilience outcomes.
        assert!(report.total(Outcome::TrapLoop) >= 1);
        assert!(report.total(Outcome::WatchdogTimeout) >= 1);
        assert!(report.total(Outcome::DiftDetected) >= 1);
    }

    #[test]
    fn classification_table() {
        let base = |exit: SocExit| ScenarioRun {
            exit,
            uart: b"ok".to_vec(),
            auths: 1,
            steps: 100,
            traps: 0,
            sim_time: SimTime::ZERO,
            faults: Vec::new(),
        };
        let reference = base(SocExit::Break);
        assert_eq!(classify(&reference, &base(SocExit::Break)), Outcome::Masked);
        assert_eq!(classify(&reference, &base(SocExit::WatchdogTimeout)), Outcome::WatchdogTimeout);
        assert_eq!(classify(&reference, &base(SocExit::TrapLoop)), Outcome::TrapLoop);
        assert_eq!(classify(&reference, &base(SocExit::InstrLimit)), Outcome::Hang);
        let mut noisy = base(SocExit::Break);
        noisy.uart = b"corrupted".to_vec();
        assert_eq!(classify(&reference, &noisy), Outcome::Sdc);
        let mut trapped = base(SocExit::Break);
        trapped.traps = 3;
        assert_eq!(classify(&reference, &trapped), Outcome::PreciseTrap);
        let mut lost_auth = base(SocExit::Break);
        lost_auth.auths = 0;
        assert_eq!(classify(&reference, &lost_auth), Outcome::Degraded, "fail-secure refusal");
        let mut gained_auth = base(SocExit::Break);
        gained_auth.auths = 2;
        assert_eq!(classify(&reference, &gained_auth), Outcome::Sdc, "unearned authentication");
    }
}
