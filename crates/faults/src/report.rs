//! Deterministic JSON rendering of a [`CampaignReport`].
//!
//! Hand-rolled on purpose (the workspace is offline — no serde): fixed
//! field order, no timestamps, no map iteration — the same report always
//! renders to the same bytes, which is what the campaign's reproducibility
//! guarantee is checked against.

use std::fmt::Write as _;

use crate::campaign::{CampaignReport, Outcome, RunOutcomes, ScenarioOutcome};
use crate::injector::FaultRecord;

/// Renders one fault record as a compact JSON object.
pub fn fault_json(f: &FaultRecord) -> String {
    let addr = match f.addr {
        Some(a) => a.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"step\":{},\"site\":\"{}\",\"kind\":\"{}\",\"addr\":{},\"detail\":{}}}",
        f.step, f.site, f.kind, addr, f.detail
    )
}

/// Renders one classified scenario outcome as a compact JSON object.
pub fn scenario_json(s: &ScenarioOutcome) -> String {
    let faults: Vec<String> = s.faults.iter().map(fault_json).collect();
    format!(
        "{{\"scenario\":\"{}\",\"exit\":\"{}\",\"outcome\":\"{}\",\"faults\":[{}]}}",
        s.scenario,
        s.exit,
        s.outcome.label(),
        faults.join(",")
    )
}

/// Renders one seeded run (all random scenarios) as a compact JSON
/// object — the exact fragment [`render_json`] emits per run, so a
/// parallel campaign executor that renders fragments per job and
/// reassembles them in run order reproduces the serial report
/// byte-for-byte.
pub fn run_json(run: &RunOutcomes) -> String {
    let results: Vec<String> = run.results.iter().map(scenario_json).collect();
    format!("{{\"run\":{},\"seed\":{},\"results\":[{}]}}", run.run, run.seed, results.join(","))
}

/// Renders the report as deterministic JSON: equal reports produce
/// byte-identical output.
pub fn render_json(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"campaign\": {{\"seed\": {}, \"runs\": {}, \"rate\": {}}},",
        report.config.seed, report.config.runs, report.config.rate
    );

    out.push_str("  \"references\": [\n");
    for (i, r) in report.references.iter().enumerate() {
        let comma = if i + 1 < report.references.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scenario\":\"{}\",\"exit\":\"{}\",\"steps\":{}}}{comma}",
            r.scenario, r.exit, r.steps
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"directed\": [\n");
    for (i, s) in report.directed.iter().enumerate() {
        let comma = if i + 1 < report.directed.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", scenario_json(s));
    }
    out.push_str("  ],\n");

    out.push_str("  \"runs\": [\n");
    for (i, run) in report.random.iter().enumerate() {
        let comma = if i + 1 < report.random.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", run_json(run));
    }
    out.push_str("  ],\n");

    let summary: Vec<String> = Outcome::ALL
        .iter()
        .map(|o| format!("\"{}\": {}", o.label(), report.summary[o.index()]))
        .collect();
    let _ = writeln!(out, "  \"summary\": {{{}}}", summary.join(", "));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};

    #[test]
    fn same_seed_renders_byte_identical_json() {
        let cfg = CampaignConfig { seed: 0xBEEF, runs: 2, rate: 5e-5 };
        let a = render_json(&run_campaign(&cfg));
        let b = render_json(&run_campaign(&cfg));
        assert_eq!(a, b, "campaigns must be reproducible to the byte");
        assert!(a.contains("\"directed\""));
        assert!(a.contains("\"trap_loop\""));
    }

    #[test]
    fn different_seeds_render_different_json() {
        let a = render_json(&run_campaign(&CampaignConfig { seed: 1, runs: 2, rate: 5e-5 }));
        let b = render_json(&run_campaign(&CampaignConfig { seed: 2, runs: 2, rate: 5e-5 }));
        assert_ne!(a, b, "the seed must matter");
    }

    #[test]
    fn json_shape_is_parsable_enough() {
        let report = run_campaign(&CampaignConfig { seed: 3, runs: 1, rate: 5e-5 });
        let json = render_json(&report);
        // Cheap structural checks without a JSON parser: balanced braces
        // and brackets, and the summary covers every outcome label.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for o in Outcome::ALL {
            assert!(json.contains(o.label()), "summary key {} missing", o.label());
        }
    }
}
