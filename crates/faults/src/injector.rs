//! Applies planned faults to a live [`Soc`] at exact CPU steps.
//!
//! [`run_with_faults`] slices the simulation at every scheduled step: the
//! SoC runs until the fault's step is reached (`SocExit::InstrLimit` on a
//! slice means *exactly* that many steps were consumed — a step is one
//! retired instruction or one taken trap), the fault is applied through
//! the SoC's public fault surfaces, and the run continues. Any concrete
//! exit (break, violation, watchdog, trap loop, idle) before a scheduled
//! fault ends the run and the remaining faults never happen — exactly as
//! on real hardware, where a crashed board absorbs no further radiation.

use vpdift_obs::{ObsEvent, ObsSink};
use vpdift_rv32::TaintMode;
use vpdift_soc::{map, Soc, SocExit};
use vpdift_sync::{shared, Shared};

use crate::config::{FaultKind, PlannedFault};
use crate::hooks::{ArmedBusFault, BusFaultKind, LossyCanFault};

/// What was actually injected, for reports and determinism checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// CPU step at which the fault was applied.
    pub step: u64,
    /// Injection site (e.g. `"ram"`, `"sys-bus"`, `"can"`).
    pub site: &'static str,
    /// Fault kind label (e.g. `"ram_data_flip"`).
    pub kind: &'static str,
    /// Faulted address, when the fault targets one.
    pub addr: Option<u32>,
    /// Kind-specific detail (bit index, IRQ line, frame count, …).
    pub detail: u32,
}

/// Lazily-installed hook handles shared between the injector and the SoC.
/// One state lives per run; hooks are installed on first use so a plan
/// without bus or CAN faults keeps the platform entirely hook-free.
#[derive(Debug, Default)]
pub struct InjectorState {
    bus: Option<Shared<ArmedBusFault>>,
    can: Option<Shared<LossyCanFault>>,
}

/// Applies one fault to the SoC at `step` and returns the record. Emits
/// an [`ObsEvent::FaultInjected`] when an observability sink is attached
/// (compiled out entirely under the default `NullSink`).
pub fn apply_fault<M: TaintMode, S: ObsSink>(
    soc: &mut Soc<M, S>,
    step: u64,
    kind: FaultKind,
    state: &mut InjectorState,
) -> FaultRecord {
    match kind {
        FaultKind::RamDataFlip { offset, bit } => {
            // Out-of-range offsets are a no-op (None): the record still
            // notes the attempt so reports stay faithful to the plan.
            let _ = soc.ram().borrow_mut().flip_data_bit(offset, bit);
        }
        FaultKind::RamTagFlip { offset, atom } => {
            let _ = soc.ram().borrow_mut().flip_tag_bit(offset, atom);
        }
        FaultKind::TlmCorrupt | FaultKind::TlmDrop | FaultKind::TlmError => {
            if state.bus.is_none() {
                let hook = shared(ArmedBusFault::default());
                soc.set_mmio_fault(hook.clone());
                state.bus = Some(hook);
            }
            let hook = state.bus.as_ref().expect("installed above");
            hook.borrow_mut().arm(match kind {
                FaultKind::TlmCorrupt => BusFaultKind::Corrupt,
                FaultKind::TlmDrop => BusFaultKind::Drop,
                _ => BusFaultKind::Error,
            });
        }
        FaultKind::CanCorrupt | FaultKind::CanDrop { .. } => {
            if state.can.is_none() {
                let line = shared(LossyCanFault::default());
                soc.can_host().set_line_fault(line.clone());
                state.can = Some(line);
            }
            let line = state.can.as_ref().expect("installed above");
            match kind {
                FaultKind::CanCorrupt => line.borrow_mut().arm_corrupt(),
                FaultKind::CanDrop { count } => line.borrow_mut().arm_drop(count),
                _ => unreachable!("matched arm above"),
            }
        }
        FaultKind::SensorStuck { value } => {
            soc.sensor().borrow_mut().set_stuck(Some(value));
        }
        FaultKind::DmaAbort { bytes } => {
            soc.dma().borrow_mut().inject_abort_after(bytes);
        }
        FaultKind::SpuriousIrq { line } => {
            soc.plic().borrow_mut().raise(line.clamp(1, 31));
        }
        FaultKind::IrqStorm => {
            let mut plic = soc.plic().borrow_mut();
            plic.raise(map::IRQ_SENSOR);
            plic.raise(map::IRQ_CAN);
            plic.raise(map::IRQ_DMA);
        }
    }
    let record = FaultRecord {
        step,
        site: kind.site(),
        kind: kind.label(),
        addr: kind.addr(),
        detail: kind.detail(),
    };
    if S::ENABLED {
        soc.obs().borrow_mut().event(&ObsEvent::FaultInjected {
            site: record.site.into(),
            kind: record.kind.into(),
            addr: record.addr,
            detail: record.detail,
        });
    }
    record
}

/// Runs the SoC for at most `budget` steps, applying `plan` (sorted by
/// `at_step`) at the scheduled steps. Returns the exit and the faults that
/// were actually applied — faults scheduled after an early exit are never
/// injected and produce no records.
pub fn run_with_faults<M: TaintMode, S: ObsSink>(
    soc: &mut Soc<M, S>,
    budget: u64,
    plan: &[PlannedFault],
) -> (SocExit, Vec<FaultRecord>) {
    let mut state = InjectorState::default();
    let mut records = Vec::new();
    let mut consumed = 0u64;
    for fault in plan {
        let at = fault.at_step.min(budget);
        if at > consumed {
            match soc.run(at - consumed) {
                SocExit::InstrLimit => consumed = at,
                exit => return (exit, records),
            }
        }
        records.push(apply_fault(soc, fault.at_step, fault.kind, &mut state));
    }
    let exit = if budget > consumed { soc.run(budget - consumed) } else { SocExit::InstrLimit };
    (exit, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_asm::{Asm, Reg};
    use vpdift_rv32::Tainted;
    /// A guest that copies a byte from 0x2000 to 0x2004 in a counted loop,
    /// then breaks — enough surface to observe a mid-run RAM flip.
    fn copy_loop_soc() -> Soc<Tainted> {
        let mut a = Asm::new(0);
        a.entry();
        a.li(Reg::T0, 0x2000);
        a.li(Reg::S0, 400); // loop iterations
        a.label("loop");
        a.lbu(Reg::T1, 0, Reg::T0);
        a.sb(Reg::T1, 4, Reg::T0);
        a.addi(Reg::S0, Reg::S0, -1);
        a.bnez(Reg::S0, "loop");
        a.ebreak();
        let prog = a.assemble().expect("copy loop assembles");
        let cfg = vpdift_soc::SocBuilder::from_exec_config(&vpdift_soc::ExecConfig::default())
            .expect("default exec config resolves")
            .sensor_thread(false)
            .build();
        let mut soc = Soc::<Tainted>::new(cfg);
        soc.load_program(&prog);
        soc.ram().borrow_mut().load_image(0x2000, &[0x00]);
        soc
    }

    #[test]
    fn fault_lands_at_the_scheduled_step() {
        // Reference: the copy loop propagates 0x00 forever.
        let mut soc = copy_loop_soc();
        let plan = [PlannedFault {
            at_step: 500, // mid-loop
            kind: FaultKind::RamDataFlip { offset: 0x2000, bit: 7 },
        }];
        let (exit, records) = run_with_faults(&mut soc, 100_000, &plan);
        assert_eq!(exit, SocExit::Break);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, "ram_data_flip");
        assert_eq!(records[0].addr, Some(0x2000));
        // The flip happened mid-run: later iterations copied 0x80.
        let ram = soc.ram().borrow();
        assert_eq!(ram.bytes(0x2004, 1), &[0x80], "post-flip value propagated");
    }

    #[test]
    fn faults_after_exit_are_not_applied() {
        let mut soc = copy_loop_soc();
        let plan = [PlannedFault {
            at_step: 10_000_000, // far beyond the program's lifetime
            kind: FaultKind::IrqStorm,
        }];
        let (exit, records) = run_with_faults(&mut soc, 100_000, &plan);
        assert_eq!(exit, SocExit::Break);
        assert!(records.is_empty(), "the run ended before the schedule");
    }

    #[test]
    fn budget_caps_the_run() {
        let mut soc = copy_loop_soc();
        let (exit, records) = run_with_faults(&mut soc, 100, &[]);
        assert_eq!(exit, SocExit::InstrLimit);
        assert!(records.is_empty());
    }

    #[test]
    fn plan_application_is_reproducible() {
        let plan = crate::generate_plan(0xF00D, 8, 2_000, 0x3000);
        let run = |plan: &[PlannedFault]| {
            let mut soc = copy_loop_soc();
            let (exit, records) = run_with_faults(&mut soc, 100_000, plan);
            let uart = soc.uart().borrow().output().to_vec();
            (exit, records, uart, soc.instret())
        };
        assert_eq!(run(&plan), run(&plan), "same plan, same trajectory");
    }
}
