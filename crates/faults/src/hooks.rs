//! Reusable fault hooks: the TLM bus interposer model and the lossy CAN
//! line model. Both are *armed* by the injector and disarm themselves
//! after firing, so a planned fault disturbs exactly one transaction or
//! frame.

use vpdift_periph::{CanFrame, CanLineFault};
use vpdift_tlm::{FaultAction, GenericPayload, TlmCommand, TlmFaultHook, TlmResponse};

/// What an armed [`ArmedBusFault`] does to the next MMIO transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFaultKind {
    /// XOR bit 0 of the first data lane (write data before routing, read
    /// data after).
    Corrupt,
    /// Drop the transaction; it completes with a generic error.
    Drop,
    /// Respond with an address error without routing.
    Error,
}

/// A one-shot TLM fault hook: transparent until [`ArmedBusFault::arm`] is
/// called, then disturbs the next read or write and disarms itself.
#[derive(Debug, Default)]
pub struct ArmedBusFault {
    armed: Option<BusFaultKind>,
}

impl ArmedBusFault {
    /// Arms the hook for the next transaction (overwrites a pending arm).
    pub fn arm(&mut self, kind: BusFaultKind) {
        self.armed = Some(kind);
    }

    /// `true` while a fault is pending.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }
}

impl TlmFaultHook for ArmedBusFault {
    fn before(&mut self, p: &mut GenericPayload) -> FaultAction {
        match self.armed {
            None => FaultAction::Pass,
            Some(BusFaultKind::Drop) => {
                self.armed = None;
                FaultAction::Drop
            }
            Some(BusFaultKind::Error) => {
                self.armed = None;
                FaultAction::Respond(TlmResponse::AddressError)
            }
            Some(BusFaultKind::Corrupt) => {
                if p.command() == TlmCommand::Write && !p.data().is_empty() {
                    self.armed = None;
                    let lane = p.data()[0];
                    p.data_mut()[0] = lane.map(|v| v ^ 0x01);
                }
                // Reads are corrupted in `after`, once the target filled
                // the lanes; stay armed until then.
                FaultAction::Pass
            }
        }
    }

    fn after(&mut self, p: &mut GenericPayload) {
        if self.armed == Some(BusFaultKind::Corrupt)
            && p.command() == TlmCommand::Read
            && p.is_ok()
            && !p.data().is_empty()
        {
            self.armed = None;
            let lane = p.data()[0];
            p.data_mut()[0] = lane.map(|v| v ^ 0x01);
        }
    }
}

/// A lossy/corrupting CAN line model. Drops the next `n` frames and/or
/// flips a bit in the next surviving frame; both arms are consumed as
/// frames cross the wire (in either direction).
#[derive(Debug, Default)]
pub struct LossyCanFault {
    drop_remaining: u32,
    corrupt_armed: bool,
    frames_dropped: u32,
}

impl LossyCanFault {
    /// Arms the line to lose the next `n` frames (cumulative).
    pub fn arm_drop(&mut self, n: u32) {
        self.drop_remaining += n;
    }

    /// Arms the line to flip a bit in the next surviving frame.
    pub fn arm_corrupt(&mut self) {
        self.corrupt_armed = true;
    }

    /// Frames eaten by the line so far.
    pub fn frames_dropped(&self) -> u32 {
        self.frames_dropped
    }
}

impl CanLineFault for LossyCanFault {
    fn on_frame(&mut self, frame: &mut CanFrame, _to_device: bool) -> bool {
        if self.drop_remaining > 0 {
            self.drop_remaining -= 1;
            self.frames_dropped += 1;
            return false;
        }
        if self.corrupt_armed && frame.dlc > 0 {
            self.corrupt_armed = false;
            frame.data[0] = frame.data[0].map(|v| v ^ 0x01);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::Taint;

    fn write_payload(v: u8) -> GenericPayload {
        GenericPayload::write(0x100, &[Taint::untainted(v)])
    }

    #[test]
    fn bus_fault_is_one_shot() {
        let mut h = ArmedBusFault::default();
        let mut p = write_payload(7);
        assert_eq!(h.before(&mut p), FaultAction::Pass, "unarmed hook is transparent");

        h.arm(BusFaultKind::Drop);
        assert!(h.is_armed());
        assert_eq!(h.before(&mut p), FaultAction::Drop);
        assert_eq!(h.before(&mut p), FaultAction::Pass, "disarmed after firing");
    }

    #[test]
    fn bus_corrupt_flips_write_lane() {
        let mut h = ArmedBusFault::default();
        h.arm(BusFaultKind::Corrupt);
        let mut p = write_payload(0x10);
        assert_eq!(h.before(&mut p), FaultAction::Pass);
        assert_eq!(p.data()[0].value(), 0x11, "bit 0 flipped in the write lane");
        assert!(!h.is_armed());
    }

    #[test]
    fn bus_corrupt_waits_for_read_data() {
        let mut h = ArmedBusFault::default();
        h.arm(BusFaultKind::Corrupt);
        let mut p = GenericPayload::read(0x100, 1);
        assert_eq!(h.before(&mut p), FaultAction::Pass);
        assert!(h.is_armed(), "read corruption happens after routing");
        p.data_mut()[0] = Taint::untainted(0x20);
        p.set_response(vpdift_tlm::TlmResponse::Ok);
        h.after(&mut p);
        assert_eq!(p.data()[0].value(), 0x21);
        assert!(!h.is_armed());
    }

    #[test]
    fn can_line_drops_then_corrupts() {
        let mut l = LossyCanFault::default();
        l.arm_drop(2);
        l.arm_corrupt();
        let mut f = CanFrame::new(1, &[0x40]);
        assert!(!l.on_frame(&mut f, true));
        assert!(!l.on_frame(&mut f, true));
        assert_eq!(l.frames_dropped(), 2);
        assert!(l.on_frame(&mut f, true), "third frame survives");
        assert_eq!(f.data[0].value(), 0x41, "but is corrupted");
        let mut g = CanFrame::new(1, &[0x40]);
        assert!(l.on_frame(&mut g, false));
        assert_eq!(g.data[0].value(), 0x40, "corrupt arm was one-shot");
    }
}
