//! The fault model and deterministic, seed-driven schedule generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injectable fault. Every variant is a *one-shot* disturbance except
/// [`FaultKind::SensorStuck`], which latches until the scenario ends (a
/// stuck transducer does not heal itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` of the RAM data byte at `offset`.
    RamDataFlip {
        /// Byte offset into RAM.
        offset: u32,
        /// Bit index (taken modulo 8).
        bit: u32,
    },
    /// Flip atom `atom` in the taint tag of the RAM byte at `offset` —
    /// corrupts DIFT metadata without touching the architecture.
    RamTagFlip {
        /// Byte offset into RAM.
        offset: u32,
        /// Atom index (taken modulo the tag width).
        atom: u32,
    },
    /// Corrupt the first data lane of the next MMIO transaction.
    TlmCorrupt,
    /// Drop the next MMIO transaction (completes with a generic error).
    TlmDrop,
    /// Force an address-error response on the next MMIO transaction.
    TlmError,
    /// Flip a bit in the next CAN frame crossing the wire.
    CanCorrupt,
    /// Drop the next `count` CAN frames on the wire.
    CanDrop {
        /// Number of frames to lose.
        count: u32,
    },
    /// The sensor transducer sticks at `value` for the rest of the run.
    SensorStuck {
        /// The stuck reading.
        value: u8,
    },
    /// Abort the next DMA transfer after `bytes` bytes (mid-burst).
    DmaAbort {
        /// Bytes moved before the abort.
        bytes: u32,
    },
    /// Raise a spurious interrupt on PLIC source `line`.
    SpuriousIrq {
        /// PLIC source id (valid range `1..32`).
        line: u32,
    },
    /// Raise all wired peripheral interrupt lines at once.
    IrqStorm,
}

impl FaultKind {
    /// Injection site label (matches `ObsEvent::FaultInjected::site`).
    pub fn site(&self) -> &'static str {
        match self {
            FaultKind::RamDataFlip { .. } => "ram",
            FaultKind::RamTagFlip { .. } => "ram.tags",
            FaultKind::TlmCorrupt | FaultKind::TlmDrop | FaultKind::TlmError => "sys-bus",
            FaultKind::CanCorrupt | FaultKind::CanDrop { .. } => "can",
            FaultKind::SensorStuck { .. } => "sensor",
            FaultKind::DmaAbort { .. } => "dma",
            FaultKind::SpuriousIrq { .. } | FaultKind::IrqStorm => "plic",
        }
    }

    /// Stable kind label used in records, events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::RamDataFlip { .. } => "ram_data_flip",
            FaultKind::RamTagFlip { .. } => "ram_tag_flip",
            FaultKind::TlmCorrupt => "tlm_corrupt",
            FaultKind::TlmDrop => "tlm_drop",
            FaultKind::TlmError => "tlm_error",
            FaultKind::CanCorrupt => "can_corrupt",
            FaultKind::CanDrop { .. } => "can_drop",
            FaultKind::SensorStuck { .. } => "sensor_stuck",
            FaultKind::DmaAbort { .. } => "dma_abort",
            FaultKind::SpuriousIrq { .. } => "spurious_irq",
            FaultKind::IrqStorm => "irq_storm",
        }
    }

    /// The faulted address, for kinds that target one.
    pub fn addr(&self) -> Option<u32> {
        match self {
            FaultKind::RamDataFlip { offset, .. } | FaultKind::RamTagFlip { offset, .. } => {
                Some(*offset)
            }
            _ => None,
        }
    }

    /// Kind-specific detail (bit/atom index, frame count, IRQ line, …).
    pub fn detail(&self) -> u32 {
        match self {
            FaultKind::RamDataFlip { bit, .. } => *bit,
            FaultKind::RamTagFlip { atom, .. } => *atom,
            FaultKind::CanDrop { count } => *count,
            FaultKind::SensorStuck { value } => *value as u32,
            FaultKind::DmaAbort { bytes } => *bytes,
            FaultKind::SpuriousIrq { line } => *line,
            _ => 0,
        }
    }
}

/// A fault scheduled at a specific CPU step of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// CPU step (retired instructions + taken traps) at which the fault
    /// is applied.
    pub at_step: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// Generates a deterministic fault schedule: `count` faults at uniformly
/// random steps within `0..horizon`, each with a kind and parameters drawn
/// from the seeded generator. RAM offsets stay inside `ram_window` bytes
/// (the loaded image plus working data — faulting untouched megabytes of
/// RAM would only inflate the `masked` count). Equal arguments always
/// produce the identical plan.
pub fn generate_plan(seed: u64, count: u32, horizon: u64, ram_window: u32) -> Vec<PlannedFault> {
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = horizon.max(1);
    let window = ram_window.max(1);
    let mut plan: Vec<PlannedFault> = (0..count)
        .map(|_| {
            let at_step = rng.gen_range(0..horizon);
            let kind = match rng.gen_range(0u32..12) {
                0 | 1 => FaultKind::RamDataFlip {
                    offset: rng.gen_range(0..window),
                    bit: rng.gen_range(0..8u32),
                },
                2 | 3 => FaultKind::RamTagFlip {
                    offset: rng.gen_range(0..window),
                    atom: rng.gen_range(0..32u32),
                },
                4 => FaultKind::TlmCorrupt,
                5 => FaultKind::TlmDrop,
                6 => FaultKind::TlmError,
                7 => FaultKind::CanCorrupt,
                8 => FaultKind::CanDrop { count: rng.gen_range(1..4u32) },
                9 => FaultKind::SensorStuck { value: rng.gen_range(0..=255u32) as u8 },
                10 => FaultKind::DmaAbort { bytes: rng.gen_range(0..64u32) },
                _ => {
                    if rng.gen_range(0u32..4) == 0 {
                        FaultKind::IrqStorm
                    } else {
                        FaultKind::SpuriousIrq { line: rng.gen_range(1..32u32) }
                    }
                }
            };
            PlannedFault { at_step, kind }
        })
        .collect();
    // Stable sort: equal steps keep generation order, so the plan is a
    // pure function of the arguments.
    plan.sort_by_key(|f| f.at_step);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = generate_plan(7, 32, 100_000, 0x4000);
        let b = generate_plan(7, 32, 100_000, 0x4000);
        let c = generate_plan(8, 32, 100_000, 0x4000);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn plans_respect_bounds_and_order() {
        let plan = generate_plan(3, 64, 5_000, 0x1000);
        assert_eq!(plan.len(), 64);
        let mut last = 0;
        for f in &plan {
            assert!(f.at_step < 5_000);
            assert!(f.at_step >= last, "sorted by step");
            last = f.at_step;
            if let Some(a) = f.kind.addr() {
                assert!(a < 0x1000, "RAM faults stay in the window");
            }
            if let FaultKind::SpuriousIrq { line } = f.kind {
                assert!((1..32).contains(&line), "valid PLIC source");
            }
        }
    }

    #[test]
    fn labels_and_sites_are_stable() {
        let f = FaultKind::RamTagFlip { offset: 0x20, atom: 9 };
        assert_eq!(f.site(), "ram.tags");
        assert_eq!(f.label(), "ram_tag_flip");
        assert_eq!(f.addr(), Some(0x20));
        assert_eq!(f.detail(), 9);
        assert_eq!(FaultKind::IrqStorm.addr(), None);
    }
}
