//! A full sensor → DMA → memory → CAN pipeline: the "data moves around
//! the CPU" scenario from the paper's introduction. The DMA copies the
//! sensor frame without the CPU ever touching the bytes; classification
//! still arrives intact at the CAN boundary.

use vpdift_asm::{Asm, Reg};
use vpdift_core::{SecurityPolicy, Tag, ViolationKind};
use vpdift_rv32::Tainted;
use vpdift_soc::{map, Soc, SocBuilder, SocExit};

use Reg::*;

const SECRET: Tag = Tag::from_bits(0b01);
const UNTRUSTED: Tag = Tag::from_bits(0b10);

/// Guest: DMA the first 8 sensor-frame bytes into RAM, then transmit them
/// on CAN straight from the DMA destination.
fn pipeline_program() -> vpdift_asm::Program {
    let mut a = Asm::new(0);
    // DMA: SRC = sensor frame, DST = 0x6000, LEN = 8.
    a.li(T0, map::DMA_BASE as i32);
    a.li(T1, map::SENSOR_BASE as i32);
    a.sw(T1, 0x0, T0);
    a.li(T1, 0x6000);
    a.sw(T1, 0x4, T0);
    a.li(T1, 8);
    a.sw(T1, 0x8, T0);
    a.li(T1, 1);
    a.sw(T1, 0xC, T0); // start

    // CAN: stage the 8 DMA'd bytes and send.
    a.li(T0, map::CAN_BASE as i32);
    a.li(T1, 0x123);
    a.sw(T1, 0x00, T0); // TX_ID
    a.li(T1, 8);
    a.sw(T1, 0x04, T0); // TX_DLC
    a.li(T2, 0x6000);
    a.li(T3, 0);
    a.label("copy");
    a.add(T4, T2, T3);
    a.lbu(T5, 0, T4);
    a.add(T4, T0, T3);
    a.sb(T5, 0x08, T4);
    a.addi(T3, T3, 1);
    a.li(T4, 8);
    a.blt(T3, T4, "copy");
    a.li(T1, 1);
    a.sw(T1, 0x10, T0); // TX_GO
    a.ebreak();
    a.assemble().unwrap()
}

fn soc_with(sensor_tag: Tag, can_clearance: Tag) -> Soc<Tainted> {
    let policy = SecurityPolicy::builder("pipeline")
        .source("sensor.data", sensor_tag)
        .sink("can.tx", can_clearance)
        .build();
    let cfg = SocBuilder::new().policy(policy).sensor_thread(false).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&pipeline_program());
    soc.sensor().borrow_mut().generate_frame();
    soc
}

#[test]
fn public_sensor_data_flows_to_can() {
    let mut soc = soc_with(UNTRUSTED, UNTRUSTED);
    assert_eq!(soc.run(100_000), SocExit::Break);
    let frame = soc.can_host().recv().expect("frame transmitted");
    assert_eq!(frame.dlc, 8);
    assert!(frame.bytes().iter().all(|&b| b >= 128), "sensor data range");
    assert_eq!(soc.dma().borrow().bytes_moved(), 8);
}

#[test]
fn confidential_sensor_data_is_stopped_at_can_despite_dma() {
    // The CPU never reads the frame — only the DMA moves it. The tags
    // still arrive at the CAN TX clearance check.
    let mut soc = soc_with(SECRET, UNTRUSTED);
    match soc.run(100_000) {
        SocExit::Violation(v) => {
            assert_eq!(v.kind, ViolationKind::Output { sink: "can.tx".into() });
            assert_eq!(v.tag, SECRET);
        }
        other => panic!("secret sensor frame escaped on CAN: {other:?}"),
    }
    assert!(soc.can_host().recv().is_none());
    // The DMA itself completed — the block is at the *output* boundary.
    assert_eq!(soc.dma().borrow().bytes_moved(), 8);
}

#[test]
fn dma_destination_carries_the_sensor_tag() {
    let mut soc = soc_with(SECRET, SECRET.lub(UNTRUSTED));
    assert_eq!(soc.run(100_000), SocExit::Break, "permissive CAN clearance");
    let ram = soc.ram().borrow();
    for i in 0..8 {
        assert_eq!(ram.byte_at(0x6000 + i).unwrap().1, SECRET, "byte {i}");
    }
}
