//! Compile-time assertion that a `Soc` — and everything it transitively
//! owns — is `Send`, so fleet workers can own sessions outright and
//! migrate them across threads. This is the contract the `vpdift-fleet`
//! executor builds on; if a peripheral regresses to `Rc`/`RefCell`
//! internals, this test stops compiling rather than failing at runtime.

use vpdift_obs::{NullSink, Recorder, StreamSink};
use vpdift_rv32::{Plain, Tainted};
use vpdift_soc::Soc;

fn assert_send<T: Send>() {}

#[test]
fn soc_is_send_in_every_configuration() {
    // Plain and tainted modes, with and without an observability sink.
    assert_send::<Soc<Plain, NullSink>>();
    assert_send::<Soc<Tainted, NullSink>>();
    assert_send::<Soc<Plain, Recorder>>();
    assert_send::<Soc<Tainted, Recorder>>();
    assert_send::<Soc<Tainted, StreamSink>>();
}

#[test]
fn built_soc_moves_across_threads() {
    let soc: Soc<Tainted> = Soc::new(Soc::<Tainted>::builder().build());
    let handle = std::thread::spawn(move || {
        // Run zero guest work — the point is that the whole object graph
        // (kernel, bus, peripherals, engine, sink) crossed the thread
        // boundary and is usable there.
        soc.ram().borrow().len()
    });
    assert!(handle.join().unwrap() > 0);
}
