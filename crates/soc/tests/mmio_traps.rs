//! Graceful degradation at the bus boundary: every unmapped or misaligned
//! MMIO access a guest can issue must surface as a *precise* architectural
//! trap — correct `mcause`, `mtval` holding the faulting address, `mepc`
//! holding the faulting pc — never a host panic. Property-tested on both
//! the plain VP and the taint-tracking VP+.
//!
//! Trap cause map exercised here (the platform reports both load and
//! store access faults through the load-fault cause):
//!
//! | condition                    | mcause |
//! |------------------------------|--------|
//! | misaligned load              | 4      |
//! | unmapped load / store        | 5      |
//! | misaligned store             | 6      |
//!
//! Router `BurstError` (a transfer straddling a mapping boundary) cannot
//! be produced by the CPU port — every mapping is a multiple of 4 bytes
//! and the core rejects misaligned accesses first — so it is exercised
//! through the DMA engine, which must flag the error in its STATUS
//! register without disturbing the guest.

use proptest::prelude::*;
use vpdift_asm::{csr, Asm, Reg};
use vpdift_rv32::{Plain, TaintMode, Tainted, Word};
use vpdift_soc::{map, Soc, SocBuilder, SocExit};

/// Marker the main path writes to `a0` when the access did *not* trap.
const NO_TRAP: u32 = 0x600D;

struct AccessOutcome {
    exit: SocExit,
    trapped: bool,
    mcause: u32,
    mtval: u32,
    mepc: u32,
    access_pc: u32,
}

/// Runs a single guest load/store against `addr` with a trap handler
/// installed, and reports the latched trap CSRs.
fn run_access<M: TaintMode>(addr: u32, size: u32, store: bool) -> AccessOutcome {
    let mut a = Asm::new(0);
    a.entry();
    a.la(Reg::T1, "handler");
    a.csrw(csr::MTVEC, Reg::T1);
    a.li(Reg::T0, addr as i32);
    a.label("access");
    match (store, size) {
        (false, 1) => a.lbu(Reg::A1, 0, Reg::T0),
        (false, 2) => a.lhu(Reg::A1, 0, Reg::T0),
        (false, _) => a.lw(Reg::A1, 0, Reg::T0),
        (true, 1) => a.sb(Reg::A1, 0, Reg::T0),
        (true, 2) => a.sh(Reg::A1, 0, Reg::T0),
        (true, _) => a.sw(Reg::A1, 0, Reg::T0),
    };
    a.li(Reg::A0, NO_TRAP as i32);
    a.ebreak();
    a.label("handler");
    a.ebreak();
    let prog = a.assemble().expect("access probe assembles");
    let access_pc = prog.symbol("access").expect("access label");

    let cfg = SocBuilder::new().sensor_thread(false).build();
    let mut soc = Soc::<M>::new(cfg);
    soc.load_program(&prog);
    let exit = soc.run(10_000);
    let trapped = soc.cpu().reg(Reg::A0).val() != NO_TRAP;
    let csrs = soc.cpu().csrs();
    AccessOutcome {
        exit,
        trapped,
        mcause: csrs.mcause.val(),
        mtval: csrs.mtval.val(),
        mepc: csrs.mepc.val(),
        access_pc,
    }
}

/// Word-aligned addresses in the holes of the memory map: no RAM, no
/// device claims them.
fn unmapped_addr() -> impl Strategy<Value = u32> {
    let ram_end = map::RAM_BASE + map::DEFAULT_RAM_SIZE as u32;
    prop_oneof![
        // Between RAM end and the CLINT.
        ram_end..map::CLINT_BASE,
        // Between the UART and the terminal.
        map::UART_BASE + map::UART_SIZE..map::TERMINAL_BASE,
        // Beyond the last mapped device.
        map::WATCHDOG_BASE + map::WATCHDOG_SIZE..0xF000_0000,
    ]
    .prop_map(|a| a & !3)
}

/// (addr, size) pairs the core must reject as misaligned, anywhere in the
/// address space (alignment is checked before the bus ever sees them).
fn misaligned_access() -> impl Strategy<Value = (u32, u32)> {
    (0u32..0x1100_0000, prop_oneof![Just(2u32), Just(4u32)]).prop_filter_map(
        "force a misaligned address for the chosen size",
        |(a, size)| {
            let addr = a | if size == 4 { (a % 3) + 1 } else { 1 };
            (addr % size != 0).then_some((addr, size))
        },
    )
}

fn check_unmapped<M: TaintMode>(addr: u32, size: u32, store: bool) {
    let out = run_access::<M>(addr, size, store);
    assert_eq!(out.exit, SocExit::Break, "handler must regain control");
    assert!(out.trapped, "unmapped access at {addr:#010x} must trap");
    assert_eq!(out.mcause, 5, "access fault cause");
    assert_eq!(out.mtval, addr, "mtval holds the faulting address");
    assert_eq!(out.mepc, out.access_pc, "mepc holds the faulting pc");
}

fn check_misaligned<M: TaintMode>(addr: u32, size: u32, store: bool) {
    let out = run_access::<M>(addr, size, store);
    assert_eq!(out.exit, SocExit::Break, "handler must regain control");
    assert!(out.trapped, "misaligned access at {addr:#010x} must trap");
    assert_eq!(out.mcause, if store { 6 } else { 4 }, "misaligned cause");
    assert_eq!(out.mtval, addr, "mtval holds the faulting address");
    assert_eq!(out.mepc, out.access_pc, "mepc holds the faulting pc");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unmapped_mmio_traps_precisely(
        addr in unmapped_addr(),
        size in prop_oneof![Just(1u32), Just(2), Just(4)],
        store in any::<bool>(),
    ) {
        check_unmapped::<Plain>(addr, size, store);
        check_unmapped::<Tainted>(addr, size, store);
    }

    #[test]
    fn misaligned_access_traps_precisely(
        access in misaligned_access(),
        store in any::<bool>(),
    ) {
        let (addr, size) = access;
        check_misaligned::<Plain>(addr, size, store);
        check_misaligned::<Tainted>(addr, size, store);
    }
}

/// Aligned accesses that sit *inside* a device mapping but miss every
/// register decode as AddressError → precise access-fault trap too.
#[test]
fn unclaimed_device_register_traps_precisely() {
    for store in [false, true] {
        let addr = map::SENSOR_BASE + 0x48; // beyond frame + tag register
        let out = run_access::<Tainted>(addr, 4, store);
        assert_eq!(out.exit, SocExit::Break);
        assert!(out.trapped);
        assert_eq!(out.mcause, 5);
        assert_eq!(out.mtval, addr);
        assert_eq!(out.mepc, out.access_pc);
    }
}

/// A DMA burst that straddles a mapping boundary gets the router's
/// `BurstError`: the engine latches its error STATUS bit and surfaces a
/// generic error on the CTRL write, which the guest handles as a precise
/// access-fault trap — degraded, not dead.
#[test]
fn dma_burst_across_mapping_end_degrades_gracefully() {
    let ctrl = map::DMA_BASE + 0xC;
    let mut a = Asm::new(0);
    a.entry();
    a.la(Reg::T1, "handler");
    a.csrw(csr::MTVEC, Reg::T1);
    a.li(Reg::S0, map::DMA_BASE as i32);
    // src: last 8 bytes of the sensor mapping + 8 beyond it (the burst
    // straddles the mapping end).
    a.li(Reg::T0, (map::SENSOR_BASE + map::SENSOR_SIZE - 8) as i32);
    a.sw(Reg::T0, 0x0, Reg::S0); // SRC
    a.li(Reg::T0, 0x2000);
    a.sw(Reg::T0, 0x4, Reg::S0); // DST
    a.li(Reg::T0, 16);
    a.sw(Reg::T0, 0x8, Reg::S0); // LEN
    a.li(Reg::T0, 1);
    a.label("go");
    a.sw(Reg::T0, 0xC, Reg::S0); // CTRL: run — errors with BurstError inside
    a.label("handler");
    a.lw(Reg::A0, 0x10, Reg::S0); // STATUS (reached via the trap)
    a.ebreak();
    let prog = a.assemble().expect("dma probe assembles");
    let go_pc = prog.symbol("go").expect("go label");

    let cfg = SocBuilder::new().sensor_thread(false).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&prog);
    let exit = soc.run(10_000);
    assert_eq!(exit, SocExit::Break);
    let status = soc.cpu().reg(Reg::A0).val();
    assert_eq!(status & 0b10, 0b10, "DMA error bit set after straddling burst");
    let csrs = soc.cpu().csrs();
    assert_eq!(csrs.mcause.val(), 5, "CTRL write surfaced as an access fault");
    assert_eq!(csrs.mtval.val(), ctrl, "mtval holds the CTRL register address");
    assert_eq!(csrs.mepc.val(), go_pc, "mepc holds the faulting store");
}
