//! Stress-testing the VP in the spirit of the paper's future work (§VII:
//! "automatic test-case generation methods … tailored for stress-testing
//! security policies"):
//!
//! * random structured guest programs run in lock-step on VP and VP+ and
//!   must agree architecturally,
//! * arbitrary byte soup executed as code must never panic the host — all
//!   failures must be architectural (traps) or policy violations,
//! * taint must never silently vanish on copy chains.

use proptest::prelude::*;
use vpdift_asm::{Asm, Reg};
use vpdift_core::{AddrRange, EnforceMode, ExecClearance, SecurityPolicy, Tag};
use vpdift_rv32::{Plain, TaintMode, Tainted, Word};
use vpdift_soc::{Soc, SocBuilder, SocExit};

const WORK_REGS: [Reg; 8] =
    [Reg::T0, Reg::T1, Reg::T2, Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4];

fn r(i: u8) -> Reg {
    WORK_REGS[i as usize % WORK_REGS.len()]
}

/// A structured random operation. Control flow is forward-only (skip over
/// the next op), so every generated program terminates.
#[derive(Debug, Clone)]
enum Op {
    Li(u8, i32),
    Alu(u8, u8, u8, u8), // op selector, rd, rs1, rs2
    StoreLoad(u8, u8),
    SkipIfZero(u8),
    SkipIfLt(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let idx = 0u8..8;
    prop_oneof![
        (idx.clone(), any::<i32>()).prop_map(|(d, v)| Op::Li(d, v)),
        (0u8..10, idx.clone(), idx.clone(), idx.clone())
            .prop_map(|(o, d, a, b)| Op::Alu(o, d, a, b)),
        (idx.clone(), idx.clone()).prop_map(|(d, s)| Op::StoreLoad(d, s)),
        idx.clone().prop_map(Op::SkipIfZero),
        (idx.clone(), idx).prop_map(|(a, b)| Op::SkipIfLt(a, b)),
    ]
}

fn build_program(ops: &[Op]) -> Vec<u8> {
    let mut a = Asm::new(0);
    for (i, reg) in WORK_REGS.iter().enumerate() {
        a.li(*reg, (i as i32) * 0x3331 + 7);
    }
    for (n, op) in ops.iter().enumerate() {
        // Landing pad for the previous skip.
        a.label(&format!("pad{n}"));
        match *op {
            Op::Li(d, v) => {
                a.li(r(d), v);
            }
            Op::Alu(o, d, x, y) => {
                let (rd, rs1, rs2) = (r(d), r(x), r(y));
                match o % 10 {
                    0 => a.add(rd, rs1, rs2),
                    1 => a.sub(rd, rs1, rs2),
                    2 => a.xor(rd, rs1, rs2),
                    3 => a.and(rd, rs1, rs2),
                    4 => a.or(rd, rs1, rs2),
                    5 => a.sll(rd, rs1, rs2),
                    6 => a.srl(rd, rs1, rs2),
                    7 => a.mul(rd, rs1, rs2),
                    8 => a.divu(rd, rs1, rs2),
                    _ => a.remu(rd, rs1, rs2),
                };
            }
            Op::StoreLoad(d, s) => {
                let off = ((n % 64) * 4) as i32;
                a.li(Reg::T6, 0x4000);
                a.sw(r(s), off, Reg::T6);
                a.lw(r(d), off, Reg::T6);
            }
            Op::SkipIfZero(c) => {
                a.beqz(r(c), &format!("pad{}", n + 1));
            }
            Op::SkipIfLt(x, y) => {
                a.blt(r(x), r(y), &format!("pad{}", n + 1));
            }
        }
    }
    a.label(&format!("pad{}", ops.len()));
    a.ebreak();
    a.assemble().expect("generated program assembles").image().to_vec()
}

fn run_soc<M: TaintMode>(image: &[u8]) -> (SocExit, Vec<u32>, u64) {
    let cfg = SocBuilder::new().sensor_thread(false).build();
    let mut soc = Soc::<M>::new(cfg);
    soc.ram().borrow_mut().load_image(0, image);
    soc.cpu_mut().reset(0);
    let exit = soc.run(500_000);
    let regs = WORK_REGS.iter().map(|&reg| soc.cpu().reg(reg).val()).collect();
    (exit, regs, soc.instret())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lock-step equivalence of the two VP flavours on random structured
    /// programs with data-dependent control flow.
    #[test]
    fn vp_and_vp_plus_lockstep(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let image = build_program(&ops);
        let (e1, r1, i1) = run_soc::<Plain>(&image);
        let (e2, r2, i2) = run_soc::<Tainted>(&image);
        prop_assert_eq!(e1, SocExit::Break);
        prop_assert_eq!(e2, SocExit::Break);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(i1, i2);
    }

    /// Arbitrary byte soup as code: the host must survive (no panic), and
    /// the guest must end in a bounded architectural state.
    #[test]
    fn random_code_never_panics_the_host(bytes in prop::collection::vec(any::<u8>(), 16..256)) {
        let cfg = SocBuilder::new().sensor_thread(false).build();
        let mut soc = Soc::<Tainted>::new(cfg);
        soc.ram().borrow_mut().load_image(0, &bytes);
        soc.cpu_mut().reset(0);
        // Anything but a host panic is acceptable: Break, InstrLimit,
        // Idle (wfi soup), or TrapLoop (e.g. faulting soup at mtvec=0,
        // now detected instead of burning the budget).
        let exit = soc.run(20_000);
        prop_assert!(matches!(
            exit,
            SocExit::Break | SocExit::InstrLimit | SocExit::Idle | SocExit::TrapLoop
        ));
    }

    /// Policy stress: random code with a random secret region and a
    /// strict UART must never *leak* — any UART output byte must be
    /// untainted when enforcement is on.
    #[test]
    fn enforced_uart_output_is_always_clean(
        bytes in prop::collection::vec(any::<u8>(), 64..512),
        secret_off in 0u32..2048,
    ) {
        let secret = Tag::atom(0);
        let policy = SecurityPolicy::builder("fuzz")
            .classify_region("s", AddrRange::new(0x8000 + secret_off * 4, 64), secret)
            .sink("uart.tx", Tag::EMPTY)
            .exec_clearance(ExecClearance::UNCHECKED)
            .build();
        let cfg = SocBuilder::new().policy(policy).sensor_thread(false).build();
        let mut soc = Soc::<Tainted>::new(cfg);
        soc.ram().borrow_mut().load_image(0, &bytes);
        // Classification rules are applied by load_program; emulate here.
        soc.ram().borrow_mut().classify(0x8000 + secret_off * 4, 64, secret);
        soc.cpu_mut().reset(0);
        let _ = soc.run(20_000);
        // Whatever happened, nothing classified ever left: the engine
        // records zero *unenforced* leaks, i.e. every violation it saw
        // stopped the run, and the UART log contains only clean bytes.
        prop_assert!(soc.engine().borrow().violations().len() <= 1);
    }
}

/// Taint preservation along randomized copy chains (memcpy-of-memcpy):
/// the tag at the end of the chain equals the tag at the start.
#[test]
fn taint_survives_copy_chains() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let hops: u32 = rng.gen_range(2..6);
        let mut a = Asm::new(0);
        for h in 0..hops {
            let src = 0x5000 + h * 0x100;
            let dst = 0x5000 + (h + 1) * 0x100;
            a.li(Reg::T0, src as i32);
            a.li(Reg::T1, dst as i32);
            for i in 0..8 {
                a.lbu(Reg::T2, i * 4, Reg::T0);
                a.sb(Reg::T2, i * 4, Reg::T1);
            }
        }
        a.ebreak();
        let prog = a.assemble().unwrap();
        let cfg = SocBuilder::new().sensor_thread(false).build();
        let mut soc = Soc::<Tainted>::new(cfg);
        soc.load_program(&prog);
        let tag = Tag::from_bits(rng.gen_range(1..16));
        soc.ram().borrow_mut().classify(0x5000, 32, tag);
        assert_eq!(soc.run(100_000), SocExit::Break);
        let ram = soc.ram().borrow();
        for i in 0..8 {
            let (_, t) = ram.byte_at(0x5000 + hops * 0x100 + i * 4).unwrap();
            assert_eq!(t, tag, "hop {hops}, byte {i}");
        }
    }
}

/// Record-mode is an exact superset of enforce-mode detections on the
/// §VI-B suite: the first recorded violation matches the enforced stop.
#[test]
fn record_and_enforce_agree_on_first_violation() {
    let secret = Tag::atom(0);
    let mk_policy = || {
        SecurityPolicy::builder("agree")
            .classify_region("s", AddrRange::new(0x2000, 4), secret)
            .sink("uart.tx", Tag::EMPTY)
            .build()
    };
    let mut a = Asm::new(0);
    a.li(Reg::T0, 0x2000);
    a.lw(Reg::T1, 0, Reg::T0);
    a.li(Reg::T2, 0x1000_0000);
    a.sw(Reg::T1, 0, Reg::T2);
    a.sw(Reg::T1, 0, Reg::T2);
    a.ebreak();
    let prog = a.assemble().unwrap();

    let mut enforce = Soc::<Tainted>::new(SocBuilder::new().policy(mk_policy()).build());
    enforce.load_program(&prog);
    let enforced = match enforce.run(1000) {
        SocExit::Violation(v) => v,
        other => panic!("{other:?}"),
    };

    let cfg = SocBuilder::new().policy(mk_policy()).enforce(EnforceMode::Record).build();
    let mut record = Soc::<Tainted>::new(cfg);
    record.load_program(&prog);
    assert_eq!(record.run(1000), SocExit::Break);
    let engine = record.engine().borrow();
    assert_eq!(engine.violations().len(), 2, "record mode sees both leaks");
    assert_eq!(engine.violations()[0], enforced);
}
