//! Full-platform integration tests: guest programs driving peripherals
//! through the bus, interrupts, DMA, and end-to-end policy enforcement.

use vpdift_asm::{csr, Asm, Reg};
use vpdift_core::{EnforceMode, SecurityPolicy, Tag, ViolationKind};
use vpdift_periph::can::CanFrame;
use vpdift_rv32::{Plain, Tainted, Word};
use vpdift_soc::{map, Soc, SocBuilder, SocExit};

use Reg::*;

const SECRET: Tag = Tag::from_bits(0b01);
const UNTRUSTED: Tag = Tag::from_bits(0b10);

fn asm(build: impl FnOnce(&mut Asm)) -> vpdift_asm::Program {
    let mut a = Asm::new(0);
    build(&mut a);
    a.assemble().expect("program assembles")
}

#[test]
fn uart_hello_from_guest() {
    let prog = asm(|a| {
        a.la(A1, "msg");
        a.li(T0, map::UART_BASE as i32);
        a.label("loop");
        a.lbu(T1, 0, A1);
        a.beqz(T1, "end");
        a.sw(T1, 0, T0);
        a.addi(A1, A1, 1);
        a.j("loop");
        a.label("end");
        a.ebreak();
        a.align(4);
        a.label("msg");
        a.asciiz("hello, vp");
    });
    let mut soc = Soc::<Plain>::new(SocBuilder::new().build());
    soc.load_program(&prog);
    assert_eq!(soc.run(100_000), SocExit::Break);
    assert_eq!(soc.uart().borrow().output_string(), "hello, vp");
}

#[test]
fn terminal_echo_classifies_input() {
    // Guest echoes terminal input to UART; policy allows untrusted out.
    let policy = SecurityPolicy::builder("echo")
        .source("terminal.rx", UNTRUSTED)
        .sink("uart.tx", UNTRUSTED)
        .build();
    let prog = asm(|a| {
        a.li(T0, map::TERMINAL_BASE as i32);
        a.li(T1, map::UART_BASE as i32);
        a.label("loop");
        a.lw(T2, 4, T0); // RXAVAIL
        a.beqz(T2, "end");
        a.lw(T3, 0, T0); // RXDATA
        a.sw(T3, 0, T1);
        a.j("loop");
        a.label("end");
        a.ebreak();
    });
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    soc.terminal().borrow_mut().feed(b"abc");
    assert_eq!(soc.run(100_000), SocExit::Break);
    assert_eq!(soc.uart().borrow().output_string(), "abc");
}

#[test]
fn secret_memory_leak_to_uart_is_stopped() {
    // The debug-dump scenario: guest copies a classified memory region to
    // the UART; enforcement stops at the first secret byte.
    let policy = SecurityPolicy::builder("no-leak")
        .classify_region("key", vpdift_core::AddrRange::new(0x2000, 4), SECRET)
        .sink("uart.tx", Tag::EMPTY)
        .build();
    let prog = asm(|a| {
        a.li(T0, 0x2000);
        a.li(T1, map::UART_BASE as i32);
        a.lbu(T2, 0, T0);
        a.sw(T2, 0, T1); // leaks key byte 0
        a.ebreak();
    });
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    match soc.run(100_000) {
        SocExit::Violation(v) => {
            assert_eq!(v.kind, ViolationKind::Output { sink: "uart.tx".into() });
        }
        other => panic!("expected violation, got {other:?}"),
    }
    assert!(soc.uart().borrow().output().is_empty());
}

#[test]
fn record_mode_collects_violations_and_finishes() {
    let policy = SecurityPolicy::builder("audit")
        .classify_region("key", vpdift_core::AddrRange::new(0x2000, 4), SECRET)
        .sink("uart.tx", Tag::EMPTY)
        .build();
    let prog = asm(|a| {
        a.li(T0, 0x2000);
        a.li(T1, map::UART_BASE as i32);
        a.lbu(T2, 0, T0);
        a.sw(T2, 0, T1);
        a.lbu(T2, 1, T0);
        a.sw(T2, 0, T1);
        a.ebreak();
    });
    let cfg = SocBuilder::new().policy(policy).enforce(EnforceMode::Record).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&prog);
    assert_eq!(soc.run(100_000), SocExit::Break);
    assert_eq!(soc.engine().borrow().violations().len(), 2);
}

#[test]
fn sensor_interrupt_drives_handler() {
    // Enable the sensor IRQ through the PLIC, wfi until the 25 ms frame,
    // then read a frame byte in the handler.
    let prog = asm(|a| {
        a.la(T0, "handler");
        a.csrw(csr::MTVEC, T0);
        // PLIC enable sensor source.
        a.li(T0, map::PLIC_BASE as i32);
        a.li(T1, 1 << map::IRQ_SENSOR);
        a.sw(T1, 4, T0); // ENABLE
                         // mie.MEIE + mstatus.MIE
        a.li(T1, csr::MIE_MEIE as i32);
        a.csrw(csr::MIE, T1);
        a.li(T1, csr::MSTATUS_MIE as i32);
        a.csrw(csr::MSTATUS, T1);
        a.wfi();
        a.ebreak();

        a.label("handler");
        // Claim.
        a.li(T0, map::PLIC_BASE as i32);
        a.lw(A1, 8, T0); // CLAIM -> source id
                         // Read first sensor byte.
        a.li(T0, map::SENSOR_BASE as i32);
        a.lbu(A0, 0, T0);
        a.mret();
    });
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().build());
    soc.load_program(&prog);
    assert_eq!(soc.run(1_000_000), SocExit::Break);
    assert_eq!(soc.cpu().reg(A1).val(), map::IRQ_SENSOR, "claimed the sensor source");
    assert!(soc.cpu().reg(A0).val() >= 128, "frame data is the Fig. 4 printable range");
    assert!(soc.now() >= vpdift_kernel::SimTime::from_ms(25), "woke at the first frame");
}

#[test]
fn sensor_data_tag_flows_into_software() {
    // Classify sensor data as secret via the policy source; reading the
    // frame taints the destination register.
    let policy = SecurityPolicy::builder("sensor-secret").source("sensor.data", SECRET).build();
    let prog = asm(|a| {
        a.li(T0, map::SENSOR_BASE as i32);
        a.lbu(A0, 0, T0);
        a.ebreak();
    });
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    soc.sensor().borrow_mut().generate_frame();
    assert_eq!(soc.run(1000), SocExit::Break);
    assert_eq!(Word::tag(soc.cpu().reg(A0)), SECRET);
}

#[test]
fn timer_interrupt_via_clint() {
    let prog = asm(|a| {
        a.la(T0, "handler");
        a.csrw(csr::MTVEC, T0);
        a.li(T0, (map::CLINT_BASE + 0xBFF8) as i32);
        a.lw(T1, 0, T0); // mtime lo
        a.addi(T1, T1, 100);
        a.li(T0, (map::CLINT_BASE + 0x4000) as i32);
        a.sw(T1, 0, T0); // mtimecmp lo (hi stays... MAX) -> set hi to 0
        a.li(T2, 0);
        a.sw(T2, 4, T0);
        a.li(T1, csr::MIE_MTIE as i32);
        a.csrw(csr::MIE, T1);
        a.li(T1, csr::MSTATUS_MIE as i32);
        a.csrw(csr::MSTATUS, T1);
        a.label("spin");
        a.wfi();
        a.j("spin");
        a.label("handler");
        a.csrr(A0, csr::MCAUSE);
        a.ebreak();
    });
    let mut soc = Soc::<Plain>::new(SocBuilder::new().build());
    soc.load_program(&prog);
    assert_eq!(soc.run(1_000_000), SocExit::Break);
    assert_eq!(soc.cpu().reg(A0).val(), 0x8000_0007, "machine timer interrupt taken");
}

#[test]
fn can_round_trip_with_host() {
    // Host sends a frame; guest reads it, adds 1 to each byte, sends back.
    let policy = SecurityPolicy::builder("can")
        .source("can.rx", UNTRUSTED)
        .sink("can.tx", UNTRUSTED)
        .build();
    let prog = asm(|a| {
        a.li(T0, map::CAN_BASE as i32);
        a.label("wait");
        a.lw(T1, 0x20, T0); // RX_AVAIL
        a.beqz(T1, "wait");
        a.lw(A0, 0x24, T0); // RX_ID
        a.lw(A1, 0x28, T0); // RX_DLC
                            // Copy data bytes +1 into TX.
        a.li(T2, 0); // index
        a.label("copy");
        a.bge(T2, A1, "send");
        a.add(T3, T0, T2);
        a.lbu(T4, 0x2C, T3);
        a.addi(T4, T4, 1);
        a.sb(T4, 0x08, T3);
        a.addi(T2, T2, 1);
        a.j("copy");
        a.label("send");
        a.sw(A0, 0x00, T0); // TX_ID = RX_ID
        a.sw(A1, 0x04, T0); // TX_DLC
        a.li(T5, 1);
        a.sw(T5, 0x10, T0); // TX_GO
        a.sw(T5, 0x34, T0); // RX_POP
        a.ebreak();
    });
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    soc.can_host().send(CanFrame::new(0x42, &[10, 20, 30]));
    assert_eq!(soc.run(1_000_000), SocExit::Break);
    let reply = soc.can_host().recv().expect("reply frame");
    assert_eq!(reply.id, 0x42);
    assert_eq!(reply.bytes(), vec![11, 21, 31]);
}

#[test]
fn aes_encrypt_from_guest_declassifies() {
    // Key is secret in RAM; guest copies key+plaintext into AES, encrypts,
    // and sends the ciphertext to the UART — allowed because the policy
    // grants AES declassification to (LC,LI) = untrusted.
    let policy = SecurityPolicy::builder("aes")
        .classify_region("key", vpdift_core::AddrRange::new(0x2000, 16), SECRET)
        .sink("uart.tx", UNTRUSTED)
        .source("aes.out", UNTRUSTED)
        .allow_declassify("aes")
        .build();
    let prog = asm(|a| {
        a.li(T0, 0x2000); // key
        a.li(T1, map::AES_BASE as i32);
        a.li(T2, 0);
        a.label("key");
        a.add(T3, T0, T2);
        a.lbu(T4, 0, T3);
        a.add(T3, T1, T2);
        a.sb(T4, 0, T3); // KEY window
        a.addi(T2, T2, 1);
        a.li(T5, 16);
        a.blt(T2, T5, "key");
        // Plaintext: zeros (DATA_IN already zero).
        a.li(T2, 1);
        a.sw(T2, 0x30, T1); // CTRL = encrypt
                            // Send first ciphertext byte to UART.
        a.lbu(A0, 0x20, T1);
        a.li(T6, map::UART_BASE as i32);
        a.sw(A0, 0, T6);
        a.ebreak();
    });
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    soc.ram().borrow_mut().load_image(0x2000, &[0x2B; 16]);
    // classification already applied by load_program; re-apply since we
    // just overwrote the bytes:
    soc.ram().borrow_mut().classify(0x2000, 16, SECRET);
    assert_eq!(soc.run(1_000_000), SocExit::Break);
    assert_eq!(soc.uart().borrow().output().len(), 1, "declassified ciphertext left");

    // Control experiment: leaking the *key* byte directly must fail.
    let leak = asm(|a| {
        a.li(T0, 0x2000);
        a.lbu(A0, 0, T0);
        a.li(T6, map::UART_BASE as i32);
        a.sw(A0, 0, T6);
        a.ebreak();
    });
    let policy = SecurityPolicy::builder("aes")
        .classify_region("key", vpdift_core::AddrRange::new(0x2000, 16), SECRET)
        .sink("uart.tx", UNTRUSTED)
        .build();
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&leak);
    soc.ram().borrow_mut().classify(0x2000, 16, SECRET);
    assert!(matches!(soc.run(10_000), SocExit::Violation(_)));
}

#[test]
fn dma_copy_from_guest_preserves_taint() {
    let policy = SecurityPolicy::builder("dma")
        .classify_region("src", vpdift_core::AddrRange::new(0x3000, 8), SECRET)
        .build();
    let prog = asm(|a| {
        a.li(T0, map::DMA_BASE as i32);
        a.li(T1, 0x3000);
        a.sw(T1, 0x0, T0); // SRC
        a.li(T1, 0x4000);
        a.sw(T1, 0x4, T0); // DST
        a.li(T1, 8);
        a.sw(T1, 0x8, T0); // LEN
        a.li(T1, 1);
        a.sw(T1, 0xC, T0); // CTRL
                           // Read back a copied byte -> should be tainted.
        a.li(T2, 0x4000);
        a.lbu(A0, 0, T2);
        a.ebreak();
    });
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    soc.ram().borrow_mut().load_image(0x3000, &[9; 8]);
    soc.ram().borrow_mut().classify(0x3000, 8, SECRET);
    assert_eq!(soc.run(100_000), SocExit::Break);
    assert_eq!(soc.cpu().reg(A0).val(), 9);
    assert_eq!(Word::tag(soc.cpu().reg(A0)), SECRET, "taint followed the DMA transfer");
    assert_eq!(soc.dma().borrow().bytes_moved(), 8);
}

#[test]
fn store_clearance_protects_pin_region() {
    // Writing untrusted data over the protected PIN region traps.
    let policy = SecurityPolicy::builder("protect")
        .source("terminal.rx", UNTRUSTED)
        .protect_region("pin", vpdift_core::AddrRange::new(0x2000, 4), SECRET)
        .build();
    let prog = asm(|a| {
        a.li(T0, map::TERMINAL_BASE as i32);
        a.lw(T1, 0, T0); // untrusted byte
        a.li(T2, 0x2000);
        a.sb(T1, 0, T2); // overwrite PIN
        a.ebreak();
    });
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    soc.terminal().borrow_mut().feed(b"X");
    match soc.run(10_000) {
        SocExit::Violation(v) => {
            assert!(matches!(v.kind, ViolationKind::Store { ref region } if region == "pin"));
            assert!(v.pc.is_some());
        }
        other => panic!("expected store violation, got {other:?}"),
    }
}

#[test]
fn plain_soc_runs_same_program_unchecked() {
    let prog = asm(|a| {
        a.li(T0, 0x2000);
        a.lbu(T2, 0, T0);
        a.li(T1, map::UART_BASE as i32);
        a.sw(T2, 0, T1);
        a.ebreak();
    });
    let mut soc = Soc::<Plain>::new(SocBuilder::new().build());
    soc.load_program(&prog);
    assert_eq!(soc.run(10_000), SocExit::Break);
}

#[test]
fn instr_limit_and_idle_exits() {
    let spin = asm(|a| {
        a.label("spin");
        a.j("spin");
    });
    let mut soc = Soc::<Plain>::new(SocBuilder::new().build());
    soc.load_program(&spin);
    assert_eq!(soc.run(1000), SocExit::InstrLimit);
    assert_eq!(soc.instret(), 1000);

    // wfi with no interrupt source armed and no sensor thread -> Idle.
    let sleep = asm(|a| {
        a.wfi();
        a.ebreak();
    });
    let cfg = SocBuilder::new().sensor_thread(false).build();
    let mut soc = Soc::<Plain>::new(cfg);
    soc.load_program(&sleep);
    assert_eq!(soc.run(1000), SocExit::Idle);
}

#[test]
fn simulated_time_advances_with_instructions() {
    let prog = asm(|a| {
        for _ in 0..100 {
            a.nop();
        }
        a.ebreak();
    });
    let mut soc = Soc::<Plain>::new(SocBuilder::new().build());
    soc.load_program(&prog);
    assert_eq!(soc.run(10_000), SocExit::Break);
    // 101 instructions at 10 ns each ≈ 1.01 µs (quantum-rounded).
    assert!(soc.now() >= vpdift_kernel::SimTime::from_ns(1000));
    assert!(soc.now() <= vpdift_kernel::SimTime::from_us(20));
}
