//! Guest-driven taint introspection: firmware validating its own
//! classification state through the taint-debug peripheral.

use vpdift_asm::{Asm, Reg};
use vpdift_core::{AddrRange, EnforceMode, SecurityPolicy, Tag, ViolationKind};
use vpdift_rv32::{Tainted, Word};
use vpdift_soc::{map, Soc, SocBuilder, SocExit};

use Reg::*;

const SECRET: Tag = Tag::from_bits(0b1);

#[test]
fn guest_reads_its_own_tags() {
    // Firmware inspects the tag of a classified byte and of a public one,
    // leaving both tag words in registers.
    let policy = SecurityPolicy::builder("introspect")
        .classify_region("key", AddrRange::new(0x2000, 4), SECRET)
        .build();
    let prog = {
        let mut a = Asm::new(0);
        a.li(T0, map::TAINTDBG_BASE as i32);
        a.li(T1, 0x2000);
        a.sw(T1, 0x0, T0); // ADDR = classified byte
        a.lw(A0, 0x4, T0); // TAG
        a.li(T1, 0x3000);
        a.sw(T1, 0x0, T0); // ADDR = public byte
        a.lw(A1, 0x4, T0); // TAG
        a.ebreak();
        a.assemble().unwrap()
    };
    let cfg = SocBuilder::new().policy(policy).sensor_thread(false).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&prog);
    assert_eq!(soc.run(10_000), SocExit::Break);
    assert_eq!(soc.cpu().reg(A0).val(), SECRET.bits());
    assert_eq!(soc.cpu().reg(A1).val(), 0);
}

#[test]
fn guest_taint_assertions_catch_policy_mistakes() {
    // The firmware test asserts the key region is classified. Run once
    // with the classification present (passes) and once with a policy
    // that forgot it (assertion fires).
    let prog = {
        let mut a = Asm::new(0);
        a.li(T0, map::TAINTDBG_BASE as i32);
        a.li(T1, 0x2000);
        a.sw(T1, 0x0, T0); // ADDR
        a.li(T1, SECRET.bits() as i32);
        a.sw(T1, 0x8, T0); // ASSERT_TAG = secret
        a.lw(A0, 0xC, T0); // FAILED count
        a.ebreak();
        a.assemble().unwrap()
    };

    let good = SecurityPolicy::builder("good")
        .classify_region("key", AddrRange::new(0x2000, 4), SECRET)
        .build();
    let cfg = SocBuilder::new().policy(good).sensor_thread(false).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&prog);
    assert_eq!(soc.run(10_000), SocExit::Break);
    assert_eq!(soc.cpu().reg(A0).val(), 0, "assertion passed");

    // The buggy policy: classification forgotten.
    let buggy = SecurityPolicy::builder("buggy").build();
    let cfg =
        SocBuilder::new().policy(buggy).enforce(EnforceMode::Record).sensor_thread(false).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&prog);
    assert_eq!(soc.run(10_000), SocExit::Break);
    assert_eq!(soc.cpu().reg(A0).val(), 1, "assertion failure counted");
    let engine = soc.engine().borrow();
    assert_eq!(engine.violations().len(), 1);
    assert!(matches!(
        engine.violations()[0].kind,
        ViolationKind::Custom { ref what } if what.contains("assertion")
    ));
    assert_eq!(soc.taintdbg().borrow().failed(), 1);
}

#[test]
fn enforced_assertion_stops_the_run() {
    let prog = {
        let mut a = Asm::new(0);
        a.li(T0, map::TAINTDBG_BASE as i32);
        a.li(T1, 0x2000);
        a.sw(T1, 0x0, T0);
        a.li(T1, 0xF);
        a.sw(T1, 0x8, T0); // expect 0xF on an unclassified byte
        a.ebreak();
        a.assemble().unwrap()
    };
    let cfg = SocBuilder::new().policy(SecurityPolicy::permissive()).sensor_thread(false).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&prog);
    assert!(matches!(soc.run(10_000), SocExit::Violation(_)));
}
