//! The SoC physical memory map (see DESIGN.md §6).

use vpdift_core::AddrRange;

/// RAM base address.
pub const RAM_BASE: u32 = 0x0000_0000;
/// Default RAM size (8 MiB).
pub const DEFAULT_RAM_SIZE: usize = 8 * 1024 * 1024;

/// CLINT base address.
pub const CLINT_BASE: u32 = 0x0200_0000;
/// CLINT region size.
pub const CLINT_SIZE: u32 = 0x1_0000;

/// PLIC base address.
pub const PLIC_BASE: u32 = 0x0C00_0000;
/// PLIC region size.
pub const PLIC_SIZE: u32 = 0x1000;

/// UART base address.
pub const UART_BASE: u32 = 0x1000_0000;
/// UART region size.
pub const UART_SIZE: u32 = 0x100;

/// Terminal (console input) base address.
pub const TERMINAL_BASE: u32 = 0x1001_0000;
/// Terminal region size.
pub const TERMINAL_SIZE: u32 = 0x100;

/// Sensor base address.
pub const SENSOR_BASE: u32 = 0x1002_0000;
/// Sensor region size (64-byte frame + tag register).
pub const SENSOR_SIZE: u32 = 0x100;

/// CAN controller base address.
pub const CAN_BASE: u32 = 0x1003_0000;
/// CAN region size.
pub const CAN_SIZE: u32 = 0x100;

/// AES engine base address.
pub const AES_BASE: u32 = 0x1004_0000;
/// AES region size.
pub const AES_SIZE: u32 = 0x100;

/// DMA controller base address.
pub const DMA_BASE: u32 = 0x1005_0000;
/// DMA region size.
pub const DMA_SIZE: u32 = 0x100;

/// Taint-introspection (debug) peripheral base address.
pub const TAINTDBG_BASE: u32 = 0x1006_0000;
/// Taint-introspection region size.
pub const TAINTDBG_SIZE: u32 = 0x100;

/// Watchdog timer base address.
pub const WATCHDOG_BASE: u32 = 0x1007_0000;
/// Watchdog region size.
pub const WATCHDOG_SIZE: u32 = 0x100;

/// PLIC interrupt source of the sensor.
pub const IRQ_SENSOR: u32 = 2;
/// PLIC interrupt source of the CAN controller.
pub const IRQ_CAN: u32 = 3;
/// PLIC interrupt source of the DMA controller.
pub const IRQ_DMA: u32 = 4;

/// The RAM range for a given size.
pub fn ram_range(size: usize) -> AddrRange {
    AddrRange::new(RAM_BASE, size as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The invariant behind `map_port`'s infallibility (and the
    /// `ram_size <= CLINT_BASE` assertion in `Soc::with_obs`): every
    /// region of the SoC map is pairwise disjoint.
    #[test]
    fn memory_map_regions_are_disjoint() {
        let regions = [
            ("ram", ram_range(DEFAULT_RAM_SIZE)),
            ("clint", AddrRange::new(CLINT_BASE, CLINT_SIZE)),
            ("plic", AddrRange::new(PLIC_BASE, PLIC_SIZE)),
            ("uart", AddrRange::new(UART_BASE, UART_SIZE)),
            ("terminal", AddrRange::new(TERMINAL_BASE, TERMINAL_SIZE)),
            ("sensor", AddrRange::new(SENSOR_BASE, SENSOR_SIZE)),
            ("can", AddrRange::new(CAN_BASE, CAN_SIZE)),
            ("aes", AddrRange::new(AES_BASE, AES_SIZE)),
            ("dma", AddrRange::new(DMA_BASE, DMA_SIZE)),
            ("taintdbg", AddrRange::new(TAINTDBG_BASE, TAINTDBG_SIZE)),
            ("watchdog", AddrRange::new(WATCHDOG_BASE, WATCHDOG_SIZE)),
        ];
        for (i, (a_name, a)) in regions.iter().enumerate() {
            for (b_name, b) in &regions[i + 1..] {
                assert!(a.end <= b.start || b.end <= a.start, "{a_name} overlaps {b_name}");
            }
        }
    }
}
