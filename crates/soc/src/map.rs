//! The SoC physical memory map (see DESIGN.md §6).

use vpdift_core::AddrRange;

/// RAM base address.
pub const RAM_BASE: u32 = 0x0000_0000;
/// Default RAM size (8 MiB).
pub const DEFAULT_RAM_SIZE: usize = 8 * 1024 * 1024;

/// CLINT base address.
pub const CLINT_BASE: u32 = 0x0200_0000;
/// CLINT region size.
pub const CLINT_SIZE: u32 = 0x1_0000;

/// PLIC base address.
pub const PLIC_BASE: u32 = 0x0C00_0000;
/// PLIC region size.
pub const PLIC_SIZE: u32 = 0x1000;

/// UART base address.
pub const UART_BASE: u32 = 0x1000_0000;
/// UART region size.
pub const UART_SIZE: u32 = 0x100;

/// Terminal (console input) base address.
pub const TERMINAL_BASE: u32 = 0x1001_0000;
/// Terminal region size.
pub const TERMINAL_SIZE: u32 = 0x100;

/// Sensor base address.
pub const SENSOR_BASE: u32 = 0x1002_0000;
/// Sensor region size (64-byte frame + tag register).
pub const SENSOR_SIZE: u32 = 0x100;

/// CAN controller base address.
pub const CAN_BASE: u32 = 0x1003_0000;
/// CAN region size.
pub const CAN_SIZE: u32 = 0x100;

/// AES engine base address.
pub const AES_BASE: u32 = 0x1004_0000;
/// AES region size.
pub const AES_SIZE: u32 = 0x100;

/// DMA controller base address.
pub const DMA_BASE: u32 = 0x1005_0000;
/// DMA region size.
pub const DMA_SIZE: u32 = 0x100;

/// Taint-introspection (debug) peripheral base address.
pub const TAINTDBG_BASE: u32 = 0x1006_0000;
/// Taint-introspection region size.
pub const TAINTDBG_SIZE: u32 = 0x100;

/// PLIC interrupt source of the sensor.
pub const IRQ_SENSOR: u32 = 2;
/// PLIC interrupt source of the CAN controller.
pub const IRQ_CAN: u32 = 3;
/// PLIC interrupt source of the DMA controller.
pub const IRQ_DMA: u32 = 4;

/// The RAM range for a given size.
pub fn ram_range(size: usize) -> AddrRange {
    AddrRange::new(RAM_BASE, size as u32)
}
