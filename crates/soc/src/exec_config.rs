//! One parse/validate path for every way a VP gets configured.
//!
//! Before this module, the program/policy/mode/engine/enforce/quantum/
//! ram_size parameter sprawl was duplicated — with subtly different
//! validation — across the CLI argument parser, the serve `create`
//! command, `fleet --program`, and the faultcamp binary. [`ExecConfig`]
//! is the shared front door: string knobs parse through one place into
//! one typed error ([`ExecConfigError`]), limits are checked *before*
//! construction (a bad `ram_size` is an error, not the `Soc::with_obs`
//! assertion panic it used to be), and [`SocBuilder::from_exec_config`]
//! turns the validated value into the canonical builder.
//!
//! ```
//! use vpdift_soc::{ExecConfig, Soc, SocBuilder};
//! use vpdift_rv32::Tainted;
//!
//! let mut cfg = ExecConfig::default();
//! cfg.set_engine_str("block").unwrap();
//! cfg.quantum = Some(256);
//! let soc = Soc::<Tainted>::new(SocBuilder::from_exec_config(&cfg).unwrap().build());
//! # let _ = soc;
//! ```

use core::fmt;
use std::str::FromStr;

use vpdift_core::{parse_policy, AtomTable, EnforceMode, PolicyParseError, SecurityPolicy};
use vpdift_rv32::ExecMode;

use crate::builder::SocBuilder;
use crate::map;

/// The user-facing execution configuration: everything a CLI flag set, a
/// serve `create` request, or a fleet job spec can say about how to run a
/// guest, *before* it becomes a [`SocConfig`](crate::SocConfig).
///
/// `None` means "use the [`SocConfig`](crate::SocConfig) default".
/// String-valued knobs arrive through the `set_*_str` parsers so every
/// entry path rejects the same inputs with the same
/// [`ExecConfigError`].
#[derive(Clone, Debug, PartialEq)]
pub struct ExecConfig {
    /// DIFT-enabled VP+ (`true`, the default) or the plain VP.
    pub tainted: bool,
    /// Which execution engine drives the CPU.
    pub engine: ExecMode,
    /// Enforce (stop on violation) or record (log and continue).
    pub enforce: EnforceMode,
    /// Instructions per scheduling quantum; must be ≥ 1 when set.
    pub quantum: Option<u32>,
    /// RAM size in bytes; must be `1..=`[`map::CLINT_BASE`] when set.
    pub ram_size: Option<usize>,
    /// Policy source text (the `.policy` DSL); `None` runs permissive.
    pub policy: Option<String>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            tainted: true,
            engine: ExecMode::Interp,
            enforce: EnforceMode::Enforce,
            quantum: None,
            ram_size: None,
            policy: None,
        }
    }
}

/// Why an [`ExecConfig`] could not be parsed, validated, or resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecConfigError {
    /// Not `tainted`/`plain`.
    BadMode(String),
    /// Not a known engine name (see [`ExecMode::from_str`]).
    BadEngine(String),
    /// Not `enforce`/`record`.
    BadEnforce(String),
    /// `quantum` of 0 — the run loop could never retire an instruction.
    BadQuantum,
    /// `ram_size` of 0 or overlapping the MMIO hole at
    /// [`map::CLINT_BASE`].
    BadRamSize(usize),
    /// The policy text failed to parse.
    BadPolicy(PolicyParseError),
}

impl fmt::Display for ExecConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecConfigError::BadMode(s) => {
                write!(f, "unknown mode '{s}' (expected 'tainted' or 'plain')")
            }
            ExecConfigError::BadEngine(s) => f.write_str(s),
            ExecConfigError::BadEnforce(s) => {
                write!(f, "unknown enforce mode '{s}' (expected 'enforce' or 'record')")
            }
            ExecConfigError::BadQuantum => f.write_str("quantum must be >= 1"),
            ExecConfigError::BadRamSize(n) => write!(
                f,
                "ram_size {n} out of range (must be 1..={:#x}, the first MMIO address)",
                map::CLINT_BASE
            ),
            ExecConfigError::BadPolicy(e) => write!(f, "bad policy: {e}"),
        }
    }
}

impl std::error::Error for ExecConfigError {}

impl From<PolicyParseError> for ExecConfigError {
    fn from(e: PolicyParseError) -> Self {
        ExecConfigError::BadPolicy(e)
    }
}

impl ExecConfig {
    /// Parses `tainted`/`taint` or `plain` into [`ExecConfig::tainted`].
    pub fn set_mode_str(&mut self, s: &str) -> Result<(), ExecConfigError> {
        self.tainted = match s {
            "tainted" | "taint" => true,
            "plain" => false,
            other => return Err(ExecConfigError::BadMode(other.to_owned())),
        };
        Ok(())
    }

    /// Parses an engine name (`interp`, `block`, …) into
    /// [`ExecConfig::engine`].
    pub fn set_engine_str(&mut self, s: &str) -> Result<(), ExecConfigError> {
        self.engine = ExecMode::from_str(s).map_err(ExecConfigError::BadEngine)?;
        Ok(())
    }

    /// Parses `enforce` or `record` into [`ExecConfig::enforce`].
    pub fn set_enforce_str(&mut self, s: &str) -> Result<(), ExecConfigError> {
        self.enforce = match s {
            "enforce" => EnforceMode::Enforce,
            "record" => EnforceMode::Record,
            other => return Err(ExecConfigError::BadEnforce(other.to_owned())),
        };
        Ok(())
    }

    /// Checks the numeric limits without resolving the policy. Catches
    /// the two historical construction-time footguns: a `quantum` of 0
    /// would spin [`Soc::run`](crate::Soc::run) forever without retiring
    /// an instruction, and a `ram_size` past [`map::CLINT_BASE`] used to
    /// reach the assertion inside `Soc::with_obs` and panic the host
    /// (the serve layer would take the whole server down on one bad
    /// client request).
    pub fn validate(&self) -> Result<(), ExecConfigError> {
        if self.quantum == Some(0) {
            return Err(ExecConfigError::BadQuantum);
        }
        if let Some(n) = self.ram_size {
            if n == 0 || n > map::CLINT_BASE as usize {
                return Err(ExecConfigError::BadRamSize(n));
            }
        }
        Ok(())
    }

    /// Validates, parses the policy text, and produces the
    /// [`SocBuilder`] plus the policy's [`AtomTable`] (empty when no
    /// policy was given — the VP runs permissive). Callers that don't
    /// need atom names can use [`SocBuilder::from_exec_config`].
    pub fn resolve(&self) -> Result<(SocBuilder, AtomTable), ExecConfigError> {
        self.validate()?;
        let (policy, atoms) = match &self.policy {
            Some(src) => parse_policy(src)?,
            None => (SecurityPolicy::permissive(), AtomTable::from_names::<_, String>([])),
        };
        let mut b = SocBuilder::new().policy(policy).engine(self.engine).enforce(self.enforce);
        if let Some(q) = self.quantum {
            b = b.quantum(q);
        }
        if let Some(n) = self.ram_size {
            b = b.ram_size(n);
        }
        Ok((b, atoms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_resolves_to_builder_defaults() {
        let (b, atoms) = ExecConfig::default().resolve().unwrap();
        let cfg = b.build();
        let def = crate::SocConfig::default();
        assert_eq!(cfg.ram_size, def.ram_size);
        assert_eq!(cfg.quantum, def.quantum);
        assert_eq!(cfg.exec, ExecMode::Interp);
        assert_eq!(cfg.enforce, EnforceMode::Enforce);
        assert!(atoms.names().is_empty());
    }

    #[test]
    fn string_knobs_parse_through_one_path() {
        let mut c = ExecConfig::default();
        c.set_mode_str("plain").unwrap();
        c.set_engine_str("block").unwrap();
        c.set_enforce_str("record").unwrap();
        assert!(!c.tainted);
        assert_eq!(c.engine, ExecMode::BlockCache);
        assert_eq!(c.enforce, EnforceMode::Record);
        assert!(matches!(
            c.set_mode_str("chartreuse"),
            Err(ExecConfigError::BadMode(s)) if s == "chartreuse"
        ));
        assert!(matches!(c.set_engine_str("jit"), Err(ExecConfigError::BadEngine(_))));
        assert!(matches!(c.set_enforce_str("warn"), Err(ExecConfigError::BadEnforce(_))));
    }

    #[test]
    fn limits_are_errors_not_panics() {
        let mut c = ExecConfig { quantum: Some(0), ..ExecConfig::default() };
        assert_eq!(c.validate(), Err(ExecConfigError::BadQuantum));
        c.quantum = Some(1);
        c.ram_size = Some(0);
        assert!(matches!(c.validate(), Err(ExecConfigError::BadRamSize(0))));
        c.ram_size = Some(map::CLINT_BASE as usize + 1);
        assert!(matches!(c.resolve(), Err(ExecConfigError::BadRamSize(_))));
        c.ram_size = Some(map::CLINT_BASE as usize);
        assert!(c.validate().is_ok(), "the full hole below MMIO is usable");
    }

    #[test]
    fn policy_text_parses_and_exposes_atoms() {
        let cfg = ExecConfig {
            policy: Some("policy t\natom KEY\nclassify 0x2000 +16 KEY\nsink uart.tx KEY\n".into()),
            ..ExecConfig::default()
        };
        let (_, atoms) = cfg.resolve().unwrap();
        assert!(atoms.names().iter().any(|n| n == "KEY"));
        let bad = ExecConfig { policy: Some("classify nonsense".into()), ..ExecConfig::default() };
        assert!(matches!(bad.resolve(), Err(ExecConfigError::BadPolicy(_))));
    }

    #[test]
    fn from_exec_config_is_the_single_entry_point() {
        let mut c = ExecConfig::default();
        c.set_engine_str("block").unwrap();
        c.quantum = Some(64);
        c.ram_size = Some(128 * 1024);
        let cfg = SocBuilder::from_exec_config(&c).unwrap().build();
        assert_eq!(cfg.exec, ExecMode::BlockCache);
        assert_eq!(cfg.quantum, 64);
        assert_eq!(cfg.ram_size, 128 * 1024);
    }
}
