//! The assembled virtual prototype.

use core::fmt;

use vpdift_asm::Program;
use vpdift_core::{
    AddrRange, DiftEngine, EnforceMode, SecurityPolicy, SharedEngine, Tag, Violation,
};
use vpdift_kernel::{Kernel, SimTime};
use vpdift_loader::{Elf32, Segment};
use vpdift_obs::{
    engine_observer, shared_obs, BreakSet, InsnCell, NullSink, ObsEvent, ObsSink, StopFlag,
};
use vpdift_periph::{
    AesEngine, CanChannel, CanController, CanHostEndpoint, Clint, Dma, IrqLine, Plic, Ram, Sensor,
    TaintDebug, Terminal, Uart, Watchdog,
};
use vpdift_rv32::{BlockCache, CacheStats, Cpu, ExecMode, Step, TaintMode, Word};
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{Router, SharedFaultHook, SharedTarget};

use crate::builder::SocBuilder;
use crate::bus::SocBus;
use crate::map;

/// Why an ELF image could not be mapped into this SoC ([`Soc::load_elf`]).
/// The checks run before any byte is written, so a failed load leaves RAM
/// and the CPU untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfLoadError {
    /// A `PT_LOAD` segment does not fit in RAM.
    SegmentOutsideRam {
        /// Segment index (parse order).
        index: usize,
        /// Segment load address.
        vaddr: u32,
        /// Segment in-memory size.
        memsz: u32,
        /// First address past RAM.
        ram_end: u32,
    },
    /// The entry point is not a RAM address.
    EntryOutsideRam {
        /// The ELF entry point.
        entry: u32,
        /// First address past RAM.
        ram_end: u32,
    },
}

impl fmt::Display for ElfLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfLoadError::SegmentOutsideRam { index, vaddr, memsz, ram_end } => write!(
                f,
                "segment {index} ({vaddr:#010x}+{memsz:#x}) outside RAM (ends {ram_end:#010x})"
            ),
            ElfLoadError::EntryOutsideRam { entry, ram_end } => {
                write!(f, "entry point {entry:#010x} outside RAM (ends {ram_end:#010x})")
            }
        }
    }
}

impl std::error::Error for ElfLoadError {}

/// Build-time configuration of the VP.
///
/// Construct through [`SocBuilder`] (or [`SocBuilder::from_exec_config`]
/// for user-facing string knobs) — the struct is `#[non_exhaustive]`, so
/// literal construction outside this crate no longer compiles; fields
/// stay publicly *readable*.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct SocConfig {
    /// RAM size in bytes.
    pub ram_size: usize,
    /// The security policy to enforce (ignored by the plain VP except for
    /// peripheral wiring).
    pub policy: SecurityPolicy,
    /// Enforce (stop on violation) or record (log and continue).
    pub enforce: EnforceMode,
    /// Seed for the sensor's data generator.
    pub seed: u64,
    /// Instructions per scheduling quantum (time-sync granularity).
    pub quantum: u32,
    /// Simulated time per instruction (loosely-timed model).
    pub insn_time: SimTime,
    /// Whether the sensor's periodic generation thread runs.
    pub sensor_thread: bool,
    /// Which execution engine drives the CPU (interpreter or predecoded
    /// block cache).
    pub exec: ExecMode,
    /// Cooperative stop flag polled by [`Soc::run`]: raising it (from a
    /// watchpoint or a controlling session) ends the run with
    /// [`SocExit::Stopped`] at the next step boundary. Only polled when an
    /// enabled observability sink is attached — `NullSink` builds compile
    /// the check out.
    pub stop: StopFlag,
    /// Live retired-step counter published at quantum boundaries (one
    /// relaxed add per quantum, never per instruction), so external
    /// samplers — fleet telemetry, a serve-layer scrape endpoint — can
    /// report progress of a session still mid-run. Share a cell via
    /// [`SocBuilder::insn_cell`]; the default cell has no other reader.
    pub insns: InsnCell,
    /// Shared PC / instruction-count breakpoints, checked *before* each
    /// instruction executes. Gated twice: on `S::ENABLED` (so `NullSink`
    /// batch runs compile the check out — unlike the stop poll, nothing
    /// external ever needs to break an unobserved session) and on the
    /// set's one-relaxed-load [`BreakSet::armed`] fast path. Share a set
    /// via [`SocBuilder::breakpoints`].
    pub breaks: BreakSet,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            ram_size: map::DEFAULT_RAM_SIZE,
            policy: SecurityPolicy::permissive(),
            enforce: EnforceMode::Enforce,
            seed: 42,
            quantum: 1024,
            insn_time: SimTime::from_ns(10), // 100 MIPS guest clock
            sensor_thread: true,
            exec: ExecMode::Interp,
            stop: StopFlag::new(),
            insns: InsnCell::new(),
            breaks: BreakSet::new(),
        }
    }
}

impl SocConfig {
    /// The canonical way to assemble a configuration — see [`SocBuilder`].
    pub fn builder() -> SocBuilder {
        SocBuilder::new()
    }

    /// Configuration with a specific policy, defaults elsewhere.
    #[deprecated(since = "0.1.0", note = "use `Soc::<M>::builder().policy(p).build()`")]
    pub fn with_policy(policy: SecurityPolicy) -> Self {
        SocBuilder::new().policy(policy).build()
    }
}

/// Why [`Soc::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocExit {
    /// Guest executed `ebreak` (normal program end).
    Break,
    /// An enforced DIFT violation stopped the simulation — the paper's
    /// run-time error.
    Violation(Violation),
    /// The instruction budget was exhausted.
    InstrLimit,
    /// The core is in `wfi` and no future event can ever wake it.
    Idle,
    /// The watchdog deadline passed without a kick — the platform hung
    /// (or firmware wedged) long enough for the dog to bite.
    WatchdogTimeout,
    /// The CPU took the configured number of consecutive identical
    /// synchronous traps without retiring an instruction — the guest is
    /// wedged in its own trap handler (e.g. a corrupted trap vector).
    TrapLoop,
    /// The configured [`StopFlag`] was raised — a watchpoint hit or an
    /// external stop request. The VP is resumable: call [`Soc::run`]
    /// again to continue from the exact stop point.
    Stopped,
}

impl SocExit {
    /// A stable snake_case label for reports and campaign classification.
    pub fn label(&self) -> &'static str {
        match self {
            SocExit::Break => "break",
            SocExit::Violation(_) => "violation",
            SocExit::InstrLimit => "instr_limit",
            SocExit::Idle => "idle",
            SocExit::WatchdogTimeout => "watchdog_timeout",
            SocExit::TrapLoop => "trap_loop",
            SocExit::Stopped => "stopped",
        }
    }
}

/// Maps one SoC port into `router`. Infallible by construction: the map
/// regions in [`map`] are pairwise disjoint (checked by the
/// `memory_map_regions_are_disjoint` test in `map.rs`) and each is mapped
/// exactly once per router, so the overlap check cannot fire.
fn map_port(router: &mut Router, name: &str, range: AddrRange, target: SharedTarget) {
    router.map(name, range, target).expect("SoC map regions are disjoint by construction");
}

/// The virtual prototype: CPU, bus, memory and all peripherals, coupled to
/// the simulation kernel. `M` selects the original VP ([`vpdift_rv32::Plain`])
/// or the DIFT-enabled VP+ ([`vpdift_rv32::Tainted`]).
pub struct Soc<M: TaintMode, S: ObsSink = NullSink> {
    config: SocConfig,
    kernel: Kernel,
    cpu: Cpu<M, S>,
    bus: SocBus<M>,
    exec: EngineKind,
    engine: SharedEngine,
    obs: Shared<S>,
    /// Quanta since the last taint-spread sample (see [`SPREAD_PERIOD`]).
    quanta_since_spread: u32,
    ram: Shared<Ram>,
    uart: Shared<Uart>,
    terminal: Shared<Terminal>,
    sensor: Shared<Sensor>,
    can: Shared<CanController>,
    can_host: CanHostEndpoint,
    aes: Shared<AesEngine>,
    dma: Shared<Dma>,
    clint: Shared<Clint>,
    plic: Shared<Plic>,
    taintdbg: Shared<TaintDebug>,
    watchdog: Shared<Watchdog>,
}

/// Taint-spread is sampled (an O(ram) scan) every this many quanta.
const SPREAD_PERIOD: u32 = 64;

/// The execution engine actually driving [`Soc::run`].
enum EngineKind {
    Interp,
    Block(Box<BlockCache>),
}

impl<M: TaintMode, S: ObsSink + Default> Soc<M, S> {
    /// Builds the VP from `config`.
    pub fn new(config: SocConfig) -> Self {
        Self::with_obs(config, shared(S::default()))
    }

    /// The canonical configuration entry point:
    /// `Soc::<Tainted>::builder().policy(p).build()` yields the
    /// [`SocConfig`] passed to [`Soc::new`].
    pub fn builder() -> SocBuilder {
        SocBuilder::new()
    }
}

impl<M: TaintMode, S: ObsSink> Soc<M, S> {
    /// Builds the VP from `config` with an observability sink shared by
    /// every layer (CPU, bus routers, peripherals, DIFT engine). With a
    /// disabled sink type ([`NullSink`]) nothing is wired and the hot
    /// paths compile as if the observability layer did not exist.
    ///
    /// # Panics
    /// Panics if `config.ram_size` would make RAM overlap the first MMIO
    /// region (the CLINT) — the map's disjointness is a build-time
    /// invariant everything downstream relies on.
    pub fn with_obs(config: SocConfig, obs: Shared<S>) -> Self {
        assert!(
            config.ram_size <= map::CLINT_BASE as usize,
            "RAM ({} bytes) may not reach the CLINT at {:#x}",
            config.ram_size,
            map::CLINT_BASE
        );
        let policy = config.policy.clone();
        let engine = DiftEngine::with_mode(policy.clone(), config.enforce).into_shared();
        if S::ENABLED {
            engine.borrow_mut().set_observer(engine_observer(&obs));
        }

        let ram = Ram::new(config.ram_size, M::TRACKING).into_shared();
        let plic = Plic::new().into_shared();
        let clint = Clint::new().into_shared();
        let uart = Uart::new("uart", engine.clone()).into_shared();
        let terminal = Terminal::new("terminal", policy.source_tag("terminal.rx")).into_shared();
        let sensor = Sensor::new(
            policy.source_tag("sensor.data"),
            Some(IrqLine::new(plic.clone(), map::IRQ_SENSOR)),
            config.seed,
        )
        .into_shared();
        let can_channel = CanChannel::new();
        let can_host = can_channel.host_endpoint();
        let can = CanController::new(
            "can",
            engine.clone(),
            policy.source_tag("can.rx"),
            can_channel,
            Some(IrqLine::new(plic.clone(), map::IRQ_CAN)),
        )
        .into_shared();
        let aes = AesEngine::new(policy.grant_declassify("aes"), policy.source_tag("aes.out"))
            .into_shared();

        if S::ENABLED {
            terminal.borrow_mut().set_obs(shared_obs(&obs));
            sensor.borrow_mut().set_obs(shared_obs(&obs));
            can.borrow_mut().set_obs(shared_obs(&obs));
            aes.borrow_mut().set_obs(shared_obs(&obs));
        }

        // The DMA's private port map: everything it may touch, except
        // itself (re-entrancy) and the interrupt infrastructure.
        let mut dma_ports = Router::new("dma-ports");
        map_port(&mut dma_ports, "ram", map::ram_range(config.ram_size), ram.clone());
        map_port(
            &mut dma_ports,
            "sensor",
            AddrRange::new(map::SENSOR_BASE, map::SENSOR_SIZE),
            sensor.clone(),
        );
        map_port(&mut dma_ports, "aes", AddrRange::new(map::AES_BASE, map::AES_SIZE), aes.clone());
        map_port(
            &mut dma_ports,
            "uart",
            AddrRange::new(map::UART_BASE, map::UART_SIZE),
            uart.clone(),
        );
        if S::ENABLED {
            dma_ports.set_obs(shared_obs(&obs));
        }
        let dma = Dma::new(
            dma_ports,
            M::TRACKING.then(|| engine.clone()),
            Some(IrqLine::new(plic.clone(), map::IRQ_DMA)),
        )
        .into_shared();

        let taintdbg = TaintDebug::new(ram.clone(), engine.clone()).into_shared();
        let watchdog = Watchdog::new().into_shared();

        let mut router = Router::new("sys-bus");
        map_port(
            &mut router,
            "clint",
            AddrRange::new(map::CLINT_BASE, map::CLINT_SIZE),
            clint.clone(),
        );
        map_port(&mut router, "plic", AddrRange::new(map::PLIC_BASE, map::PLIC_SIZE), plic.clone());
        map_port(&mut router, "uart", AddrRange::new(map::UART_BASE, map::UART_SIZE), uart.clone());
        map_port(
            &mut router,
            "terminal",
            AddrRange::new(map::TERMINAL_BASE, map::TERMINAL_SIZE),
            terminal.clone(),
        );
        map_port(
            &mut router,
            "sensor",
            AddrRange::new(map::SENSOR_BASE, map::SENSOR_SIZE),
            sensor.clone(),
        );
        map_port(&mut router, "can", AddrRange::new(map::CAN_BASE, map::CAN_SIZE), can.clone());
        map_port(&mut router, "aes", AddrRange::new(map::AES_BASE, map::AES_SIZE), aes.clone());
        map_port(&mut router, "dma", AddrRange::new(map::DMA_BASE, map::DMA_SIZE), dma.clone());
        map_port(
            &mut router,
            "taintdbg",
            AddrRange::new(map::TAINTDBG_BASE, map::TAINTDBG_SIZE),
            taintdbg.clone(),
        );
        map_port(
            &mut router,
            "watchdog",
            AddrRange::new(map::WATCHDOG_BASE, map::WATCHDOG_SIZE),
            watchdog.clone(),
        );

        if S::ENABLED {
            router.set_obs(shared_obs(&obs));
        }
        let bus = SocBus::new(ram.clone(), router, M::TRACKING.then(|| engine.clone()));

        let mut cpu = Cpu::<M, S>::with_obs(obs.clone());
        if M::TRACKING {
            cpu.set_engine(engine.clone());
            cpu.set_exec_clearance(policy.exec());
            // External tag sources writing straight into RAM (host
            // classification, tagged DMA payloads, tag-bit faults) arm the
            // engine's census so a block cache leaves its idle fast path.
            ram.borrow_mut().set_census(engine.borrow().census().clone());
        }

        let exec = match config.exec {
            ExecMode::Interp => EngineKind::Interp,
            ExecMode::BlockCache => {
                let mut bc = BlockCache::new();
                if M::TRACKING {
                    bc.set_census(engine.borrow().census().clone());
                }
                EngineKind::Block(Box::new(bc))
            }
        };

        let mut kernel = Kernel::new();
        if config.sensor_thread {
            Sensor::spawn(&sensor, &mut kernel);
        }

        Soc {
            config,
            kernel,
            cpu,
            bus,
            exec,
            engine,
            obs,
            quanta_since_spread: 0,
            ram,
            uart,
            terminal,
            sensor,
            can,
            can_host,
            aes,
            dma,
            clint,
            plic,
            taintdbg,
            watchdog,
        }
    }

    /// Loads a program image, applies the policy's classification rules to
    /// RAM, and points the CPU at the entry with a stack at the top of RAM.
    pub fn load_program(&mut self, program: &Program) {
        self.ram.borrow_mut().load_image(program.base() - map::RAM_BASE, program.image());
        self.apply_policy_and_boot(program.entry());
    }

    /// Maps a parsed ELF32 executable: every `PT_LOAD` segment is copied
    /// into RAM with its BSS tail zeroed, the policy's classification
    /// rules apply as in [`Soc::load_program`], and the CPU boots at the
    /// ELF entry with a stack at the top of RAM.
    ///
    /// # Errors
    /// [`ElfLoadError`] when a segment or the entry falls outside RAM;
    /// nothing is written in that case.
    pub fn load_elf(&mut self, elf: &Elf32) -> Result<(), ElfLoadError> {
        self.load_elf_with(elf, |_, _| Tag::EMPTY)
    }

    /// [`Soc::load_elf`] with a per-segment ingress-classification hook:
    /// `ingress(index, segment)` returns the taint tag stamped onto that
    /// segment's bytes after loading (`Tag::EMPTY` to skip). This is how
    /// an external binary's data regions are marked as taint sources at
    /// load time — the loader has no policy language of its own, so the
    /// caller (CLI `--taint-segment`, a serve session, a campaign) decides.
    ///
    /// # Errors
    /// [`ElfLoadError`] when a segment or the entry falls outside RAM;
    /// the check runs over all segments before any byte is written.
    pub fn load_elf_with<F>(&mut self, elf: &Elf32, mut ingress: F) -> Result<(), ElfLoadError>
    where
        F: FnMut(usize, &Segment) -> Tag,
    {
        let ram_end = map::RAM_BASE + self.config.ram_size as u32;
        for (index, seg) in elf.segments.iter().enumerate() {
            // RAM_BASE is 0, so only the upper bound can fail.
            if seg.vaddr > ram_end || seg.end() > ram_end {
                return Err(ElfLoadError::SegmentOutsideRam {
                    index,
                    vaddr: seg.vaddr,
                    memsz: seg.memsz,
                    ram_end,
                });
            }
        }
        if elf.entry >= ram_end {
            return Err(ElfLoadError::EntryOutsideRam { entry: elf.entry, ram_end });
        }
        for (index, seg) in elf.segments.iter().enumerate() {
            let off = seg.vaddr - map::RAM_BASE;
            {
                let mut ram = self.ram.borrow_mut();
                ram.load_image(off, &seg.data);
                let bss = seg.memsz as usize - seg.data.len();
                if bss > 0 {
                    // `memsz > filesz` tail: the ELF contract requires
                    // zero-fill (the SoC may be reloaded with RAM dirty).
                    ram.load_image(off + seg.data.len() as u32, &vec![0u8; bss]);
                }
            }
            let tag = ingress(index, seg);
            if !tag.is_empty() {
                self.ram.borrow_mut().classify(off, seg.memsz as usize, tag);
                if S::ENABLED && M::TRACKING {
                    self.obs.borrow_mut().event(&ObsEvent::Classify {
                        source: format!("elf.segment{index}"),
                        tag,
                        addr: Some(seg.vaddr),
                    });
                }
            }
        }
        self.apply_policy_and_boot(elf.entry);
        Ok(())
    }

    /// The shared tail of program loading: policy classification rules
    /// stamped onto RAM, CPU reset at `entry`, stack at the top of RAM.
    fn apply_policy_and_boot(&mut self, entry: u32) {
        let policy = self.config.policy.clone();
        for rule in policy.regions() {
            if let Some(tag) = rule.classify {
                let ram_len = self.config.ram_size as u32;
                let start = rule.range.start;
                let end = rule.range.end.min(map::RAM_BASE + ram_len);
                if start < end {
                    self.ram.borrow_mut().classify(
                        start - map::RAM_BASE,
                        (end - start) as usize,
                        tag,
                    );
                    if S::ENABLED && M::TRACKING && !tag.is_empty() {
                        self.obs.borrow_mut().event(&ObsEvent::Classify {
                            source: rule.name.clone(),
                            tag,
                            addr: Some(start),
                        });
                    }
                }
            }
        }
        self.cpu.reset(entry);
        let sp = map::RAM_BASE + self.config.ram_size as u32 - 16;
        self.cpu.set_reg(vpdift_asm::Reg::Sp, M::Word::from_u32(sp));
    }

    fn sync_irq_lines(&mut self) {
        self.can.borrow().poll_rx_irq();
        let clint = self.clint.borrow();
        self.cpu.set_timer_irq(clint.timer_pending());
        self.cpu.set_soft_irq(clint.soft_pending());
        drop(clint);
        self.cpu.set_external_irq(self.plic.borrow().eip());
    }

    /// Runs the VP for at most `max_insns` CPU steps. A *step* is one
    /// retired instruction or one taken trap — exceptions count toward the
    /// budget so runaway trap loops still terminate (retired-instruction
    /// statistics remain exact via [`Soc::instret`]).
    pub fn run(&mut self, max_insns: u64) -> SocExit {
        let exit = self.run_inner(max_insns);
        if S::ENABLED {
            // Final timestamp + taint-spread sample so reports and exports
            // reflect the state at exit.
            let mut obs = self.obs.borrow_mut();
            obs.set_now(self.kernel.now());
            if M::TRACKING {
                obs.taint_spread(&self.ram.borrow().atom_spread());
            }
            if let EngineKind::Block(bc) = &self.exec {
                let st = bc.stats();
                obs.event(&ObsEvent::EngineCache {
                    hits: st.hits,
                    misses: st.misses,
                    invalidations: st.invalidations,
                    flushes: st.flushes,
                    idle_steps: st.idle_steps,
                    checked_steps: st.checked_steps,
                });
            }
        }
        exit
    }

    fn run_inner(&mut self, max_insns: u64) -> SocExit {
        let mut steps_left = max_insns;
        loop {
            self.sync_irq_lines();
            if S::ENABLED {
                self.obs.borrow_mut().set_now(self.kernel.now());
            }
            if steps_left == 0 {
                return SocExit::InstrLimit;
            }
            let quantum = (self.config.quantum as u64).min(steps_left);
            let mut stepped = 0u64;
            let mut waiting = false;
            let mut exit = None;
            for _ in 0..quantum {
                // Cooperative stop: a watchpoint raised the flag during
                // the previous step's event emission, a controller raised
                // it between runs, or a fleet deadline reaper raised it
                // from another thread. Polled unconditionally — not gated
                // on `S::ENABLED` — so deadline kills reach `NullSink`
                // sessions too; the unraised check is one relaxed load.
                if self.config.stop.take() {
                    exit = Some(SocExit::Stopped);
                    break;
                }
                // Breakpoints fire *before* the matching instruction
                // executes, so a resumed run continues from the exact
                // stop point. Gated on `S::ENABLED` (compiled out for
                // `NullSink` batch runs) and on one relaxed `armed` load,
                // so sessions without breakpoints never pay for the set's
                // mutex.
                if S::ENABLED
                    && self.config.breaks.armed()
                    && self.config.breaks.check(self.cpu.pc(), self.cpu.instret())
                {
                    exit = Some(SocExit::Stopped);
                    break;
                }
                // Engine dispatch happens per step, inside the quantum:
                // interrupt-line resampling, watchdog and time accounting
                // below stay identical between engines.
                let step = match &mut self.exec {
                    EngineKind::Interp => self.cpu.step(&mut self.bus),
                    EngineKind::Block(bc) => bc.step(&mut self.cpu, &mut self.bus),
                };
                match step {
                    Ok(Step::Executed) => stepped += 1,
                    Ok(Step::Break) => {
                        stepped += 1;
                        exit = Some(SocExit::Break);
                        break;
                    }
                    Ok(Step::WaitingForInterrupt) => {
                        waiting = true;
                        break;
                    }
                    Ok(Step::TrapLoop) => {
                        stepped += 1;
                        exit = Some(SocExit::TrapLoop);
                        break;
                    }
                    Err(v) => {
                        exit = Some(SocExit::Violation(v));
                        break;
                    }
                }
                // MMIO may have changed interrupt levels (PLIC claim,
                // comparator writes): re-sample before the next step so a
                // completed handler is not spuriously re-entered.
                if self.bus.irq_dirty() {
                    self.bus.clear_irq_dirty();
                    self.sync_irq_lines();
                }
            }
            steps_left -= stepped.min(steps_left);
            if stepped > 0 {
                self.config.insns.add(stepped);
            }
            // Advance simulated time: executed steps + MMIO latency.
            let executed = stepped;
            let elapsed = self.config.insn_time * executed + self.bus.take_mmio_delay();
            let target = self.kernel.now().saturating_add(elapsed);
            self.kernel.run_until(target);
            self.watchdog.borrow_mut().set_now(self.kernel.now());

            if S::ENABLED && M::TRACKING {
                self.quanta_since_spread += 1;
                if self.quanta_since_spread >= SPREAD_PERIOD {
                    self.quanta_since_spread = 0;
                    let spread = self.ram.borrow().atom_spread();
                    self.obs.borrow_mut().taint_spread(&spread);
                }
            }

            if let Some(exit) = exit {
                self.clint.borrow_mut().set_mtime(self.kernel.now().as_us());
                return exit;
            }
            // A concrete exit from inside the quantum (break, violation,
            // trap loop) wins over a deadline that passed while time was
            // advanced afterwards.
            if self.watchdog.borrow().expired() {
                self.clint.borrow_mut().set_mtime(self.kernel.now().as_us());
                return SocExit::WatchdogTimeout;
            }
            if waiting {
                if !self.advance_to_next_event() {
                    return SocExit::Idle;
                }
                if self.watchdog.borrow().expired() {
                    return SocExit::WatchdogTimeout;
                }
                // Deadlock guard: a waiting quantum that advanced neither
                // the instruction count nor simulated time can never make
                // progress (e.g. a wake condition that is permanently
                // "now" but never taken).
                if executed == 0 && self.kernel.now() == target {
                    return SocExit::Idle;
                }
            }
            let now_us = self.kernel.now().as_us();
            self.clint.borrow_mut().set_mtime(now_us);
        }
    }

    /// While the CPU is parked in `wfi`, jump simulated time to the next
    /// thing that could wake it: a kernel event, the timer comparator, or
    /// the watchdog deadline (so an armed dog bites even on an otherwise
    /// event-free platform). Returns `false` when no such event exists
    /// (true deadlock).
    fn advance_to_next_event(&mut self) -> bool {
        let now = self.kernel.now();
        let kernel_next = self.kernel.next_activity();
        let clint = self.clint.borrow();
        let timer_next = (clint.mtimecmp_value() != u64::MAX)
            .then(|| SimTime::from_us(clint.mtimecmp_value()).max(now));
        drop(clint);
        let wd_next = self.watchdog.borrow().deadline().map(|d| d.max(now));
        let target = match [kernel_next, timer_next, wd_next].into_iter().flatten().min() {
            Some(t) => t,
            None => return false,
        };
        self.kernel.run_until(target);
        let now = self.kernel.now();
        self.clint.borrow_mut().set_mtime(now.as_us());
        self.watchdog.borrow_mut().set_now(now);
        true
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Retired instruction count.
    pub fn instret(&self) -> u64 {
        self.cpu.instret()
    }

    /// The CPU core.
    pub fn cpu(&self) -> &Cpu<M, S> {
        &self.cpu
    }

    /// Mutable CPU access (test setup).
    pub fn cpu_mut(&mut self) -> &mut Cpu<M, S> {
        &mut self.cpu
    }

    /// The shared observability sink.
    pub fn obs(&self) -> &Shared<S> {
        &self.obs
    }

    /// The DIFT engine.
    pub fn engine(&self) -> &SharedEngine {
        &self.engine
    }

    /// Main memory.
    pub fn ram(&self) -> &Shared<Ram> {
        &self.ram
    }

    /// The UART (read its `output()` to observe transmitted bytes).
    pub fn uart(&self) -> &Shared<Uart> {
        &self.uart
    }

    /// The console-input device (feed attacker bytes here).
    pub fn terminal(&self) -> &Shared<Terminal> {
        &self.terminal
    }

    /// The sensor.
    pub fn sensor(&self) -> &Shared<Sensor> {
        &self.sensor
    }

    /// The CAN controller.
    pub fn can(&self) -> &Shared<CanController> {
        &self.can
    }

    /// The host side of the CAN link (the remote ECU).
    pub fn can_host(&self) -> &CanHostEndpoint {
        &self.can_host
    }

    /// The AES engine.
    pub fn aes(&self) -> &Shared<AesEngine> {
        &self.aes
    }

    /// The DMA controller.
    pub fn dma(&self) -> &Shared<Dma> {
        &self.dma
    }

    /// The CLINT.
    pub fn clint(&self) -> &Shared<Clint> {
        &self.clint
    }

    /// The PLIC.
    pub fn plic(&self) -> &Shared<Plic> {
        &self.plic
    }

    /// The taint-introspection peripheral.
    pub fn taintdbg(&self) -> &Shared<TaintDebug> {
        &self.taintdbg
    }

    /// The watchdog timer. Arm it host-side (or let firmware do it via
    /// MMIO) to turn hangs into [`SocExit::WatchdogTimeout`].
    pub fn watchdog(&self) -> &Shared<Watchdog> {
        &self.watchdog
    }

    /// Installs a TLM fault hook on the system bus — every CPU-initiated
    /// MMIO transaction passes through it (fault-injection campaigns).
    pub fn set_mmio_fault(&mut self, hook: SharedFaultHook) {
        self.bus.set_mmio_fault(hook);
    }

    /// Removes the system-bus fault hook.
    pub fn clear_mmio_fault(&mut self) {
        self.bus.clear_mmio_fault();
    }

    /// Block-cache counters when the SoC runs on the
    /// [`ExecMode::BlockCache`] engine; `None` under the interpreter.
    pub fn engine_stats(&self) -> Option<CacheStats> {
        match &self.exec {
            EngineKind::Interp => None,
            EngineKind::Block(bc) => Some(bc.stats()),
        }
    }

    /// Digest of the full architectural state — CPU (pc, registers, CSRs,
    /// tags) and RAM (data + tags). Two runs of the same program under
    /// different execution engines must agree on this bit-for-bit; the
    /// differential harness asserts exactly that.
    pub fn state_digest(&self) -> u64 {
        self.cpu.state_digest() ^ self.ram.borrow().digest().rotate_left(17)
    }

    /// The build configuration.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }
}

impl<M: TaintMode, S: ObsSink> core::fmt::Debug for Soc<M, S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Soc")
            .field("tracking", &M::TRACKING)
            .field("instret", &self.cpu.instret())
            .field("now", &self.kernel.now())
            .finish()
    }
}
