//! # vpdift-soc — the assembled virtual prototype
//!
//! Wires the RV32 core, system bus, main memory and every peripheral into
//! one executable platform model, in two flavours selected by the type
//! parameter:
//!
//! * `Soc<Plain>` — the original VP (no taint storage or checks),
//! * `Soc<Tainted>` — the paper's VP+ with the DIFT engine enforcing the
//!   configured [`SecurityPolicy`](vpdift_core::SecurityPolicy).
//!
//! ```
//! use vpdift_soc::{Soc, SocConfig, SocExit, map};
//! use vpdift_rv32::{Tainted, Word};
//! use vpdift_asm::{Asm, Reg};
//!
//! // A guest that prints "ok" on the UART and exits.
//! let mut a = Asm::new(0);
//! a.li(Reg::T0, map::UART_BASE as i32);
//! a.li(Reg::T1, 'o' as i32);
//! a.sw(Reg::T1, 0, Reg::T0);
//! a.li(Reg::T1, 'k' as i32);
//! a.sw(Reg::T1, 0, Reg::T0);
//! a.ebreak();
//! let program = a.assemble().unwrap();
//!
//! let mut soc = Soc::<Tainted>::new(Soc::<Tainted>::builder().build());
//! soc.load_program(&program);
//! assert_eq!(soc.run(10_000), SocExit::Break);
//! assert_eq!(soc.uart().borrow().output_string(), "ok");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod bus;
mod exec_config;
pub mod map;
mod soc;
pub mod trace;

pub use builder::SocBuilder;
pub use bus::SocBus;
pub use exec_config::{ExecConfig, ExecConfigError};
pub use soc::{ElfLoadError, Soc, SocConfig, SocExit};
pub use trace::TraceRecord;
pub use vpdift_rv32::ExecMode;

/// Convenience alias: the original (untracked) virtual prototype.
pub type PlainSoc = Soc<vpdift_rv32::Plain>;
/// Convenience alias: the DIFT-enabled virtual prototype (VP+).
pub type TaintedSoc = Soc<vpdift_rv32::Tainted>;
