//! Execution tracing — observability for policy development.
//!
//! The paper positions the VP as the place where security policies are
//! *developed*; that workflow needs to see what the binary did. The trace
//! API single-steps the platform and reports each step with its
//! disassembly and (in tainted mode) the tags entering the instruction, at
//! the cost of simulation speed.

use vpdift_asm::is_compressed;
use vpdift_core::Tag;
use vpdift_obs::{ObsSink, RawInsn};
use vpdift_rv32::TaintMode;

use crate::map::RAM_BASE;
use crate::soc::{Soc, SocExit};

/// One traced CPU step. Disassembly is lazy: the record captures the raw
/// instruction bytes and only renders text when [`TraceRecord::text`] (or
/// `Display`) is asked for, so sinks that filter or count records do not
/// pay for string formatting.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// PC before the step.
    pub pc: u32,
    /// The raw instruction bytes at `pc`.
    raw: RawInsn,
    /// LUB of the fetched instruction bytes' tags (always empty in plain
    /// mode).
    pub fetch_tag: Tag,
    /// Retired-instruction count *after* the step.
    pub instret: u64,
    /// Simulated time after the step.
    pub time: vpdift_kernel::SimTime,
}

impl TraceRecord {
    /// Disassembles the instruction (or `.word`/`.half` for undecodable
    /// bytes).
    pub fn text(&self) -> String {
        self.raw.disassemble()
    }

    /// The raw instruction bytes.
    pub fn raw(&self) -> RawInsn {
        self.raw
    }
}

impl core::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:>8}] {:#010x}: {}", self.instret, self.pc, self.text())?;
        if !self.fetch_tag.is_empty() {
            write!(f, "   ; fetch tag {}", self.fetch_tag)?;
        }
        Ok(())
    }
}

impl<M: TaintMode, S: ObsSink> Soc<M, S> {
    /// Reads the raw instruction bytes currently at `pc` (RAM only) with
    /// the LUB of their tags.
    pub fn raw_insn_at(&self, pc: u32) -> (RawInsn, Tag) {
        let ram = self.ram().borrow();
        let off = pc.wrapping_sub(RAM_BASE);
        if !ram.fits(off, 2) {
            return (RawInsn::Unavailable(pc), Tag::EMPTY);
        }
        let (lo, tag_lo) = ram.load(off, 2);
        if is_compressed(lo as u16) || !ram.fits(off, 4) {
            return (RawInsn::Half(lo as u16), tag_lo);
        }
        let (word, tag) = ram.load(off, 4);
        (RawInsn::Word(word), tag)
    }

    /// Disassembles the instruction currently at `pc` (RAM only).
    pub fn disassemble_at(&self, pc: u32) -> (String, Tag) {
        let (raw, tag) = self.raw_insn_at(pc);
        (raw.disassemble(), tag)
    }

    /// Runs up to `max_steps` CPU steps, invoking `sink` before each one.
    /// Stops on the same conditions as [`Soc::run`].
    pub fn run_traced(&mut self, max_steps: u64, mut sink: impl FnMut(&TraceRecord)) -> SocExit {
        for _ in 0..max_steps {
            let pc = self.cpu().pc();
            let (raw, fetch_tag) = self.raw_insn_at(pc);
            let exit = self.run(1);
            let record =
                TraceRecord { pc, raw, fetch_tag, instret: self.instret(), time: self.now() };
            sink(&record);
            if !matches!(exit, SocExit::InstrLimit) {
                return exit;
            }
        }
        SocExit::InstrLimit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_asm::{Asm, Reg};
    use vpdift_core::{AddrRange, SecurityPolicy};
    use vpdift_rv32::Tainted;

    #[test]
    fn trace_reports_disassembly_and_tags() {
        let secret = Tag::atom(0);
        let policy = SecurityPolicy::builder("trace")
            .classify_region("s", AddrRange::new(0x100, 8), secret)
            .build();
        let mut a = Asm::new(0);
        a.li(Reg::T0, 0x100);
        a.lw(Reg::T1, 0, Reg::T0);
        a.ebreak();
        let prog = a.assemble().unwrap();

        let cfg = Soc::<Tainted>::builder().policy(policy).sensor_thread(false).build();
        let mut soc = Soc::<Tainted>::new(cfg);
        soc.load_program(&prog);

        let mut lines = Vec::new();
        let exit = soc.run_traced(100, |r| lines.push(r.to_string()));
        assert_eq!(exit, SocExit::Break);
        assert_eq!(lines.len(), 4, "li expands to two instructions + lw + ebreak");
        assert!(lines[0].contains("lui t0"));
        assert!(lines[2].contains("lw t1, 0(t0)"));
        assert!(lines[3].contains("ebreak"));
        // Code itself is untainted; no fetch tags reported.
        assert!(lines.iter().all(|l| !l.contains("fetch tag")));
    }

    #[test]
    fn tainted_code_shows_fetch_tag() {
        let mut a = Asm::new(0);
        a.nop();
        a.ebreak();
        let prog = a.assemble().unwrap();
        let cfg = Soc::<Tainted>::builder().sensor_thread(false).build();
        let mut soc = Soc::<Tainted>::new(cfg);
        soc.load_program(&prog);
        soc.ram().borrow_mut().classify(0, 4, Tag::atom(2));
        let (text, tag) = soc.disassemble_at(0);
        assert!(text.contains("addi"));
        assert_eq!(tag, Tag::atom(2));
        let mut first = None;
        soc.run_traced(10, |r| {
            if first.is_none() {
                first = Some(r.clone());
            }
        });
        assert_eq!(first.unwrap().fetch_tag, Tag::atom(2));
    }

    #[test]
    fn disassemble_handles_compressed_and_data() {
        let cfg = Soc::<Tainted>::builder().sensor_thread(false).build();
        let soc = Soc::<Tainted>::new(cfg);
        // c.li a0, 5 at 0; garbage word at 4.
        soc.ram().borrow_mut().load_image(0, &0x4515u16.to_le_bytes());
        soc.ram().borrow_mut().load_image(4, &0xFFFF_FFFFu32.to_le_bytes());
        assert!(soc.disassemble_at(0).0.starts_with("(c) addi a0"));
        assert!(
            soc.disassemble_at(4).0.starts_with(".half 0xffff")
                || soc.disassemble_at(4).0.starts_with(".word")
        );
        assert!(soc.disassemble_at(0xFFFF_FFF0).0.contains("outside RAM"));
    }
}
