//! The system bus as seen by the CPU: a DMI-style fast path into RAM plus
//! TLM routing for everything else, with DIFT store-clearance checks on
//! protected regions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vpdift_core::{AddrRange, SharedCensus, SharedEngine, Tag};
use vpdift_kernel::SimTime;
use vpdift_periph::Ram;
use vpdift_rv32::{Bus, MemError, TaintMode, Word};
use vpdift_sync::Shared;
use vpdift_tlm::{FaultRouter, GenericPayload, Router, SharedFaultHook, TlmResponse};

use crate::map::RAM_BASE;

/// The CPU ⇄ memory-system adapter.
pub struct SocBus<M: TaintMode> {
    ram: Shared<Ram>,
    ram_end: u32,
    /// The system-bus router behind a fault-injection interposer; with no
    /// hook installed the wrapper is a single `Option` check per MMIO
    /// transaction (and the RAM fast path bypasses it entirely).
    router: FaultRouter,
    engine: Option<SharedEngine>,
    /// Regions with write clearance, copied from the policy so the hot
    /// store path can skip the engine borrow when no rule applies.
    protected: Vec<AddrRange>,
    mmio_delay: SimTime,
    irq_dirty: bool,
    /// RAM's mutation-epoch counter, cached here so
    /// [`Bus::mutation_epoch`] is a relaxed atomic load per step.
    ram_epoch: Arc<AtomicU64>,
    /// Live-tag census, armed when tagged data enters the CPU via MMIO
    /// (peripheral ingress like the terminal, sensor, or CAN RX).
    census: Option<SharedCensus>,
    _mode: core::marker::PhantomData<M>,
}

impl<M: TaintMode> SocBus<M> {
    /// Creates the bus. `router` must map every non-RAM target.
    pub fn new(ram: Shared<Ram>, router: Router, engine: Option<SharedEngine>) -> Self {
        let ram_end = RAM_BASE + ram.borrow().len() as u32;
        let protected = engine
            .as_ref()
            .map(|e| {
                e.borrow()
                    .policy()
                    .regions()
                    .iter()
                    .filter(|r| r.write_clearance.is_some())
                    .map(|r| r.range)
                    .collect()
            })
            .unwrap_or_default();
        let census =
            M::TRACKING.then(|| engine.as_ref().map(|e| e.borrow().census().clone())).flatten();
        let ram_epoch = ram.borrow().epoch_handle();
        SocBus {
            ram,
            ram_end,
            router: FaultRouter::new(router),
            engine,
            protected,
            mmio_delay: SimTime::ZERO,
            irq_dirty: false,
            ram_epoch,
            census,
            _mode: core::marker::PhantomData,
        }
    }

    /// `true` once an MMIO transaction has run since the last
    /// [`SocBus::clear_irq_dirty`] — interrupt levels may have changed
    /// (PLIC claim, CLINT comparator write, peripheral side effects), so
    /// the SoC loop must re-sample them before the next instruction.
    pub fn irq_dirty(&self) -> bool {
        self.irq_dirty
    }

    /// Acknowledges the dirty flag.
    pub fn clear_irq_dirty(&mut self) {
        self.irq_dirty = false;
    }

    /// Accumulated MMIO latency annotations (consumed by the SoC loop).
    pub fn take_mmio_delay(&mut self) -> SimTime {
        std::mem::take(&mut self.mmio_delay)
    }

    /// The MMIO router (diagnostics).
    pub fn router(&self) -> &Router {
        self.router.inner()
    }

    /// Installs a TLM fault hook on the system bus: every MMIO transaction
    /// passes through it and may be corrupted, dropped or answered with a
    /// forced error response.
    pub fn set_mmio_fault(&mut self, hook: SharedFaultHook) {
        self.router.set_hook(hook);
    }

    /// Removes the TLM fault hook.
    pub fn clear_mmio_fault(&mut self) {
        self.router.clear_hook();
    }

    #[inline]
    fn in_ram(&self, addr: u32, size: u32) -> bool {
        // RAM_BASE is 0 in the current map (the >= comparison would be
        // trivially true, which clippy rejects); the checked_add guards
        // wrap-around at the top of the address space.
        const { assert!(RAM_BASE == 0) };
        match addr.checked_add(size) {
            Some(end) => end <= self.ram_end,
            None => false,
        }
    }

    #[inline]
    fn store_clearance(&self, addr: u32, size: u32, tag: Tag, pc: u32) -> Result<(), MemError> {
        if !M::TRACKING || self.protected.is_empty() {
            return Ok(());
        }
        let hit = self.protected.iter().any(|r| (addr..addr + size).any(|a| r.contains(a)));
        if !hit {
            return Ok(());
        }
        // Infallible: `protected` is derived from `engine` in `new()` —
        // it is non-empty only when an engine was supplied, and neither is
        // reassigned afterwards. The early return above keeps this
        // unreachable without one.
        let engine = self.engine.as_ref().expect("protected regions imply engine");
        let mut eng = engine.borrow_mut();
        for a in addr..addr + size {
            eng.check_store(a, tag, Some(pc)).map_err(MemError::Dift)?;
        }
        Ok(())
    }

    fn mmio(&mut self, payload: &mut GenericPayload) -> Result<(), MemError> {
        let mut delay = SimTime::ZERO;
        self.router.route(payload, &mut delay);
        self.mmio_delay += delay;
        self.irq_dirty = true;
        match payload.response() {
            TlmResponse::Ok => Ok(()),
            TlmResponse::AddressError => Err(MemError::Fault { addr: payload.address() }),
            _ => match payload.take_violation() {
                Some(v) => Err(MemError::Dift(v)),
                None => Err(MemError::Fault { addr: payload.address() }),
            },
        }
    }
}

impl<M: TaintMode> Bus<M> for SocBus<M> {
    fn fetch(&mut self, pc: u32) -> Result<M::Word, MemError> {
        // Instructions only execute from RAM in this platform.
        if self.in_ram(pc, 4) {
            let (v, t) = self.ram.borrow().load(pc - RAM_BASE, 4);
            Ok(M::Word::with_tag(v, t))
        } else {
            Err(MemError::Fault { addr: pc })
        }
    }

    fn load(&mut self, addr: u32, size: u32) -> Result<M::Word, MemError> {
        if self.in_ram(addr, size) {
            let (v, t) = self.ram.borrow().load(addr - RAM_BASE, size);
            return Ok(M::Word::with_tag(v, t));
        }
        let mut p = GenericPayload::read(addr, size as usize);
        self.mmio(&mut p)?;
        let w = vpdift_core::Taint::<u32>::from_bytes(&{
            let mut lanes = [vpdift_core::Taint::untainted(0u8); 4];
            lanes[..size as usize].copy_from_slice(p.data());
            lanes
        });
        if M::TRACKING && !w.tag().is_empty() {
            // Tagged data entering the core from a peripheral is a taint
            // source: end any taint-idle fast path.
            if let Some(c) = &self.census {
                c.arm();
            }
        }
        Ok(M::Word::with_tag(w.value(), w.tag()))
    }

    fn store(&mut self, addr: u32, size: u32, value: M::Word, pc: u32) -> Result<(), MemError> {
        if self.in_ram(addr, size) {
            self.store_clearance(addr, size, value.tag(), pc)?;
            self.ram.borrow_mut().store(addr - RAM_BASE, size, value.val(), value.tag());
            return Ok(());
        }
        let word = vpdift_core::Taint::new(value.val(), value.tag());
        let mut lanes = [vpdift_core::Taint::untainted(0u8); 4];
        word.to_bytes(&mut lanes);
        let mut p = GenericPayload::write(addr, &lanes[..size as usize]);
        self.mmio(&mut p)
    }

    fn mutation_epoch(&self) -> u64 {
        self.ram_epoch.load(Ordering::Relaxed)
    }

    fn atomic_supported(&self, addr: u32, size: u32) -> bool {
        // Atomics never reach MMIO: device registers have read/write side
        // effects, so a read-modify-write cannot be made atomic there.
        self.in_ram(addr, size)
    }
}
