//! The canonical SoC construction API.
//!
//! [`SocBuilder`] replaces struct-literal [`SocConfig`] construction at
//! call sites: defaults are owned by one place, new knobs (like the
//! execution engine) appear as methods instead of breaking every literal,
//! and the produced [`SocConfig`] stays a plain value for serialization
//! and diffing.
//!
//! ```
//! use vpdift_core::SecurityPolicy;
//! use vpdift_rv32::{ExecMode, Tainted};
//! use vpdift_soc::{Soc, SocBuilder};
//!
//! let cfg = Soc::<Tainted>::builder()
//!     .policy(SecurityPolicy::permissive())
//!     .ram_size(256 * 1024)
//!     .engine(ExecMode::BlockCache)
//!     .build();
//! let soc = Soc::<Tainted>::new(cfg);
//! ```

use vpdift_core::{EnforceMode, SecurityPolicy};
use vpdift_kernel::SimTime;
use vpdift_obs::{BreakSet, InsnCell, StopFlag};
use vpdift_rv32::ExecMode;

use crate::exec_config::{ExecConfig, ExecConfigError};
use crate::soc::SocConfig;

/// Fluent builder producing a [`SocConfig`]. Obtain one via
/// [`SocBuilder::new`], [`SocConfig::builder`] or
/// [`Soc::builder`](crate::Soc::builder); every method overrides one
/// default and returns the builder.
#[derive(Clone, Debug, Default)]
pub struct SocBuilder {
    config: SocConfig,
}

impl SocBuilder {
    /// A builder loaded with the default configuration.
    pub fn new() -> Self {
        SocBuilder { config: SocConfig::default() }
    }

    /// The single entry point from the user-facing [`ExecConfig`]: one
    /// validate/resolve path shared by the CLI, the serve `create`
    /// command, fleet job specs, and faultcamp. Knobs `ExecConfig` does
    /// not carry (seed, stop flag, …) keep their defaults — chain the
    /// usual methods after this.
    pub fn from_exec_config(cfg: &ExecConfig) -> Result<Self, ExecConfigError> {
        cfg.resolve().map(|(b, _)| b)
    }

    /// RAM size in bytes (must stay below the first MMIO region;
    /// [`Soc::new`](crate::Soc::new) asserts this).
    pub fn ram_size(mut self, bytes: usize) -> Self {
        self.config.ram_size = bytes;
        self
    }

    /// The security policy to enforce.
    pub fn policy(mut self, policy: SecurityPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Enforce (stop on violation) or record (log and continue).
    pub fn enforce(mut self, mode: EnforceMode) -> Self {
        self.config.enforce = mode;
        self
    }

    /// Seed for the sensor's data generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Instructions per scheduling quantum.
    pub fn quantum(mut self, insns: u32) -> Self {
        self.config.quantum = insns;
        self
    }

    /// Simulated time per instruction.
    pub fn insn_time(mut self, t: SimTime) -> Self {
        self.config.insn_time = t;
        self
    }

    /// Whether the sensor's periodic generation thread runs.
    pub fn sensor_thread(mut self, enabled: bool) -> Self {
        self.config.sensor_thread = enabled;
        self
    }

    /// Which execution engine drives the CPU.
    pub fn engine(mut self, mode: ExecMode) -> Self {
        self.config.exec = mode;
        self
    }

    /// Shares `flag` with the run loop for cooperative stops: raising it
    /// (from a [`vpdift_obs::StreamSink`] watchpoint, a serve-layer
    /// `stop`, or a fleet deadline reaper) makes
    /// [`Soc::run`](crate::Soc::run) return `SocExit::Stopped` at the
    /// next step boundary. Polled on every build, `NullSink` included —
    /// that is how deadline kills reach sessions running without
    /// observability.
    pub fn stop_flag(mut self, flag: StopFlag) -> Self {
        self.config.stop = flag;
        self
    }

    /// Shares `breaks` with the run loop: PC / instruction-count
    /// breakpoints added to the set (from any thread) stop the run with
    /// `SocExit::Stopped` *before* the matching instruction executes.
    /// Unlike the stop flag, the check is observability-gated —
    /// `NullSink` builds compile it out entirely.
    pub fn breakpoints(mut self, breaks: BreakSet) -> Self {
        self.config.breaks = breaks;
        self
    }

    /// Shares `cell` with the run loop as a live retired-step counter:
    /// the loop adds each quantum's steps with one relaxed atomic add,
    /// so an external sampler (fleet telemetry, a metrics endpoint) can
    /// watch a session's progress mid-run.
    pub fn insn_cell(mut self, cell: InsnCell) -> Self {
        self.config.insns = cell;
        self
    }

    /// Finalises into the [`SocConfig`] consumed by
    /// [`Soc::new`](crate::Soc::new).
    pub fn build(self) -> SocConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_config_default() {
        let built = SocBuilder::new().build();
        let def = SocConfig::default();
        assert_eq!(built.ram_size, def.ram_size);
        assert_eq!(built.enforce, def.enforce);
        assert_eq!(built.seed, def.seed);
        assert_eq!(built.quantum, def.quantum);
        assert_eq!(built.insn_time, def.insn_time);
        assert_eq!(built.sensor_thread, def.sensor_thread);
        assert_eq!(built.exec, def.exec);
    }

    #[test]
    fn every_knob_is_reachable() {
        let stop = StopFlag::new();
        let insns = InsnCell::new();
        let breaks = BreakSet::new();
        let cfg = SocBuilder::new()
            .ram_size(64 * 1024)
            .policy(SecurityPolicy::permissive())
            .enforce(EnforceMode::Record)
            .seed(7)
            .quantum(128)
            .insn_time(SimTime::from_ns(5))
            .sensor_thread(false)
            .engine(ExecMode::BlockCache)
            .stop_flag(stop.clone())
            .insn_cell(insns.clone())
            .breakpoints(breaks.clone())
            .build();
        assert_eq!(cfg.ram_size, 64 * 1024);
        assert_eq!(cfg.enforce, EnforceMode::Record);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.quantum, 128);
        assert_eq!(cfg.insn_time, SimTime::from_ns(5));
        assert!(!cfg.sensor_thread);
        assert_eq!(cfg.exec, ExecMode::BlockCache);
        stop.request();
        assert!(cfg.stop.is_requested(), "builder shares the caller's flag");
        cfg.insns.add(5);
        assert_eq!(insns.get(), 5, "builder shares the caller's insn cell");
        breaks.add(vpdift_obs::BreakKind::Pc(0x40));
        assert!(cfg.breaks.armed(), "builder shares the caller's breakpoint set");
    }
}
