//! ELF32 loader for the virtual prototype.
//!
//! The paper's flow runs *real embedded binaries* on the VP: firmware is
//! cross-compiled, the ELF is loaded into the prototype's RAM, and DIFT
//! runs against the unmodified image. This crate is the loading half of
//! that flow — a hand-rolled, allocation-bounded ELF32 little-endian
//! parser with no external dependencies:
//!
//! * [`Elf32::parse`] validates the identification header (32-bit,
//!   little-endian, RISC-V, executable), collects every `PT_LOAD`
//!   program-header segment with its backing bytes, and — when present —
//!   decodes `.symtab`/`.strtab` into `(address, name)` pairs that feed
//!   the profiler's symbol map directly, so `--profile` and `--explain`
//!   attribute samples in an external binary by function name.
//! * Every read is bounds-checked and every failure is a typed
//!   [`LoaderError`]; the parser never panics and never allocates more
//!   than [`MAX_IMAGE_BYTES`] for segment payloads, whatever the input
//!   claims. This is fuzzed in `tests/fuzz.rs`.
//! * [`Elf32::to_program`] flattens the segments into the assembler's
//!   [`Program`] form (base + contiguous image + symbols), which the SoC
//!   already knows how to load — BSS gaps are zero-filled exactly as a
//!   `memsz > filesz` segment requires.
//!
//! The emission half lives in `vpdift-asm` (`Program::to_elf`), giving a
//! byte round-trip that the conformance harness leans on: assemble →
//! emit ELF → parse ELF → run.

use core::fmt;
use std::collections::HashMap;

use vpdift_asm::Program;

/// The four ELF magic bytes.
pub const ELF_MAGIC: [u8; 4] = [0x7F, b'E', b'L', b'F'];

/// `e_machine` for RISC-V.
pub const EM_RISCV: u16 = 0xF3;

/// `e_type` for an executable image.
pub const ET_EXEC: u16 = 2;

/// `p_type` of a loadable segment.
pub const PT_LOAD: u32 = 1;

/// `sh_type` of a symbol table.
pub const SHT_SYMTAB: u32 = 2;

/// `sh_type` of a string table.
pub const SHT_STRTAB: u32 = 3;

/// Ceiling on the flattened image extent (and on per-parse payload
/// allocation): a hostile header cannot make the loader reserve more than
/// this, no matter what `p_memsz` claims. 64 MiB is far beyond any RAM
/// size the SoC map supports.
pub const MAX_IMAGE_BYTES: u64 = 64 * 1024 * 1024;

const EHDR_SIZE: usize = 52;
const PHDR_SIZE: usize = 32;
const SHDR_SIZE: usize = 40;
const SYM_SIZE: usize = 16;

/// `st_info & 0xf` values filtered out of the symbol list (section and
/// file pseudo-symbols carry no profiling value).
const STT_SECTION: u8 = 3;
const STT_FILE: u8 = 4;

/// `true` iff `bytes` starts with the ELF magic — the CLI's front-end
/// switch between "assembly source" and "binary image".
pub fn is_elf(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == ELF_MAGIC
}

/// Why an ELF image was rejected. Every variant names the offending
/// field; none of them aborts the process — malformed input is data, not
/// a bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoaderError {
    /// The file ends before a structure it declares (header, program
    /// header, section header, symbol, or segment payload).
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes required.
        need: u64,
        /// Bytes available.
        have: u64,
    },
    /// The first four bytes are not `\x7fELF`.
    BadMagic,
    /// `EI_CLASS` is not `ELFCLASS32`.
    UnsupportedClass(u8),
    /// `EI_DATA` is not `ELFDATA2LSB`.
    UnsupportedEndianness(u8),
    /// `e_machine` is not RISC-V.
    UnsupportedMachine(u16),
    /// `e_type` is not `ET_EXEC` (no relocation support on the VP).
    UnsupportedType(u16),
    /// A `PT_LOAD` segment's file range exceeds the file.
    SegmentOutOfFile {
        /// Program-header index.
        index: usize,
    },
    /// A `PT_LOAD` segment has `p_filesz > p_memsz`.
    FileszExceedsMemsz {
        /// Program-header index.
        index: usize,
    },
    /// A `PT_LOAD` segment's `p_vaddr + p_memsz` wraps the address space.
    SegmentWraps {
        /// Program-header index.
        index: usize,
    },
    /// No `PT_LOAD` segment with `p_memsz > 0` exists — nothing to run.
    NoLoadableSegments,
    /// The flattened extent (or claimed payload total) exceeds
    /// [`MAX_IMAGE_BYTES`].
    ImageTooLarge {
        /// Bytes the image would span.
        extent: u64,
    },
    /// A `.symtab` names a `sh_link` string table that is absent or not
    /// `SHT_STRTAB`.
    BadSymtabLink {
        /// The offending `sh_link`.
        link: u32,
    },
}

impl fmt::Display for LoaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoaderError::Truncated { what, need, have } => {
                write!(f, "truncated ELF: {what} needs {need} bytes, file has {have}")
            }
            LoaderError::BadMagic => write!(f, "not an ELF file (bad magic)"),
            LoaderError::UnsupportedClass(c) => {
                write!(f, "unsupported ELF class {c} (only ELFCLASS32)")
            }
            LoaderError::UnsupportedEndianness(d) => {
                write!(f, "unsupported ELF data encoding {d} (only little-endian)")
            }
            LoaderError::UnsupportedMachine(m) => {
                write!(f, "unsupported machine {m:#06x} (only RISC-V, 0x00f3)")
            }
            LoaderError::UnsupportedType(t) => {
                write!(f, "unsupported ELF type {t} (only ET_EXEC)")
            }
            LoaderError::SegmentOutOfFile { index } => {
                write!(f, "PT_LOAD segment {index} file range exceeds the file")
            }
            LoaderError::FileszExceedsMemsz { index } => {
                write!(f, "PT_LOAD segment {index} has p_filesz > p_memsz")
            }
            LoaderError::SegmentWraps { index } => {
                write!(f, "PT_LOAD segment {index} wraps the 32-bit address space")
            }
            LoaderError::NoLoadableSegments => write!(f, "no loadable (PT_LOAD) segments"),
            LoaderError::ImageTooLarge { extent } => {
                write!(f, "image spans {extent} bytes (limit {MAX_IMAGE_BYTES})")
            }
            LoaderError::BadSymtabLink { link } => {
                write!(f, ".symtab links to invalid string table section {link}")
            }
        }
    }
}

impl std::error::Error for LoaderError {}

/// One loadable segment: `data` holds the file-backed prefix
/// (`p_filesz` bytes); the `memsz - data.len()` tail is BSS and must be
/// zero-filled by whoever maps the segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Load address.
    pub vaddr: u32,
    /// Total in-memory size (≥ `data.len()`).
    pub memsz: u32,
    /// `p_flags` bits (`PF_X`=1, `PF_W`=2, `PF_R`=4).
    pub flags: u32,
    /// The file-backed bytes.
    pub data: Vec<u8>,
}

impl Segment {
    /// `true` iff the segment is executable (`PF_X`).
    pub fn is_exec(&self) -> bool {
        self.flags & 1 != 0
    }

    /// `true` iff the segment is writable (`PF_W`).
    pub fn is_write(&self) -> bool {
        self.flags & 2 != 0
    }

    /// First address past the segment.
    pub fn end(&self) -> u32 {
        self.vaddr + self.memsz
    }
}

/// A parsed ELF32 executable: everything the VP needs to boot it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Elf32 {
    /// `e_entry` — where the CPU starts.
    pub entry: u32,
    /// All `PT_LOAD` segments with `p_memsz > 0`, in file order.
    pub segments: Vec<Segment>,
    /// `(address, name)` pairs from `.symtab`, filtered of section/file
    /// pseudo-symbols; empty when the binary is stripped.
    pub symbols: Vec<(u32, String)>,
}

/// Bounds-checked little-endian field readers over the raw file.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn slice(&self, off: usize, len: usize, what: &'static str) -> Result<&'a [u8], LoaderError> {
        let end = off.checked_add(len).ok_or(LoaderError::Truncated {
            what,
            need: u64::MAX,
            have: self.0.len() as u64,
        })?;
        if end > self.0.len() {
            return Err(LoaderError::Truncated {
                what,
                need: end as u64,
                have: self.0.len() as u64,
            });
        }
        Ok(&self.0[off..end])
    }

    fn u16(&self, off: usize, what: &'static str) -> Result<u16, LoaderError> {
        let b = self.slice(off, 2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&self, off: usize, what: &'static str) -> Result<u32, LoaderError> {
        let b = self.slice(off, 4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

impl Elf32 {
    /// Parses an ELF32 little-endian RISC-V executable.
    ///
    /// # Errors
    /// A typed [`LoaderError`] naming the first malformed field; the
    /// parser never panics on arbitrary input.
    pub fn parse(bytes: &[u8]) -> Result<Elf32, LoaderError> {
        let r = Reader(bytes);
        if bytes.len() < 4 || bytes[..4] != ELF_MAGIC {
            return Err(if bytes.len() < EHDR_SIZE && is_elf(bytes) {
                LoaderError::Truncated {
                    what: "ELF header",
                    need: EHDR_SIZE as u64,
                    have: bytes.len() as u64,
                }
            } else {
                LoaderError::BadMagic
            });
        }
        if bytes.len() < EHDR_SIZE {
            return Err(LoaderError::Truncated {
                what: "ELF header",
                need: EHDR_SIZE as u64,
                have: bytes.len() as u64,
            });
        }
        if bytes[4] != 1 {
            return Err(LoaderError::UnsupportedClass(bytes[4]));
        }
        if bytes[5] != 1 {
            return Err(LoaderError::UnsupportedEndianness(bytes[5]));
        }
        let e_type = r.u16(16, "e_type")?;
        if e_type != ET_EXEC {
            return Err(LoaderError::UnsupportedType(e_type));
        }
        let e_machine = r.u16(18, "e_machine")?;
        if e_machine != EM_RISCV {
            return Err(LoaderError::UnsupportedMachine(e_machine));
        }
        let entry = r.u32(24, "e_entry")?;
        let phoff = r.u32(28, "e_phoff")? as usize;
        let shoff = r.u32(32, "e_shoff")? as usize;
        let phentsize = r.u16(42, "e_phentsize")? as usize;
        let phnum = r.u16(44, "e_phnum")? as usize;
        let shentsize = r.u16(46, "e_shentsize")? as usize;
        let shnum = r.u16(48, "e_shnum")? as usize;

        // Program headers → loadable segments. Tolerate a larger-than-
        // standard phentsize (fields we read sit at fixed offsets within
        // each entry) but never a smaller one.
        let mut segments = Vec::new();
        let mut payload_total = 0u64;
        if phnum > 0 {
            let stride = phentsize.max(PHDR_SIZE);
            for i in 0..phnum {
                let base = phoff.saturating_add(i.saturating_mul(stride));
                let ph = Reader(r.slice(base, PHDR_SIZE, "program header")?);
                if ph.u32(0, "p_type")? != PT_LOAD {
                    continue;
                }
                let offset = ph.u32(4, "p_offset")? as usize;
                let vaddr = ph.u32(8, "p_vaddr")?;
                let filesz = ph.u32(16, "p_filesz")? as usize;
                let memsz = ph.u32(20, "p_memsz")?;
                let flags = ph.u32(24, "p_flags")?;
                if memsz == 0 {
                    // Zero-sized PT_LOAD: legal, loads nothing.
                    continue;
                }
                if filesz as u64 > memsz as u64 {
                    return Err(LoaderError::FileszExceedsMemsz { index: i });
                }
                if vaddr.checked_add(memsz).is_none() {
                    return Err(LoaderError::SegmentWraps { index: i });
                }
                let file_end = offset.saturating_add(filesz);
                if file_end > bytes.len() {
                    return Err(LoaderError::SegmentOutOfFile { index: i });
                }
                payload_total += filesz as u64;
                if payload_total > MAX_IMAGE_BYTES {
                    return Err(LoaderError::ImageTooLarge { extent: payload_total });
                }
                segments.push(Segment {
                    vaddr,
                    memsz,
                    flags,
                    data: bytes[offset..file_end].to_vec(),
                });
            }
        }
        if segments.is_empty() {
            return Err(LoaderError::NoLoadableSegments);
        }

        // Section headers → symbols. A stripped or sectionless binary is
        // fine; a *declared* section table that runs off the file is not.
        let mut symbols = Vec::new();
        if shoff != 0 && shnum > 0 {
            let stride = shentsize.max(SHDR_SIZE);
            let shdr = |idx: usize| -> Result<Reader<'_>, LoaderError> {
                let base = shoff.saturating_add(idx.saturating_mul(stride));
                Ok(Reader(r.slice(base, SHDR_SIZE, "section header")?))
            };
            for i in 0..shnum {
                let sh = shdr(i)?;
                if sh.u32(4, "sh_type")? != SHT_SYMTAB {
                    continue;
                }
                let sym_off = sh.u32(16, "sh_offset")? as usize;
                let sym_size = sh.u32(20, "sh_size")? as usize;
                let link = sh.u32(24, "sh_link")?;
                if link as usize >= shnum {
                    return Err(LoaderError::BadSymtabLink { link });
                }
                let st = shdr(link as usize)?;
                if st.u32(4, "sh_type")? != SHT_STRTAB {
                    return Err(LoaderError::BadSymtabLink { link });
                }
                let str_off = st.u32(16, "sh_offset")? as usize;
                let str_size = st.u32(20, "sh_size")? as usize;
                let strtab = r.slice(str_off, str_size, "string table")?;
                let syms = r.slice(sym_off, sym_size, "symbol table")?;
                for entry in syms.chunks_exact(SYM_SIZE) {
                    let name_off =
                        u32::from_le_bytes([entry[0], entry[1], entry[2], entry[3]]) as usize;
                    let value = u32::from_le_bytes([entry[4], entry[5], entry[6], entry[7]]);
                    let kind = entry[12] & 0xF;
                    if name_off == 0 || kind == STT_SECTION || kind == STT_FILE {
                        continue;
                    }
                    let Some(tail) = strtab.get(name_off..) else { continue };
                    let name_len = tail.iter().position(|&b| b == 0).unwrap_or(tail.len());
                    let name = String::from_utf8_lossy(&tail[..name_len]).into_owned();
                    if !name.is_empty() {
                        symbols.push((value, name));
                    }
                }
                break; // one .symtab is all anyone emits
            }
        }
        symbols.sort();

        Ok(Elf32 { entry, segments, symbols })
    }

    /// Lowest load address across segments.
    pub fn min_vaddr(&self) -> u32 {
        self.segments.iter().map(|s| s.vaddr).min().unwrap_or(0)
    }

    /// One past the highest loaded byte.
    pub fn max_end(&self) -> u32 {
        self.segments.iter().map(Segment::end).max().unwrap_or(0)
    }

    /// Flattens the segments into a single contiguous [`Program`] image
    /// based at [`Elf32::min_vaddr`]; inter-segment gaps and BSS tails are
    /// zero-filled, and the symbol table carries over.
    ///
    /// # Errors
    /// [`LoaderError::ImageTooLarge`] when the flattened span would exceed
    /// [`MAX_IMAGE_BYTES`] (segments legal in isolation can still be
    /// placed gigabytes apart).
    pub fn to_program(&self) -> Result<Program, LoaderError> {
        let base = self.min_vaddr();
        let extent = self.max_end() as u64 - base as u64;
        if extent > MAX_IMAGE_BYTES {
            return Err(LoaderError::ImageTooLarge { extent });
        }
        let mut image = vec![0u8; extent as usize];
        for seg in &self.segments {
            let off = (seg.vaddr - base) as usize;
            image[off..off + seg.data.len()].copy_from_slice(&seg.data);
        }
        let mut symbols: HashMap<String, u32> = HashMap::new();
        for (addr, name) in &self.symbols {
            symbols.insert(name.clone(), *addr);
        }
        Ok(Program::from_parts(base, self.entry, image, symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_garbage_and_short_input() {
        assert_eq!(Elf32::parse(b""), Err(LoaderError::BadMagic));
        assert_eq!(Elf32::parse(b"\x7fEL"), Err(LoaderError::BadMagic));
        assert!(matches!(
            Elf32::parse(b"\x7fELF\x01\x01"),
            Err(LoaderError::Truncated { what: "ELF header", .. })
        ));
        assert!(!is_elf(b"addi x1, x0, 1"));
        assert!(is_elf(&[0x7F, b'E', b'L', b'F', 9, 9]));
    }

    #[test]
    fn rejects_wrong_class_data_machine_type() {
        let mut hdr = [0u8; EHDR_SIZE];
        hdr[..4].copy_from_slice(&ELF_MAGIC);
        hdr[4] = 2; // ELFCLASS64
        assert_eq!(Elf32::parse(&hdr), Err(LoaderError::UnsupportedClass(2)));
        hdr[4] = 1;
        hdr[5] = 2; // big-endian
        assert_eq!(Elf32::parse(&hdr), Err(LoaderError::UnsupportedEndianness(2)));
        hdr[5] = 1;
        hdr[16] = 3; // ET_DYN
        assert_eq!(Elf32::parse(&hdr), Err(LoaderError::UnsupportedType(3)));
        hdr[16] = 2;
        hdr[18] = 0x3E; // x86-64
        assert_eq!(Elf32::parse(&hdr), Err(LoaderError::UnsupportedMachine(0x3E)));
        hdr[18] = 0xF3;
        hdr[19] = 0;
        assert_eq!(Elf32::parse(&hdr), Err(LoaderError::NoLoadableSegments));
    }

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            LoaderError::BadMagic.to_string(),
            LoaderError::Truncated { what: "x", need: 9, have: 2 }.to_string(),
            LoaderError::SegmentOutOfFile { index: 3 }.to_string(),
            LoaderError::FileszExceedsMemsz { index: 1 }.to_string(),
            LoaderError::SegmentWraps { index: 0 }.to_string(),
            LoaderError::NoLoadableSegments.to_string(),
            LoaderError::ImageTooLarge { extent: 1 << 40 }.to_string(),
            LoaderError::BadSymtabLink { link: 7 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
