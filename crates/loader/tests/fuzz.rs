//! Robustness suite for the ELF parser: arbitrary bytes, truncations and
//! targeted mutations of valid images must produce `Ok` or a typed
//! [`LoaderError`] — never a panic, never an unbounded allocation.

use proptest::prelude::*;
use vpdift_asm::{Asm, Reg};
use vpdift_loader::{is_elf, Elf32, LoaderError, ELF_MAGIC};

/// A small valid ELF to truncate/mutate (emitted by the assembler).
fn valid_elf() -> Vec<u8> {
    let mut a = Asm::new(0);
    a.label("main");
    a.li(Reg::A0, 7);
    a.label("spin");
    a.addi(Reg::A0, Reg::A0, -1);
    a.bnez(Reg::A0, "spin");
    a.ebreak();
    a.to_elf().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Elf32::parse(&bytes);
        let _ = is_elf(&bytes);
    }

    #[test]
    fn parse_never_panics_past_the_magic(tail in prop::collection::vec(any::<u8>(), 0..256)) {
        // Force the parser past the identification checks so the header /
        // phdr / shdr walkers see hostile input.
        let mut bytes = vec![0x7F, b'E', b'L', b'F', 1, 1, 1, 0];
        bytes.extend_from_slice(&tail);
        let _ = Elf32::parse(&bytes);
    }

    #[test]
    fn truncating_a_valid_elf_never_panics(cut in 0usize..400) {
        let elf = valid_elf();
        let cut = cut.min(elf.len());
        // Err is fine (typed rejection is the expected outcome); a prefix
        // that still parses must still describe in-file data.
        if let Ok(parsed) = Elf32::parse(&elf[..cut]) {
            for seg in &parsed.segments {
                prop_assert!(seg.data.len() <= cut);
            }
        }
    }

    #[test]
    fn mutating_a_valid_elf_never_panics(offset in 0usize..400, value in any::<u8>()) {
        let mut elf = valid_elf();
        let offset = offset.min(elf.len() - 1);
        elf[offset] = value;
        let _ = Elf32::parse(&elf);
    }
}

/// Builds an ELF header + `phnum` program headers + payload by hand, so
/// the directed tests below can express states the emitter never produces.
fn raw_elf(phdrs: &[[u32; 8]], payload: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; 52];
    out[..4].copy_from_slice(&ELF_MAGIC);
    out[4] = 1; // ELFCLASS32
    out[5] = 1; // little-endian
    out[16..18].copy_from_slice(&2u16.to_le_bytes()); // ET_EXEC
    out[18..20].copy_from_slice(&0xF3u16.to_le_bytes()); // RISC-V
    out[28..32].copy_from_slice(&52u32.to_le_bytes()); // e_phoff
    out[42..44].copy_from_slice(&32u16.to_le_bytes()); // e_phentsize
    out[44..46].copy_from_slice(&(phdrs.len() as u16).to_le_bytes());
    for ph in phdrs {
        for field in ph {
            out.extend_from_slice(&field.to_le_bytes());
        }
    }
    out.extend_from_slice(payload);
    out
}

/// `[p_type, p_offset, p_vaddr, p_paddr, p_filesz, p_memsz, p_flags, p_align]`
fn load_phdr(offset: u32, vaddr: u32, filesz: u32, memsz: u32) -> [u32; 8] {
    [1, offset, vaddr, vaddr, filesz, memsz, 7, 4]
}

#[test]
fn zero_sized_pt_load_is_skipped() {
    // One real segment plus a memsz=0 one: the empty one must vanish
    // without error.
    let payload = [0x73, 0x00, 0x10, 0x00]; // ebreak
    let elf = raw_elf(&[load_phdr(116, 0x40, 0, 0), load_phdr(116, 0, 4, 4)], &payload);
    let parsed = Elf32::parse(&elf).unwrap();
    assert_eq!(parsed.segments.len(), 1);
    assert_eq!(parsed.segments[0].vaddr, 0);
}

#[test]
fn only_zero_sized_segments_is_an_error() {
    let elf = raw_elf(&[load_phdr(52, 0x40, 0, 0)], &[]);
    assert_eq!(Elf32::parse(&elf), Err(LoaderError::NoLoadableSegments));
}

#[test]
fn segment_past_end_of_file_is_rejected() {
    let elf = raw_elf(&[load_phdr(84, 0, 1000, 1000)], &[0; 8]);
    assert_eq!(Elf32::parse(&elf), Err(LoaderError::SegmentOutOfFile { index: 0 }));
}

#[test]
fn filesz_larger_than_memsz_is_rejected() {
    let elf = raw_elf(&[load_phdr(84, 0, 8, 4)], &[0; 8]);
    assert_eq!(Elf32::parse(&elf), Err(LoaderError::FileszExceedsMemsz { index: 0 }));
}

#[test]
fn wrapping_segment_is_rejected() {
    let elf = raw_elf(&[load_phdr(84, 0xFFFF_FFF0, 8, 0x20)], &[0; 8]);
    assert_eq!(Elf32::parse(&elf), Err(LoaderError::SegmentWraps { index: 0 }));
}

#[test]
fn overlapping_segments_parse_and_flatten() {
    // Overlap is odd but harmless: later segments win in the flat image.
    let elf =
        raw_elf(&[load_phdr(116, 0, 4, 4), load_phdr(120, 2, 4, 4)], &[1, 2, 3, 4, 9, 9, 9, 9]);
    let parsed = Elf32::parse(&elf).unwrap();
    assert_eq!(parsed.segments.len(), 2);
    let program = parsed.to_program().unwrap();
    assert_eq!(program.image(), &[1, 2, 9, 9, 9, 9]);
}

#[test]
fn distant_segments_exceed_the_image_cap() {
    let elf = raw_elf(&[load_phdr(116, 0, 4, 4), load_phdr(116, 0xF000_0000, 4, 4)], &[0; 4]);
    let parsed = Elf32::parse(&elf).unwrap();
    assert!(matches!(parsed.to_program(), Err(LoaderError::ImageTooLarge { .. })));
}

#[test]
fn emitted_elf_round_trips_through_the_parser() {
    let mut a = Asm::new(0x200);
    a.label("boot");
    a.j("main");
    a.align(4);
    a.label("table");
    a.word(0xDEAD_BEEF);
    a.label("main");
    a.entry();
    a.li(Reg::A0, 3);
    a.ebreak();
    let program = a.assemble().unwrap();
    let parsed = Elf32::parse(&program.to_elf()).unwrap();

    assert_eq!(parsed.entry, program.entry());
    assert_eq!(parsed.segments.len(), 1);
    assert_eq!(parsed.segments[0].vaddr, program.base());
    assert_eq!(parsed.segments[0].data, program.image());
    assert!(parsed.segments[0].is_exec());

    // Symbols survive with addresses intact…
    let round = parsed.to_program().unwrap();
    assert_eq!(round.base(), program.base());
    assert_eq!(round.entry(), program.entry());
    assert_eq!(round.image(), program.image());
    for (name, addr) in program.symbols() {
        assert_eq!(round.symbol(name), Some(addr), "symbol {name}");
    }
    // …and arrive sorted by address for the profiler.
    assert!(parsed.symbols.windows(2).all(|w| w[0].0 <= w[1].0));
}

#[test]
fn bss_tail_zero_fills_in_to_program() {
    let elf = raw_elf(&[load_phdr(84, 0, 4, 16)], &[0xAA; 4]);
    let parsed = Elf32::parse(&elf).unwrap();
    let program = parsed.to_program().unwrap();
    assert_eq!(program.image().len(), 16);
    assert_eq!(&program.image()[..4], &[0xAA; 4]);
    assert!(program.image()[4..].iter().all(|&b| b == 0));
}
