//! # vpdift-immo — the car-engine immobilizer case study (paper §VI-A)
//!
//! Everything needed to reproduce the security-policy development
//! narrative:
//!
//! * [`firmware`] — the immobilizer ECU firmware ([`firmware::Variant::Vulnerable`]
//!   with the PIN-leaking debug dump, and the corrected
//!   [`firmware::Variant::Fixed`]),
//! * [`ecu`] — the host-side engine ECU running the challenge-response
//!   protocol over CAN,
//! * [`policy`] — the coarse (whole-PIN) and refined (per-byte) IFP-3
//!   policies,
//! * [`scenarios`] — the attack scenarios 1–3 plus the entropy-reduction
//!   attack that only the per-byte policy catches,
//! * [`protocol`] — session drivers used by the tests, the case-study
//!   report and the `immo-fixed` row of Table II.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bruteforce;
pub mod ecu;
pub mod firmware;
pub mod policy;
pub mod protocol;
pub mod scenarios;

pub use bruteforce::{crack_pin, CrackOutcome};
pub use ecu::EngineEcu;
pub use firmware::{ImmoFirmware, Variant, PIN};
pub use protocol::{run_session, run_session_with, PolicyKind, SessionOutcome};
pub use scenarios::{run_scenario, run_scenario_with, Scenario, ScenarioResult};
