//! The immobilizer security policies of §VI-A.
//!
//! Both policies instantiate IFP-3 (confidentiality × integrity): the PIN
//! is `(HC,HI)`, all input/output devices have `(LC,LI)` clearance, and
//! the AES peripheral declassifies ciphertext to `(LC,LI)`.
//!
//! * [`coarse`] — the paper's *first* policy: one security class for the
//!   whole PIN. It stops leaks and untrusted overwrites but **not** the
//!   entropy-reduction attack (overwriting PIN byte *k* with PIN byte *j*,
//!   which is trusted data).
//! * [`per_byte`] — the paper's *refined* policy: a separate
//!   confidentiality class per PIN byte, which also catches the
//!   entropy-reduction attack.

use vpdift_core::{AddrRange, ExecClearance, SecurityPolicy, Tag};

/// Tags shared by both policy flavours.
#[derive(Debug, Clone)]
pub struct ImmoTags {
    /// The whole-PIN secret tag: LUB of all per-byte atoms (coarse policy
    /// uses a single atom).
    pub secret: Tag,
    /// Per-byte secret tags (all equal to `secret` in the coarse policy).
    pub pin_bytes: Vec<Tag>,
    /// The `(LC,LI)` "came from outside" tag.
    pub untrusted: Tag,
}

fn exec_clearance(untrusted: Tag) -> ExecClearance {
    // LC clearance on branches/fetch/addresses (safe approximation of
    // §V-B2): untrusted data may steer control flow, secret data may not.
    ExecClearance { fetch: Some(untrusted), branch: Some(untrusted), mem_addr: Some(untrusted) }
}

fn base_policy(name: &str, untrusted: Tag) -> vpdift_core::SecurityPolicyBuilder {
    SecurityPolicy::builder(name)
        .source("terminal.rx", untrusted)
        .source("can.rx", untrusted)
        .source("aes.out", untrusted) // declassified ciphertext is (LC,LI)
        .sink("uart.tx", untrusted)
        .sink("can.tx", untrusted)
        .allow_declassify("aes")
        .exec_clearance(exec_clearance(untrusted))
}

/// The coarse policy: PIN = one `(HC,HI)` class.
pub fn coarse(pin_addr: u32, pin_len: u32) -> (SecurityPolicy, ImmoTags) {
    let secret = Tag::atom(0);
    let untrusted = Tag::atom(1);
    let policy = base_policy("immo-coarse", untrusted)
        .classify_and_protect("immo.pin", AddrRange::new(pin_addr, pin_len), secret, secret)
        .build();
    let tags = ImmoTags { secret, pin_bytes: vec![secret; pin_len as usize], untrusted };
    (policy, tags)
}

/// The refined policy: one confidentiality class per PIN byte.
///
/// # Panics
/// Panics if `pin_len + 1` exceeds the tag atom capacity.
pub fn per_byte(pin_addr: u32, pin_len: u32) -> (SecurityPolicy, ImmoTags) {
    let (pin_bytes, untrusted) = vpdift_core::ifp::per_byte_pin_tags(pin_len as usize);
    let mut builder = base_policy("immo-per-byte", untrusted);
    for (i, &tag) in pin_bytes.iter().enumerate() {
        builder = builder.classify_and_protect(
            &format!("immo.pin[{i}]"),
            AddrRange::new(pin_addr + i as u32, 1),
            tag,
            tag,
        );
    }
    let secret = pin_bytes.iter().fold(Tag::EMPTY, |acc, &t| acc.lub(t));
    (builder.build(), ImmoTags { secret, pin_bytes, untrusted })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_policy_shape() {
        let (p, t) = coarse(0x100, 16);
        assert_eq!(p.classify_at(0x100), Some(t.secret));
        assert_eq!(p.classify_at(0x10F), Some(t.secret));
        assert_eq!(p.classify_at(0x110), None);
        assert_eq!(p.write_clearance_at(0x105).unwrap().1, t.secret);
        assert_eq!(p.source_tag("terminal.rx"), t.untrusted);
        assert_eq!(p.sink_clearance("can.tx"), Some(t.untrusted));
        assert!(p.may_declassify("aes"));
        assert!(!p.may_declassify("uart"));
        assert_eq!(p.exec().branch, Some(t.untrusted));
        // Secret data cannot steer a branch; untrusted can.
        assert!(!t.secret.flows_to(t.untrusted));
        assert!(t.untrusted.flows_to(t.untrusted));
    }

    #[test]
    fn per_byte_policy_distinguishes_bytes() {
        let (p, t) = per_byte(0x200, 16);
        let b0 = p.classify_at(0x200).unwrap();
        let b1 = p.classify_at(0x201).unwrap();
        assert_ne!(b0, b1);
        // Byte 0's data may be stored over byte 0 but not over byte 1 —
        // the entropy-reduction attack becomes a store violation.
        let (_, c1) = p.write_clearance_at(0x201).unwrap();
        assert!(!b0.flows_to(c1));
        assert!(b1.flows_to(c1));
        // And every byte is still secret w.r.t. outputs.
        for b in &t.pin_bytes {
            assert!(!b.flows_to(t.untrusted));
        }
    }
}
