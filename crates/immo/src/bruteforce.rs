//! The end of the §VI-A story, made concrete: the *actual* brute-force
//! attack the entropy reduction enables.
//!
//! The firmware carries a latent bug (the `e` maintenance command,
//! standing in for the overflow of the paper) that overwrites PIN bytes
//! `[k..16)` with PIN byte 0 — *trusted* data, so the coarse policy allows
//! it. An attacker with CAN and console access can then recover the whole
//! PIN with at most `16 × 256` encryptions:
//!
//! * step `k`: trigger the bug with parameter `k`, so the AES key becomes
//!   `pin[0..k] ‖ pin[0] × (16-k)`; the only byte the attacker does not
//!   already know is `pin[k-1]`; one challenge-response reveals it in at
//!   most 256 host-side trials.
//!
//! Under the per-byte policy, step 1 already dies with a store violation —
//! closing exactly this attack.

use vpdift_periph::Aes128;
use vpdift_rv32::Tainted;
use vpdift_soc::{Soc, SocExit};

use crate::ecu::EngineEcu;
use crate::firmware::{self, Variant, PIN};
use crate::protocol::{policy_for, PolicyKind};

/// Outcome of the full brute-force attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrackOutcome {
    /// The attacker recovered this PIN (policy too weak).
    Recovered {
        /// The recovered PIN.
        pin: [u8; 16],
        /// Total AES trials spent.
        trials: u32,
    },
    /// A DIFT violation stopped the attack at step `step`.
    Blocked {
        /// 1-based attack step that was stopped.
        step: u8,
    },
}

/// Runs the attack against a sequence of fresh devices (each step
/// power-cycles the immobilizer, restoring the PIN from "flash") under
/// `kind`.
pub fn crack_pin(kind: PolicyKind) -> CrackOutcome {
    let fw = firmware::build(Variant::Fixed);
    let mut known: Vec<u8> = Vec::new();
    let mut trials = 0u32;

    for k in 1..=16u8 {
        // Fresh device for this step.
        let cfg =
            Soc::<Tainted>::builder().policy(policy_for(kind, &fw)).sensor_thread(false).build();
        let mut soc = Soc::<Tainted>::new(cfg);
        soc.load_program(&fw.program);

        // Phase 1: trigger the bug — overwrite pin[k..16) with pin[0].
        soc.terminal().borrow_mut().feed(&[b'e', k]);
        match soc.run(50_000) {
            SocExit::Violation(_) => return CrackOutcome::Blocked { step: k },
            SocExit::InstrLimit => {} // firmware is idle-polling again
            other => panic!("unexpected exit during overwrite: {other:?}"),
        }

        // Phase 2: one challenge-response against the mangled key. Let the
        // firmware answer before feeding the quit command (it polls CAN
        // with priority, but may be mid-iteration when the budget expires).
        let mut ecu = EngineEcu::new(PIN, 0xF00 + k as u64);
        let challenge = ecu.next_challenge();
        ecu.send_challenge(soc.can_host(), &challenge);
        match soc.run(50_000) {
            SocExit::Violation(_) => return CrackOutcome::Blocked { step: k },
            SocExit::InstrLimit => {}
            other => panic!("unexpected exit during challenge: {other:?}"),
        }
        soc.terminal().borrow_mut().feed(b"q");
        match soc.run(10_000_000) {
            SocExit::Break => {}
            SocExit::Violation(_) => return CrackOutcome::Blocked { step: k },
            other => panic!("unexpected exit during quit: {other:?}"),
        }
        let lo = soc.can_host().recv().expect("response half 1");
        let hi = soc.can_host().recv().expect("response half 2");
        let mut response = [0u8; 16];
        response[..8].copy_from_slice(&lo.bytes());
        response[8..].copy_from_slice(&hi.bytes());

        // Host-side search for the one unknown byte.
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&challenge);
        block[8..].copy_from_slice(&challenge);
        let mut found = None;
        for guess in 0..=255u8 {
            trials += 1;
            let mut key = [0u8; 16];
            // pin[0..k-1] already known; pin[k-1] = guess; rest = pin[0].
            for (i, slot) in key.iter_mut().enumerate() {
                *slot = if i < known.len() {
                    known[i]
                } else if i == k as usize - 1 {
                    guess
                } else {
                    // Suffix bytes were overwritten with pin[0]; at k == 1
                    // pin[0] *is* the guess.
                    if known.is_empty() {
                        guess
                    } else {
                        known[0]
                    }
                };
            }
            if Aes128::new(&key).encrypt_block(&block) == response {
                found = Some(guess);
                break;
            }
        }
        let byte = found.expect("some guess must match — the key space per step is one byte");
        known.push(byte);
    }

    let mut pin = [0u8; 16];
    pin.copy_from_slice(&known);
    CrackOutcome::Recovered { pin, trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_policy_lets_the_pin_be_recovered() {
        // The paper's point, demonstrated end-to-end: the coarse policy
        // permits the trusted-data overwrite, and 16×256 trials suffice.
        match crack_pin(PolicyKind::Coarse) {
            CrackOutcome::Recovered { pin, trials } => {
                assert_eq!(pin, PIN, "attacker recovered the exact PIN");
                assert!(trials <= 16 * 256, "at most 4096 trials, used {trials}");
            }
            other => panic!("attack unexpectedly blocked: {other:?}"),
        }
    }

    #[test]
    fn per_byte_policy_blocks_step_one() {
        assert_eq!(crack_pin(PolicyKind::PerByte), CrackOutcome::Blocked { step: 1 });
    }
}
