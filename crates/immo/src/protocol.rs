//! Drives the full immobilizer ⇄ engine-ECU protocol on the VP, plus the
//! debug-console sessions used in the case study and the `immo-fixed`
//! benchmark row of Table II.

use vpdift_core::SecurityPolicy;
use vpdift_rv32::{ExecMode, TaintMode};
use vpdift_soc::{Soc, SocExit};

use crate::ecu::EngineEcu;
use crate::firmware::{self, Variant, PIN};
use crate::policy;

/// Outcome of a protocol session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// How the simulation ended.
    pub exit: SocExit,
    /// Successful authentications verified by the engine ECU.
    pub authentications: u32,
    /// Bytes the immobilizer printed on the UART.
    pub uart: Vec<u8>,
    /// Retired instructions.
    pub instret: u64,
    /// Final architectural-state digest (CPU + RAM), for engine
    /// equivalence checks.
    pub digest: u64,
}

/// Which policy to run the immobilizer under.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// No DIFT checking (the plain VP, or a permissive VP+).
    Permissive,
    /// §VI-A first policy: whole-PIN class.
    Coarse,
    /// §VI-A refined policy: per-byte PIN classes.
    PerByte,
}

/// Builds the policy for a firmware image.
pub fn policy_for(kind: PolicyKind, fw: &firmware::ImmoFirmware) -> SecurityPolicy {
    match kind {
        PolicyKind::Permissive => SecurityPolicy::permissive(),
        PolicyKind::Coarse => policy::coarse(fw.pin_addr, 16).0,
        PolicyKind::PerByte => policy::per_byte(fw.pin_addr, 16).0,
    }
}

/// Prepares a SoC for an immobilizer session: loads the firmware,
/// pre-queues `rounds` CAN challenges and the console script, and returns
/// the engine-ECU model plus the challenge list.
///
/// `console` is fed to the terminal *after* the challenges are queued; it
/// should normally end with `q` so the firmware exits cleanly.
pub fn prepare_session<M: TaintMode>(
    soc: &mut Soc<M>,
    fw: &firmware::ImmoFirmware,
    rounds: u32,
    console: &[u8],
    seed: u64,
) -> (EngineEcu, Vec<[u8; 8]>) {
    soc.load_program(&fw.program);
    let mut ecu = EngineEcu::new(PIN, seed);
    let mut challenges = Vec::new();
    for _ in 0..rounds {
        let ch = ecu.next_challenge();
        ecu.send_challenge(soc.can_host(), &ch);
        challenges.push(ch);
    }
    soc.terminal().borrow_mut().feed(console);
    (ecu, challenges)
}

/// Runs a complete session: `rounds` authentications followed by the
/// console script (default just `q`).
pub fn run_session<M: TaintMode>(
    variant: Variant,
    kind: PolicyKind,
    rounds: u32,
    console: &[u8],
) -> SessionOutcome {
    run_session_with::<M>(variant, kind, rounds, console, ExecMode::Interp)
}

/// [`run_session`] with an explicit execution engine — the differential
/// harness runs the same session on the interpreter and the block cache
/// and compares the outcomes field by field.
pub fn run_session_with<M: TaintMode>(
    variant: Variant,
    kind: PolicyKind,
    rounds: u32,
    console: &[u8],
    engine: ExecMode,
) -> SessionOutcome {
    let fw = firmware::build(variant);
    let cfg = Soc::<M>::builder()
        .policy(policy_for(kind, &fw))
        .sensor_thread(false)
        .engine(engine)
        .build();
    let mut soc = Soc::<M>::new(cfg);
    let (mut ecu, challenges) = prepare_session(&mut soc, &fw, rounds, console, 0xEC0);
    let exit = soc.run(200_000_000);
    let mut authentications = 0;
    for ch in &challenges {
        if ecu.verify_response(soc.can_host(), ch) {
            authentications += 1;
        }
    }
    let uart = soc.uart().borrow().output().to_vec();
    SessionOutcome {
        exit,
        authentications,
        uart,
        instret: soc.instret(),
        digest: soc.state_digest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::ViolationKind;
    use vpdift_rv32::{Plain, Tainted};

    #[test]
    fn challenge_response_authenticates_under_coarse_policy() {
        let out = run_session::<Tainted>(Variant::Fixed, PolicyKind::Coarse, 3, b"q");
        assert_eq!(out.exit, SocExit::Break, "clean quit");
        assert_eq!(out.authentications, 3, "all rounds authenticated");
    }

    #[test]
    fn protocol_works_on_plain_vp_too() {
        let out = run_session::<Plain>(Variant::Fixed, PolicyKind::Permissive, 2, b"q");
        assert_eq!(out.exit, SocExit::Break);
        assert_eq!(out.authentications, 2);
    }

    #[test]
    fn vulnerable_dump_is_detected_as_leak() {
        // The test-suite run that uncovered the vulnerability: a debug
        // dump under the coarse policy trips the UART output clearance.
        let out = run_session::<Tainted>(Variant::Vulnerable, PolicyKind::Coarse, 0, b"dq");
        match out.exit {
            SocExit::Violation(v) => {
                assert_eq!(v.kind, ViolationKind::Output { sink: "uart.tx".into() });
            }
            other => panic!("dump leak not detected: {other:?}"),
        }
        // Only the bytes before the PIN made it out.
        assert!(out.uart.len() < 64);
    }

    #[test]
    fn fixed_dump_passes_and_hides_pin() {
        let out = run_session::<Tainted>(Variant::Fixed, PolicyKind::Coarse, 0, b"dq");
        assert_eq!(out.exit, SocExit::Break, "fixed dump must not violate");
        assert!(!out.uart.is_empty());
        // The PIN byte-string must not appear in the dump.
        let pin = &PIN[..];
        assert!(!out.uart.windows(pin.len()).any(|w| w == pin), "PIN leaked in fixed dump");
    }

    #[test]
    fn ping_works_under_enforcement() {
        let out = run_session::<Tainted>(Variant::Fixed, PolicyKind::Coarse, 0, b"pq");
        assert_eq!(out.exit, SocExit::Break);
        assert_eq!(out.uart, b"pong\n");
    }

    #[test]
    fn per_byte_policy_still_authenticates() {
        let out = run_session::<Tainted>(Variant::Fixed, PolicyKind::PerByte, 2, b"q");
        assert_eq!(out.exit, SocExit::Break);
        assert_eq!(out.authentications, 2);
    }
}
