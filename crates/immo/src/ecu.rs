//! The host-side engine ECU model: the other end of the CAN link in the
//! challenge-response protocol. It holds the same PIN as the immobilizer
//! and verifies responses by performing the same encryption.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpdift_periph::{Aes128, CanFrame, CanHostEndpoint};

use crate::firmware::{CHALLENGE_ID, RESPONSE_ID};

/// The engine ECU.
#[derive(Debug)]
pub struct EngineEcu {
    pin: [u8; 16],
    rng: StdRng,
    authentications: u32,
}

impl EngineEcu {
    /// Creates an ECU holding `pin`; `seed` makes challenge sequences
    /// reproducible.
    pub fn new(pin: [u8; 16], seed: u64) -> Self {
        EngineEcu { pin, rng: StdRng::seed_from_u64(seed), authentications: 0 }
    }

    /// Number of successful authentications so far.
    pub fn authentications(&self) -> u32 {
        self.authentications
    }

    /// Draws a fresh 8-byte challenge.
    pub fn next_challenge(&mut self) -> [u8; 8] {
        let mut c = [0u8; 8];
        self.rng.fill(&mut c);
        c
    }

    /// The response the immobilizer must produce for `challenge`:
    /// `AES-128(PIN, challenge ‖ challenge)`.
    pub fn expected_response(&self, challenge: &[u8; 8]) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(challenge);
        block[8..].copy_from_slice(challenge);
        Aes128::new(&self.pin).encrypt_block(&block)
    }

    /// Sends `challenge` to the immobilizer over CAN with bounded retry
    /// (up to 4 attempts), so injected frame loss degrades to retries
    /// instead of a silently lost round. Returns `false` when every
    /// attempt was dropped by a line fault; on a fault-free wire this
    /// never fails.
    pub fn send_challenge(&self, can: &CanHostEndpoint, challenge: &[u8; 8]) -> bool {
        can.send_with_retry(CanFrame::new(CHALLENGE_ID, challenge), 4).is_some()
    }

    /// Collects the two response halves from CAN and verifies them.
    /// Returns `true` on a correct response, incrementing the
    /// authentication counter.
    pub fn verify_response(&mut self, can: &CanHostEndpoint, challenge: &[u8; 8]) -> bool {
        let Some(lo) = can.recv() else { return false };
        let Some(hi) = can.recv() else { return false };
        if lo.id != RESPONSE_ID || hi.id != RESPONSE_ID || lo.dlc != 8 || hi.dlc != 8 {
            return false;
        }
        let mut response = [0u8; 16];
        response[..8].copy_from_slice(&lo.bytes());
        response[8..].copy_from_slice(&hi.bytes());
        let ok = response == self.expected_response(challenge);
        if ok {
            self.authentications += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::PIN;
    use vpdift_periph::CanChannel;

    #[test]
    fn expected_response_is_aes_of_doubled_challenge() {
        let ecu = EngineEcu::new(PIN, 1);
        let ch = [1, 2, 3, 4, 5, 6, 7, 8];
        let want = {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&ch);
            block[8..].copy_from_slice(&ch);
            Aes128::new(&PIN).encrypt_block(&block)
        };
        assert_eq!(ecu.expected_response(&ch), want);
    }

    #[test]
    fn challenges_are_reproducible_and_distinct() {
        let mut a = EngineEcu::new(PIN, 2);
        let mut b = EngineEcu::new(PIN, 2);
        let c1 = a.next_challenge();
        assert_eq!(c1, b.next_challenge(), "same seed, same sequence");
        let c2 = a.next_challenge();
        assert_ne!(c1, c2, "fresh challenge every round");
        assert_ne!(a.expected_response(&c1), a.expected_response(&c2));
        assert_eq!(a.authentications(), 0);
    }

    #[test]
    fn verify_fails_on_missing_response() {
        let channel = CanChannel::new();
        let host = channel.host_endpoint();
        let mut ecu = EngineEcu::new(PIN, 3);
        let ch = ecu.next_challenge();
        assert!(!ecu.verify_response(&host, &ch), "no frames queued");
        assert_eq!(ecu.authentications(), 0);
    }
}
