//! The immobilizer ECU firmware (paper §VI-A).
//!
//! The immobilizer holds a secret 16-byte PIN and answers challenge frames
//! from the engine ECU over CAN with `AES-128(PIN, challenge‖challenge)`.
//! A UART debug console ("for debugging purposes") accepts:
//!
//! * `p` — ping, prints `pong\n`,
//! * `d` — dump the data segment to the UART; the [`Variant::Vulnerable`]
//!   build dumps *everything including the PIN* (the security hole the
//!   paper's test-suite uncovered), the [`Variant::Fixed`] build excludes
//!   the PIN region,
//! * `q` — quit (ends the simulation).

use vpdift_asm::{Asm, Program, Reg};
use vpdift_firmware::rt::emit_runtime;

use Reg::*;

/// CAN frame id of an incoming challenge.
pub const CHALLENGE_ID: u32 = 0x10;
/// CAN frame id of the two response halves.
pub const RESPONSE_ID: u32 = 0x11;

/// The secret PIN baked into the firmware image (known to the engine ECU).
pub const PIN: [u8; 16] = [
    0x42, 0x13, 0x37, 0x5A, 0xC0, 0xDE, 0x99, 0x01, 0x7E, 0x5F, 0x10, 0x2B, 0xAD, 0xF0, 0x0D, 0x66,
];

const CAN_BASE: i32 = 0x1003_0000;
const AES_BASE: i32 = 0x1004_0000;

/// Which firmware build to produce.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Variant {
    /// The original firmware whose debug dump includes the PIN.
    Vulnerable,
    /// The corrected firmware excluding the PIN region from the dump.
    Fixed,
}

/// An assembled immobilizer image plus the addresses policies need.
#[derive(Debug, Clone)]
pub struct ImmoFirmware {
    /// The guest image.
    pub program: Program,
    /// Address of the 16-byte PIN in memory.
    pub pin_addr: u32,
    /// The built variant.
    pub variant: Variant,
}

/// Builds the immobilizer firmware.
pub fn build(variant: Variant) -> ImmoFirmware {
    let mut a = Asm::new(0);
    a.entry();
    a.j("main");

    // ---- data (placed early so `la` offsets stay small and the dump
    // window is well-defined) ------------------------------------------
    a.align(4);
    a.label("data_begin");
    a.label("pin");
    a.bytes(&PIN);
    a.label("challenge");
    a.zero(8);
    a.label("response");
    a.zero(16);
    a.label("msg_pong");
    a.asciiz("pong\n");
    a.align(4);
    a.label("data_end");

    // ---- main loop -------------------------------------------------------
    a.align(4);
    a.label("main");
    a.label("loop");
    // CAN: any challenge frame waiting?
    a.li(S0, CAN_BASE);
    a.lw(T0, 0x20, S0); // RX_AVAIL
    a.beqz(T0, "console");
    a.lw(T1, 0x24, S0); // RX_ID
    a.li(T2, CHALLENGE_ID as i32);
    a.bne(T1, T2, "pop_frame"); // ignore unknown ids

    // Copy the 8 challenge bytes out of the mailbox.
    a.la(S1, "challenge");
    a.li(T3, 0);
    a.label("rd_ch");
    a.add(T4, S0, T3);
    a.lbu(T5, 0x2C, T4);
    a.add(T6, S1, T3);
    a.sb(T5, 0, T6);
    a.addi(T3, T3, 1);
    a.li(T4, 8);
    a.blt(T3, T4, "rd_ch");

    // AES: key <- PIN, input <- challenge ‖ challenge.
    a.li(S2, AES_BASE);
    a.la(S1, "pin");
    a.li(T3, 0);
    a.label("wr_key");
    a.add(T4, S1, T3);
    a.lbu(T5, 0, T4);
    a.add(T6, S2, T3);
    a.sb(T5, 0x00, T6); // KEY window
    a.addi(T3, T3, 1);
    a.li(T4, 16);
    a.blt(T3, T4, "wr_key");

    a.la(S1, "challenge");
    a.li(T3, 0);
    a.label("wr_in");
    a.andi(T5, T3, 7); // challenge repeats after 8 bytes
    a.add(T4, S1, T5);
    a.lbu(T5, 0, T4);
    a.add(T6, S2, T3);
    a.sb(T5, 0x10, T6); // DATA_IN window
    a.addi(T3, T3, 1);
    a.li(T4, 16);
    a.blt(T3, T4, "wr_in");

    a.li(T3, 1);
    a.sw(T3, 0x30, S2); // CTRL = encrypt

    // Read the (declassified) ciphertext.
    a.la(S1, "response");
    a.li(T3, 0);
    a.label("rd_out");
    a.add(T4, S2, T3);
    a.lbu(T5, 0x20, T4);
    a.add(T6, S1, T3);
    a.sb(T5, 0, T6);
    a.addi(T3, T3, 1);
    a.li(T4, 16);
    a.blt(T3, T4, "rd_out");

    // Send the response as two 8-byte frames.
    for half in 0..2 {
        a.li(T1, RESPONSE_ID as i32);
        a.sw(T1, 0x00, S0); // TX_ID
        a.li(T1, 8);
        a.sw(T1, 0x04, S0); // TX_DLC
        a.la(S1, "response");
        a.li(T3, 0);
        a.label(&format!("wr_tx{half}"));
        a.add(T4, S1, T3);
        a.lbu(T5, 8 * half, T4);
        a.add(T6, S0, T3);
        a.sb(T5, 0x08, T6); // TX_DATA window
        a.addi(T3, T3, 1);
        a.li(T4, 8);
        a.blt(T3, T4, &format!("wr_tx{half}"));
        a.li(T1, 1);
        a.sw(T1, 0x10, S0); // TX_GO
    }

    a.label("pop_frame");
    a.li(T1, 1);
    a.sw(T1, 0x34, S0); // RX_POP
    a.j("loop");

    // Console commands.
    a.label("console");
    a.call("rt_getc");
    a.li(T0, -1);
    a.beq(A0, T0, "loop");
    a.li(T0, b'p' as i32);
    a.beq(A0, T0, "cmd_ping");
    a.li(T0, b'd' as i32);
    a.beq(A0, T0, "cmd_dump");
    a.li(T0, b'e' as i32);
    a.beq(A0, T0, "cmd_echo_pin0");
    a.li(T0, b'q' as i32);
    a.beq(A0, T0, "cmd_quit");
    a.j("loop");

    // The latent bug behind the paper's entropy-reduction attack: a
    // maintenance command (standing in for a buffer overflow reached with
    // *trusted* data) that duplicates PIN byte 0 over bytes [k..16).
    a.label("cmd_echo_pin0");
    a.call("rt_getc"); // k
    a.li(T0, -1);
    a.beq(A0, T0, "loop");
    a.li(T0, 16);
    a.bgtu(A0, T0, "loop"); // k in 0..=16 (16 = no-op)
    a.la(T1, "pin");
    a.lbu(T2, 0, T1); // PIN byte 0 — trusted, secret data
    a.add(T3, T1, A0); // &pin[k]
    a.addi(T4, T1, 16); // &pin[16]
    a.label("echo_loop");
    a.bgeu(T3, T4, "loop");
    a.sb(T2, 0, T3);
    a.addi(T3, T3, 1);
    a.j("echo_loop");

    a.label("cmd_ping");
    a.la(A0, "msg_pong");
    a.call("rt_puts");
    a.j("loop");

    // The debug dump: every byte of the data segment to the UART.
    a.label("cmd_dump");
    a.la(S1, "data_begin");
    a.la(S2, "data_end");
    a.label("dump_loop");
    a.bgeu(S1, S2, "dump_done");
    if variant == Variant::Fixed {
        // The fix: skip the PIN region.
        a.la(T0, "pin");
        a.bltu(S1, T0, "dump_byte");
        a.addi(T0, T0, 16);
        a.bgeu(S1, T0, "dump_byte");
        a.addi(S1, S1, 1);
        a.j("dump_loop");
        a.label("dump_byte");
    }
    a.lbu(A0, 0, S1);
    a.call("rt_putc");
    a.addi(S1, S1, 1);
    a.j("dump_loop");
    a.label("dump_done");
    a.j("loop");

    a.label("cmd_quit");
    a.ebreak();

    emit_runtime(&mut a);

    let program = a.assemble().expect("immobilizer firmware assembles");
    let pin_addr = program.symbol("pin").expect("pin label exists");
    ImmoFirmware { program, pin_addr, variant }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_assemble_with_pin_symbol() {
        for v in [Variant::Vulnerable, Variant::Fixed] {
            let fw = build(v);
            assert_eq!(fw.variant, v);
            let off = (fw.pin_addr - fw.program.base()) as usize;
            assert_eq!(&fw.program.image()[off..off + 16], &PIN);
        }
    }

    #[test]
    fn fixed_variant_is_larger() {
        // The fix adds the skip logic.
        let vuln = build(Variant::Vulnerable);
        let fixed = build(Variant::Fixed);
        assert!(fixed.program.insn_count() > vuln.program.insn_count());
    }
}
