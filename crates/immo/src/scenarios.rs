//! The §VI-A attack scenarios against the immobilizer policy.
//!
//! Each scenario is a small guest program embedding the PIN at a known
//! label, run under the coarse or per-byte policy. The paper's narrative:
//! scenarios 1–3 are caught by the coarse policy; the entropy-reduction
//! attack (overwrite PIN byte *k* with PIN byte *j*) is caught **only** by
//! the per-byte policy.

use vpdift_asm::{Asm, Program, Reg};
use vpdift_core::{Violation, ViolationKind};
use vpdift_firmware::rt::emit_runtime;
use vpdift_rv32::{ExecMode, Tainted};
use vpdift_soc::{Soc, SocExit};

use crate::firmware::PIN;
use crate::policy;

use Reg::*;

const CAN_BASE: i32 = 0x1003_0000;

/// The attack scenarios of §VI-A.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// 1a: write the PIN directly to the UART.
    DirectLeakUart,
    /// 1b: copy the PIN through an intermediate buffer, then leak it.
    IndirectLeakUart,
    /// 1c: a buffer overflow walks past the end of a transmit buffer into
    /// the adjacent PIN, leaking it on the CAN bus.
    OverflowLeakCan,
    /// 2: branch on a PIN byte (control-flow leak).
    PinDependentBranch,
    /// 3: overwrite the PIN with external (untrusted) data.
    OverwritePinExternal,
    /// The follow-up attack: overwrite PIN byte 2 with PIN byte 0 —
    /// *trusted* data, so the coarse policy misses it.
    EntropyReduction,
}

impl Scenario {
    /// All scenarios, in the paper's order.
    pub const ALL: [Scenario; 6] = [
        Scenario::DirectLeakUart,
        Scenario::IndirectLeakUart,
        Scenario::OverflowLeakCan,
        Scenario::PinDependentBranch,
        Scenario::OverwritePinExternal,
        Scenario::EntropyReduction,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::DirectLeakUart => "direct PIN write to UART",
            Scenario::IndirectLeakUart => "indirect PIN write (via buffer) to UART",
            Scenario::OverflowLeakCan => "buffer overflow leaks PIN on CAN",
            Scenario::PinDependentBranch => "control flow depends on PIN",
            Scenario::OverwritePinExternal => "overwrite PIN with external data",
            Scenario::EntropyReduction => "overwrite PIN byte with another PIN byte",
        }
    }

    /// Should the *coarse* policy detect it? (The paper: all but the
    /// entropy-reduction attack.)
    pub fn coarse_detects(self) -> bool {
        self != Scenario::EntropyReduction
    }
}

/// Builds the guest program for a scenario. The image always lays out a
/// `txbuf` (8 bytes) directly followed by `pin` (16 bytes), so the
/// overflow scenario has something to overflow into.
pub fn build_program(s: Scenario) -> Program {
    let mut a = Asm::new(0);
    a.entry();
    a.j("main");

    a.align(4);
    a.label("txbuf");
    a.bytes(b"ABCDEFGH");
    a.label("pin");
    a.bytes(&PIN);
    a.label("scratch");
    a.zero(16);
    a.align(4);

    a.label("main");
    match s {
        Scenario::DirectLeakUart => {
            a.la(S0, "pin");
            a.li(S1, 16);
            a.label("leak");
            a.lbu(A0, 0, S0);
            a.call("rt_putc");
            a.addi(S0, S0, 1);
            a.addi(S1, S1, -1);
            a.bnez(S1, "leak");
        }
        Scenario::IndirectLeakUart => {
            a.la(A0, "scratch");
            a.la(A1, "pin");
            a.li(A2, 16);
            a.call("rt_memcpy");
            a.la(S0, "scratch");
            a.li(S1, 16);
            a.label("leak");
            a.lbu(A0, 0, S0);
            a.call("rt_putc");
            a.addi(S0, S0, 1);
            a.addi(S1, S1, -1);
            a.bnez(S1, "leak");
        }
        Scenario::OverflowLeakCan => {
            // "Send txbuf" with a length bug: 24 bytes instead of 8, in
            // three 8-byte CAN frames — frame 2 carries PIN bytes.
            a.li(S0, CAN_BASE);
            a.la(S1, "txbuf");
            a.li(S2, 0); // byte index, runs to 24
            a.label("frames");
            a.li(T0, 0x77);
            a.sw(T0, 0x00, S0); // TX_ID
            a.li(T0, 8);
            a.sw(T0, 0x04, S0); // TX_DLC
            a.li(T1, 0);
            a.label("fill");
            a.add(T2, S1, S2);
            a.lbu(T3, 0, T2);
            a.add(T4, S0, T1);
            a.sb(T3, 0x08, T4);
            a.addi(S2, S2, 1);
            a.addi(T1, T1, 1);
            a.li(T0, 8);
            a.blt(T1, T0, "fill");
            a.li(T0, 1);
            a.sw(T0, 0x10, S0); // TX_GO
            a.li(T0, 24);
            a.blt(S2, T0, "frames");
        }
        Scenario::PinDependentBranch => {
            a.la(T0, "pin");
            a.lbu(T1, 0, T0);
            a.li(T2, 0x42);
            a.beq(T1, T2, "is_42"); // branch condition carries the PIN tag
            a.li(A0, b'N' as i32);
            a.call("rt_putc");
            a.j("done");
            a.label("is_42");
            a.li(A0, b'Y' as i32);
            a.call("rt_putc");
            a.label("done");
        }
        Scenario::OverwritePinExternal => {
            a.call("rt_getc"); // untrusted console byte
            a.la(T0, "pin");
            a.sb(A0, 0, T0);
        }
        Scenario::EntropyReduction => {
            a.la(T0, "pin");
            a.lbu(T1, 0, T0); // PIN byte 0 (trusted, secret)
            a.sb(T1, 2, T0); // over PIN byte 2
        }
    }
    a.ebreak();
    emit_runtime(&mut a);
    a.assemble().expect("scenario program assembles")
}

/// Outcome of running one scenario under one policy.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// `true` iff the DIFT engine stopped the attack.
    pub detected: bool,
    /// The violation, when detected.
    pub violation: Option<Violation>,
}

/// Runs a scenario under the coarse or per-byte policy and reports whether
/// the DIFT engine detected it.
pub fn run_scenario(s: Scenario, per_byte_policy: bool) -> ScenarioResult {
    run_scenario_with(s, per_byte_policy, ExecMode::Interp)
}

/// [`run_scenario`] with an explicit execution engine.
pub fn run_scenario_with(s: Scenario, per_byte_policy: bool, engine: ExecMode) -> ScenarioResult {
    let program = build_program(s);
    let pin_addr = program.symbol("pin").expect("pin label");
    let (policy, _tags) =
        if per_byte_policy { policy::per_byte(pin_addr, 16) } else { policy::coarse(pin_addr, 16) };
    let cfg = Soc::<Tainted>::builder().policy(policy).sensor_thread(false).engine(engine).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&program);
    soc.terminal().borrow_mut().feed(b"Z");
    let exit = soc.run(10_000_000);
    match exit {
        SocExit::Violation(v) => ScenarioResult { scenario: s, detected: true, violation: Some(v) },
        _ => ScenarioResult { scenario: s, detected: false, violation: None },
    }
}

/// The violation kind each scenario is expected to trigger.
pub fn expected_kind(s: Scenario) -> ViolationKind {
    match s {
        Scenario::DirectLeakUart | Scenario::IndirectLeakUart => {
            ViolationKind::Output { sink: "uart.tx".into() }
        }
        Scenario::OverflowLeakCan => ViolationKind::Output { sink: "can.tx".into() },
        Scenario::PinDependentBranch => ViolationKind::Branch,
        Scenario::OverwritePinExternal => ViolationKind::Store { region: "immo.pin".into() },
        Scenario::EntropyReduction => ViolationKind::Store { region: "immo.pin[2]".into() },
    }
}
