//! The §VI-A case-study narrative as executable assertions.

use vpdift_core::ViolationKind;
use vpdift_immo::scenarios::{build_program, expected_kind, run_scenario, Scenario};

#[test]
fn coarse_policy_detects_scenarios_1_to_3() {
    for s in Scenario::ALL {
        let result = run_scenario(s, false);
        assert_eq!(result.detected, s.coarse_detects(), "coarse policy vs `{}`", s.name());
        if result.detected && s != Scenario::OverwritePinExternal {
            let v = result.violation.expect("violation recorded");
            assert_eq!(v.kind, expected_kind(s), "wrong violation kind for `{}`", s.name());
        }
    }
}

#[test]
fn entropy_reduction_slips_past_coarse_policy() {
    // The paper's key observation: overwriting PIN byte 2 with PIN byte 0
    // is *trusted* data, so the (HC,HI)-for-the-whole-PIN policy allows it
    // — reducing encryption entropy and enabling byte-wise brute force.
    let result = run_scenario(Scenario::EntropyReduction, false);
    assert!(!result.detected, "coarse policy must NOT catch the entropy attack");
}

#[test]
fn per_byte_policy_catches_everything() {
    for s in Scenario::ALL {
        let result = run_scenario(s, true);
        assert!(result.detected, "per-byte policy vs `{}`", s.name());
    }
}

#[test]
fn entropy_reduction_violation_names_the_byte() {
    let result = run_scenario(Scenario::EntropyReduction, true);
    let v = result.violation.expect("detected");
    assert_eq!(v.kind, ViolationKind::Store { region: "immo.pin[2]".into() });
}

#[test]
fn overwrite_external_reports_store_violation_under_both() {
    for per_byte in [false, true] {
        let result = run_scenario(Scenario::OverwritePinExternal, per_byte);
        let v = result.violation.expect("detected");
        assert!(
            matches!(v.kind, ViolationKind::Store { ref region } if region.starts_with("immo.pin")),
            "unexpected kind {:?}",
            v.kind
        );
    }
}

#[test]
fn scenario_programs_share_the_pin_layout() {
    for s in Scenario::ALL {
        let p = build_program(s);
        let pin = p.symbol("pin").expect("pin symbol");
        let txbuf = p.symbol("txbuf").expect("txbuf symbol");
        assert_eq!(pin - txbuf, 8, "overflow scenario relies on adjacency");
    }
}
