//! The introspection server: a registry of named [`Session`]s driven by
//! `taintvp-serve/v1` request lines.
//!
//! [`Server::handle_line`] is the transport-free core — one request line
//! in, one response line out, plus any streamed `"ev"` lines emitted
//! through the sink callback. [`Server::serve`] wraps it around a
//! `BufRead`/`Write` pair (stdio), and [`serve_tcp`](Server::serve_tcp)
//! accepts TCP connections sequentially — sessions persist across
//! connections, which is what makes the server useful as a long-running
//! debug target.
//!
//! Error discipline: every failure path returns a typed protocol error
//! line (`bad_json`, `unknown_session`, …) — the server never panics on
//! client input, and a client that disconnects mid-run has its running
//! session stopped and freed rather than left wedged.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;

use vpdift_core::EnforceMode;
use vpdift_obs::WatchKind;
use vpdift_rv32::ExecMode;
use vpdift_soc::SocExit;

use crate::json::{self, Value};
use crate::metrics::{ServeMetrics, SessionStats};
use crate::proto::{self, ErrorCode, ServeError};
use crate::session::{ByteRead, CreateOpts, Session, DEFAULT_MAX_STEPS};

/// What a handled request asks the transport loop to do next.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// `shutdown` was requested: stop the transport loop.
    Shutdown,
}

/// The session registry plus request dispatch.
#[derive(Default)]
pub struct Server {
    sessions: BTreeMap<String, Session>,
    metrics: Option<std::sync::Arc<ServeMetrics>>,
}

/// Emits a line to the client; an `Err` means the client is gone.
pub type EmitFn<'a> = dyn FnMut(&str) -> io::Result<()> + 'a;

impl Server {
    /// An empty registry.
    pub fn new() -> Server {
        Server::default()
    }

    /// Publishes request and per-session counters into `metrics` (shared
    /// with a scrape endpoint; see [`ServeMetrics`]).
    pub fn with_metrics(mut self, metrics: std::sync::Arc<ServeMetrics>) -> Server {
        self.metrics = Some(metrics);
        self
    }

    /// Captures `sess`'s progress facts for the metrics hub.
    fn session_stats(sess: &mut Session) -> SessionStats {
        SessionStats {
            instret: sess.instret(),
            t_ps: sess.now_ps(),
            violations: sess.violations() as u64,
            runs: 0,
        }
    }

    /// Session names, for the greeting and `list`.
    pub fn session_names(&self) -> Vec<&str> {
        self.sessions.keys().map(String::as_str).collect()
    }

    /// Handles one request line: writes streamed `"ev"` lines and exactly
    /// one response line through `emit`, and reports whether to keep
    /// serving.
    ///
    /// An `emit` failure mid-run (client disconnect) stops the running
    /// session via its [`StopFlag`](vpdift_obs::StopFlag), frees it, and
    /// surfaces as `Err` so the transport loop can drop the connection.
    ///
    /// # Errors
    /// Only transport failures; protocol problems become error *lines*.
    pub fn handle_line(&mut self, line: &str, emit: &mut EmitFn<'_>) -> io::Result<Control> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(Control::Continue);
        }
        let (id, result) = match json::parse(line) {
            Err(e) => (None, Err(ServeError::new(ErrorCode::BadJson, e.to_string()))),
            Ok(req) => {
                let id = req.get("id").and_then(Value::as_u64);
                (id, self.dispatch(&req, emit))
            }
        };
        match result {
            Ok(Reply { fields, control }) => {
                emit(&proto::ok_line(id, &fields))?;
                Ok(control)
            }
            Err(err) => {
                if let Some(m) = &self.metrics {
                    m.on_error();
                }
                emit(&proto::err_line(id, &err))?;
                Ok(Control::Continue)
            }
        }
    }

    fn dispatch(&mut self, req: &Value, emit: &mut EmitFn<'_>) -> Result<Reply, ServeError> {
        let cmd = req
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `cmd` string"))?;
        if let Some(m) = &self.metrics {
            // Client-chosen command strings are folded to `unknown` so
            // the label set stays bounded.
            const KNOWN: &[&str] = &[
                "create",
                "destroy",
                "list",
                "step",
                "run",
                "until",
                "read",
                "watch",
                "unwatch",
                "subscribe",
                "explain",
                "info",
                "shutdown",
            ];
            m.on_request(if KNOWN.contains(&cmd) { cmd } else { "unknown" });
        }
        match cmd {
            "create" => self.cmd_create(req),
            "destroy" => self.cmd_destroy(req),
            "list" => Ok(Reply::fields(format!(
                "\"sessions\":[{}]",
                self.sessions
                    .keys()
                    .map(|n| format!("\"{}\"", vpdift_obs::export::escape(n)))
                    .collect::<Vec<_>>()
                    .join(",")
            ))),
            "step" => self.cmd_run(req, Some(1), emit),
            "run" => {
                let max = req.get("max_steps").and_then(Value::as_u64);
                self.cmd_run(req, Some(max.unwrap_or(DEFAULT_MAX_STEPS)), emit)
            }
            "until" => self.cmd_run(req, None, emit),
            "read" => self.cmd_read(req),
            "watch" => self.cmd_watch(req),
            "unwatch" => self.cmd_unwatch(req),
            "subscribe" => self.cmd_subscribe(req),
            "explain" => self.cmd_explain(req),
            "info" => self.cmd_info(req),
            "shutdown" => Ok(Reply { fields: String::new(), control: Control::Shutdown }),
            other => Err(ServeError::new(ErrorCode::UnknownCmd, format!("unknown cmd `{other}`"))),
        }
    }

    fn session_name(req: &Value) -> Result<&str, ServeError> {
        req.get("session")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `session` string"))
    }

    fn session<'a>(&'a mut self, req: &'a Value) -> Result<(&'a str, &'a mut Session), ServeError> {
        let name = Self::session_name(req)?;
        match self.sessions.get_mut(name) {
            Some(sess) => Ok((name, sess)),
            None => Err(ServeError::new(ErrorCode::UnknownSession, format!("no session `{name}`"))),
        }
    }

    fn cmd_create(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let name = Self::session_name(req)?;
        if self.sessions.contains_key(name) {
            return Err(ServeError::new(
                ErrorCode::DuplicateSession,
                format!("session `{name}` already exists"),
            ));
        }
        let program = req
            .get("program")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `program` string"))?;
        let mut opts = CreateOpts { program: program.to_owned(), ..CreateOpts::default() };
        opts.policy = req.get("policy").and_then(Value::as_str).map(str::to_owned);
        if let Some(mode) = req.get("mode").and_then(Value::as_str) {
            opts.tainted = match mode {
                "tainted" => true,
                "plain" => false,
                other => {
                    return Err(ServeError::new(
                        ErrorCode::BadRequest,
                        format!("mode must be `tainted` or `plain`, got `{other}`"),
                    ))
                }
            };
        }
        if let Some(engine) = req.get("engine").and_then(Value::as_str) {
            opts.engine = match engine {
                "interp" => ExecMode::Interp,
                "block" => ExecMode::BlockCache,
                other => {
                    return Err(ServeError::new(
                        ErrorCode::BadRequest,
                        format!("engine must be `interp` or `block`, got `{other}`"),
                    ))
                }
            };
        }
        if let Some(enforce) = req.get("enforce").and_then(Value::as_str) {
            opts.enforce = match enforce {
                "enforce" => EnforceMode::Enforce,
                "record" => EnforceMode::Record,
                other => {
                    return Err(ServeError::new(
                        ErrorCode::BadRequest,
                        format!("enforce must be `enforce` or `record`, got `{other}`"),
                    ))
                }
            };
        }
        opts.quantum = req.get("quantum").and_then(Value::as_u32);
        opts.ram_size = req.get("ram_size").and_then(Value::as_u32).map(|n| n as usize);

        let mut sess = Session::create(&opts)?;
        let fields = format!(
            "\"session\":\"{}\",\"mode\":\"{}\",\"engine\":\"{}\"",
            vpdift_obs::export::escape(name),
            sess.mode(),
            sess.engine()
        );
        if let Some(m) = &self.metrics {
            m.record_session(name, Self::session_stats(&mut sess));
        }
        self.sessions.insert(name.to_owned(), sess);
        if let Some(m) = &self.metrics {
            m.set_sessions(self.sessions.len() as u64);
        }
        Ok(Reply::fields(fields))
    }

    fn cmd_destroy(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let name = Self::session_name(req)?;
        if self.sessions.remove(name).is_none() {
            return Err(ServeError::new(ErrorCode::UnknownSession, format!("no session `{name}`")));
        }
        if let Some(m) = &self.metrics {
            m.drop_session(name);
            m.set_sessions(self.sessions.len() as u64);
        }
        Ok(Reply::fields(String::new()))
    }

    fn cmd_run(
        &mut self,
        req: &Value,
        max_steps: Option<u64>,
        emit: &mut EmitFn<'_>,
    ) -> Result<Reply, ServeError> {
        let (name, sess) = self.session(req)?;
        let name = name.to_owned();

        // Stream buffered items between run slices. A failing emit means
        // the client is gone: raise the stop flag so the current slice is
        // the last, then free the session below.
        let mut client_gone = false;
        let stop = sess.stop_flag();
        let mut on_items = |items: Vec<vpdift_obs::StreamItem>| {
            if client_gone {
                return;
            }
            for item in &items {
                if emit(&proto::stream_line(&name, item)).is_err() {
                    client_gone = true;
                    stop.request();
                    return;
                }
            }
        };
        let exit = match max_steps {
            Some(n) => sess.run(n, &mut on_items),
            None => sess.run_until(req.get("cap").and_then(Value::as_u64), &mut on_items),
        };

        if client_gone {
            self.sessions.remove(&name);
            if let Some(m) = &self.metrics {
                m.drop_session(&name);
                m.set_sessions(self.sessions.len() as u64);
            }
            return Err(ServeError::new(
                ErrorCode::Io,
                format!("client disconnected mid-run; session `{name}` freed"),
            ));
        }

        // The session was present before the run and only the
        // client-gone branch above frees it, but a typed error keeps
        // this path panic-free if that invariant ever changes.
        let Some(sess) = self.sessions.get_mut(&name) else {
            return Err(ServeError::new(
                ErrorCode::UnknownSession,
                format!("session `{name}` vanished mid-run"),
            ));
        };
        if let Some(m) = &self.metrics {
            m.record_session_run(&name, Self::session_stats(sess));
        }
        let mut fields = format!(
            "\"exit\":\"{}\",\"instret\":{},\"t_ps\":{},\"digest\":\"{:#018x}\"",
            exit.label(),
            sess.instret(),
            sess.now_ps(),
            sess.digest()
        );
        if let SocExit::Violation(v) = &exit {
            fields.push_str(&format!(
                ",\"violation\":\"{}\"",
                vpdift_obs::export::escape(&v.to_string())
            ));
        }
        Ok(Reply::fields(fields))
    }

    fn cmd_read(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let what = req
            .get("what")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `what` string"))?
            .to_owned();
        let (_, sess) = self.session(req)?;
        match what.as_str() {
            "regs" => {
                let (pc, regs) = sess.read_regs();
                let rendered: Vec<String> = regs
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"name\":\"{}\",\"value\":{},\"tag\":{}}}",
                            r.name,
                            r.value,
                            proto::tag_field(r.tag)
                        )
                    })
                    .collect();
                Ok(Reply::fields(format!("\"pc\":{pc},\"regs\":[{}]", rendered.join(","))))
            }
            "mem" | "tags" => {
                let addr = req
                    .get("addr")
                    .and_then(Value::as_u32)
                    .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `addr`"))?;
                let len = req.get("len").and_then(Value::as_u64).unwrap_or(16).min(4096) as usize;
                let bytes = sess.read_mem(addr, len);
                let rendered: Vec<String> = bytes
                    .iter()
                    .map(|b| match b {
                        None => "null".to_owned(),
                        Some(ByteRead { value, tag }) => {
                            if what == "mem" {
                                value.to_string()
                            } else {
                                proto::tag_field(*tag)
                            }
                        }
                    })
                    .collect();
                Ok(Reply::fields(format!(
                    "\"addr\":{addr},\"{}\":[{}]",
                    if what == "mem" { "bytes" } else { "tags" },
                    rendered.join(",")
                )))
            }
            other => Err(ServeError::new(
                ErrorCode::BadRequest,
                format!("`what` must be regs|mem|tags, got `{other}`"),
            )),
        }
    }

    fn cmd_watch(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let kind = req
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadWatch, "missing `kind` string"))?
            .to_owned();
        let watch = match kind.as_str() {
            "sink" => {
                let site = req.get("site").and_then(Value::as_str).ok_or_else(|| {
                    ServeError::new(ErrorCode::BadWatch, "sink watch needs `site`")
                })?;
                WatchKind::Sink {
                    site: site.to_owned(),
                    atom: req.get("atom").and_then(Value::as_u32),
                }
            }
            "range" => {
                let start = req.get("addr").and_then(Value::as_u32).ok_or_else(|| {
                    ServeError::new(ErrorCode::BadWatch, "range watch needs `addr`")
                })?;
                let len = req.get("len").and_then(Value::as_u32).ok_or_else(|| {
                    ServeError::new(ErrorCode::BadWatch, "range watch needs `len`")
                })?;
                WatchKind::Range { start, len }
            }
            "violation" => WatchKind::Violation {
                site: req.get("site").and_then(Value::as_str).map(str::to_owned),
            },
            other => {
                return Err(ServeError::new(
                    ErrorCode::BadWatch,
                    format!("`kind` must be sink|range|violation, got `{other}`"),
                ))
            }
        };
        let (_, sess) = self.session(req)?;
        let id = sess.add_watch(watch);
        Ok(Reply::fields(format!("\"watch\":{id}")))
    }

    fn cmd_unwatch(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let id = req
            .get("watch")
            .and_then(Value::as_u32)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `watch` id"))?;
        let (_, sess) = self.session(req)?;
        if !sess.remove_watch(id) {
            return Err(ServeError::new(
                ErrorCode::BadWatch,
                format!("no watch {id} in this session"),
            ));
        }
        Ok(Reply::fields(String::new()))
    }

    fn cmd_subscribe(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let events = match req.get("events") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let arr = v.as_arr().ok_or_else(|| {
                    ServeError::new(ErrorCode::BadRequest, "`events` must be an array of kinds")
                })?;
                let kinds: Result<Vec<String>, ServeError> = arr
                    .iter()
                    .map(|k| {
                        k.as_str().map(str::to_owned).ok_or_else(|| {
                            ServeError::new(ErrorCode::BadRequest, "event kinds must be strings")
                        })
                    })
                    .collect();
                Some(kinds?)
            }
        };
        let flow = req.get("flow").and_then(Value::as_bool).unwrap_or(false);
        let (_, sess) = self.session(req)?;
        sess.subscribe(events, flow);
        Ok(Reply::fields(String::new()))
    }

    fn cmd_explain(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let atom = req.get("atom").and_then(Value::as_str).map(str::to_owned);
        let (_, sess) = self.session(req)?;
        let text = sess.explain(atom.as_deref())?;
        Ok(Reply::fields(match text {
            Some(t) => format!("\"explain\":\"{}\"", vpdift_obs::export::escape(&t)),
            None => "\"explain\":null".to_owned(),
        }))
    }

    fn cmd_info(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let (_, sess) = self.session(req)?;
        let watches: Vec<String> = sess.watches().iter().map(|w| w.id.to_string()).collect();
        Ok(Reply::fields(format!(
            "\"mode\":\"{}\",\"engine\":\"{}\",\"instret\":{},\"t_ps\":{},\"digest\":\"{:#018x}\",\"violations\":{},\"watches\":[{}]",
            sess.mode(),
            sess.engine(),
            sess.instret(),
            sess.now_ps(),
            sess.digest(),
            sess.violations(),
            watches.join(",")
        )))
    }

    /// Serves one client over a reader/writer pair (stdio transport):
    /// greeting first, then request lines until EOF or `shutdown`.
    ///
    /// # Errors
    /// Transport failures other than the client closing its end.
    pub fn serve<R: BufRead, W: Write>(&mut self, reader: R, mut writer: W) -> io::Result<()> {
        let greeting = proto::greeting(&self.session_names());
        writeln!(writer, "{greeting}")?;
        writer.flush()?;
        for line in reader.lines() {
            let line = line?;
            let mut emit = |s: &str| {
                writeln!(writer, "{s}")?;
                writer.flush()
            };
            match self.handle_line(&line, &mut emit) {
                Ok(Control::Continue) => {}
                Ok(Control::Shutdown) => break,
                // The client vanished: this connection is done, but the
                // server (and its surviving sessions) can serve the next.
                Err(_) => break,
            }
        }
        Ok(())
    }

    /// Binds `addr` and serves TCP clients sequentially. Sessions persist
    /// across connections; a `shutdown` request stops the listener.
    ///
    /// # Errors
    /// Bind failures; per-connection errors only end that connection.
    pub fn serve_tcp(&mut self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        eprintln!("taintvp-serve listening on {}", listener.local_addr()?);
        for stream in listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let reader = BufReader::new(stream.try_clone()?);
            let mut writer = stream;
            let greeting = proto::greeting(&self.session_names());
            if writeln!(writer, "{greeting}").is_err() {
                continue;
            }
            let mut done = false;
            for line in reader.lines() {
                let Ok(line) = line else { break };
                let mut emit = |s: &str| {
                    writeln!(writer, "{s}")?;
                    writer.flush()
                };
                match self.handle_line(&line, &mut emit) {
                    Ok(Control::Continue) => {}
                    Ok(Control::Shutdown) => {
                        done = true;
                        break;
                    }
                    Err(_) => break,
                }
            }
            if done {
                break;
            }
        }
        Ok(())
    }
}

/// A successful reply: pre-rendered response fields plus loop control.
struct Reply {
    fields: String,
    control: Control,
}

impl Reply {
    fn fields(fields: String) -> Reply {
        Reply { fields, control: Control::Continue }
    }
}
