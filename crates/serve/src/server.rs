//! The introspection server, v2: concurrent connections over a shared
//! session [`Registry`].
//!
//! Three layers, transport-agnostic from the inside out:
//!
//! * [`Registry`] (see `registry.rs`) owns every [`Session`] — lifetime
//!   is `create` → `destroy` (or idle sweep), never drop-on-disconnect.
//! * [`Connection`] is the per-client state: the negotiated protocol
//!   [`Version`] plus a handle to the registry.
//!   [`Connection::handle_line`] is the transport-free core — one
//!   request line in, one response line out, plus any streamed `"ev"`
//!   lines through the emit callback.
//! * Dispatch — the `cmd_*` methods — parses each verb exactly once and
//!   renders v1-stable response shapes (v2 additions are additive-only).
//!
//! [`Server`] is the assembled front door: [`Server::serve`] drives one
//! stdio client, [`Server::serve_tcp`] accepts TCP clients **one thread
//! per connection** — any connection can `step` its own sessions while
//! another `run`s, `stop` a run mid-flight on a sibling connection
//! (cross-connection interrupt via the lock-free [`StopFlag`] in the
//! registry entry), or arm breakpoints on a running session.
//!
//! Error discipline: every failure path returns a typed protocol error
//! line (`bad_json`, `unknown_session`, `busy`, …) — the server never
//! panics on client input, and a client that disconnects mid-run has its
//! running session *stopped but kept*: the registry owns it, and the next
//! connection resumes exactly where the run was interrupted.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use vpdift_obs::{BreakKind, StreamItem, WatchKind};
use vpdift_soc::SocExit;

use crate::json::{self, Value};
use crate::metrics::SessionStats;
use crate::proto::{self, ErrorCode, ServeError, Version};
use crate::registry::Registry;
use crate::session::{ByteRead, CreateOpts, Session, DEFAULT_MAX_STEPS};

/// What a handled request asks the transport loop to do next.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// `shutdown` was requested: stop the transport loop.
    Shutdown,
}

/// Emits a line to the client; an `Err` means the client is gone.
pub type EmitFn<'a> = dyn FnMut(&str) -> io::Result<()> + 'a;

/// Per-connection protocol state: the negotiated version plus the shared
/// registry every connection dispatches into.
pub struct Connection {
    registry: Arc<Registry>,
    version: Version,
}

impl Connection {
    /// A fresh connection at the default (v2) protocol version.
    pub fn new(registry: Arc<Registry>) -> Connection {
        Connection { registry, version: Version::default() }
    }

    /// The currently negotiated protocol version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Captures `sess`'s progress facts for the metrics hub.
    fn session_stats(sess: &mut Session) -> SessionStats {
        SessionStats {
            instret: sess.instret(),
            t_ps: sess.now_ps(),
            violations: sess.violations() as u64,
            runs: 0,
        }
    }

    /// Handles one request line: writes streamed `"ev"` lines and exactly
    /// one response line through `emit`, and reports whether to keep
    /// serving.
    ///
    /// An `emit` failure mid-run (client disconnect) stops the running
    /// session via its [`StopFlag`](vpdift_obs::StopFlag) and surfaces as
    /// `Err` so the transport loop drops the connection — the session
    /// itself stays in the registry, resumable by any other client.
    ///
    /// # Errors
    /// Only transport failures; protocol problems become error *lines*.
    pub fn handle_line(&mut self, line: &str, emit: &mut EmitFn<'_>) -> io::Result<Control> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(Control::Continue);
        }
        let (id, result) = match json::parse(line) {
            Err(e) => (None, Err(ServeError::new(ErrorCode::BadJson, e.to_string()))),
            Ok(req) => {
                let id = req.get("id").and_then(Value::as_u64);
                (id, self.dispatch(&req, emit))
            }
        };
        match result {
            Ok(Reply { fields, control }) => {
                emit(&proto::ok_line(id, &fields))?;
                Ok(control)
            }
            Err(err) => {
                if let Some(m) = self.registry.metrics() {
                    m.on_error();
                }
                emit(&proto::err_line(id, &err))?;
                Ok(Control::Continue)
            }
        }
    }

    // ------------------------------------------------------ dispatch ---

    fn dispatch(&mut self, req: &Value, emit: &mut EmitFn<'_>) -> Result<Reply, ServeError> {
        let cmd = req
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `cmd` string"))?;
        if let Some(m) = self.registry.metrics() {
            // Client-chosen command strings are folded to `unknown` so
            // the label set stays bounded.
            const KNOWN: &[&str] = &[
                "hello", "create", "destroy", "list", "step", "run", "until", "read", "watch",
                "unwatch", "break", "unbreak", "stop", "subscribe", "explain", "info", "shutdown",
            ];
            m.on_request(if KNOWN.contains(&cmd) { cmd } else { "unknown" });
        }
        // v2-only verbs fall through to `unknown_cmd` on a connection
        // pinned to v1 — byte-identical to what a v1 server answered.
        let v2 = self.version == Version::V2;
        match cmd {
            "hello" => self.cmd_hello(req),
            "create" => self.cmd_create(req),
            "destroy" => self.cmd_destroy(req),
            "list" => self.cmd_list(),
            "step" => self.cmd_run(req, Some(1), emit),
            "run" => {
                let max = req.get("max_steps").and_then(Value::as_u64);
                self.cmd_run(req, Some(max.unwrap_or(DEFAULT_MAX_STEPS)), emit)
            }
            "until" => self.cmd_run(req, None, emit),
            "read" => self.cmd_read(req),
            "watch" => self.cmd_watch(req),
            "unwatch" => self.cmd_unwatch(req),
            "stop" if v2 => self.cmd_stop(req),
            "break" if v2 => self.cmd_break(req),
            "unbreak" if v2 => self.cmd_unbreak(req),
            "subscribe" => self.cmd_subscribe(req),
            "explain" => self.cmd_explain(req),
            "info" => self.cmd_info(req),
            "shutdown" => {
                self.registry.request_shutdown();
                Ok(Reply { fields: String::new(), control: Control::Shutdown })
            }
            other => Err(ServeError::new(ErrorCode::UnknownCmd, format!("unknown cmd `{other}`"))),
        }
    }

    fn session_name(req: &Value) -> Result<&str, ServeError> {
        req.get("session")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `session` string"))
    }

    fn cmd_hello(&mut self, req: &Value) -> Result<Reply, ServeError> {
        if let Some(v) = req.get("version") {
            let s = v.as_str().ok_or_else(|| {
                ServeError::new(ErrorCode::BadRequest, "`version` must be a schema string")
            })?;
            self.version = Version::from_schema(s).ok_or_else(|| {
                ServeError::new(
                    ErrorCode::BadRequest,
                    format!(
                        "unsupported version `{s}` (supported: {}, {})",
                        proto::SCHEMA_V2,
                        proto::SCHEMA
                    ),
                )
            })?;
        }
        Ok(Reply::fields(format!("\"schema\":\"{}\"", self.version.schema())))
    }

    fn cmd_create(&mut self, req: &Value) -> Result<Reply, ServeError> {
        self.registry.sweep_idle();
        let name = Self::session_name(req)?;
        if self.registry.get(name).is_ok() {
            return Err(ServeError::new(
                ErrorCode::DuplicateSession,
                format!("session `{name}` already exists"),
            ));
        }
        let program = req
            .get("program")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `program` string"))?;
        let mut opts = CreateOpts { program: program.to_owned(), ..CreateOpts::default() };
        let bad = |e: vpdift_soc::ExecConfigError| ServeError::new(ErrorCode::BadRequest, e.to_string());
        opts.exec.policy = req.get("policy").and_then(Value::as_str).map(str::to_owned);
        if let Some(mode) = req.get("mode").and_then(Value::as_str) {
            opts.exec.set_mode_str(mode).map_err(bad)?;
        }
        if let Some(engine) = req.get("engine").and_then(Value::as_str) {
            opts.exec.set_engine_str(engine).map_err(bad)?;
        }
        if let Some(enforce) = req.get("enforce").and_then(Value::as_str) {
            opts.exec.set_enforce_str(enforce).map_err(bad)?;
        }
        opts.exec.quantum = req.get("quantum").and_then(Value::as_u32);
        opts.exec.ram_size = req.get("ram_size").and_then(Value::as_u32).map(|n| n as usize);

        let mut sess = Session::create(&opts)?;
        let fields = format!(
            "\"session\":\"{}\",\"mode\":\"{}\",\"engine\":\"{}\"",
            vpdift_obs::export::escape(name),
            sess.mode(),
            sess.engine()
        );
        if let Some(m) = self.registry.metrics() {
            m.record_session(name, Self::session_stats(&mut sess));
        }
        self.registry.insert(name, sess)?;
        Ok(Reply::fields(fields))
    }

    fn cmd_destroy(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let name = Self::session_name(req)?;
        self.registry.remove(name)?;
        Ok(Reply::fields(String::new()))
    }

    fn cmd_list(&mut self) -> Result<Reply, ServeError> {
        self.registry.sweep_idle();
        Ok(Reply::fields(format!(
            "\"sessions\":[{}]",
            self.registry
                .names()
                .iter()
                .map(|n| format!("\"{}\"", vpdift_obs::export::escape(n)))
                .collect::<Vec<_>>()
                .join(",")
        )))
    }

    /// Raises another session's stop flag — lock-free, so it lands while
    /// the session is mid-`run` on a different connection. The
    /// interrupted run returns `"exit":"stopped"` there and stays
    /// resumable.
    fn cmd_stop(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let name = Self::session_name(req)?;
        let entry = self.registry.get(name)?;
        entry.stop().request();
        Ok(Reply::fields(String::new()))
    }

    fn cmd_break(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let name = Self::session_name(req)?;
        let pc = req.get("pc").and_then(Value::as_u32);
        let instret = req.get("instret").and_then(Value::as_u64);
        let kind = match (pc, instret) {
            (Some(pc), None) => BreakKind::Pc(pc),
            (None, Some(n)) => BreakKind::Instret(n),
            _ => {
                return Err(ServeError::new(
                    ErrorCode::BadRequest,
                    "break needs exactly one of `pc` or `instret`",
                ))
            }
        };
        // Armed through the registry entry's cached handle: no session
        // lock, so breakpoints land on a session mid-run elsewhere.
        let entry = self.registry.get(name)?;
        let id = entry.breaks().add(kind);
        Ok(Reply::fields(format!("\"break\":{id}")))
    }

    fn cmd_unbreak(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let name = Self::session_name(req)?;
        let id = req
            .get("break")
            .and_then(Value::as_u32)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `break` id"))?;
        let entry = self.registry.get(name)?;
        if !entry.breaks().remove(id) {
            return Err(ServeError::new(
                ErrorCode::BadRequest,
                format!("no breakpoint {id} in this session"),
            ));
        }
        Ok(Reply::fields(String::new()))
    }

    fn cmd_run(
        &mut self,
        req: &Value,
        max_steps: Option<u64>,
        emit: &mut EmitFn<'_>,
    ) -> Result<Reply, ServeError> {
        let name = Self::session_name(req)?.to_owned();
        let entry = self.registry.get(&name)?;
        let mut sess = entry.lock(&name)?;

        // Stream buffered items between run slices. A failing emit means
        // the client is gone: raise the stop flag so the current slice is
        // the last — the session itself stays registry-owned.
        let mut client_gone = false;
        let stop = sess.stop_flag();
        let mut on_items = |items: Vec<StreamItem>| {
            if client_gone {
                return;
            }
            for item in &items {
                if emit(&proto::stream_line(&name, item)).is_err() {
                    client_gone = true;
                    stop.request();
                    return;
                }
            }
        };
        let exit = match max_steps {
            Some(n) => sess.run(n, &mut on_items),
            None => sess.run_until(req.get("cap").and_then(Value::as_u64), &mut on_items),
        };

        // A breakpoint hit surfaces as one streamed `"ev":"break"` line
        // ahead of the (v1-shaped) `"exit":"stopped"` response.
        if exit == SocExit::Stopped {
            if let Some(hit) = sess.take_break_hit() {
                let item = StreamItem::Break {
                    id: hit.id,
                    reason: hit.kind.to_string(),
                    pc: hit.pc,
                    instret: hit.instret,
                };
                if !client_gone && emit(&proto::stream_line(&name, &item)).is_err() {
                    client_gone = true;
                }
            }
        }

        if let Some(m) = self.registry.metrics() {
            m.record_session_run(&name, Self::session_stats(&mut sess));
        }
        if client_gone {
            // v2 semantics (registry-owned lifetime): the session is
            // stopped, *not* freed. Clear any stop request that latched
            // after the run already ended, so the next client's run
            // doesn't return `stopped` after zero steps.
            stop.take();
            return Err(ServeError::new(
                ErrorCode::Io,
                format!("client disconnected mid-run; session `{name}` stopped and kept"),
            ));
        }
        let mut fields = format!(
            "\"exit\":\"{}\",\"instret\":{},\"t_ps\":{},\"digest\":\"{:#018x}\"",
            exit.label(),
            sess.instret(),
            sess.now_ps(),
            sess.digest()
        );
        if let SocExit::Violation(v) = &exit {
            fields.push_str(&format!(
                ",\"violation\":\"{}\"",
                vpdift_obs::export::escape(&v.to_string())
            ));
        }
        Ok(Reply::fields(fields))
    }

    fn cmd_read(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let what = req
            .get("what")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `what` string"))?
            .to_owned();
        let name = Self::session_name(req)?;
        let entry = self.registry.get(name)?;
        let mut sess = entry.lock(name)?;
        match what.as_str() {
            "regs" => {
                let (pc, regs) = sess.read_regs();
                let rendered: Vec<String> = regs
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"name\":\"{}\",\"value\":{},\"tag\":{}}}",
                            r.name,
                            r.value,
                            proto::tag_field(r.tag)
                        )
                    })
                    .collect();
                Ok(Reply::fields(format!("\"pc\":{pc},\"regs\":[{}]", rendered.join(","))))
            }
            "mem" | "tags" => {
                let addr = req
                    .get("addr")
                    .and_then(Value::as_u32)
                    .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `addr`"))?;
                let len = req.get("len").and_then(Value::as_u64).unwrap_or(16).min(4096) as usize;
                let bytes = sess.read_mem(addr, len);
                let rendered: Vec<String> = bytes
                    .iter()
                    .map(|b| match b {
                        None => "null".to_owned(),
                        Some(ByteRead { value, tag }) => {
                            if what == "mem" {
                                value.to_string()
                            } else {
                                proto::tag_field(*tag)
                            }
                        }
                    })
                    .collect();
                Ok(Reply::fields(format!(
                    "\"addr\":{addr},\"{}\":[{}]",
                    if what == "mem" { "bytes" } else { "tags" },
                    rendered.join(",")
                )))
            }
            other => Err(ServeError::new(
                ErrorCode::BadRequest,
                format!("`what` must be regs|mem|tags, got `{other}`"),
            )),
        }
    }

    fn cmd_watch(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let kind = req
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::new(ErrorCode::BadWatch, "missing `kind` string"))?
            .to_owned();
        let watch = match kind.as_str() {
            "sink" => {
                let site = req.get("site").and_then(Value::as_str).ok_or_else(|| {
                    ServeError::new(ErrorCode::BadWatch, "sink watch needs `site`")
                })?;
                WatchKind::Sink {
                    site: site.to_owned(),
                    atom: req.get("atom").and_then(Value::as_u32),
                }
            }
            "range" => {
                let start = req.get("addr").and_then(Value::as_u32).ok_or_else(|| {
                    ServeError::new(ErrorCode::BadWatch, "range watch needs `addr`")
                })?;
                let len = req.get("len").and_then(Value::as_u32).ok_or_else(|| {
                    ServeError::new(ErrorCode::BadWatch, "range watch needs `len`")
                })?;
                WatchKind::Range { start, len }
            }
            "violation" => WatchKind::Violation {
                site: req.get("site").and_then(Value::as_str).map(str::to_owned),
            },
            other => {
                return Err(ServeError::new(
                    ErrorCode::BadWatch,
                    format!("`kind` must be sink|range|violation, got `{other}`"),
                ))
            }
        };
        let name = Self::session_name(req)?;
        let entry = self.registry.get(name)?;
        let mut sess = entry.lock(name)?;
        let id = sess.add_watch(watch);
        Ok(Reply::fields(format!("\"watch\":{id}")))
    }

    fn cmd_unwatch(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let id = req
            .get("watch")
            .and_then(Value::as_u32)
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "missing `watch` id"))?;
        let name = Self::session_name(req)?;
        let entry = self.registry.get(name)?;
        let mut sess = entry.lock(name)?;
        if !sess.remove_watch(id) {
            return Err(ServeError::new(
                ErrorCode::BadWatch,
                format!("no watch {id} in this session"),
            ));
        }
        Ok(Reply::fields(String::new()))
    }

    fn cmd_subscribe(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let events = match req.get("events") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let arr = v.as_arr().ok_or_else(|| {
                    ServeError::new(ErrorCode::BadRequest, "`events` must be an array of kinds")
                })?;
                let kinds: Result<Vec<String>, ServeError> = arr
                    .iter()
                    .map(|k| {
                        k.as_str().map(str::to_owned).ok_or_else(|| {
                            ServeError::new(ErrorCode::BadRequest, "event kinds must be strings")
                        })
                    })
                    .collect();
                Some(kinds?)
            }
        };
        let flow = req.get("flow").and_then(Value::as_bool).unwrap_or(false);
        let name = Self::session_name(req)?;
        let entry = self.registry.get(name)?;
        let mut sess = entry.lock(name)?;
        sess.subscribe(events, flow);
        Ok(Reply::fields(String::new()))
    }

    fn cmd_explain(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let atom = req.get("atom").and_then(Value::as_str).map(str::to_owned);
        let name = Self::session_name(req)?;
        let entry = self.registry.get(name)?;
        let mut sess = entry.lock(name)?;
        let text = sess.explain(atom.as_deref())?;
        Ok(Reply::fields(match text {
            Some(t) => format!("\"explain\":\"{}\"", vpdift_obs::export::escape(&t)),
            None => "\"explain\":null".to_owned(),
        }))
    }

    fn cmd_info(&mut self, req: &Value) -> Result<Reply, ServeError> {
        let name = Self::session_name(req)?;
        let entry = self.registry.get(name)?;
        let mut sess = entry.lock(name)?;
        let watches: Vec<String> = sess.watches().iter().map(|w| w.id.to_string()).collect();
        let mut fields = format!(
            "\"mode\":\"{}\",\"engine\":\"{}\",\"instret\":{},\"t_ps\":{},\"digest\":\"{:#018x}\",\"violations\":{},\"watches\":[{}]",
            sess.mode(),
            sess.engine(),
            sess.instret(),
            sess.now_ps(),
            sess.digest(),
            sess.violations(),
            watches.join(",")
        );
        // Additive-only: rendered only when breakpoints exist, so v1
        // clients (and the golden transcript) see the exact v1 shape.
        let breaks = sess.breaks();
        if !breaks.is_empty() {
            let rendered: Vec<String> = breaks
                .iter()
                .map(|b| match b.kind {
                    BreakKind::Pc(pc) => format!("{{\"break\":{},\"kind\":\"pc\",\"pc\":{pc}}}", b.id),
                    BreakKind::Instret(n) => {
                        format!("{{\"break\":{},\"kind\":\"instret\",\"instret\":{n}}}", b.id)
                    }
                })
                .collect();
            fields.push_str(&format!(",\"breaks\":[{}]", rendered.join(",")));
        }
        Ok(Reply::fields(fields))
    }

    /// Serves one client over an accepted TCP stream: greeting, then
    /// request lines until disconnect or `shutdown` (this connection's or
    /// any sibling's).
    fn serve_stream(&mut self, stream: TcpStream) -> io::Result<()> {
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let names = self.registry.names();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        writeln!(writer, "{}", proto::greeting(&refs))?;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let mut emit = |s: &str| {
                writeln!(writer, "{s}")?;
                writer.flush()
            };
            match self.handle_line(&line, &mut emit) {
                Ok(Control::Continue) => {
                    if self.registry.shutdown_requested() {
                        break;
                    }
                }
                Ok(Control::Shutdown) => break,
                Err(_) => break,
            }
        }
        Ok(())
    }
}

/// The assembled server: a shared [`Registry`] plus transports. Also
/// carries one in-process [`Connection`] so the transport-free
/// [`handle_line`](Server::handle_line) entry point (tests, stdio) keeps
/// its v1 signature.
pub struct Server {
    registry: Arc<Registry>,
    conn: Connection,
}

impl Default for Server {
    fn default() -> Server {
        Server::new()
    }
}

impl Server {
    /// An empty registry with no clients.
    pub fn new() -> Server {
        let registry = Arc::new(Registry::new());
        Server { conn: Connection::new(Arc::clone(&registry)), registry }
    }

    /// Publishes request and per-session counters into `metrics` (shared
    /// with a scrape endpoint; see [`crate::ServeMetrics`]).
    pub fn with_metrics(self, metrics: Arc<crate::ServeMetrics>) -> Server {
        self.registry.set_metrics(metrics);
        self
    }

    /// Enables the idle-session sweep: sessions untouched for `timeout`
    /// are destroyed at the next accept/`create`/`list`. `None` disables.
    pub fn with_idle_timeout(self, timeout: Option<Duration>) -> Server {
        self.registry.set_idle_timeout(timeout);
        self
    }

    /// The shared session registry (for embedding or inspection).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Session names, for the greeting and `list`.
    pub fn session_names(&self) -> Vec<String> {
        self.registry.names()
    }

    /// Transport-free entry point: drives the server's in-process
    /// connection. See [`Connection::handle_line`].
    ///
    /// # Errors
    /// Only transport failures; protocol problems become error *lines*.
    pub fn handle_line(&mut self, line: &str, emit: &mut EmitFn<'_>) -> io::Result<Control> {
        self.conn.handle_line(line, emit)
    }

    /// Serves one client over a reader/writer pair (stdio transport):
    /// greeting first, then request lines until EOF or `shutdown`.
    ///
    /// # Errors
    /// Transport failures other than the client closing its end.
    pub fn serve<R: BufRead, W: Write>(&mut self, reader: R, mut writer: W) -> io::Result<()> {
        let names = self.registry.names();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        writeln!(writer, "{}", proto::greeting(&refs))?;
        writer.flush()?;
        for line in reader.lines() {
            let line = line?;
            let mut emit = |s: &str| {
                writeln!(writer, "{s}")?;
                writer.flush()
            };
            match self.conn.handle_line(&line, &mut emit) {
                Ok(Control::Continue) => {}
                Ok(Control::Shutdown) => break,
                Err(_) => break,
            }
        }
        Ok(())
    }

    /// Binds `addr` and serves TCP clients concurrently — one thread per
    /// accepted connection over the shared registry. Sessions persist
    /// across connections; any connection's `shutdown` stops the
    /// listener and drains the remaining connections.
    ///
    /// # Errors
    /// Bind failures; per-connection errors only end that connection.
    pub fn serve_tcp(&self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        eprintln!("taintvp-serve listening on {}", listener.local_addr()?);
        self.serve_listener(listener)
    }

    /// Serves an already-bound listener (lets tests bind port 0 and
    /// learn the address first). One thread per connection; returns once
    /// `shutdown` has been requested and every connection has drained.
    ///
    /// # Errors
    /// Listener address lookup failures; per-connection errors only end
    /// that connection.
    pub fn serve_listener(&self, listener: TcpListener) -> io::Result<()> {
        let local = listener.local_addr()?;
        let mut handles = Vec::new();
        for stream in listener.incoming() {
            if self.registry.shutdown_requested() {
                break;
            }
            let Ok(stream) = stream else { continue };
            self.registry.sweep_idle();
            let registry = Arc::clone(&self.registry);
            handles.push(thread::spawn(move || {
                let mut conn = Connection::new(Arc::clone(&registry));
                let _ = conn.serve_stream(stream);
                if registry.shutdown_requested() {
                    // Wake the accept loop (blocked in `incoming()`) so
                    // it observes the flag and stops.
                    let _ = TcpStream::connect(local);
                }
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

/// A successful reply: pre-rendered response fields plus loop control.
struct Reply {
    fields: String,
    control: Control,
}

impl Reply {
    fn fields(fields: String) -> Reply {
        Reply { fields, control: Control::Continue }
    }
}
