//! The shared session registry: the v2 server's source of truth.
//!
//! v1 owned sessions *per server loop*, which tied session lifetime to
//! whatever connection happened to be serving. v2 inverts that: a
//! [`Registry`] owns every [`Session`] behind a `Mutex`, connections are
//! peers that address sessions by name, and lifetime is explicit —
//! `create` to `destroy` (or an idle-timeout sweep), never
//! drop-on-disconnect.
//!
//! Two kinds of access:
//!
//! * **Locked** — commands that step, read, or reconfigure a session take
//!   its mutex via [`SessionEntry::lock`]. A session busy mid-`run` on
//!   another connection yields [`ErrorCode::Busy`] instead of blocking
//!   the whole connection behind a potentially long run.
//! * **Lock-free control** — each entry caches clones of the session's
//!   [`StopFlag`] and [`BreakSet`] at creation, so `stop` (the mid-run
//!   interrupt) and `break`/`unbreak` work *while the session runs on
//!   another connection* — that is the entire point of protocol v2.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, TryLockError};
use std::time::{Duration, Instant};

use vpdift_obs::{BreakSet, StopFlag};

use crate::metrics::ServeMetrics;
use crate::proto::{ErrorCode, ServeError};
use crate::session::Session;

/// One registry slot: the session plus the lock-free control handles
/// cloned out of it at creation time.
pub struct SessionEntry {
    session: Mutex<Session>,
    stop: StopFlag,
    breaks: BreakSet,
    /// Wall-clock time of the last command that touched this entry, for
    /// the idle sweep.
    last_used: Mutex<Instant>,
}

impl SessionEntry {
    fn new(session: Session) -> SessionEntry {
        let stop = session.stop_flag();
        let breaks = session.break_set();
        SessionEntry {
            session: Mutex::new(session),
            stop,
            breaks,
            last_used: Mutex::new(Instant::now()),
        }
    }

    /// Locks the session for a command, without blocking: a session
    /// mid-`run` on another connection is reported [`ErrorCode::Busy`] —
    /// use [`stop`](SessionEntry::stop) to interrupt it instead.
    pub fn lock(&self, name: &str) -> Result<MutexGuard<'_, Session>, ServeError> {
        match self.session.try_lock() {
            Ok(guard) => Ok(guard),
            Err(TryLockError::WouldBlock) => Err(ServeError::new(
                ErrorCode::Busy,
                format!("session `{name}` is busy (mid-run on another connection); `stop` it first"),
            )),
            // A connection thread panicking mid-command is isolated to
            // its session; treat the poisoned state as still-usable
            // rather than wedging the name forever.
            Err(TryLockError::Poisoned(p)) => Ok(p.into_inner()),
        }
    }

    /// The session's cooperative stop flag — raisable without the lock.
    pub fn stop(&self) -> &StopFlag {
        &self.stop
    }

    /// The session's breakpoint set — armable without the lock.
    pub fn breaks(&self) -> &BreakSet {
        &self.breaks
    }

    fn touch(&self) {
        *self.last_used.lock().unwrap() = Instant::now();
    }

    fn idle_for(&self) -> Duration {
        self.last_used.lock().unwrap().elapsed()
    }
}

/// The shared state every connection thread operates on.
#[derive(Default)]
pub struct Registry {
    sessions: Mutex<BTreeMap<String, Arc<SessionEntry>>>,
    metrics: OnceLock<Arc<ServeMetrics>>,
    /// Raised by any connection's `shutdown`; the TCP accept loop and
    /// sibling connections check it between requests.
    shutdown: AtomicBool,
    /// Idle sweep threshold in milliseconds; 0 disables the sweep.
    idle_timeout_ms: AtomicU64,
}

impl Registry {
    /// An empty registry with no metrics hub and the idle sweep off.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Attaches the metrics hub (first call wins; later calls are
    /// ignored so a scrape endpoint can never be swapped mid-serve).
    pub fn set_metrics(&self, metrics: Arc<ServeMetrics>) {
        let _ = self.metrics.set(metrics);
    }

    /// The attached metrics hub, if any.
    pub fn metrics(&self) -> Option<&Arc<ServeMetrics>> {
        self.metrics.get()
    }

    /// Sets the idle-timeout sweep threshold; `None` (or zero) disables
    /// sweeping. Swept on connection accept, `create`, and `list`.
    pub fn set_idle_timeout(&self, timeout: Option<Duration>) {
        // A sub-millisecond timeout still means "sweep aggressively",
        // not "disable": clamp up so only `None`/zero-by-intent turn the
        // sweep off.
        let ms = timeout.map_or(0, |d| d.as_millis().clamp(1, u64::MAX as u128) as u64);
        self.idle_timeout_ms.store(ms, Ordering::Relaxed);
    }

    /// Inserts a freshly created session under `name`.
    ///
    /// # Errors
    /// [`ErrorCode::DuplicateSession`] when the name is taken.
    pub fn insert(&self, name: &str, session: Session) -> Result<(), ServeError> {
        let mut map = self.sessions.lock().unwrap();
        if map.contains_key(name) {
            return Err(ServeError::new(
                ErrorCode::DuplicateSession,
                format!("session `{name}` already exists"),
            ));
        }
        map.insert(name.to_owned(), Arc::new(SessionEntry::new(session)));
        if let Some(m) = self.metrics() {
            m.set_sessions(map.len() as u64);
        }
        Ok(())
    }

    /// Looks up `name`, refreshing its idle clock.
    ///
    /// # Errors
    /// [`ErrorCode::UnknownSession`].
    pub fn get(&self, name: &str) -> Result<Arc<SessionEntry>, ServeError> {
        let map = self.sessions.lock().unwrap();
        match map.get(name) {
            Some(entry) => {
                entry.touch();
                Ok(Arc::clone(entry))
            }
            None => Err(ServeError::new(ErrorCode::UnknownSession, format!("no session `{name}`"))),
        }
    }

    /// Removes `name` from the registry. If the session is mid-run on
    /// another connection its stop flag is raised: the runner's `Arc`
    /// keeps the session alive until the run winds down, after which the
    /// last reference frees it.
    ///
    /// # Errors
    /// [`ErrorCode::UnknownSession`].
    pub fn remove(&self, name: &str) -> Result<Arc<SessionEntry>, ServeError> {
        let mut map = self.sessions.lock().unwrap();
        let entry = map
            .remove(name)
            .ok_or_else(|| ServeError::new(ErrorCode::UnknownSession, format!("no session `{name}`")))?;
        entry.stop().request();
        if let Some(m) = self.metrics() {
            m.drop_session(name);
            m.set_sessions(map.len() as u64);
        }
        Ok(entry)
    }

    /// Session names in order, for `list` and the greeting.
    pub fn names(&self) -> Vec<String> {
        self.sessions.lock().unwrap().keys().cloned().collect()
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// `true` when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes sessions idle past the configured timeout, returning the
    /// swept names. Sessions currently locked (mid-run) are never swept —
    /// an active run is not idle, whatever the clock says.
    pub fn sweep_idle(&self) -> Vec<String> {
        let ms = self.idle_timeout_ms.load(Ordering::Relaxed);
        if ms == 0 {
            return Vec::new();
        }
        let timeout = Duration::from_millis(ms);
        let mut map = self.sessions.lock().unwrap();
        let doomed: Vec<String> = map
            .iter()
            .filter(|(_, e)| e.session.try_lock().is_ok() && e.idle_for() >= timeout)
            .map(|(n, _)| n.clone())
            .collect();
        for name in &doomed {
            map.remove(name);
            if let Some(m) = self.metrics() {
                m.drop_session(name);
            }
        }
        if !doomed.is_empty() {
            if let Some(m) = self.metrics() {
                m.set_sessions(map.len() as u64);
            }
        }
        doomed
    }

    /// Flags the whole server for shutdown (any connection's `shutdown`
    /// command lands here).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// `true` once any connection requested shutdown.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::CreateOpts;

    fn boot() -> Session {
        Session::create(&CreateOpts { program: "ebreak".into(), ..CreateOpts::default() })
            .expect("session boots")
    }

    #[test]
    fn insert_get_remove_roundtrip_with_duplicate_and_unknown_errors() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.insert("a", boot()).expect("fresh name");
        assert_eq!(reg.insert("a", boot()).unwrap_err().code, ErrorCode::DuplicateSession);
        assert_eq!(reg.names(), vec!["a".to_owned()]);
        let entry = reg.get("a").expect("present");
        assert!(entry.lock("a").is_ok());
        assert_eq!(reg.get("ghost").err().map(|e| e.code), Some(ErrorCode::UnknownSession));
        assert!(reg.remove("a").is_ok(), "present");
        assert_eq!(reg.remove("a").err().map(|e| e.code), Some(ErrorCode::UnknownSession));
        assert!(reg.is_empty());
    }

    #[test]
    fn locked_entry_reports_busy_but_control_handles_still_work() {
        let reg = Registry::new();
        reg.insert("a", boot()).unwrap();
        let entry = reg.get("a").unwrap();
        let _guard = entry.lock("a").expect("first lock");
        let again = reg.get("a").unwrap();
        let code = again.lock("a").err().map(|e| e.code);
        assert_eq!(code, Some(ErrorCode::Busy), "second lock is refused");
        // The cached handles bypass the lock entirely.
        again.stop().request();
        assert!(entry.stop().is_requested());
        again.breaks().add(vpdift_obs::BreakKind::Pc(0x40));
        assert!(entry.breaks().armed());
    }

    #[test]
    fn remove_while_running_raises_stop_and_keeps_the_holder_alive() {
        let reg = Registry::new();
        reg.insert("a", boot()).unwrap();
        let entry = reg.get("a").unwrap();
        let guard = entry.lock("a").expect("runner holds the lock");
        let removed = reg.remove("a").expect("destroy while running");
        assert!(removed.stop().is_requested(), "runner's slice will be its last");
        assert!(reg.is_empty(), "name is free immediately");
        drop(guard);
    }

    #[test]
    fn idle_sweep_reaps_only_idle_unlocked_sessions() {
        let reg = Registry::new();
        reg.insert("old", boot()).unwrap();
        reg.insert("busy", boot()).unwrap();
        assert!(reg.sweep_idle().is_empty(), "sweep disabled by default");
        reg.set_idle_timeout(Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(10));
        let busy = reg.get("busy").unwrap();
        let _guard = busy.lock("busy").unwrap();
        let swept = reg.sweep_idle();
        assert_eq!(swept, vec!["old".to_owned()]);
        assert_eq!(reg.names(), vec!["busy".to_owned()], "locked sessions survive");
        reg.set_idle_timeout(None);
        assert!(reg.sweep_idle().is_empty());
    }
}
