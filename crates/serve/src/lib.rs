//! # vpdift-serve — the live VP introspection server
//!
//! A long-running process holding many named VP sessions in a shared
//! [`Registry`] and speaking the line-oriented `taintvp-serve/v2` JSON
//! protocol over stdio or TCP (see `docs/SERVE.md` for the message
//! reference; v1 clients negotiate down via `hello`). Each session is a
//! full [`Soc`](vpdift_soc::Soc) — plain or tainted, interpreter or block
//! cache, configured through one [`ExecConfig`](vpdift_soc::ExecConfig) —
//! with a [`StreamSink`](vpdift_obs::StreamSink) attached, so a client
//! can:
//!
//! * `create` a VP from assembly + policy source and keep it warm,
//! * `step`/`run`/`until` it in resumable slices,
//! * `read` registers, memory bytes, and per-byte tag sets,
//! * set taint `watch`points (tainted data at a named sink, tag-set
//!   changes over an address range, policy violations) and
//!   `break`points (PC or retired-instruction count) that pause the
//!   guest mid-run via the cooperative stop flag,
//! * `stop` a run in flight — including one started by *another*
//!   connection, since sessions belong to the registry, not to the
//!   connection that created them,
//! * `subscribe` to filtered [`ObsEvent`](vpdift_obs::ObsEvent)s and
//!   flow-graph deltas streamed *while the guest runs*, and
//! * ask for a live `explain` — the shortest recorded source→sink path —
//!   without waiting for a violation.
//!
//! The transport-free core is [`Connection::handle_line`] (wrapped by
//! [`Server::handle_line`]); `taintvp-run serve` wraps it around stdio or
//! a threaded TCP listener with one connection per client.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod metrics;
pub mod proto;
mod registry;
mod server;
mod session;

pub use metrics::{ServeMetrics, SessionStats};
pub use proto::{ErrorCode, ServeError, Version, SCHEMA, SCHEMA_V2};
pub use registry::{Registry, SessionEntry};
pub use server::{Connection, Control, Server};
pub use session::{ByteRead, CreateOpts, RegRead, Session, DEFAULT_MAX_STEPS, UNTIL_CAP};
