//! # vpdift-serve — the live VP introspection server
//!
//! A long-running process holding many named VP sessions and speaking the
//! line-oriented `taintvp-serve/v1` JSON protocol over stdio or TCP (see
//! `docs/SERVE.md` for the message reference). Each session is a full
//! [`Soc`](vpdift_soc::Soc) — plain or tainted, interpreter or block
//! cache — with a [`StreamSink`](vpdift_obs::StreamSink) attached, so a
//! client can:
//!
//! * `create` a VP from assembly + policy source and keep it warm,
//! * `step`/`run`/`until` it in resumable slices,
//! * `read` registers, memory bytes, and per-byte tag sets,
//! * set taint `watch`points (tainted data at a named sink, tag-set
//!   changes over an address range, policy violations) that pause the
//!   guest mid-run via the cooperative stop flag,
//! * `subscribe` to filtered [`ObsEvent`](vpdift_obs::ObsEvent)s and
//!   flow-graph deltas streamed *while the guest runs*, and
//! * ask for a live `explain` — the shortest recorded source→sink path —
//!   without waiting for a violation.
//!
//! The transport-free core is [`Server::handle_line`]; `taintvp-run
//! serve` wraps it around stdio or a TCP listener.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod metrics;
pub mod proto;
mod server;
mod session;

pub use metrics::{ServeMetrics, SessionStats};
pub use proto::{ErrorCode, ServeError, SCHEMA};
pub use server::{Control, Server};
pub use session::{ByteRead, CreateOpts, RegRead, Session, DEFAULT_MAX_STEPS, UNTIL_CAP};
