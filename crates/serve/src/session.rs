//! One live VP under server control: a [`Soc`] in either taint mode with
//! a [`StreamSink`] attached, plus the policy's atom table for rendering
//! tags and explanations.
//!
//! Sessions are resumable by construction: `run` executes a bounded slice
//! and the underlying [`StopFlag`] cooperative-stop mechanism means a
//! watchpoint hit returns [`SocExit::Stopped`] with all architectural
//! state intact — the next `run` continues from the exact stop point.

use vpdift_asm::{parse_asm, Program, Reg};
use vpdift_core::{AtomTable, Tag};
use vpdift_loader::Elf32;
use vpdift_obs::{
    flowgraph, BreakHit, BreakKind, BreakSet, Breakpoint, Recorder, StopFlag, StreamItem,
    StreamSink, Watch, WatchKind,
};
use vpdift_rv32::{ExecMode, Plain, Tainted, Word};
use vpdift_soc::{ExecConfig, ExecConfigError, Soc, SocExit};
use vpdift_sync::{shared, Shared};

use crate::proto::{ErrorCode, ServeError};

/// Default per-call instruction budget when a request names none.
pub const DEFAULT_MAX_STEPS: u64 = 1_000_000;

/// Hard ceiling for `until` (matches the CLI's default instruction cap).
pub const UNTIL_CAP: u64 = 100_000_000;

/// Flight-recorder ring capacity for server sessions.
const RING_CAP: usize = 64;

/// Prefix marking a `create` program field as a hex-encoded ELF32 image
/// (JSON strings cannot carry raw binary, so clients hex-encode the file:
/// `"program": "elf-hex:7f454c46..."`).
pub const ELF_HEX_PREFIX: &str = "elf-hex:";

/// Options extracted from a `create` request. Everything except the
/// program — policy, mode, engine, enforce, quantum, ram_size — rides in
/// the shared [`ExecConfig`], so serve validates exactly what the CLI and
/// fleet validate.
#[derive(Clone, Debug, Default)]
pub struct CreateOpts {
    /// Guest program: assembly source, or a hex-encoded ELF32 image when
    /// prefixed with [`ELF_HEX_PREFIX`].
    pub program: String,
    /// How to build and run the VP (one parse/validate path for every
    /// entry point — see [`ExecConfig`]).
    pub exec: ExecConfig,
}

/// Decodes an even-length hex string (no separators) into bytes.
fn decode_hex(hex: &str) -> Result<Vec<u8>, &'static str> {
    let hex = hex.trim();
    if !hex.len().is_multiple_of(2) {
        return Err("elf-hex payload has odd length");
    }
    let mut out = Vec::with_capacity(hex.len() / 2);
    for pair in hex.as_bytes().chunks_exact(2) {
        let s = core::str::from_utf8(pair).map_err(|_| "elf-hex payload is not ASCII hex")?;
        out.push(u8::from_str_radix(s, 16).map_err(|_| "elf-hex payload is not ASCII hex")?);
    }
    Ok(out)
}

/// The mode-erased SoC: servers hold many sessions of mixed modes.
enum AnySoc {
    Plain(Soc<Plain, StreamSink>),
    Tainted(Soc<Tainted, StreamSink>),
}

/// Dispatches a method call to whichever mode the session runs in.
macro_rules! with_soc {
    ($sess:expr, $soc:ident => $body:expr) => {
        match &mut $sess.soc {
            AnySoc::Plain($soc) => $body,
            AnySoc::Tainted($soc) => $body,
        }
    };
}

/// One register as reported by `read {"what":"regs"}`.
#[derive(Clone, Debug)]
pub struct RegRead {
    /// ABI name (`a0`, `sp`, …).
    pub name: String,
    /// Current value.
    pub value: u32,
    /// Current tag (always empty in plain mode).
    pub tag: Tag,
}

/// One byte as reported by `read {"what":"mem"|"tags"}`.
#[derive(Clone, Debug)]
pub struct ByteRead {
    /// Byte value.
    pub value: u8,
    /// Byte tag (always empty in plain mode).
    pub tag: Tag,
}

/// A live VP session.
pub struct Session {
    soc: AnySoc,
    sink: Shared<StreamSink>,
    stop: StopFlag,
    breaks: BreakSet,
    atoms: AtomTable,
    tainted: bool,
    engine: ExecMode,
    quantum: u32,
}

impl Session {
    /// Assembles `opts.program` (or decodes + parses a hex-encoded ELF32
    /// image, see [`ELF_HEX_PREFIX`]), parses the policy, and boots a
    /// fresh VP with a [`StreamSink`] attached.
    ///
    /// # Errors
    /// [`ErrorCode::BadProgram`] / [`ErrorCode::BadPolicy`] with the
    /// parser's (or loader's) message; [`ErrorCode::BadRequest`] for
    /// out-of-range exec limits (bad `ram_size`/`quantum` — rejected
    /// here by [`ExecConfig::validate`] instead of panicking the server
    /// inside SoC construction).
    pub fn create(opts: &CreateOpts) -> Result<Session, ServeError> {
        let bad = |msg: String| ServeError::new(ErrorCode::BadProgram, msg);
        let (program, elf): (Program, Option<Elf32>) =
            match opts.program.strip_prefix(ELF_HEX_PREFIX) {
                Some(hex) => {
                    let bytes = decode_hex(hex).map_err(|e| bad(e.to_owned()))?;
                    let elf = Elf32::parse(&bytes).map_err(|e| bad(e.to_string()))?;
                    let program = elf.to_program().map_err(|e| bad(e.to_string()))?;
                    (program, Some(elf))
                }
                None => (parse_asm(&opts.program, 0).map_err(|e| bad(e.to_string()))?, None),
            };
        let (builder, atoms) = opts.exec.resolve().map_err(|e| {
            let code = match e {
                ExecConfigError::BadPolicy(_) => ErrorCode::BadPolicy,
                _ => ErrorCode::BadRequest,
            };
            ServeError::new(code, e.to_string())
        })?;

        let stop = StopFlag::new();
        let breaks = BreakSet::new();
        let recorder = Recorder::new(RING_CAP)
            .with_symbols(vpdift_obs::SymbolMap::from_program(&program))
            .with_flow_deltas();
        let sink = shared(StreamSink::new(recorder, stop.clone()));

        let cfg = builder
            .sensor_thread(false)
            .stop_flag(stop.clone())
            .breakpoints(breaks.clone())
            .build();
        let quantum = cfg.quantum;

        // Boot: ELF images map segment-by-segment (BSS zeroed, load
        // errors reported as bad_program); assembly uses the flat image.
        fn boot<M: vpdift_rv32::TaintMode>(
            soc: &mut Soc<M, StreamSink>,
            program: &Program,
            elf: &Option<Elf32>,
        ) -> Result<(), ServeError> {
            match elf {
                Some(e) => soc
                    .load_elf(e)
                    .map_err(|e| ServeError::new(ErrorCode::BadProgram, e.to_string())),
                None => {
                    soc.load_program(program);
                    Ok(())
                }
            }
        }
        let soc = if opts.exec.tainted {
            let mut soc: Soc<Tainted, StreamSink> = Soc::with_obs(cfg, sink.clone());
            boot(&mut soc, &program, &elf)?;
            AnySoc::Tainted(soc)
        } else {
            let mut soc: Soc<Plain, StreamSink> = Soc::with_obs(cfg, sink.clone());
            boot(&mut soc, &program, &elf)?;
            AnySoc::Plain(soc)
        };

        Ok(Session {
            soc,
            sink,
            stop,
            breaks,
            atoms,
            tainted: opts.exec.tainted,
            engine: opts.exec.engine,
            quantum,
        })
    }

    /// `"tainted"` or `"plain"`.
    pub fn mode(&self) -> &'static str {
        if self.tainted {
            "tainted"
        } else {
            "plain"
        }
    }

    /// `"interp"` or `"block"`.
    pub fn engine(&self) -> &'static str {
        match self.engine {
            ExecMode::Interp => "interp",
            ExecMode::BlockCache => "block",
        }
    }

    /// The policy's atom table.
    pub fn atoms(&self) -> &AtomTable {
        &self.atoms
    }

    /// Instructions retired so far.
    pub fn instret(&mut self) -> u64 {
        with_soc!(self, soc => soc.instret())
    }

    /// Simulated time in picoseconds.
    pub fn now_ps(&mut self) -> u64 {
        with_soc!(self, soc => soc.now().as_ps())
    }

    /// Architectural state digest (CPU ^ RAM), for engine-diff parity.
    pub fn digest(&mut self) -> u64 {
        with_soc!(self, soc => soc.state_digest())
    }

    /// Runs up to `max_steps` instructions, draining buffered stream
    /// items to `emit` between slices so a subscribed client sees events
    /// *while the guest runs*, not after. Slices are quantum multiples,
    /// which keeps a sliced run bit-identical to one batch `Soc::run`
    /// call (watch stops land on step boundaries and remain resumable).
    pub fn run(&mut self, max_steps: u64, emit: &mut dyn FnMut(Vec<StreamItem>)) -> SocExit {
        let slice = (self.quantum as u64).max(1) * 8;
        let mut remaining = max_steps;
        loop {
            let budget = remaining.min(slice);
            let exit = with_soc!(self, soc => soc.run(budget));
            let items = self.sink.borrow_mut().drain();
            if !items.is_empty() {
                emit(items);
            }
            remaining = remaining.saturating_sub(budget);
            match exit {
                SocExit::InstrLimit if remaining > 0 => continue,
                other => return other,
            }
        }
    }

    /// Runs until the guest exits, a watch fires, or `cap` instructions
    /// have retired — `run` without a meaningful budget.
    pub fn run_until(
        &mut self,
        cap: Option<u64>,
        emit: &mut dyn FnMut(Vec<StreamItem>),
    ) -> SocExit {
        self.run(cap.unwrap_or(UNTIL_CAP), emit)
    }

    /// All 32 registers plus the PC.
    pub fn read_regs(&mut self) -> (u32, Vec<RegRead>) {
        with_soc!(self, soc => {
            let cpu = soc.cpu();
            let regs = Reg::ALL
                .iter()
                .map(|&r| {
                    let w = cpu.reg(r);
                    RegRead { name: r.to_string(), value: w.val(), tag: w.tag() }
                })
                .collect();
            (cpu.pc(), regs)
        })
    }

    /// `len` bytes of RAM starting at `addr`; `None` entries are out of
    /// range (MMIO space is not readable through this call).
    pub fn read_mem(&mut self, addr: u32, len: usize) -> Vec<Option<ByteRead>> {
        with_soc!(self, soc => {
            let ram = soc.ram().borrow();
            (0..len)
                .map(|i| {
                    let off = addr.wrapping_add(i as u32);
                    ram.byte_at(off).map(|(value, tag)| ByteRead { value, tag })
                })
                .collect()
        })
    }

    /// Adds a watchpoint; returns its id.
    pub fn add_watch(&mut self, kind: WatchKind) -> u32 {
        self.sink.borrow_mut().add_watch(kind)
    }

    /// Removes a watchpoint; `false` when the id is unknown.
    pub fn remove_watch(&mut self, id: u32) -> bool {
        self.sink.borrow_mut().remove_watch(id)
    }

    /// Current watchpoints (id + kind).
    pub fn watches(&self) -> Vec<Watch> {
        self.sink.borrow().watches().map(|(w, _hits)| w.clone()).collect()
    }

    /// Subscribes to event kinds (empty list = every kind) and/or flow
    /// deltas.
    pub fn subscribe(&mut self, events: Option<Vec<String>>, flow: bool) {
        let mut sink = self.sink.borrow_mut();
        match events {
            Some(kinds) => sink.subscribe_events(kinds),
            None => sink.unsubscribe_events(),
        }
        sink.subscribe_flow(flow);
    }

    /// Drains whatever the sink buffered since the last drain.
    pub fn drain(&mut self) -> Vec<StreamItem> {
        self.sink.borrow_mut().drain()
    }

    /// Recorded (non-enforced) violations so far.
    pub fn violations(&self) -> usize {
        self.sink.borrow().recorder().violations().len()
    }

    /// The live source→sink explanation. With `atom` set, renders the
    /// shortest recorded path of that atom *right now* — no violation
    /// needed; without it, explains the last violation (as `--explain`
    /// does post-mortem).
    pub fn explain(&mut self, atom: Option<&str>) -> Result<Option<String>, ServeError> {
        let sink = self.sink.borrow();
        let rec = sink.recorder();
        match atom {
            None => Ok(rec.explain(&self.atoms)),
            Some(name) => {
                let tag = self.atoms.tag(name).ok_or_else(|| {
                    ServeError::new(
                        ErrorCode::BadRequest,
                        format!("unknown atom `{name}` in this session's policy"),
                    )
                })?;
                Ok(rec.provenance().shortest_path(tag).map(|path| {
                    flowgraph::render_path(&path, &self.atoms, rec.symbols(), &|_| None)
                }))
            }
        }
    }

    /// A clone of the session's cooperative stop flag. Raising it makes
    /// the current run slice the last one — from the same connection
    /// (client vanished mid-run) or any other (the v2 `stop` command).
    pub fn stop_flag(&self) -> StopFlag {
        self.stop.clone()
    }

    /// A clone of the session's breakpoint set — shared with the SoC run
    /// loop, armable from any thread.
    pub fn break_set(&self) -> BreakSet {
        self.breaks.clone()
    }

    /// Adds a PC or instruction-count breakpoint; returns its id.
    pub fn add_break(&self, kind: BreakKind) -> u32 {
        self.breaks.add(kind)
    }

    /// Removes breakpoint `id`; `false` when the id is unknown.
    pub fn remove_break(&self, id: u32) -> bool {
        self.breaks.remove(id)
    }

    /// The registered breakpoints, in registration order.
    pub fn breaks(&self) -> Vec<Breakpoint> {
        self.breaks.list()
    }

    /// The record of the most recent breakpoint hit, consumed once —
    /// the serve layer turns it into an `"ev":"break"` stream line.
    pub fn take_break_hit(&self) -> Option<BreakHit> {
        self.breaks.take_hit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP_LEAK: &str = "
        li   s0, 0x2000
        li   s1, 0x10000000
        li   s2, 4
loop:
        lbu  t0, 0(s0)
        sb   t0, 0(s1)
        addi s0, s0, 1
        addi s2, s2, -1
        bnez s2, loop
        ebreak
";

    const POLICY: &str = "
policy serve-test
atom secret
classify 0x2000 +16 secret
sink uart.tx public
";

    fn leak_opts() -> CreateOpts {
        CreateOpts {
            program: LOOP_LEAK.into(),
            exec: ExecConfig {
                policy: Some(POLICY.into()),
                enforce: vpdift_core::EnforceMode::Record,
                ram_size: Some(64 * 1024),
                ..ExecConfig::default()
            },
        }
    }

    #[test]
    fn create_rejects_bad_program_policy_and_limits() {
        let bad_prog = CreateOpts { program: "not an opcode".into(), ..CreateOpts::default() };
        let err = Session::create(&bad_prog).err().expect("bad program rejected");
        assert_eq!(err.code, ErrorCode::BadProgram);

        let bad_policy = CreateOpts {
            program: "ebreak".into(),
            exec: ExecConfig { policy: Some("classify nonsense".into()), ..ExecConfig::default() },
        };
        let err = Session::create(&bad_policy).err().expect("bad policy rejected");
        assert_eq!(err.code, ErrorCode::BadPolicy);

        // A huge ram_size used to reach the assertion inside SoC
        // construction and panic the server; ExecConfig rejects it first.
        let bad_ram = CreateOpts {
            program: "ebreak".into(),
            exec: ExecConfig { ram_size: Some(usize::MAX), ..ExecConfig::default() },
        };
        let err = Session::create(&bad_ram).err().expect("bad ram_size rejected");
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn watch_stops_run_and_session_resumes() {
        let mut sess = Session::create(&leak_opts()).expect("session boots");
        let id = sess.add_watch(WatchKind::Sink { site: "uart.tx".into(), atom: None });
        sess.subscribe(Some(vec![]), true);

        let mut streamed = Vec::new();
        let exit = sess.run(DEFAULT_MAX_STEPS, &mut |items| streamed.extend(items));
        assert_eq!(exit, SocExit::Stopped, "watch interrupts the run");
        assert!(
            streamed.iter().any(|i| matches!(i, StreamItem::Watch { id: w, .. } if *w == id)),
            "watch hit streamed"
        );
        assert!(streamed.iter().any(|i| matches!(i, StreamItem::Flow(_))), "flow deltas streamed");

        // The session is live: registers and memory are inspectable and
        // the explanation names the flow while the guest is paused.
        let (pc, regs) = sess.read_regs();
        assert!(pc != 0, "paused mid-program");
        assert_eq!(regs.len(), 32);
        let secret = &sess.read_mem(0x2000, 4);
        assert!(secret.iter().all(|b| b.is_some()));
        let explain = sess.explain(Some("secret")).expect("atom known");
        let text = explain.expect("path recorded");
        assert!(text.contains("flow of"), "{text}");

        // Resume: the watch fires once per leaked byte, then the guest
        // ebreaks once the watch is removed.
        let exit = sess.run(DEFAULT_MAX_STEPS, &mut |_| {});
        assert_eq!(exit, SocExit::Stopped);
        assert!(sess.remove_watch(id));
        let exit = sess.run_until(None, &mut |_| {});
        assert_eq!(exit, SocExit::Break);
    }

    #[test]
    fn breakpoints_stop_before_the_instruction_and_resume_on_both_engines() {
        for engine in [ExecMode::Interp, ExecMode::BlockCache] {
            let mut opts = leak_opts();
            opts.exec.engine = engine;
            let mut sess = Session::create(&opts).expect("session boots");

            // Stop mid-loop by instruction count: the breakpoint fires
            // *before* instruction 13 retires.
            let id = sess.add_break(BreakKind::Instret(12));
            let exit = sess.run(DEFAULT_MAX_STEPS, &mut |_| {});
            assert_eq!(exit, SocExit::Stopped, "engine {engine:?}");
            assert_eq!(sess.instret(), 12, "engine {engine:?}: stopped before executing");
            let hit = sess.take_break_hit().expect("hit recorded");
            assert_eq!((hit.id, hit.instret), (id, 12));
            assert!(sess.breaks().is_empty(), "instret breaks are one-shot");

            // A PC breakpoint at the paused instruction: resuming skips
            // it once (no instant re-fire), then it catches the next
            // loop iteration at the same PC.
            let (pc, _) = sess.read_regs();
            let pcid = sess.add_break(BreakKind::Pc(pc));
            let exit = sess.run(DEFAULT_MAX_STEPS, &mut |_| {});
            assert_eq!(exit, SocExit::Stopped, "engine {engine:?}");
            let hit = sess.take_break_hit().expect("pc hit recorded");
            assert_eq!((hit.id, hit.pc), (pcid, pc));
            assert!(hit.instret > 12, "a full loop iteration ran in between");

            assert!(sess.remove_break(pcid));
            assert!(!sess.remove_break(pcid), "second removal reports missing");
            let exit = sess.run_until(None, &mut |_| {});
            assert_eq!(exit, SocExit::Break, "engine {engine:?}: runs to completion");
        }
    }

    #[test]
    fn sliced_run_digest_matches_batch_run() {
        for engine in [ExecMode::Interp, ExecMode::BlockCache] {
            let mut opts = leak_opts();
            opts.exec.engine = engine;
            // Many tiny budgets until the guest ebreaks: slicing must not
            // perturb architectural state relative to one batch run.
            let mut sliced = Session::create(&opts).expect("session boots");
            let mut emitted = Vec::new();
            let exit = loop {
                match sliced.run(3, &mut |items| emitted.extend(items)) {
                    SocExit::InstrLimit => continue,
                    other => break other,
                }
            };
            assert_eq!(exit, SocExit::Break, "engine {engine:?}");

            let mut batch = Session::create(&opts).expect("session boots");
            assert_eq!(batch.run(DEFAULT_MAX_STEPS, &mut |_| {}), SocExit::Break);
            assert_eq!(
                sliced.instret(),
                batch.instret(),
                "engine {engine:?}: instruction counts diverged"
            );
            assert_eq!(
                sliced.digest(),
                batch.digest(),
                "engine {engine:?}: sliced and batch runs diverged"
            );
        }
    }
}
