//! The `taintvp-serve/v2` wire protocol: one JSON document per line.
//!
//! Requests are objects with a `"cmd"` string and an optional numeric
//! `"id"` the server echoes back. Responses are `{"id":N,"ok":true,...}`
//! or `{"id":N,"ok":false,"error":{"code":"...","message":"..."}}`.
//! Streamed lines (events, flow deltas, watch hits, breakpoint hits)
//! carry an `"ev"` key instead of `"ok"` so clients can split them from
//! responses with one key test.
//!
//! v2 is a strict superset of v1: every v1 command keeps its exact
//! response shape (new response fields are additive and rendered only
//! when non-empty), and the v2-only verbs (`hello`, `stop`, `break`,
//! `unbreak`) are rejected as `unknown_cmd` on a connection pinned to v1
//! via `hello` — see [`Version`].

use vpdift_obs::export::{escape, event_fields, tag_json};
use vpdift_obs::{FlowDelta, HopKind, StreamItem};

/// The v1 schema tag, still accepted by `hello` version negotiation.
pub const SCHEMA: &str = "taintvp-serve/v1";

/// The current schema tag, sent in the greeting line and documented in
/// docs/SERVE.md.
pub const SCHEMA_V2: &str = "taintvp-serve/v2";

/// A negotiated protocol version. Every connection starts at
/// [`Version::V2`]; a `hello` naming the v1 schema pins the connection
/// back to v1 (v2-only verbs then report `unknown_cmd`, exactly as a v1
/// server would have).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Version {
    /// `taintvp-serve/v1`: the PR 5 protocol, golden-transcript pinned.
    V1,
    /// `taintvp-serve/v2`: concurrent clients, `stop`, breakpoints.
    #[default]
    V2,
}

impl Version {
    /// The schema tag this version answers to.
    pub fn schema(self) -> &'static str {
        match self {
            Version::V1 => SCHEMA,
            Version::V2 => SCHEMA_V2,
        }
    }

    /// Parses a `hello` version string.
    pub fn from_schema(s: &str) -> Option<Version> {
        match s {
            _ if s == SCHEMA => Some(Version::V1),
            _ if s == SCHEMA_V2 => Some(Version::V2),
            _ => None,
        }
    }
}

/// Typed protocol error categories; the wire code is [`ErrorCode::code`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The JSON was valid but the request shape was not (missing or
    /// ill-typed fields).
    BadRequest,
    /// Unknown `"cmd"` verb.
    UnknownCmd,
    /// The named session does not exist.
    UnknownSession,
    /// `create` with a session name that is already in use.
    DuplicateSession,
    /// The submitted program failed to assemble.
    BadProgram,
    /// The submitted policy failed to parse.
    BadPolicy,
    /// A malformed watchpoint specification.
    BadWatch,
    /// The client connection failed mid-operation.
    Io,
    /// The session is locked by a run in progress on another connection
    /// (v2): interrupt it with `stop` instead of waiting.
    Busy,
}

impl ErrorCode {
    /// The wire representation.
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownCmd => "unknown_cmd",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::DuplicateSession => "duplicate_session",
            ErrorCode::BadProgram => "bad_program",
            ErrorCode::BadPolicy => "bad_policy",
            ErrorCode::BadWatch => "bad_watch",
            ErrorCode::Io => "io",
            ErrorCode::Busy => "busy",
        }
    }
}

/// A protocol-level failure: every fallible server path funnels into this
/// so clients always get a typed error line, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// The category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// Builds an error with a formatted message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServeError { code, message: message.into() }
    }
}

/// Renders the `"id":N,` prefix (nothing when the request carried no id).
fn id_prefix(id: Option<u64>) -> String {
    match id {
        Some(id) => format!("\"id\":{id},"),
        None => String::new(),
    }
}

/// A success response line. `fields` is the pre-rendered body (may be
/// empty) *without* surrounding braces or a leading comma.
pub fn ok_line(id: Option<u64>, fields: &str) -> String {
    if fields.is_empty() {
        format!("{{{}\"ok\":true}}", id_prefix(id))
    } else {
        format!("{{{}\"ok\":true,{fields}}}", id_prefix(id))
    }
}

/// An error response line.
pub fn err_line(id: Option<u64>, err: &ServeError) -> String {
    format!(
        "{{{}\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
        id_prefix(id),
        err.code.code(),
        escape(&err.message)
    )
}

/// The greeting line written once per connection before any response:
/// current schema, the older schemas `hello` can pin, and the sessions
/// already live in the registry.
pub fn greeting(sessions: &[&str]) -> String {
    let names: Vec<String> = sessions.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!(
        "{{\"schema\":\"{SCHEMA_V2}\",\"compat\":[\"{SCHEMA}\"],\"sessions\":[{}]}}",
        names.join(",")
    )
}

/// Renders one streamed item as an `"ev"` line tagged with the session it
/// came from.
pub fn stream_line(session: &str, item: &StreamItem) -> String {
    let sess = escape(session);
    match item {
        StreamItem::Event(te) => format!(
            "{{\"ev\":\"obs\",\"session\":\"{sess}\",\"t_ps\":{},\"kind\":\"{}\",{}}}",
            te.time.as_ps(),
            te.event.label(),
            event_fields(&te.event)
        ),
        StreamItem::Flow(delta) => {
            format!("{{\"ev\":\"flow\",\"session\":\"{sess}\",{}}}", flow_fields(delta))
        }
        StreamItem::Watch { id, reason, time } => format!(
            "{{\"ev\":\"watch\",\"session\":\"{sess}\",\"watch\":{id},\"reason\":\"{}\",\"t_ps\":{}}}",
            escape(reason),
            time.as_ps()
        ),
        StreamItem::Break { id, reason, pc, instret } => format!(
            "{{\"ev\":\"break\",\"session\":\"{sess}\",\"break\":{id},\"reason\":\"{}\",\"pc\":{pc},\"instret\":{instret}}}",
            escape(reason)
        ),
    }
}

fn opt_u32(v: Option<u32>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".into(),
    }
}

fn flow_fields(delta: &FlowDelta) -> String {
    match delta {
        FlowDelta::Origin { atom, source, addr } => format!(
            "\"delta\":\"origin\",\"atom\":{atom},\"source\":\"{}\",\"addr\":{}",
            escape(source),
            opt_u32(*addr)
        ),
        FlowDelta::Hop { atom, hop } => {
            let kind = match &hop.kind {
                HopKind::Reg(r) => format!("\"reg\",\"reg\":{r}"),
                HopKind::Tlm { bus, target } => {
                    format!("\"tlm\",\"bus\":\"{}\",\"target\":\"{}\"", escape(bus), escape(target))
                }
                other => format!("\"{}\"", other.label()),
            };
            format!(
                "\"delta\":\"hop\",\"atom\":{atom},\"kind\":{kind},\"pc\":{},\"addr\":{},\"t_ps\":{}",
                opt_u32(hop.pc),
                opt_u32(hop.addr),
                hop.time.as_ps()
            )
        }
        FlowDelta::Sink { atom, site, pc } => format!(
            "\"delta\":\"sink\",\"atom\":{atom},\"site\":\"{}\",\"pc\":{}",
            escape(site),
            opt_u32(*pc)
        ),
    }
}

/// Renders a tag as its JSON atom list — re-exported spelling for the
/// session layer.
pub fn tag_field(tag: vpdift_core::Tag) -> String {
    tag_json(tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_kernel::SimTime;
    use vpdift_obs::export::validate_json;
    use vpdift_obs::{Hop, ObsEvent, TimedEvent};

    #[test]
    fn response_lines_are_valid_json() {
        let ok = ok_line(Some(7), "\"exit\":\"break\",\"instret\":42");
        validate_json(&ok).expect("ok line parses");
        assert!(ok.starts_with("{\"id\":7,\"ok\":true,"));
        let bare = ok_line(None, "");
        assert_eq!(bare, "{\"ok\":true}");
        let err = err_line(Some(1), &ServeError::new(ErrorCode::BadWatch, "no \"site\""));
        validate_json(&err).expect("error line parses");
        assert!(err.contains("\"code\":\"bad_watch\""), "{err}");
        validate_json(&greeting(&["a", "b"])).expect("greeting parses");
    }

    #[test]
    fn version_negotiation_and_greeting_compat() {
        assert_eq!(Version::default(), Version::V2, "connections start at v2");
        assert_eq!(Version::from_schema(SCHEMA), Some(Version::V1));
        assert_eq!(Version::from_schema(SCHEMA_V2), Some(Version::V2));
        assert_eq!(Version::from_schema("taintvp-serve/v3"), None);
        assert_eq!(Version::V1.schema(), SCHEMA);
        let g = greeting(&["a"]);
        assert!(g.contains("\"schema\":\"taintvp-serve/v2\""), "{g}");
        assert!(g.contains("\"compat\":[\"taintvp-serve/v1\"]"), "{g}");
    }

    #[test]
    fn stream_lines_are_valid_json() {
        let ev = StreamItem::Event(TimedEvent {
            time: SimTime::from_ns(3),
            event: ObsEvent::Trap { cause: 2, pc: 0x40, irq: false },
        });
        let flow = StreamItem::Flow(FlowDelta::Hop {
            atom: 1,
            hop: Hop {
                kind: HopKind::Tlm { bus: "bus0".into(), target: "uart".into() },
                pc: None,
                addr: Some(0x1000_0000),
                time: SimTime::from_ns(5),
                repeats: 1,
            },
        });
        let watch = StreamItem::Watch {
            id: 2,
            reason: "sink uart.tx tagged".into(),
            time: SimTime::from_ns(9),
        };
        let brk = StreamItem::Break {
            id: 1,
            reason: "pc=0x00000040".into(),
            pc: 0x40,
            instret: 17,
        };
        for item in [&ev, &flow, &watch, &brk] {
            let line = stream_line("s1", item);
            validate_json(&line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
            assert!(line.contains("\"ev\":\""), "{line}");
        }
    }
}
