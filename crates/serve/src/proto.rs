//! The `taintvp-serve/v1` wire protocol: one JSON document per line.
//!
//! Requests are objects with a `"cmd"` string and an optional numeric
//! `"id"` the server echoes back. Responses are `{"id":N,"ok":true,...}`
//! or `{"id":N,"ok":false,"error":{"code":"...","message":"..."}}`.
//! Streamed lines (events, flow deltas, watch hits) carry an `"ev"` key
//! instead of `"ok"` so clients can split them from responses with one
//! key test.

use vpdift_obs::export::{escape, event_fields, tag_json};
use vpdift_obs::{FlowDelta, HopKind, StreamItem};

/// Schema tag sent in the greeting line and documented in docs/SERVE.md.
pub const SCHEMA: &str = "taintvp-serve/v1";

/// Typed protocol error categories; the wire code is [`ErrorCode::code`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The JSON was valid but the request shape was not (missing or
    /// ill-typed fields).
    BadRequest,
    /// Unknown `"cmd"` verb.
    UnknownCmd,
    /// The named session does not exist.
    UnknownSession,
    /// `create` with a session name that is already in use.
    DuplicateSession,
    /// The submitted program failed to assemble.
    BadProgram,
    /// The submitted policy failed to parse.
    BadPolicy,
    /// A malformed watchpoint specification.
    BadWatch,
    /// The client connection failed mid-operation.
    Io,
}

impl ErrorCode {
    /// The wire representation.
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownCmd => "unknown_cmd",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::DuplicateSession => "duplicate_session",
            ErrorCode::BadProgram => "bad_program",
            ErrorCode::BadPolicy => "bad_policy",
            ErrorCode::BadWatch => "bad_watch",
            ErrorCode::Io => "io",
        }
    }
}

/// A protocol-level failure: every fallible server path funnels into this
/// so clients always get a typed error line, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// The category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// Builds an error with a formatted message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServeError { code, message: message.into() }
    }
}

/// Renders the `"id":N,` prefix (nothing when the request carried no id).
fn id_prefix(id: Option<u64>) -> String {
    match id {
        Some(id) => format!("\"id\":{id},"),
        None => String::new(),
    }
}

/// A success response line. `fields` is the pre-rendered body (may be
/// empty) *without* surrounding braces or a leading comma.
pub fn ok_line(id: Option<u64>, fields: &str) -> String {
    if fields.is_empty() {
        format!("{{{}\"ok\":true}}", id_prefix(id))
    } else {
        format!("{{{}\"ok\":true,{fields}}}", id_prefix(id))
    }
}

/// An error response line.
pub fn err_line(id: Option<u64>, err: &ServeError) -> String {
    format!(
        "{{{}\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
        id_prefix(id),
        err.code.code(),
        escape(&err.message)
    )
}

/// The greeting line written once per connection before any response.
pub fn greeting(sessions: &[&str]) -> String {
    let names: Vec<String> = sessions.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("{{\"schema\":\"{SCHEMA}\",\"sessions\":[{}]}}", names.join(","))
}

/// Renders one streamed item as an `"ev"` line tagged with the session it
/// came from.
pub fn stream_line(session: &str, item: &StreamItem) -> String {
    let sess = escape(session);
    match item {
        StreamItem::Event(te) => format!(
            "{{\"ev\":\"obs\",\"session\":\"{sess}\",\"t_ps\":{},\"kind\":\"{}\",{}}}",
            te.time.as_ps(),
            te.event.label(),
            event_fields(&te.event)
        ),
        StreamItem::Flow(delta) => {
            format!("{{\"ev\":\"flow\",\"session\":\"{sess}\",{}}}", flow_fields(delta))
        }
        StreamItem::Watch { id, reason, time } => format!(
            "{{\"ev\":\"watch\",\"session\":\"{sess}\",\"watch\":{id},\"reason\":\"{}\",\"t_ps\":{}}}",
            escape(reason),
            time.as_ps()
        ),
    }
}

fn opt_u32(v: Option<u32>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".into(),
    }
}

fn flow_fields(delta: &FlowDelta) -> String {
    match delta {
        FlowDelta::Origin { atom, source, addr } => format!(
            "\"delta\":\"origin\",\"atom\":{atom},\"source\":\"{}\",\"addr\":{}",
            escape(source),
            opt_u32(*addr)
        ),
        FlowDelta::Hop { atom, hop } => {
            let kind = match &hop.kind {
                HopKind::Reg(r) => format!("\"reg\",\"reg\":{r}"),
                HopKind::Tlm { bus, target } => {
                    format!("\"tlm\",\"bus\":\"{}\",\"target\":\"{}\"", escape(bus), escape(target))
                }
                other => format!("\"{}\"", other.label()),
            };
            format!(
                "\"delta\":\"hop\",\"atom\":{atom},\"kind\":{kind},\"pc\":{},\"addr\":{},\"t_ps\":{}",
                opt_u32(hop.pc),
                opt_u32(hop.addr),
                hop.time.as_ps()
            )
        }
        FlowDelta::Sink { atom, site, pc } => format!(
            "\"delta\":\"sink\",\"atom\":{atom},\"site\":\"{}\",\"pc\":{}",
            escape(site),
            opt_u32(*pc)
        ),
    }
}

/// Renders a tag as its JSON atom list — re-exported spelling for the
/// session layer.
pub fn tag_field(tag: vpdift_core::Tag) -> String {
    tag_json(tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_kernel::SimTime;
    use vpdift_obs::export::validate_json;
    use vpdift_obs::{Hop, ObsEvent, TimedEvent};

    #[test]
    fn response_lines_are_valid_json() {
        let ok = ok_line(Some(7), "\"exit\":\"break\",\"instret\":42");
        validate_json(&ok).expect("ok line parses");
        assert!(ok.starts_with("{\"id\":7,\"ok\":true,"));
        let bare = ok_line(None, "");
        assert_eq!(bare, "{\"ok\":true}");
        let err = err_line(Some(1), &ServeError::new(ErrorCode::BadWatch, "no \"site\""));
        validate_json(&err).expect("error line parses");
        assert!(err.contains("\"code\":\"bad_watch\""), "{err}");
        validate_json(&greeting(&["a", "b"])).expect("greeting parses");
    }

    #[test]
    fn stream_lines_are_valid_json() {
        let ev = StreamItem::Event(TimedEvent {
            time: SimTime::from_ns(3),
            event: ObsEvent::Trap { cause: 2, pc: 0x40, irq: false },
        });
        let flow = StreamItem::Flow(FlowDelta::Hop {
            atom: 1,
            hop: Hop {
                kind: HopKind::Tlm { bus: "bus0".into(), target: "uart".into() },
                pc: None,
                addr: Some(0x1000_0000),
                time: SimTime::from_ns(5),
                repeats: 1,
            },
        });
        let watch = StreamItem::Watch {
            id: 2,
            reason: "sink uart.tx tagged".into(),
            time: SimTime::from_ns(9),
        };
        for item in [&ev, &flow, &watch] {
            let line = stream_line("s1", item);
            validate_json(&line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
            assert!(line.contains("\"ev\":\""), "{line}");
        }
    }
}
