//! Scrapeable serve-side metrics: request counters plus per-session
//! progress gauges.
//!
//! The v2 server is multi-threaded — one thread per TCP connection over
//! a shared session registry — and every `ServeMetrics` field is already
//! a lock or an atomic, so connection threads publish into one shared
//! `Arc<ServeMetrics>` (attached once via the registry) at command
//! granularity: requests counted at dispatch, session gauges refreshed
//! after the commands that move them. The scrape endpoint renders from
//! these shared counters under short locks and never touches a session
//! itself, so a scrape can never block (or be blocked by) a guest run.
//! Gauges are at most one command stale per session.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vpdift_obs::Expo;

/// Per-session progress facts, refreshed after each state-moving command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Retired instructions so far.
    pub instret: u64,
    /// Simulated time in picoseconds.
    pub t_ps: u64,
    /// Recorded policy violations.
    pub violations: u64,
    /// `step`/`run`/`until` commands executed against this session.
    pub runs: u64,
}

/// Shared serve metrics: updated by the server thread, rendered by the
/// scrape endpoint.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests dispatched, by command name.
    requests: Mutex<BTreeMap<String, u64>>,
    /// Requests that produced a protocol error line.
    errors: AtomicU64,
    /// Live session count.
    sessions: AtomicU64,
    /// Per-session progress, keyed by session name.
    session_stats: Mutex<BTreeMap<String, SessionStats>>,
}

impl ServeMetrics {
    /// A zeroed metrics hub.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Counts one dispatched request (known commands only; unknown
    /// commands count under `unknown` so labels stay bounded).
    pub fn on_request(&self, cmd: &str) {
        let mut requests = self.requests.lock().unwrap();
        *requests.entry(cmd.to_owned()).or_insert(0) += 1;
    }

    /// Counts one request resolved as a protocol error.
    pub fn on_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the live session count.
    pub fn set_sessions(&self, n: u64) {
        self.sessions.store(n, Ordering::Relaxed);
    }

    /// Refreshes one session's progress facts.
    pub fn record_session(&self, name: &str, stats: SessionStats) {
        let mut map = self.session_stats.lock().unwrap();
        map.insert(name.to_owned(), stats);
    }

    /// Bumps the run counter for `name` and refreshes its facts.
    pub fn record_session_run(&self, name: &str, mut stats: SessionStats) {
        let mut map = self.session_stats.lock().unwrap();
        stats.runs = map.get(name).map_or(0, |s| s.runs) + 1;
        map.insert(name.to_owned(), stats);
    }

    /// Forgets a destroyed session (its series disappear from scrapes).
    pub fn drop_session(&self, name: &str) {
        self.session_stats.lock().unwrap().remove(name);
    }

    /// Renders the serve section of a `/metrics` exposition document.
    pub fn render_prom(&self, expo: &mut Expo) {
        for (cmd, n) in self.requests.lock().unwrap().iter() {
            expo.counter(
                "serve_requests_total",
                "Requests dispatched, by command.",
                &[("cmd", cmd)],
                *n,
            );
        }
        expo.counter(
            "serve_request_errors_total",
            "Requests resolved as protocol errors.",
            &[],
            self.errors.load(Ordering::Relaxed),
        );
        expo.gauge(
            "serve_sessions",
            "Live sessions in the registry.",
            &[],
            self.sessions.load(Ordering::Relaxed) as f64,
        );
        for (name, s) in self.session_stats.lock().unwrap().iter() {
            let labels: &[(&str, &str)] = &[("session", name)];
            expo.counter(
                "serve_session_instret_total",
                "Retired instructions per session.",
                labels,
                s.instret,
            );
            expo.gauge(
                "serve_session_time_ps",
                "Simulated time per session (picoseconds).",
                labels,
                s.t_ps as f64,
            );
            expo.counter(
                "serve_session_violations_total",
                "Recorded policy violations per session.",
                labels,
                s.violations,
            );
            expo.counter(
                "serve_session_runs_total",
                "step/run/until commands per session.",
                labels,
                s.runs,
            );
        }
    }

    /// A complete exposition document (convenience for scrape endpoints).
    pub fn render(&self) -> String {
        let mut expo = Expo::new();
        self.render_prom(&mut expo);
        expo.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_counts_group_by_cmd() {
        let m = ServeMetrics::new();
        m.on_request("run");
        m.on_request("run");
        m.on_request("create");
        m.on_error();
        let text = m.render();
        assert!(text.contains("serve_requests_total{cmd=\"run\"} 2"), "{text}");
        assert!(text.contains("serve_requests_total{cmd=\"create\"} 1"), "{text}");
        assert!(text.contains("serve_request_errors_total 1"), "{text}");
    }

    #[test]
    fn session_series_appear_and_disappear() {
        let m = ServeMetrics::new();
        m.set_sessions(1);
        m.record_session_run(
            "demo",
            SessionStats { instret: 500, t_ps: 1000, violations: 1, runs: 0 },
        );
        m.record_session_run(
            "demo",
            SessionStats { instret: 900, t_ps: 2000, violations: 1, runs: 0 },
        );
        let text = m.render();
        assert!(text.contains("serve_sessions 1"), "{text}");
        assert!(text.contains("serve_session_instret_total{session=\"demo\"} 900"), "{text}");
        assert!(text.contains("serve_session_runs_total{session=\"demo\"} 2"), "{text}");
        m.drop_session("demo");
        m.set_sessions(0);
        let text = m.render();
        assert!(!text.contains("session=\"demo\""), "{text}");
    }
}
