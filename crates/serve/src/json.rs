//! A minimal JSON value model for the line-oriented serve protocol.
//!
//! The workspace builds offline, so instead of serde this module carries a
//! small recursive-descent parser producing [`Value`] trees, plus the
//! accessors the protocol layer needs (`get`, `as_str`, `as_u64`, …).
//! Output is produced by hand in `proto.rs` using
//! [`vpdift_obs::export::escape`]; only *input* goes through this parser.

use std::fmt;

/// Nesting depth cap: protocol messages are flat, so anything deeper than
/// this is hostile or corrupt input, not a real request.
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other value kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as a u32, if it fits.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset of the first problem.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input line.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
/// The first syntax problem found, with its byte offset.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_owned(), at: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError { message: "invalid number".into(), at: start })?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { message: format!("invalid number `{text}`"), at: start })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the protocol;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via char_indices logic).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("truncated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_objects() {
        let v = parse(r#"{"id":3,"cmd":"run","max_steps":1024,"opts":{"deep":[1,2,-3.5]}}"#)
            .expect("parses");
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("cmd").and_then(Value::as_str), Some("run"));
        assert_eq!(v.get("max_steps").and_then(Value::as_u64), Some(1024));
        let deep = v.get("opts").and_then(|o| o.get("deep")).and_then(Value::as_arr).unwrap();
        assert_eq!(deep.len(), 3);
        assert_eq!(deep[2], Value::Num(-3.5));
    }

    #[test]
    fn resolves_escapes_and_rejects_garbage() {
        let v = parse(r#""a\n\"bA""#).expect("string parses");
        assert_eq!(v.as_str(), Some("a\n\"bA"));
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&deep).is_err(), "depth limit enforced");
    }

    #[test]
    fn numeric_accessors_guard_range_and_kind() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("4294967295").unwrap().as_u32(), Some(u32::MAX));
        assert_eq!(parse("4294967296").unwrap().as_u32(), None);
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
    }
}
