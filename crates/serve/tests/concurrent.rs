//! Concurrent-client tests of the v2 server over real TCP: two clients
//! on separate connections share one session registry — stepping distinct
//! sessions interleaved, interrupting each other's runs mid-flight with
//! `stop`, and pausing guests at breakpoints and watchpoints.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use vpdift_obs::export::escape;
use vpdift_serve::Server;

const IMMO_PROGRAM: &str = include_str!("../../../docs/examples/immo_leak.s");
const IMMO_POLICY: &str = include_str!("../../../docs/examples/immobilizer.policy");

/// A guest that spins forever — only `stop` (or a breakpoint) ends a run.
const SPIN: &str = "loop:\n    j loop\n";

/// Binds port 0 and serves on a background thread; returns the address
/// and the join handle (joins once `shutdown` lands and clients drop).
fn start_server() -> (String, thread::JoinHandle<()>) {
    let server = Server::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || {
        server.serve_listener(listener).expect("serve_listener runs");
    });
    (addr, handle)
}

/// One TCP client: send request lines, read server lines.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects and consumes the greeting line.
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client { reader: BufReader::new(stream.try_clone().expect("clone")), writer: stream };
        let greeting = c.recv();
        assert!(greeting.contains("\"schema\":\"taintvp-serve/v2\""), "{greeting}");
        c
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    /// Next server line, whatever it is (response or streamed event).
    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_owned()
    }

    /// Reads until the *response* line (skipping streamed `"ev"` lines),
    /// returning (streamed lines, response).
    fn response(&mut self) -> (Vec<String>, String) {
        let mut events = Vec::new();
        loop {
            let line = self.recv();
            if line.contains("\"ev\":\"") {
                events.push(line);
            } else {
                return (events, line);
            }
        }
    }

    /// Sends one request and returns its (events, response).
    fn request(&mut self, line: &str) -> (Vec<String>, String) {
        self.send(line);
        self.response()
    }
}

fn instret_of(response: &str) -> u64 {
    response
        .split("\"instret\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no instret in `{response}`"))
}

#[test]
fn two_clients_step_distinct_sessions_interleaved() {
    let (addr, server) = start_server();
    let mut a = Client::connect(&addr);
    let mut b = Client::connect(&addr);

    let spin = escape(SPIN);
    let (_, r) = a.request(&format!(
        "{{\"id\":1,\"cmd\":\"create\",\"session\":\"a\",\"program\":\"{spin}\",\"ram_size\":65536}}"
    ));
    assert!(r.contains("\"ok\":true"), "{r}");
    let (_, r) = b.request(&format!(
        "{{\"id\":1,\"cmd\":\"create\",\"session\":\"b\",\"program\":\"{spin}\",\"ram_size\":65536}}"
    ));
    assert!(r.contains("\"ok\":true"), "{r}");

    // Both connections see the same registry.
    let (_, r) = a.request(r#"{"id":2,"cmd":"list"}"#);
    assert!(r.contains("\"sessions\":[\"a\",\"b\"]"), "{r}");

    // Interleaved stepping: each session advances exactly with its own
    // client's steps, never with the sibling's.
    for round in 1..=3u64 {
        let (_, ra) = a.request(r#"{"id":3,"cmd":"step","session":"a"}"#);
        assert_eq!(instret_of(&ra), round, "{ra}");
        let (_, rb) = b.request(r#"{"id":3,"cmd":"step","session":"b"}"#);
        assert_eq!(instret_of(&rb), round, "{rb}");
    }
    // Cross-connection access: B can also read A's session (same registry).
    let (_, r) = b.request(r#"{"id":4,"cmd":"info","session":"a"}"#);
    assert!(r.contains("\"instret\":3"), "{r}");

    let (_, r) = a.request(r#"{"id":5,"cmd":"shutdown"}"#);
    assert!(r.contains("\"ok\":true"), "{r}");
    drop(a);
    drop(b);
    server.join().expect("server thread exits after shutdown");
}

#[test]
fn stop_from_connection_b_interrupts_a_run_on_connection_a() {
    let (addr, server) = start_server();
    let mut a = Client::connect(&addr);
    let mut b = Client::connect(&addr);

    let spin = escape(SPIN);
    let (_, r) = a.request(&format!(
        "{{\"id\":1,\"cmd\":\"create\",\"session\":\"spin\",\"program\":\"{spin}\",\"ram_size\":65536}}"
    ));
    assert!(r.contains("\"ok\":true"), "{r}");

    // A starts a run that only an interrupt can end in test time.
    a.send(r#"{"id":2,"cmd":"run","session":"spin","max_steps":4000000000}"#);

    // B observes the session is busy (the run holds its lock)…
    let mut saw_busy = false;
    for _ in 0..200 {
        let (_, r) = b.request(r#"{"id":2,"cmd":"step","session":"spin"}"#);
        if r.contains("\"code\":\"busy\"") {
            saw_busy = true;
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_busy, "connection B sees the mid-run session as busy");

    // …and interrupts it — `stop` goes through the registry's lock-free
    // stop handle, not the session lock.
    let (_, r) = b.request(r#"{"id":3,"cmd":"stop","session":"spin"}"#);
    assert!(r.contains("\"ok\":true"), "{r}");

    // A's run returns `stopped`, resumable.
    let (_, r) = a.response();
    assert!(r.contains("\"exit\":\"stopped\""), "{r}");
    let stopped_at = instret_of(&r);
    assert!(stopped_at > 0, "the run made progress before the interrupt: {r}");

    // A resumes from the exact stop point; the cleared flag does not
    // re-trip the next run.
    let (_, r) = a.request(r#"{"id":3,"cmd":"run","session":"spin","max_steps":1000}"#);
    assert!(r.contains("\"ok\":true"), "{r}");
    assert_eq!(instret_of(&r), stopped_at + 1000, "resume continues the count: {r}");

    let (_, r) = b.request(r#"{"id":4,"cmd":"shutdown"}"#);
    assert!(r.contains("\"ok\":true"), "{r}");
    drop(a);
    drop(b);
    server.join().expect("server thread exits after shutdown");
}

#[test]
fn breakpoint_then_watchpoint_pause_the_guest_on_both_engines() {
    let (addr, server) = start_server();
    for engine in ["interp", "block"] {
        let mut c = Client::connect(&addr);
        let sess = format!("leak-{engine}");
        let (_, r) = c.request(&format!(
            "{{\"id\":1,\"cmd\":\"create\",\"session\":\"{sess}\",\"program\":\"{}\",\"policy\":\"{}\",\
             \"enforce\":\"record\",\"engine\":\"{engine}\",\"ram_size\":65536}}",
            escape(IMMO_PROGRAM),
            escape(IMMO_POLICY)
        ));
        assert!(r.contains("\"ok\":true"), "{r}");
        let (_, r) = c.request(&format!(
            "{{\"id\":2,\"cmd\":\"watch\",\"session\":\"{sess}\",\"kind\":\"sink\",\"site\":\"uart.tx\"}}"
        ));
        assert!(r.contains("\"watch\":1"), "{r}");
        let (_, r) = c.request(&format!(
            "{{\"id\":3,\"cmd\":\"break\",\"session\":\"{sess}\",\"instret\":5}}"
        ));
        assert!(r.contains("\"break\":1"), "{r}");

        // First pause: the breakpoint, streamed as an `"ev":"break"` line
        // ahead of the `stopped` response, well before the leak reaches
        // the UART.
        let (events, r) =
            c.request(&format!("{{\"id\":4,\"cmd\":\"run\",\"session\":\"{sess}\",\"max_steps\":100000}}"));
        assert!(r.contains("\"exit\":\"stopped\""), "{r}");
        assert_eq!(instret_of(&r), 5, "paused exactly at the requested instret: {r}");
        assert!(
            events.iter().any(|e| e.contains("\"ev\":\"break\"") && e.contains("instret=5")),
            "break hit streamed: {events:?}"
        );

        // Paused guests are inspectable like any stopped session.
        let (_, r) = c.request(&format!("{{\"id\":5,\"cmd\":\"read\",\"session\":\"{sess}\",\"what\":\"regs\"}}"));
        assert!(r.contains("\"pc\":"), "{r}");

        // Second pause: resume runs on to the taint watchpoint.
        let (events, r) =
            c.request(&format!("{{\"id\":6,\"cmd\":\"run\",\"session\":\"{sess}\",\"max_steps\":100000}}"));
        assert!(r.contains("\"exit\":\"stopped\""), "{r}");
        assert!(instret_of(&r) > 5, "the resumed run advanced: {r}");
        assert!(
            events.iter().any(|e| e.contains("\"ev\":\"watch\"") && e.contains("uart.tx")),
            "watch hit streamed after resume: {events:?}"
        );
        drop(c);
    }
    let mut c = Client::connect(&addr);
    let (_, r) = c.request(r#"{"id":1,"cmd":"shutdown"}"#);
    assert!(r.contains("\"ok\":true"), "{r}");
    drop(c);
    server.join().expect("server thread exits after shutdown");
}
