//! Property tests for the serve crate's hand-rolled JSON parser: it must
//! *never* panic, whatever bytes a client throws at it — malformed UTF-8
//! fragments, truncated escapes, pathological nesting. A wedged or
//! malicious client gets a typed `ParseError`, not a dead server.

use proptest::prelude::*;
use vpdift_serve::json::parse;

/// Bytes drawn from the JSON structural alphabet: much likelier to form
/// *almost*-valid documents (truncated strings, unbalanced brackets,
/// half-written escapes) than uniform bytes, which usually die at byte 0.
fn jsonish() -> impl Strategy<Value = Vec<u8>> {
    let alphabet: &[u8] = b"{}[]\",:0123456789.eE+-truefalsnl \\/\tu\n\x7f\xc3";
    prop::collection::vec(any::<u8>().prop_map(|b| b), 0..128)
        .prop_map(move |idx| idx.iter().map(|&b| alphabet[b as usize % alphabet.len()]).collect())
}

proptest! {
    /// Uniform random bytes (lossily decoded): parse returns, never panics.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse(&text);
    }

    /// JSON-alphabet soup: exercises the tokenizer's deep paths (string
    /// escapes, number grammar, nested containers) without panicking.
    #[test]
    fn jsonish_bytes_never_panic(bytes in jsonish()) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse(&text);
    }

    /// Valid documents re-parse after a random single-byte truncation —
    /// the torn-line case a killed writer leaves behind.
    #[test]
    fn truncations_never_panic(cut in any::<u16>()) {
        let doc = r#"{"cmd":"run","session":"s0","opts":{"deep":[1,[2,[3,"A"]]],"cap":18446744073709551615}}"#;
        let n = (cut as usize) % doc.len();
        let mut prefix = &doc[..n];
        // Back off to a char boundary (ASCII here, but keep it general).
        while !doc.is_char_boundary(prefix.len()) {
            prefix = &doc[..prefix.len() - 1];
        }
        let _ = parse(prefix);
    }
}

/// Nesting right at, below, and far beyond the depth cap: the recursive
/// parser must refuse with an error — stack overflow is a panic the
/// `catch_unwind`-free server cannot survive.
#[test]
fn deep_nesting_is_rejected_not_overflowed() {
    // Well-formed nesting up to the cap parses...
    for depth in [1usize, 8, 31] {
        let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&doc).is_ok(), "depth {depth} should parse");
    }
    // ...and anything deeper (balanced or truncated) errors cleanly,
    // including depths that would blow the stack if recursion were
    // unbounded.
    for depth in [33usize, 64, 1000, 100_000] {
        let open = "[".repeat(depth);
        assert!(parse(&open).is_err(), "unclosed depth {depth} must error");
        let doc = format!("{}1{}", open, "]".repeat(depth));
        assert!(parse(&doc).is_err(), "balanced depth {depth} must error");
        let objs = "{\"k\":".repeat(depth);
        assert!(parse(&objs).is_err(), "object depth {depth} must error");
    }
}
