//! Protocol-level tests of the introspection server, transport-free:
//! request lines go straight into [`Server::handle_line`] and every
//! emitted line (streamed events and responses) is captured.
//!
//! The centerpiece is a golden-transcript test of the immobilizer leak
//! demo — create, watch `uart.tx`, run until the watchpoint pauses the
//! guest mid-leak, read tags, ask for a live explanation, resume, and
//! drain the stream. The VP is fully deterministic (simulated time, no
//! wall clock), so the whole transcript is byte-stable; regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p vpdift-serve --test protocol`.

use vpdift_obs::export::{escape, validate_json};
use vpdift_serve::{Control, Server};

const IMMO_PROGRAM: &str = include_str!("../../../docs/examples/immo_leak.s");
const IMMO_POLICY: &str = include_str!("../../../docs/examples/immobilizer.policy");
const GOLDEN: &str = include_str!("golden/immo_session.txt");

/// Feeds `lines` to the server, returning every emitted line in order
/// (streamed `"ev"` lines interleaved with responses) plus the final
/// control state.
fn drive(server: &mut Server, lines: &[String]) -> (Vec<String>, Control) {
    let mut out = Vec::new();
    let mut control = Control::Continue;
    for line in lines {
        let mut emit = |s: &str| {
            out.push(s.to_owned());
            Ok(())
        };
        control = server.handle_line(line, &mut emit).expect("emit never fails here");
        if control == Control::Shutdown {
            break;
        }
    }
    (out, control)
}

fn immo_script() -> Vec<String> {
    vec![
        format!(
            "{{\"id\":1,\"cmd\":\"create\",\"session\":\"immo\",\"program\":\"{}\",\"policy\":\"{}\",\"enforce\":\"record\",\"ram_size\":65536}}",
            escape(IMMO_PROGRAM),
            escape(IMMO_POLICY)
        ),
        r#"{"id":2,"cmd":"watch","session":"immo","kind":"sink","site":"uart.tx"}"#.into(),
        r#"{"id":3,"cmd":"subscribe","session":"immo","events":["violation","tag_set_change"],"flow":true}"#.into(),
        r#"{"id":4,"cmd":"run","session":"immo","max_steps":100000}"#.into(),
        r#"{"id":5,"cmd":"read","session":"immo","what":"tags","addr":8192,"len":4}"#.into(),
        r#"{"id":6,"cmd":"read","session":"immo","what":"regs"}"#.into(),
        r#"{"id":7,"cmd":"explain","session":"immo","atom":"secret"}"#.into(),
        r#"{"id":8,"cmd":"run","session":"immo","max_steps":100000}"#.into(),
        r#"{"id":9,"cmd":"unwatch","session":"immo","watch":1}"#.into(),
        r#"{"id":10,"cmd":"until","session":"immo"}"#.into(),
        r#"{"id":11,"cmd":"info","session":"immo"}"#.into(),
        r#"{"id":12,"cmd":"list"}"#.into(),
        r#"{"id":13,"cmd":"destroy","session":"immo"}"#.into(),
        r#"{"id":14,"cmd":"shutdown"}"#.into(),
    ]
}

#[test]
fn immo_watchpoint_session_matches_golden_transcript() {
    let mut server = Server::new();
    let (out, control) = drive(&mut server, &immo_script());
    assert_eq!(control, Control::Shutdown);
    for line in &out {
        validate_json(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
    }
    let transcript = out.join("\n") + "\n";

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/immo_session.txt");
        std::fs::write(path, &transcript).expect("golden written");
        return;
    }
    assert_eq!(
        transcript, GOLDEN,
        "transcript drifted from tests/golden/immo_session.txt; \
         regenerate with UPDATE_GOLDEN=1 if the change is intended"
    );
}

#[test]
fn watchpoint_pauses_before_the_leak_completes() {
    let mut server = Server::new();
    let (out, _) = drive(&mut server, &immo_script()[..4]);
    // The run response is the last line; the watch stopped the guest
    // before the four-byte leak finished.
    let run = out.last().expect("run response");
    assert!(run.contains("\"exit\":\"stopped\""), "{run}");
    assert!(out.iter().any(|l| l.contains("\"ev\":\"watch\"")), "watch hit streamed: {out:?}");
    assert!(
        out.iter().any(|l| l.contains("\"ev\":\"obs\"") && l.contains("tag_set_change")),
        "subscribed events streamed: {out:?}"
    );
    assert!(
        out.iter().any(|l| l.contains("\"ev\":\"flow\"") && l.contains("\"delta\":\"origin\"")),
        "flow deltas streamed: {out:?}"
    );
}

#[test]
fn serve_stepped_digest_matches_batch_digest_on_both_engines() {
    // engine_diff, protocol edition: a session stepped in many small
    // slices over the wire must land on the same architectural digest as
    // one batch run — per engine, and across engines.
    let mut digests = Vec::new();
    for engine in ["interp", "block"] {
        let create = format!(
            "{{\"cmd\":\"create\",\"session\":\"s\",\"program\":\"{}\",\"policy\":\"{}\",\"enforce\":\"record\",\"engine\":\"{engine}\",\"ram_size\":65536}}",
            escape(IMMO_PROGRAM),
            escape(IMMO_POLICY)
        );

        let mut stepped = Server::new();
        let mut lines = vec![create.clone()];
        lines.extend(std::iter::repeat_n(
            r#"{"cmd":"run","session":"s","max_steps":7}"#.to_owned(),
            40,
        ));
        lines.push(r#"{"cmd":"info","session":"s"}"#.into());
        let (out, _) = drive(&mut stepped, &lines);
        // The program ebreaks after ~34 steps; once `break` is reached
        // further run calls would re-retire the ebreak, so find the first
        // terminal exit and compare info digests right after it.
        let stepped_break =
            out.iter().find(|l| l.contains("\"exit\":\"break\"")).expect("guest ebreaks");
        let digest = extract_digest(stepped_break);

        let mut batch = Server::new();
        let (out, _) = drive(&mut batch, &[create, r#"{"cmd":"until","session":"s"}"#.into()]);
        let batch_break = out.last().expect("until response");
        assert!(batch_break.contains("\"exit\":\"break\""), "{batch_break}");
        assert_eq!(
            digest,
            extract_digest(batch_break),
            "engine {engine}: serve-stepped and batch digests diverged"
        );
        digests.push(digest);
    }
    assert_eq!(digests[0], digests[1], "interp and block-cache digests diverged");
}

fn extract_digest(line: &str) -> String {
    let start = line.find("\"digest\":\"").expect("digest field") + "\"digest\":\"".len();
    line[start..].split('"').next().expect("closing quote").to_owned()
}

// ------------------------------------------------------------- errors ---

fn one_shot(server: &mut Server, line: &str) -> Vec<String> {
    let (out, _) = drive(server, &[line.to_owned()]);
    out
}

#[test]
fn malformed_and_unknown_requests_get_typed_errors() {
    let mut server = Server::new();
    let cases: &[(&str, &str)] = &[
        ("{not json", "bad_json"),
        ("[1,2,3]", "bad_request"),
        (r#"{"id":9,"cmd":"warp"}"#, "unknown_cmd"),
        (r#"{"cmd":"run","session":"ghost"}"#, "unknown_session"),
        (r#"{"cmd":"create","session":"x"}"#, "bad_request"),
        (r#"{"cmd":"create","session":"x","program":"nonsense"}"#, "bad_program"),
        (r#"{"cmd":"create","session":"x","program":"ebreak","policy":"garbage"}"#, "bad_policy"),
        (r#"{"cmd":"create","session":"x","program":"ebreak","mode":"quantum"}"#, "bad_request"),
    ];
    for (req, code) in cases {
        let out = one_shot(&mut server, req);
        assert_eq!(out.len(), 1, "exactly one error line for {req}");
        validate_json(&out[0]).expect("error line parses");
        assert!(out[0].contains(&format!("\"code\":\"{code}\"")), "{req} -> {}", out[0]);
        assert!(out[0].contains("\"ok\":false"), "{}", out[0]);
    }

    // Duplicate create, bad watch shapes, unknown watch id.
    assert!(one_shot(&mut server, r#"{"cmd":"create","session":"x","program":"ebreak"}"#)[0]
        .contains("\"ok\":true"));
    assert!(one_shot(&mut server, r#"{"cmd":"create","session":"x","program":"ebreak"}"#)[0]
        .contains("duplicate_session"));
    assert!(one_shot(&mut server, r#"{"cmd":"watch","session":"x","kind":"sink"}"#)[0]
        .contains("bad_watch"));
    assert!(one_shot(&mut server, r#"{"cmd":"unwatch","session":"x","watch":99}"#)[0]
        .contains("bad_watch"));
    // The session survived every error above.
    assert!(one_shot(&mut server, r#"{"cmd":"list"}"#)[0].contains("\"x\""));
    // The id is echoed even on errors.
    let out = one_shot(&mut server, r#"{"id":42,"cmd":"warp"}"#);
    assert!(out[0].starts_with("{\"id\":42,"), "{}", out[0]);
}

#[test]
fn client_disconnect_mid_run_stops_but_keeps_the_session() {
    let mut server = Server::new();
    let create = format!(
        "{{\"cmd\":\"create\",\"session\":\"immo\",\"program\":\"{}\",\"policy\":\"{}\",\"enforce\":\"record\",\"ram_size\":65536}}",
        escape(IMMO_PROGRAM),
        escape(IMMO_POLICY)
    );
    let (out, _) = drive(
        &mut server,
        &[create, r#"{"cmd":"subscribe","session":"immo","events":[],"flow":true}"#.into()],
    );
    assert!(out.iter().all(|l| l.contains("\"ok\":true")), "{out:?}");

    // The client vanishes as soon as the first streamed line is written:
    // every emit fails from then on.
    let mut wrote = 0usize;
    let mut emit = |_: &str| -> std::io::Result<()> {
        wrote += 1;
        Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "client gone"))
    };
    let result =
        server.handle_line(r#"{"cmd":"run","session":"immo","max_steps":100000}"#, &mut emit);
    // The transport write failed, so handle_line surfaces the io error
    // (the response line could not be delivered either)…
    assert!(result.is_err(), "broken pipe surfaces to the transport loop");
    assert!(wrote >= 1, "at least one write was attempted");

    // …but the session belongs to the registry, not the dead connection:
    // it was stopped, kept, and is immediately usable by the next client.
    let out = one_shot(&mut server, r#"{"cmd":"list"}"#);
    assert_eq!(out[0], "{\"ok\":true,\"sessions\":[\"immo\"]}");
    let info = one_shot(&mut server, r#"{"cmd":"info","session":"immo"}"#);
    assert!(info[0].contains("\"ok\":true"), "{}", info[0]);
    // The latched stop was cleared, so a fresh run makes real progress
    // instead of returning `stopped` after zero steps.
    let before: u64 = info[0]
        .split("\"instret\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .expect("info carries instret");
    let run = one_shot(&mut server, r#"{"cmd":"run","session":"immo","max_steps":200}"#);
    let resp = run.last().expect("run responds");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let after: u64 = resp
        .split("\"instret\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .expect("run reports instret");
    assert!(after > before, "resumed run retired instructions ({before} -> {after})");
}

#[test]
fn hello_pins_v1_and_hides_v2_verbs() {
    let mut server = Server::new();
    let (out, _) = drive(
        &mut server,
        &[
            r#"{"id":1,"cmd":"create","session":"s","program":"ebreak","ram_size":65536}"#.into(),
            // Fresh connections speak v2: `stop` and `break` exist.
            r#"{"id":2,"cmd":"stop","session":"s"}"#.into(),
            r#"{"id":3,"cmd":"break","session":"s","pc":64}"#.into(),
            // Pin the connection to v1: the same verbs must now be
            // rejected exactly as a v1 server rejected them.
            r#"{"id":4,"cmd":"hello","version":"taintvp-serve/v1"}"#.into(),
            r#"{"id":5,"cmd":"stop","session":"s"}"#.into(),
            r#"{"id":6,"cmd":"break","session":"s","instret":10}"#.into(),
            r#"{"id":7,"cmd":"unbreak","session":"s","break":1}"#.into(),
            // v1 commands keep working while pinned.
            r#"{"id":8,"cmd":"list"}"#.into(),
            // Re-upgrade mid-connection, and reject unknown schemas.
            r#"{"id":9,"cmd":"hello","version":"taintvp-serve/v2"}"#.into(),
            r#"{"id":10,"cmd":"unbreak","session":"s","break":1}"#.into(),
            r#"{"id":11,"cmd":"hello","version":"taintvp-serve/v9"}"#.into(),
        ],
    );
    let line = |id: usize| {
        out.iter()
            .find(|l| l.starts_with(&format!("{{\"id\":{id},")))
            .unwrap_or_else(|| panic!("no response for id {id}: {out:?}"))
    };
    assert!(line(2).contains("\"ok\":true"), "{}", line(2));
    assert!(line(3).contains("\"break\":1"), "{}", line(3));
    assert!(line(4).contains("\"schema\":\"taintvp-serve/v1\""), "{}", line(4));
    for id in [5, 6] {
        assert!(line(id).contains("\"code\":\"unknown_cmd\""), "{}", line(id));
    }
    assert!(line(7).contains("\"code\":\"unknown_cmd\""), "{}", line(7));
    assert!(line(8).contains("\"sessions\":[\"s\"]"), "{}", line(8));
    assert!(line(9).contains("\"schema\":\"taintvp-serve/v2\""), "{}", line(9));
    assert!(line(10).contains("\"ok\":true"), "v2 verbs return after re-upgrade: {}", line(10));
    assert!(line(11).contains("\"code\":\"bad_request\""), "{}", line(11));
}

// --------------------------------------------------------- elf guests ---

/// Builds a tiny ELF guest and returns it as an `elf-hex:` program field.
fn elf_hex_program() -> String {
    use vpdift_asm::{Asm, Reg};
    let mut a = Asm::new(0);
    a.label("main");
    a.entry();
    a.li(Reg::A0, 0x2A);
    a.ebreak();
    let bytes = a.to_elf().expect("demo ELF assembles");
    let mut field = String::from("elf-hex:");
    for b in bytes {
        field.push_str(&format!("{b:02x}"));
    }
    field
}

#[test]
fn elf_hex_session_runs_the_binary() {
    let mut server = Server::new();
    let (out, _) = drive(
        &mut server,
        &[
            format!(
                "{{\"id\":1,\"cmd\":\"create\",\"session\":\"bin\",\"program\":\"{}\",\"ram_size\":65536}}",
                elf_hex_program()
            ),
            r#"{"id":2,"cmd":"until","session":"bin"}"#.into(),
            r#"{"id":3,"cmd":"read","session":"bin","what":"regs"}"#.into(),
        ],
    );
    assert!(out[0].contains("\"ok\":true"), "create accepts elf-hex: {}", out[0]);
    assert!(out[1].contains("\"exit\":\"break\""), "binary runs to ebreak: {}", out[1]);
    // a0 holds 0x2a from the guest.
    assert!(out[2].contains("\"name\":\"a0\",\"value\":42"), "a0 value visible: {}", out[2]);
}

#[test]
fn bad_elf_hex_payloads_get_typed_errors() {
    let mut server = Server::new();
    for (program, what) in [
        ("elf-hex:zz", "non-hex digits"),
        ("elf-hex:abc", "odd length"),
        ("elf-hex:7f454c46", "truncated ELF"),
        ("elf-hex:00112233445566778899", "not an ELF at all"),
    ] {
        let out = one_shot(
            &mut server,
            &format!("{{\"cmd\":\"create\",\"session\":\"x\",\"program\":\"{program}\"}}"),
        );
        assert_eq!(out.len(), 1);
        assert!(
            out[0].contains("\"code\":\"bad_program\""),
            "{what} must be bad_program: {}",
            out[0]
        );
        assert!(out[0].contains("\"ok\":false"), "{}", out[0]);
    }
    // No half-created sessions linger.
    assert!(one_shot(&mut server, r#"{"cmd":"list"}"#)[0].contains("\"sessions\":[]"));
}
