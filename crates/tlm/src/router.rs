//! Address-based transaction routing — the TLM interconnect.

use vpdift_core::AddrRange;
use vpdift_kernel::SimTime;
use vpdift_obs::{ObsEvent, SharedObs};
use vpdift_sync::Shared;

use crate::payload::{GenericPayload, TlmCommand, TlmResponse};

/// A transaction target (the `simple_target_socket` side).
///
/// `transport` is the blocking-transport equivalent: it must process the
/// payload, fill reads / absorb writes, set a response status, and may add
/// to `delay` to model access latency (loosely-timed style).
pub trait TlmTarget: Send + Sync {
    /// Processes one transaction addressed to this target. The payload
    /// address has already been rewritten to a target-local offset.
    fn transport(&mut self, payload: &mut GenericPayload, delay: &mut SimTime);
}

impl<F> TlmTarget for F
where
    F: FnMut(&mut GenericPayload, &mut SimTime) + Send + Sync,
{
    fn transport(&mut self, payload: &mut GenericPayload, delay: &mut SimTime) {
        self(payload, delay)
    }
}

/// A shared, interiorly mutable target handle as stored in the router.
pub type SharedTarget = Shared<dyn TlmTarget>;

struct Mapping {
    name: String,
    range: AddrRange,
    target: SharedTarget,
}

/// Errors raised while building the memory map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The new range overlaps an existing mapping (named by the `String`).
    Overlap(String),
}

impl core::fmt::Display for MapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MapError::Overlap(name) => write!(f, "address range overlaps mapping `{name}`"),
        }
    }
}

impl std::error::Error for MapError {}

/// Routes transactions to targets by address range, rewriting the payload
/// address to a target-local offset. Implements [`TlmTarget`] itself so
/// routers can nest.
///
/// ```
/// use vpdift_tlm::{GenericPayload, Router, TlmResponse};
/// use vpdift_core::{AddrRange, Taint};
/// use vpdift_kernel::SimTime;
/// use vpdift_sync::shared;
///
/// let mut router = Router::new("bus");
/// let reg = shared(0u8);
/// let r = reg.clone();
/// router.map("reg", AddrRange::new(0x1000, 4), shared(
///     move |p: &mut GenericPayload, _d: &mut SimTime| {
///         if p.command() == vpdift_tlm::TlmCommand::Write {
///             *r.borrow_mut() = p.data()[0].value();
///         }
///         p.set_response(TlmResponse::Ok);
///     }))?;
/// let mut p = GenericPayload::write(0x1002, &[Taint::untainted(7)]);
/// router.route(&mut p, &mut SimTime::ZERO);
/// assert!(p.is_ok());
/// assert_eq!(*reg.borrow(), 7);
/// # Ok::<(), vpdift_tlm::MapError>(())
/// ```
pub struct Router {
    name: String,
    mappings: Vec<Mapping>,
    transactions: u64,
    obs: Option<SharedObs>,
}

impl Router {
    /// Creates an empty router.
    pub fn new(name: &str) -> Self {
        Router { name: name.to_owned(), mappings: Vec::new(), transactions: 0, obs: None }
    }

    /// Attaches an observability sink; every routed transaction is
    /// reported to it (after the target has processed the payload, so
    /// read data and response status are final).
    pub fn set_obs(&mut self, obs: SharedObs) {
        self.obs = Some(obs);
    }

    /// Router name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maps `range` to `target`.
    ///
    /// # Errors
    /// [`MapError::Overlap`] if the range intersects an existing mapping.
    pub fn map(
        &mut self,
        name: &str,
        range: AddrRange,
        target: SharedTarget,
    ) -> Result<(), MapError> {
        for m in &self.mappings {
            let disjoint = range.end <= m.range.start || range.start >= m.range.end;
            if !disjoint {
                return Err(MapError::Overlap(m.name.clone()));
            }
        }
        self.mappings.push(Mapping { name: name.to_owned(), range, target });
        Ok(())
    }

    /// The mapped ranges, in mapping order, as `(name, range)` pairs.
    pub fn mappings(&self) -> impl Iterator<Item = (&str, AddrRange)> {
        self.mappings.iter().map(|m| (m.name.as_str(), m.range))
    }

    /// Number of transactions routed so far.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Routes one transaction. On unmapped addresses the payload gets
    /// [`TlmResponse::AddressError`]; transfers straddling a mapping
    /// boundary get [`TlmResponse::BurstError`].
    pub fn route(&mut self, payload: &mut GenericPayload, delay: &mut SimTime) {
        self.transactions += 1;
        let addr = payload.address();
        let Some(m) = self.mappings.iter().find(|m| m.range.contains(addr)) else {
            payload.set_response(TlmResponse::AddressError);
            self.emit(payload, addr, "<unmapped>", 0);
            return;
        };
        let end = addr as u64 + payload.len() as u64;
        if end > m.range.end as u64 {
            payload.set_response(TlmResponse::BurstError);
            self.emit(payload, addr, &m.name, 0);
            return;
        }
        let local = addr - m.range.start;
        payload.set_address(local);
        let before = delay.as_ps();
        m.target.borrow_mut().transport(payload, delay);
        let lat_ps = delay.as_ps().saturating_sub(before);
        payload.set_address(addr);
        self.emit(payload, addr, &m.name, lat_ps);
    }

    /// Reports a finished transaction to the sink, if one is attached.
    /// Called after the target's `transport` has returned so the sink is
    /// never borrowed while a target is active (re-entrancy safety).
    /// `lat_ps` is what the target added to the transaction's delay.
    fn emit(&self, payload: &GenericPayload, addr: u32, target: &str, lat_ps: u64) {
        let Some(obs) = &self.obs else { return };
        obs.borrow_mut().dyn_event(&ObsEvent::Tlm {
            bus: self.name.clone(),
            target: target.to_owned(),
            addr,
            len: payload.len() as u32,
            write: payload.command() == TlmCommand::Write,
            tag: payload.data_tag(),
            ok: payload.is_ok(),
            lat_ps,
        });
    }

    /// Looks up which mapping (if any) covers `addr`.
    pub fn resolve(&self, addr: u32) -> Option<(&str, AddrRange)> {
        self.mappings.iter().find(|m| m.range.contains(addr)).map(|m| (m.name.as_str(), m.range))
    }
}

impl TlmTarget for Router {
    fn transport(&mut self, payload: &mut GenericPayload, delay: &mut SimTime) {
        self.route(payload, delay);
    }
}

impl core::fmt::Debug for Router {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let maps: Vec<String> =
            self.mappings.iter().map(|m| format!("{} {}", m.name, m.range)).collect();
        f.debug_struct("Router")
            .field("name", &self.name)
            .field("mappings", &maps)
            .field("transactions", &self.transactions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::TlmCommand;
    use vpdift_core::{Tag, Taint};

    /// A 16-byte scratch RAM test double.
    struct Scratch {
        bytes: [Taint<u8>; 16],
        latency: SimTime,
    }

    impl TlmTarget for Scratch {
        fn transport(&mut self, p: &mut GenericPayload, delay: &mut SimTime) {
            *delay += self.latency;
            let base = p.address() as usize;
            match p.command() {
                TlmCommand::Read => {
                    for (i, b) in p.data_mut().iter_mut().enumerate() {
                        *b = self.bytes[base + i];
                    }
                }
                TlmCommand::Write => {
                    for (i, b) in p.data().iter().enumerate() {
                        self.bytes[base + i] = *b;
                    }
                }
                TlmCommand::Ignore => {}
            }
            p.set_response(TlmResponse::Ok);
        }
    }

    fn scratch() -> Shared<Scratch> {
        vpdift_sync::shared(Scratch {
            bytes: [Taint::untainted(0); 16],
            latency: SimTime::from_ns(10),
        })
    }

    #[test]
    fn routes_by_range_with_local_addressing() {
        let mut router = Router::new("bus");
        let ram = scratch();
        router.map("ram", AddrRange::new(0x100, 16), ram.clone()).unwrap();

        let word = Taint::new(0xCAFEu16, Tag::atom(2));
        let mut w = GenericPayload::write_word(0x108, word);
        let mut delay = SimTime::ZERO;
        router.route(&mut w, &mut delay);
        assert!(w.is_ok());
        assert_eq!(w.address(), 0x108, "global address restored after routing");
        assert_eq!(delay, SimTime::from_ns(10));
        // The target saw the local offset 8.
        assert_eq!(ram.borrow().bytes[8].value(), 0xFE);
        assert_eq!(ram.borrow().bytes[9].value(), 0xCA);
        assert_eq!(ram.borrow().bytes[8].tag(), Tag::atom(2));

        let mut r = GenericPayload::read(0x108, 2);
        router.route(&mut r, &mut delay);
        let back: Taint<u16> = r.data_word();
        assert_eq!(back.value(), 0xCAFE);
        assert_eq!(back.tag(), Tag::atom(2));
    }

    #[test]
    fn unmapped_address_errors() {
        let mut router = Router::new("bus");
        router.map("ram", AddrRange::new(0x100, 16), scratch()).unwrap();
        let mut p = GenericPayload::read(0x50, 4);
        router.route(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::AddressError);
    }

    #[test]
    fn straddling_transfer_is_burst_error() {
        let mut router = Router::new("bus");
        router.map("ram", AddrRange::new(0x100, 16), scratch()).unwrap();
        let mut p = GenericPayload::read(0x10E, 4); // crosses 0x110
        router.route(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::BurstError);
    }

    #[test]
    fn overlap_rejected() {
        let mut router = Router::new("bus");
        router.map("a", AddrRange::new(0x100, 16), scratch()).unwrap();
        let err = router.map("b", AddrRange::new(0x108, 16), scratch()).unwrap_err();
        assert_eq!(err, MapError::Overlap("a".into()));
        // Adjacent is fine.
        router.map("c", AddrRange::new(0x110, 16), scratch()).unwrap();
        assert_eq!(router.mappings().count(), 2);
    }

    #[test]
    fn nested_routers() {
        let mut inner = Router::new("periph-bus");
        let ram = scratch();
        inner.map("ram", AddrRange::new(0x0, 16), ram.clone()).unwrap();
        let mut outer = Router::new("sys-bus");
        outer.map("periph", AddrRange::new(0x1000, 16), vpdift_sync::shared(inner)).unwrap();

        let mut p = GenericPayload::write(0x1004, &[Taint::untainted(9)]);
        outer.route(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
        assert_eq!(ram.borrow().bytes[4].value(), 9);
    }

    #[test]
    fn routed_transactions_reach_the_obs_sink() {
        use vpdift_obs::{shared_obs, Recorder};
        let mut router = Router::new("bus");
        router.map("ram", AddrRange::new(0x100, 16), scratch()).unwrap();
        let sink = vpdift_sync::shared(Recorder::new(8));
        router.set_obs(shared_obs(&sink));

        let mut w = GenericPayload::write(0x104, &[Taint::new(1, Tag::atom(3))]);
        router.route(&mut w, &mut SimTime::ZERO.clone());
        let mut bad = GenericPayload::read(0x50, 1);
        router.route(&mut bad, &mut SimTime::ZERO.clone());

        let r = sink.borrow();
        assert_eq!(r.metrics().tlm_per_target["ram"], 1);
        assert_eq!(r.metrics().tlm_per_target["<unmapped>"], 1);
        let events: Vec<_> = r.ring().iter().collect();
        match &events[0].event {
            vpdift_obs::ObsEvent::Tlm { target, addr, write, tag, ok, lat_ps, .. } => {
                assert_eq!(target, "ram");
                assert_eq!(*addr, 0x104, "global address reported");
                assert!(*write && *ok);
                assert_eq!(*tag, Tag::atom(3));
                assert_eq!(*lat_ps, 10_000, "target latency reported");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn resolve_and_stats() {
        let mut router = Router::new("bus");
        router.map("ram", AddrRange::new(0x100, 16), scratch()).unwrap();
        assert_eq!(router.resolve(0x105).map(|(n, _)| n), Some("ram"));
        assert!(router.resolve(0x90).is_none());
        let mut p = GenericPayload::read(0x100, 1);
        router.route(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(router.transactions(), 1);
        assert_eq!(router.name(), "bus");
    }
}
