//! # vpdift-tlm — transaction-level modeling with tagged payloads
//!
//! A minimal TLM-2.0-style transport layer for the virtual prototype:
//! [`GenericPayload`] carries a *tagged* data lane (`Taint<u8>` per byte),
//! so security classes flow through the interconnect exactly like the
//! paper's `Taint<uint8_t>` arrays embedded in `tlm_generic_payload`, and
//! [`Router`] dispatches transactions to [`TlmTarget`]s by address range
//! with target-local address rewriting.
//!
//! See the crate-level docs of [`vpdift_core`] for the taint model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod fault;
mod payload;
mod router;

pub use fault::{FaultAction, FaultRouter, SharedFaultHook, TlmFaultHook};
pub use payload::{GenericPayload, TlmCommand, TlmResponse};
pub use router::{MapError, Router, SharedTarget, TlmTarget};
