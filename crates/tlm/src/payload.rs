//! The generic payload — our rendition of the TLM-2.0 `tlm_generic_payload`.
//!
//! The paper transports `Taint<uint8_t>` arrays through standard TLM
//! payloads by casting the `char*` data pointer (Fig. 4, line 34). Rust has
//! no blessed equivalent of that cast, so the payload's data lane *is* a
//! slice of [`Taint<u8>`]: every byte travels with its security tag through
//! the interconnect, which is exactly the property the paper needs for
//! fine-grained HW/SW flow tracking.

use core::fmt;

use vpdift_core::{Tag, Taint, TaintWord, Violation};

/// Transaction command, mirroring `tlm::tlm_command`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum TlmCommand {
    /// Read from the target into the payload data lane.
    Read,
    /// Write the payload data lane into the target.
    Write,
    /// No data transfer (used for probes/debug).
    #[default]
    Ignore,
}

/// Transaction completion status, mirroring `tlm::tlm_response_status`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum TlmResponse {
    /// Not yet processed by any target.
    #[default]
    Incomplete,
    /// Completed successfully.
    Ok,
    /// No target claims the address.
    AddressError,
    /// Target rejected the command (e.g. write to a read-only register).
    CommandError,
    /// Target rejected the access size or alignment.
    BurstError,
    /// Any other target-side failure.
    GenericError,
}

/// A bus transaction: command, address, and a tagged data lane.
///
/// ```
/// use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse};
/// use vpdift_core::{Tag, Taint};
///
/// let mut p = GenericPayload::write(0x1000_0000,
///     &[Taint::new(b'A', Tag::atom(1))]);
/// assert_eq!(p.command(), TlmCommand::Write);
/// assert_eq!(p.address(), 0x1000_0000);
/// assert_eq!(p.data()[0].value(), b'A');
/// p.set_response(TlmResponse::Ok);
/// assert!(p.is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct GenericPayload {
    command: TlmCommand,
    address: u32,
    data: Vec<Taint<u8>>,
    response: TlmResponse,
    violation: Option<Box<Violation>>,
}

impl GenericPayload {
    /// Creates a read transaction for `len` bytes at `address`.
    pub fn read(address: u32, len: usize) -> Self {
        GenericPayload {
            command: TlmCommand::Read,
            address,
            data: vec![Taint::untainted(0); len],
            response: TlmResponse::Incomplete,
            violation: None,
        }
    }

    /// Creates a write transaction carrying `data`.
    pub fn write(address: u32, data: &[Taint<u8>]) -> Self {
        GenericPayload {
            command: TlmCommand::Write,
            address,
            data: data.to_vec(),
            response: TlmResponse::Incomplete,
            violation: None,
        }
    }

    /// Creates a write transaction from a whole tainted word (little
    /// endian), the common CPU store path.
    pub fn write_word<T: TaintWord>(address: u32, word: Taint<T>) -> Self {
        let mut data = vec![Taint::untainted(0u8); T::SIZE];
        word.to_bytes(&mut data);
        GenericPayload {
            command: TlmCommand::Write,
            address,
            data,
            response: TlmResponse::Incomplete,
            violation: None,
        }
    }

    /// The command.
    pub fn command(&self) -> TlmCommand {
        self.command
    }

    /// The (router-relative) address. Routers rewrite this to the target's
    /// local offset while routing, as TLM interconnects commonly do.
    pub fn address(&self) -> u32 {
        self.address
    }

    /// Rewrites the address (router use).
    pub fn set_address(&mut self, address: u32) {
        self.address = address;
    }

    /// Transfer size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for zero-length transfers.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The tagged data lane.
    pub fn data(&self) -> &[Taint<u8>] {
        &self.data
    }

    /// Mutable access to the tagged data lane (targets fill reads here).
    pub fn data_mut(&mut self) -> &mut [Taint<u8>] {
        &mut self.data
    }

    /// Reassembles the data lane into a tainted word (little endian),
    /// LUB-ing the byte tags — the common CPU load path.
    ///
    /// # Panics
    /// Panics if the data length does not equal the word size.
    pub fn data_word<T: TaintWord>(&self) -> Taint<T> {
        Taint::from_bytes(&self.data)
    }

    /// LUB of all byte tags in the data lane.
    pub fn data_tag(&self) -> Tag {
        self.data.iter().fold(Tag::EMPTY, |acc, b| acc.lub(b.tag()))
    }

    /// Raw (untagged) copy of the data values.
    pub fn data_values(&self) -> Vec<u8> {
        self.data.iter().map(|b| b.value()).collect()
    }

    /// Completion status.
    pub fn response(&self) -> TlmResponse {
        self.response
    }

    /// Sets the completion status (target use).
    pub fn set_response(&mut self, response: TlmResponse) {
        self.response = response;
    }

    /// `true` iff the response is [`TlmResponse::Ok`].
    pub fn is_ok(&self) -> bool {
        self.response == TlmResponse::Ok
    }

    /// Attaches an (enforced) DIFT violation to the transaction; the
    /// initiator side turns this into a security trap/stop. Also sets the
    /// response to [`TlmResponse::GenericError`].
    pub fn set_violation(&mut self, violation: Violation) {
        self.violation = Some(Box::new(violation));
        self.response = TlmResponse::GenericError;
    }

    /// Takes an attached violation, if any.
    pub fn take_violation(&mut self) -> Option<Violation> {
        self.violation.take().map(|b| *b)
    }
}

impl fmt::Display for GenericPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} @{:#010x} len={} [{:?}]",
            self.command,
            self.address,
            self.data.len(),
            self.response
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_payload_starts_blank() {
        let p = GenericPayload::read(0x40, 4);
        assert_eq!(p.command(), TlmCommand::Read);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.response(), TlmResponse::Incomplete);
        assert!(!p.is_ok());
        assert_eq!(p.data_tag(), Tag::EMPTY);
    }

    #[test]
    fn write_word_round_trips_tags() {
        let w = Taint::new(0x1122_3344u32, Tag::atom(3));
        let p = GenericPayload::write_word(0x80, w);
        assert_eq!(p.len(), 4);
        assert_eq!(p.data_values(), vec![0x44, 0x33, 0x22, 0x11]);
        assert_eq!(p.data_tag(), Tag::atom(3));
        let back: Taint<u32> = p.data_word();
        assert_eq!(back.value(), 0x1122_3344);
        assert_eq!(back.tag(), Tag::atom(3));
    }

    #[test]
    fn address_rewrite() {
        let mut p = GenericPayload::read(0x1000_0004, 1);
        p.set_address(0x4);
        assert_eq!(p.address(), 0x4);
    }

    #[test]
    fn data_mut_fills_reads() {
        let mut p = GenericPayload::read(0, 2);
        p.data_mut()[0] = Taint::new(0xAB, Tag::atom(0));
        p.data_mut()[1] = Taint::new(0xCD, Tag::atom(1));
        assert_eq!(p.data_values(), vec![0xAB, 0xCD]);
        assert_eq!(p.data_tag(), Tag::atom(0).lub(Tag::atom(1)));
    }

    #[test]
    fn display_format() {
        let p = GenericPayload::read(0x10, 4);
        let s = p.to_string();
        assert!(s.contains("Read") && s.contains("0x00000010") && s.contains("len=4"));
    }
}
