//! TLM-level fault injection: an interposing router for fault campaigns.
//!
//! [`FaultRouter`] wraps a [`Router`] and consults an optional
//! [`TlmFaultHook`] around every routed transaction, so a fault-injection
//! campaign (`vpdift-faults`) can corrupt payload lanes, drop transactions
//! or force error responses without the interconnect or any target knowing.
//! With no hook installed the wrapper costs a single `Option` check per
//! transaction.

use vpdift_kernel::SimTime;
use vpdift_sync::Shared;

use crate::payload::{GenericPayload, TlmResponse};
use crate::router::{Router, TlmTarget};

/// What a [`TlmFaultHook`] decides to do with a transaction before it is
/// routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Route the transaction normally (possibly after the hook mutated the
    /// payload — e.g. corrupted write data).
    #[default]
    Pass,
    /// Drop the transaction: it never reaches a target and completes with
    /// [`TlmResponse::GenericError`].
    Drop,
    /// Complete immediately with the given response, without routing.
    Respond(TlmResponse),
}

/// A fault model consulted around every transaction through a
/// [`FaultRouter`].
pub trait TlmFaultHook: Send + Sync {
    /// Called before routing. May mutate the payload (corrupting write
    /// data or the address) and decides whether the transaction proceeds.
    fn before(&mut self, payload: &mut GenericPayload) -> FaultAction;

    /// Called after a routed transaction returns, with the target's
    /// response and read data in place — the spot to corrupt read lanes.
    fn after(&mut self, _payload: &mut GenericPayload) {}
}

/// A fault hook as shared between the campaign driver and the bus.
pub type SharedFaultHook = Shared<dyn TlmFaultHook>;

/// A [`Router`] wrapper that injects faults via an optional
/// [`TlmFaultHook`].
///
/// The wrapped router is always reachable through [`FaultRouter::inner`] /
/// [`FaultRouter::inner_mut`], so construction-time mapping code is
/// unchanged.
pub struct FaultRouter {
    inner: Router,
    hook: Option<SharedFaultHook>,
}

impl FaultRouter {
    /// Wraps `inner` with no fault hook installed (transparent).
    pub fn new(inner: Router) -> Self {
        FaultRouter { inner, hook: None }
    }

    /// The wrapped router.
    pub fn inner(&self) -> &Router {
        &self.inner
    }

    /// The wrapped router, mutably (for mapping targets).
    pub fn inner_mut(&mut self) -> &mut Router {
        &mut self.inner
    }

    /// Installs the fault hook consulted around every transaction.
    pub fn set_hook(&mut self, hook: SharedFaultHook) {
        self.hook = Some(hook);
    }

    /// Removes the fault hook; the wrapper becomes transparent again.
    pub fn clear_hook(&mut self) {
        self.hook = None;
    }

    /// `true` when a fault hook is installed.
    pub fn has_hook(&self) -> bool {
        self.hook.is_some()
    }

    /// Routes one transaction through the hook (if any) and the wrapped
    /// router. See [`Router::route`] for the routing semantics.
    pub fn route(&mut self, payload: &mut GenericPayload, delay: &mut SimTime) {
        let Some(hook) = &self.hook else {
            self.inner.route(payload, delay);
            return;
        };
        match hook.borrow_mut().before(payload) {
            FaultAction::Pass => {}
            FaultAction::Drop => {
                payload.set_response(TlmResponse::GenericError);
                return;
            }
            FaultAction::Respond(r) => {
                payload.set_response(r);
                return;
            }
        }
        self.inner.route(payload, delay);
        hook.borrow_mut().after(payload);
    }
}

impl TlmTarget for FaultRouter {
    fn transport(&mut self, payload: &mut GenericPayload, delay: &mut SimTime) {
        self.route(payload, delay);
    }
}

impl core::fmt::Debug for FaultRouter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FaultRouter")
            .field("inner", &self.inner)
            .field("hook", &self.hook.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::{AddrRange, Taint};

    fn wrapped_ram() -> (FaultRouter, Shared<[Taint<u8>; 16]>) {
        let mut router = Router::new("bus");
        let ram = vpdift_sync::shared([Taint::untainted(0u8); 16]);
        let r = ram.clone();
        router
            .map(
                "ram",
                AddrRange::new(0x100, 16),
                vpdift_sync::shared(move |p: &mut GenericPayload, _d: &mut SimTime| {
                    let base = p.address() as usize;
                    match p.command() {
                        crate::TlmCommand::Read => {
                            for (i, b) in p.data_mut().iter_mut().enumerate() {
                                *b = r.borrow()[base + i];
                            }
                        }
                        crate::TlmCommand::Write => {
                            for (i, b) in p.data().iter().enumerate() {
                                r.borrow_mut()[base + i] = *b;
                            }
                        }
                        crate::TlmCommand::Ignore => {}
                    }
                    p.set_response(TlmResponse::Ok);
                }),
            )
            .unwrap();
        (FaultRouter::new(router), ram)
    }

    struct OneShot(FaultAction);

    impl TlmFaultHook for OneShot {
        fn before(&mut self, _p: &mut GenericPayload) -> FaultAction {
            std::mem::take(&mut self.0)
        }
    }

    #[test]
    fn transparent_without_hook() {
        let (mut fr, ram) = wrapped_ram();
        assert!(!fr.has_hook());
        let mut w = GenericPayload::write(0x104, &[Taint::untainted(7)]);
        fr.route(&mut w, &mut SimTime::ZERO.clone());
        assert!(w.is_ok());
        assert_eq!(ram.borrow()[4].value(), 7);
    }

    #[test]
    fn drop_never_reaches_the_target() {
        let (mut fr, ram) = wrapped_ram();
        fr.set_hook(vpdift_sync::shared(OneShot(FaultAction::Drop)));
        let mut w = GenericPayload::write(0x104, &[Taint::untainted(7)]);
        fr.route(&mut w, &mut SimTime::ZERO.clone());
        assert_eq!(w.response(), TlmResponse::GenericError);
        assert_eq!(ram.borrow()[4].value(), 0, "write was dropped");
        // The hook is one-shot: the retry goes through.
        let mut w = GenericPayload::write(0x104, &[Taint::untainted(7)]);
        fr.route(&mut w, &mut SimTime::ZERO.clone());
        assert!(w.is_ok());
        assert_eq!(ram.borrow()[4].value(), 7);
    }

    #[test]
    fn forced_response_short_circuits() {
        let (mut fr, _ram) = wrapped_ram();
        fr.set_hook(vpdift_sync::shared(OneShot(FaultAction::Respond(TlmResponse::AddressError))));
        let mut r = GenericPayload::read(0x104, 4);
        fr.route(&mut r, &mut SimTime::ZERO.clone());
        assert_eq!(r.response(), TlmResponse::AddressError);
    }

    #[test]
    fn after_hook_corrupts_read_data() {
        struct FlipRead;
        impl TlmFaultHook for FlipRead {
            fn before(&mut self, _p: &mut GenericPayload) -> FaultAction {
                FaultAction::Pass
            }
            fn after(&mut self, p: &mut GenericPayload) {
                if p.command() == crate::TlmCommand::Read {
                    let b = p.data()[0];
                    p.data_mut()[0] = b.map(|v| v ^ 0x80);
                }
            }
        }
        let (mut fr, ram) = wrapped_ram();
        ram.borrow_mut()[0] = Taint::untainted(0x11);
        fr.set_hook(vpdift_sync::shared(FlipRead));
        let mut r = GenericPayload::read(0x100, 1);
        fr.route(&mut r, &mut SimTime::ZERO.clone());
        assert_eq!(r.data()[0].value(), 0x91, "read lane corrupted post-route");
        assert_eq!(ram.borrow()[0].value(), 0x11, "memory itself untouched");
    }

    #[test]
    fn clear_hook_restores_transparency() {
        let (mut fr, _ram) = wrapped_ram();
        fr.set_hook(vpdift_sync::shared(OneShot(FaultAction::Drop)));
        fr.clear_hook();
        let mut r = GenericPayload::read(0x100, 1);
        fr.route(&mut r, &mut SimTime::ZERO.clone());
        assert!(r.is_ok());
    }
}
