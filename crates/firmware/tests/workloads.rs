//! End-to-end workload tests: every Table II guest program must run to
//! completion on both the plain VP and the DIFT VP+ and produce its
//! host-verified output.

use vpdift_firmware::{table2_workloads, Workload};
use vpdift_rv32::{Plain, TaintMode, Tainted};
use vpdift_soc::{Soc, SocBuilder, SocExit};

fn run_on<M: TaintMode>(w: &Workload) -> (SocExit, Vec<u8>, u64) {
    let cfg = SocBuilder::new().sensor_thread(w.needs_sensor).build();
    let mut soc = Soc::<M>::new(cfg);
    soc.load_program(&w.program);
    let exit = soc.run(w.max_insns);
    let out = soc.uart().borrow().output().to_vec();
    (exit, out, soc.instret())
}

fn check_workload(w: &Workload) {
    let (exit, out, instret) = run_on::<Plain>(w);
    assert_eq!(exit, SocExit::Break, "{}: plain VP run failed", w.name);
    assert!(
        w.verify(&out),
        "{}: plain VP output mismatch: {:?}",
        w.name,
        String::from_utf8_lossy(&out)
    );
    assert!(instret > 0);

    let (exit, out_t, instret_t) = run_on::<Tainted>(w);
    assert_eq!(exit, SocExit::Break, "{}: VP+ run failed", w.name);
    assert!(w.verify(&out_t), "{}: VP+ output mismatch", w.name);
    assert_eq!(out, out_t, "{}: VP and VP+ must behave identically", w.name);
    assert_eq!(instret, instret_t, "{}: instruction counts must agree", w.name);
}

#[test]
fn qsort_sorts_and_verifies() {
    check_workload(&vpdift_firmware::qsort::build(300, 1));
}

#[test]
fn qsort_multiple_rounds() {
    check_workload(&vpdift_firmware::qsort::build(100, 3));
}

#[test]
fn dhrystone_checksum_matches_host_model() {
    check_workload(&vpdift_firmware::dhrystone::build(500));
}

#[test]
fn primes_count_matches_host() {
    check_workload(&vpdift_firmware::primes::build(2_000));
    assert_eq!(vpdift_firmware::primes::count_primes_below(10), 4);
    assert_eq!(vpdift_firmware::primes::count_primes_below(100), 25);
}

#[test]
fn sha512_digest_matches_host() {
    check_workload(&vpdift_firmware::sha512::build(1));
}

#[test]
fn sha512_multi_block() {
    check_workload(&vpdift_firmware::sha512::build(3));
}

#[test]
fn sensor_app_streams_frames() {
    let w = vpdift_firmware::sensor_app::build(3);
    let (exit, out, _) = run_on::<Tainted>(&w);
    assert_eq!(exit, SocExit::Break);
    assert_eq!(out.len(), 3 * 64, "three full frames copied");
    assert!(w.verify(&out));
}

#[test]
fn rtos_preempts_two_tasks() {
    check_workload(&vpdift_firmware::rtos::build(20, 200, 20));
}

#[test]
fn table2_suite_builds_at_scale_1() {
    let suite = table2_workloads(1);
    assert_eq!(suite.len(), 6);
    for w in &suite {
        assert!(w.loc_asm() > 50, "{} suspiciously small", w.name);
        assert!(!w.program.image().is_empty());
    }
}

#[test]
fn crc32_matches_host() {
    check_workload(&vpdift_firmware::crc32::build(512, 1));
}

#[test]
fn matmul_matches_host() {
    check_workload(&vpdift_firmware::matmul::build(8));
}

#[test]
fn extended_suite_builds() {
    let suite = vpdift_firmware::extended_workloads(1);
    assert_eq!(suite.len(), 2);
}

#[test]
fn aes_soft_matches_fips197() {
    check_workload(&vpdift_firmware::aes_soft::build());
}
