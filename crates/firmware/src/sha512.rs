//! The `sha512` benchmark: a full FIPS-180-4 SHA-512 implemented twice —
//! once in Rust (host-side ground truth, verified against the NIST
//! vectors) and once as RV32 guest code, where every 64-bit operation is
//! synthesized from 32-bit register pairs (add-with-carry via `sltu`,
//! 64-bit rotates from shift/or pairs).

use vpdift_asm::{Asm, Reg};

use crate::rt::{emit_runtime, HostLcg};
use crate::workload::{Check, Workload};

use Reg::*;

/// SHA-512 round constants.
const K: [u64; 80] = [
    0x428a2f98d728ae22,
    0x7137449123ef65cd,
    0xb5c0fbcfec4d3b2f,
    0xe9b5dba58189dbbc,
    0x3956c25bf348b538,
    0x59f111f1b605d019,
    0x923f82a4af194f9b,
    0xab1c5ed5da6d8118,
    0xd807aa98a3030242,
    0x12835b0145706fbe,
    0x243185be4ee4b28c,
    0x550c7dc3d5ffb4e2,
    0x72be5d74f27b896f,
    0x80deb1fe3b1696b1,
    0x9bdc06a725c71235,
    0xc19bf174cf692694,
    0xe49b69c19ef14ad2,
    0xefbe4786384f25e3,
    0x0fc19dc68b8cd5b5,
    0x240ca1cc77ac9c65,
    0x2de92c6f592b0275,
    0x4a7484aa6ea6e483,
    0x5cb0a9dcbd41fbd4,
    0x76f988da831153b5,
    0x983e5152ee66dfab,
    0xa831c66d2db43210,
    0xb00327c898fb213f,
    0xbf597fc7beef0ee4,
    0xc6e00bf33da88fc2,
    0xd5a79147930aa725,
    0x06ca6351e003826f,
    0x142929670a0e6e70,
    0x27b70a8546d22ffc,
    0x2e1b21385c26c926,
    0x4d2c6dfc5ac42aed,
    0x53380d139d95b3df,
    0x650a73548baf63de,
    0x766a0abb3c77b2a8,
    0x81c2c92e47edaee6,
    0x92722c851482353b,
    0xa2bfe8a14cf10364,
    0xa81a664bbc423001,
    0xc24b8b70d0f89791,
    0xc76c51a30654be30,
    0xd192e819d6ef5218,
    0xd69906245565a910,
    0xf40e35855771202a,
    0x106aa07032bbd1b8,
    0x19a4c116b8d2d0c8,
    0x1e376c085141ab53,
    0x2748774cdf8eeb99,
    0x34b0bcb5e19b48a8,
    0x391c0cb3c5c95a63,
    0x4ed8aa4ae3418acb,
    0x5b9cca4f7763e373,
    0x682e6ff3d6b2b8a3,
    0x748f82ee5defb2fc,
    0x78a5636f43172f60,
    0x84c87814a1f0ab72,
    0x8cc702081a6439ec,
    0x90befffa23631e28,
    0xa4506cebde82bde9,
    0xbef9a3f7b2c67915,
    0xc67178f2e372532b,
    0xca273eceea26619c,
    0xd186b8c721c0c207,
    0xeada7dd6cde0eb1e,
    0xf57d4f7fee6ed178,
    0x06f067aa72176fba,
    0x0a637dc5a2c898a6,
    0x113f9804bef90dae,
    0x1b710b35131c471b,
    0x28db77f523047d84,
    0x32caab7b40c72493,
    0x3c9ebe0a15c9bebc,
    0x431d67c49c100d4c,
    0x4cc5d4becb3e42b6,
    0x597f299cfc657e2a,
    0x5fcb6fab3ad6faec,
    0x6c44198c4a475817,
];

/// SHA-512 initial hash values.
const H0: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

/// Host-side SHA-512 of an arbitrary message.
pub fn sha512_host(message: &[u8]) -> [u8; 64] {
    let mut padded = message.to_vec();
    let bit_len = (message.len() as u128) * 8;
    padded.push(0x80);
    while padded.len() % 128 != 112 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    let mut h = H0;
    for block in padded.chunks_exact(128) {
        let mut w = [0u64; 80];
        for (t, c) in block.chunks_exact(8).enumerate() {
            w[t] = u64::from_be_bytes(c.try_into().expect("8-byte chunk"));
        }
        for t in 16..80 {
            let s0 = w[t - 15].rotate_right(1) ^ w[t - 15].rotate_right(8) ^ (w[t - 15] >> 7);
            let s1 = w[t - 2].rotate_right(19) ^ w[t - 2].rotate_right(61) ^ (w[t - 2] >> 6);
            w[t] = w[t - 16].wrapping_add(s0).wrapping_add(w[t - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..80 {
            let big_s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ (!e & g);
            let temp1 =
                hh.wrapping_add(big_s1).wrapping_add(ch).wrapping_add(K[t]).wrapping_add(w[t]);
            let big_s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = big_s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        for (hi, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *hi = hi.wrapping_add(v);
        }
    }
    let mut out = [0u8; 64];
    for (chunk, v) in out.chunks_exact_mut(8).zip(h) {
        chunk.copy_from_slice(&v.to_be_bytes());
    }
    out
}

// ---------------------------------------------------------------------
// Guest code generation: 64-bit ops from 32-bit register pairs.
// Conventions: values live as (lo, hi) pairs; T0 is the shift/carry temp.
// ---------------------------------------------------------------------

fn ld64(a: &mut Asm, lo: Reg, hi: Reg, base: Reg, off: i32) {
    a.lw(lo, off, base);
    a.lw(hi, off + 4, base);
}

fn st64(a: &mut Asm, lo: Reg, hi: Reg, base: Reg, off: i32) {
    a.sw(lo, off, base);
    a.sw(hi, off + 4, base);
}

/// `(A2,A3) += (A4,A5)` with carry via `sltu` (clobbers T0).
fn add64_acc(a: &mut Asm) {
    a.add(A2, A2, A4);
    a.sltu(T0, A2, A4);
    a.add(A3, A3, A5);
    a.add(A3, A3, T0);
}

/// `(A6,A7) = rotr64((A2,A3), n)` (clobbers T0). `n` in 1..64, ≠ 32 uses
/// shifts; 32 is a swap.
fn rotr64_to_a67(a: &mut Asm, n: u32) {
    assert!((1..64).contains(&n));
    if n == 32 {
        a.mv(A6, A3);
        a.mv(A7, A2);
    } else if n < 32 {
        a.srli(A6, A2, n as i32);
        a.slli(T0, A3, (32 - n) as i32);
        a.or(A6, A6, T0);
        a.srli(A7, A3, n as i32);
        a.slli(T0, A2, (32 - n) as i32);
        a.or(A7, A7, T0);
    } else {
        let m = n - 32;
        a.srli(A6, A3, m as i32);
        a.slli(T0, A2, (32 - m) as i32);
        a.or(A6, A6, T0);
        a.srli(A7, A2, m as i32);
        a.slli(T0, A3, (32 - m) as i32);
        a.or(A7, A7, T0);
    }
}

/// `(A6,A7) = (A2,A3) >> n` logically (clobbers T0). `n` in 1..64.
fn shr64_to_a67(a: &mut Asm, n: u32) {
    assert!((1..64).contains(&n));
    if n < 32 {
        a.srli(A6, A2, n as i32);
        a.slli(T0, A3, (32 - n) as i32);
        a.or(A6, A6, T0);
        a.srli(A7, A3, n as i32);
    } else {
        a.srli(A6, A3, (n - 32) as i32);
        a.li(A7, 0);
    }
}

/// Computes `xor` of three transforms of `(A2,A3)` into `(A4,A5)`. Each
/// transform emits into `(A6,A7)`.
fn xor3(
    a: &mut Asm,
    mut t1: impl FnMut(&mut Asm),
    mut t2: impl FnMut(&mut Asm),
    mut t3: impl FnMut(&mut Asm),
) {
    t1(a);
    a.mv(A4, A6);
    a.mv(A5, A7);
    t2(a);
    a.xor(A4, A4, A6);
    a.xor(A5, A5, A7);
    t3(a);
    a.xor(A4, A4, A6);
    a.xor(A5, A5, A7);
}

/// State element byte offsets within the working-state block.
const OFF_A: i32 = 0;
const OFF_B: i32 = 8;
const OFF_C: i32 = 16;
const OFF_D: i32 = 24;
const OFF_E: i32 = 32;
const OFF_F: i32 = 40;
const OFF_G: i32 = 48;
const OFF_H: i32 = 56;

/// Builds the workload: hash a `blocks * 128 - 17`-byte PRNG message and
/// print the 128-hex-digit digest. Register map inside the kernel:
/// `s0` state, `s1` W schedule, `s2` K table, `s3` loop counter,
/// `s4` remaining blocks, `s5` current block pointer, `s6` H.
pub fn build(blocks: u32) -> Workload {
    assert!(blocks >= 1);
    let msg_len = (blocks as usize) * 128 - 17;

    let mut a = Asm::new(0);
    a.entry();

    // Generate the message with the runtime PRNG (low byte of each draw).
    a.li(A0, 0x5EED);
    a.call("rt_srand");
    a.la(S5, "message");
    a.li(S7, msg_len as i32);
    a.label("gen");
    a.call("rt_rand");
    a.sb(A0, 0, S5);
    a.addi(S5, S5, 1);
    a.addi(S7, S7, -1);
    a.bnez(S7, "gen");
    // Padding: 0x80 then zeros (buffer pre-zeroed) then the 128-bit
    // big-endian bit length. Only the low 32 bits of the length are
    // non-zero for any realistic block count.
    a.li(T0, 0x80);
    a.sb(T0, 0, S5); // S5 = message + msg_len
    a.la(T1, "message");
    a.li(T2, (blocks * 128 - 4) as i32);
    a.add(T1, T1, T2);
    let bit_len = (msg_len as u64) * 8;
    // Store big-endian u32 at the end.
    for (i, byte) in (bit_len as u32).to_be_bytes().iter().enumerate() {
        a.li(T3, *byte as i32);
        a.sb(T3, i as i32, T1);
    }

    // Hash setup.
    a.la(S0, "state");
    a.la(S1, "wsched");
    a.la(S2, "ktab");
    a.la(S6, "hstate");
    a.li(S4, blocks as i32);
    a.la(S5, "message");

    // ===== per-block loop ===============================================
    a.label("block_loop");

    // state <- H (16 word copy).
    for i in 0..16 {
        a.lw(T1, 4 * i, S6);
        a.sw(T1, 4 * i, S0);
    }

    // W[0..16] from the block, big-endian.
    a.li(S3, 0);
    a.label("winit");
    a.slli(T1, S3, 3);
    a.add(T2, S5, T1); // src = block + 8t
                       // hi word = bytes 0..4 BE
    a.lbu(T3, 0, T2);
    a.slli(A3, T3, 24);
    a.lbu(T3, 1, T2);
    a.slli(T3, T3, 16);
    a.or(A3, A3, T3);
    a.lbu(T3, 2, T2);
    a.slli(T3, T3, 8);
    a.or(A3, A3, T3);
    a.lbu(T3, 3, T2);
    a.or(A3, A3, T3);
    // lo word = bytes 4..8 BE
    a.lbu(T3, 4, T2);
    a.slli(A2, T3, 24);
    a.lbu(T3, 5, T2);
    a.slli(T3, T3, 16);
    a.or(A2, A2, T3);
    a.lbu(T3, 6, T2);
    a.slli(T3, T3, 8);
    a.or(A2, A2, T3);
    a.lbu(T3, 7, T2);
    a.or(A2, A2, T3);
    a.add(T2, S1, T1);
    st64(&mut a, A2, A3, T2, 0);
    a.addi(S3, S3, 1);
    a.li(T0, 16);
    a.blt(S3, T0, "winit");

    // W[16..80] extension.
    a.label("wext");
    a.slli(T1, S3, 3);
    a.add(T2, S1, T1); // &W[t]
                       // s0 = σ0(W[t-15])
    ld64(&mut a, A2, A3, T2, -15 * 8);
    xor3(&mut a, |a| rotr64_to_a67(a, 1), |a| rotr64_to_a67(a, 8), |a| shr64_to_a67(a, 7));
    // acc (A2,A3) = W[t-16] + s0
    a.mv(T4, A4);
    a.mv(T5, A5);
    ld64(&mut a, A2, A3, T2, -16 * 8);
    a.mv(A4, T4);
    a.mv(A5, T5);
    add64_acc(&mut a);
    // + W[t-7]
    ld64(&mut a, A4, A5, T2, -7 * 8);
    add64_acc(&mut a);
    // stash partial, compute s1 = σ1(W[t-2])
    a.mv(T4, A2);
    a.mv(T5, A3);
    ld64(&mut a, A2, A3, T2, -2 * 8);
    xor3(&mut a, |a| rotr64_to_a67(a, 19), |a| rotr64_to_a67(a, 61), |a| shr64_to_a67(a, 6));
    a.mv(A2, T4);
    a.mv(A3, T5);
    add64_acc(&mut a);
    st64(&mut a, A2, A3, T2, 0);
    a.addi(S3, S3, 1);
    a.li(T0, 80);
    a.blt(S3, T0, "wext");

    // ===== 80 compression rounds ========================================
    a.li(S3, 0);
    a.label("round");
    // Σ1(e) -> scr+0
    ld64(&mut a, A2, A3, S0, OFF_E);
    xor3(&mut a, |a| rotr64_to_a67(a, 14), |a| rotr64_to_a67(a, 18), |a| rotr64_to_a67(a, 41));
    a.la(T6, "scr");
    st64(&mut a, A4, A5, T6, 0);
    // ch = (e&f)^(~e&g); e still in (A2,A3)
    ld64(&mut a, T1, T2, S0, OFF_F);
    a.and(T3, A2, T1);
    a.and(T4, A3, T2);
    a.not(A2, A2);
    a.not(A3, A3);
    ld64(&mut a, T1, T2, S0, OFF_G);
    a.and(A2, A2, T1);
    a.and(A3, A3, T2);
    a.xor(A2, A2, T3);
    a.xor(A3, A3, T4);
    // temp1 = h + Σ1 + ch + K[t] + W[t]; start acc = ch
    a.mv(A4, A2);
    a.mv(A5, A3);
    ld64(&mut a, A2, A3, S0, OFF_H);
    add64_acc(&mut a);
    a.la(T6, "scr");
    ld64(&mut a, A4, A5, T6, 0);
    add64_acc(&mut a);
    a.slli(T1, S3, 3);
    a.add(T2, S2, T1);
    ld64(&mut a, A4, A5, T2, 0); // K[t]
    add64_acc(&mut a);
    a.add(T2, S1, T1);
    ld64(&mut a, A4, A5, T2, 0); // W[t]
    add64_acc(&mut a);
    a.la(T6, "scr");
    st64(&mut a, A2, A3, T6, 16); // temp1
                                  // Σ0(a) -> (A4,A5), keep a in (A2,A3)
    ld64(&mut a, A2, A3, S0, OFF_A);
    xor3(&mut a, |a| rotr64_to_a67(a, 28), |a| rotr64_to_a67(a, 34), |a| rotr64_to_a67(a, 39));
    a.la(T6, "scr");
    st64(&mut a, A4, A5, T6, 24); // Σ0
                                  // maj = (a&b)^(a&c)^(b&c)
    ld64(&mut a, T1, T2, S0, OFF_B);
    a.and(T3, A2, T1);
    a.and(T4, A3, T2);
    ld64(&mut a, T5, T6, S0, OFF_C);
    a.and(A4, A2, T5);
    a.and(A5, A3, T6);
    a.xor(T3, T3, A4);
    a.xor(T4, T4, A5);
    a.and(A4, T1, T5);
    a.and(A5, T2, T6);
    a.xor(T3, T3, A4);
    a.xor(T4, T4, A5);
    // temp2 = Σ0 + maj
    a.la(T6, "scr");
    ld64(&mut a, A2, A3, T6, 24);
    a.mv(A4, T3);
    a.mv(A5, T4);
    add64_acc(&mut a);
    // new_a = temp1 + temp2 -> (T4,T5)  [T6 holds scr base]
    ld64(&mut a, A4, A5, T6, 16);
    add64_acc(&mut a);
    a.mv(T4, A2);
    a.mv(T5, A3);
    // new_e = d + temp1 -> (A2,A3)
    ld64(&mut a, A2, A3, S0, OFF_D);
    ld64(&mut a, A4, A5, T6, 16);
    add64_acc(&mut a);
    // Rotate the state (from h backwards).
    ld64(&mut a, A4, A5, S0, OFF_G);
    st64(&mut a, A4, A5, S0, OFF_H);
    ld64(&mut a, A4, A5, S0, OFF_F);
    st64(&mut a, A4, A5, S0, OFF_G);
    ld64(&mut a, A4, A5, S0, OFF_E);
    st64(&mut a, A4, A5, S0, OFF_F);
    st64(&mut a, A2, A3, S0, OFF_E);
    ld64(&mut a, A4, A5, S0, OFF_C);
    st64(&mut a, A4, A5, S0, OFF_D);
    ld64(&mut a, A4, A5, S0, OFF_B);
    st64(&mut a, A4, A5, S0, OFF_C);
    ld64(&mut a, A4, A5, S0, OFF_A);
    st64(&mut a, A4, A5, S0, OFF_B);
    st64(&mut a, T4, T5, S0, OFF_A);

    a.addi(S3, S3, 1);
    a.li(T0, 80);
    a.blt(S3, T0, "round");

    // H += state
    for i in 0..8 {
        ld64(&mut a, A2, A3, S6, 8 * i);
        ld64(&mut a, A4, A5, S0, 8 * i);
        add64_acc(&mut a);
        st64(&mut a, A2, A3, S6, 8 * i);
    }

    a.addi(S5, S5, 128);
    a.addi(S4, S4, -1);
    a.bnez(S4, "block_loop");

    // Print the digest: for each H word, hi then lo (big-endian hex).
    a.li(S3, 0);
    a.label("print");
    a.slli(T1, S3, 3);
    a.add(T2, S6, T1);
    a.lw(S7, 0, T2); // lo
    a.lw(A0, 4, T2); // hi
    a.call("rt_put_hex");
    a.mv(A0, S7);
    a.call("rt_put_hex");
    a.addi(S3, S3, 1);
    a.li(T0, 8);
    a.blt(S3, T0, "print");
    a.li(A0, b'\n' as i32);
    a.call("rt_putc");
    a.ebreak();

    emit_runtime(&mut a);

    // ----- data ----------------------------------------------------------
    a.align(8);
    a.label("hstate");
    for h in H0 {
        a.word(h as u32);
        a.word((h >> 32) as u32);
    }
    a.label("ktab");
    for k in K {
        a.word(k as u32);
        a.word((k >> 32) as u32);
    }
    a.label("state");
    a.zero(64);
    a.label("scr");
    a.zero(32);
    a.label("wsched");
    a.zero(80 * 8);
    a.label("message");
    a.zero(blocks as usize * 128);

    // Host-side expected digest over the identical PRNG message.
    let mut lcg = HostLcg::new(0x5EED);
    let message: Vec<u8> = (0..msg_len).map(|_| lcg.next_value() as u8).collect();
    let digest = sha512_host(&message);
    let mut expected = String::with_capacity(130);
    for b in digest {
        expected.push_str(&format!("{b:02x}"));
    }
    expected.push('\n');

    Workload {
        name: "sha512",
        program: a.assemble().expect("sha512 assembles"),
        check: Check::UartEquals(expected.into_bytes()),
        max_insns: blocks as u64 * 2_000_000 + 2_000_000,
        needs_sensor: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn host_sha512_nist_vectors() {
        assert_eq!(
            hex(&sha512_host(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
        );
        assert_eq!(
            hex(&sha512_host(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
        );
        assert_eq!(
            hex(&sha512_host(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                  hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018\
             501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
        );
    }

    #[test]
    fn padding_boundaries() {
        // 111 and 112 byte messages straddle the padding block boundary.
        for len in [0usize, 1, 111, 112, 127, 128, 239] {
            let msg = vec![0xA5u8; len];
            let d = sha512_host(&msg);
            assert_eq!(d.len(), 64);
            // Degenerate check: digest differs from neighbouring length.
            let d2 = sha512_host(&vec![0xA5u8; len + 1]);
            assert_ne!(d, d2);
        }
    }
}
