//! The `qsort` benchmark: recursive quicksort (Lomuto partition) over a
//! PRNG-filled word array, with an in-guest sortedness check.

use vpdift_asm::{Asm, Reg};

use crate::rt::emit_runtime;
use crate::workload::{Check, Workload};

use Reg::*;

/// Builds the workload: sort `n` pseudo-random words, `rounds` times
/// (re-shuffling between rounds), then print `OK`.
pub fn build(n: u32, rounds: u32) -> Workload {
    assert!(n >= 2, "qsort needs at least two elements");
    let mut a = Asm::new(0);
    a.entry();

    // s4 = remaining rounds
    a.li(S4, rounds as i32);
    a.li(A0, 0xC0FFEE);
    a.call("rt_srand");

    a.label("qsort_round");
    // Fill the array with PRNG words.
    a.la(S0, "qsort_arr");
    a.li(S1, n as i32);
    a.mv(S2, S0);
    a.label("qsort_fill");
    a.call("rt_rand");
    a.sw(A0, 0, S2);
    a.addi(S2, S2, 4);
    a.addi(S1, S1, -1);
    a.bnez(S1, "qsort_fill");

    // qsort(arr, arr + 4*(n-1))
    a.la(A0, "qsort_arr");
    a.la(A1, "qsort_arr");
    a.li(T0, (4 * (n - 1)) as i32);
    a.add(A1, A1, T0);
    a.call("qsort");

    // Verify ascending order.
    a.la(T0, "qsort_arr");
    a.li(T1, (n - 1) as i32);
    a.label("qsort_verify");
    a.lw(T2, 0, T0);
    a.lw(T3, 4, T0);
    a.bltu(T3, T2, "rt_fail");
    a.addi(T0, T0, 4);
    a.addi(T1, T1, -1);
    a.bnez(T1, "qsort_verify");

    a.addi(S4, S4, -1);
    a.bnez(S4, "qsort_round");
    a.j("rt_ok");

    // ---- fn qsort(a0 = lo ptr, a1 = hi ptr), Lomuto partition ----------
    a.label("qsort");
    a.bgeu(A0, A1, "qsort_ret");
    a.addi(Sp, Sp, -16);
    a.sw(Ra, 12, Sp);
    a.sw(S0, 8, Sp);
    a.sw(S1, 4, Sp);
    a.sw(S2, 0, Sp);
    a.mv(S0, A0); // lo
    a.mv(S1, A1); // hi
    a.lw(T0, 0, S1); // pivot = *hi
    a.mv(T1, S0); // i = lo (store slot)
    a.mv(T2, S0); // j
    a.label("qsort_part");
    a.bgeu(T2, S1, "qsort_part_done");
    a.lw(T3, 0, T2);
    a.bgeu(T3, T0, "qsort_part_next"); // if *j < pivot: swap *i, *j; i += 4
    a.lw(T4, 0, T1);
    a.sw(T3, 0, T1);
    a.sw(T4, 0, T2);
    a.addi(T1, T1, 4);
    a.label("qsort_part_next");
    a.addi(T2, T2, 4);
    a.j("qsort_part");
    a.label("qsort_part_done");
    // swap *i, *hi
    a.lw(T3, 0, T1);
    a.lw(T4, 0, S1);
    a.sw(T4, 0, T1);
    a.sw(T3, 0, S1);
    a.mv(S2, T1); // pivot slot
                  // left: qsort(lo, pivot-4)
    a.mv(A0, S0);
    a.addi(A1, S2, -4);
    a.call("qsort");
    // right: qsort(pivot+4, hi)
    a.addi(A0, S2, 4);
    a.mv(A1, S1);
    a.call("qsort");
    a.lw(Ra, 12, Sp);
    a.lw(S0, 8, Sp);
    a.lw(S1, 4, Sp);
    a.lw(S2, 0, Sp);
    a.addi(Sp, Sp, 16);
    a.label("qsort_ret");
    a.ret();

    emit_runtime(&mut a);

    a.align(4);
    a.label("qsort_arr");
    a.zero(4 * n as usize);

    let program = a.assemble().expect("qsort assembles");
    Workload {
        name: "qsort",
        program,
        check: Check::UartEquals(b"OK\n".to_vec()),
        max_insns: 2_000u64 * (n as u64) * (rounds as u64).max(1) + 1_000_000,
        needs_sensor: false,
    }
}
