//! The `simple-sensor` benchmark of Table II: interrupt-driven firmware
//! that copies each freshly generated 64-byte sensor frame to the UART —
//! the paper's canonical fine-grained HW/SW interaction (sensor thread →
//! interrupt → ISR → MMIO reads → UART writes).

use vpdift_asm::{csr, Asm, Reg};

use crate::rt::emit_runtime;
use crate::workload::{Check, Workload};

use Reg::*;

/// Matches `vpdift_soc::map` (the firmware crate is SoC-agnostic, so the
/// addresses are re-declared here; the integration tests assert they
/// agree).
const PLIC_BASE: i32 = 0x0C00_0000;
const SENSOR_BASE: i32 = 0x1002_0000;
const UART_BASE: i32 = 0x1000_0000;
const IRQ_SENSOR: i32 = 2;

/// Builds the workload: copy `frames` sensor frames to the UART, then stop.
pub fn build(frames: u32) -> Workload {
    assert!(frames > 0);
    let mut a = Asm::new(0);
    a.entry();

    // Install the trap handler and unmask the sensor interrupt.
    a.la(T0, "isr");
    a.csrw(csr::MTVEC, T0);
    a.li(T0, PLIC_BASE);
    a.li(T1, 1 << IRQ_SENSOR);
    a.sw(T1, 4, T0); // PLIC ENABLE
    a.li(T1, csr::MIE_MEIE as i32);
    a.csrw(csr::MIE, T1);
    a.li(T1, csr::MSTATUS_MIE as i32);
    a.csrw(csr::MSTATUS, T1);

    a.li(S0, frames as i32); // frames remaining
    a.label("idle");
    a.wfi();
    a.j("idle");

    // --- interrupt service routine --------------------------------------
    a.label("isr");
    // Claim (clears the pending bit).
    a.li(T0, PLIC_BASE);
    a.lw(T1, 8, T0);
    // Copy the 64-byte frame to the UART.
    a.li(T2, SENSOR_BASE);
    a.li(T3, UART_BASE);
    a.li(T4, 64);
    a.label("copy");
    a.lbu(T5, 0, T2);
    a.sw(T5, 0, T3);
    a.addi(T2, T2, 1);
    a.addi(T4, T4, -1);
    a.bnez(T4, "copy");
    // Completion write.
    a.li(T0, PLIC_BASE);
    a.sw(T1, 8, T0);
    a.addi(S0, S0, -1);
    a.beqz(S0, "finished");
    a.mret();
    a.label("finished");
    a.ebreak();

    emit_runtime(&mut a);

    fn sensor_output_ok(uart: &[u8]) -> bool {
        !uart.is_empty() && uart.len().is_multiple_of(64) && uart.iter().all(|&b| b >= 128)
    }

    Workload {
        name: "simple-sensor",
        program: a.assemble().expect("simple-sensor assembles"),
        check: Check::UartPredicate(sensor_output_ok),
        max_insns: frames as u64 * 50_000 + 1_000_000,
        needs_sensor: true,
    }
}
