//! The guest runtime: a miniature bare-metal "libc" emitted into every
//! workload image (UART console I/O, memory/string routines, a PRNG, and
//! `setjmp`/`longjmp` for the attack suite).
//!
//! All routines follow the RISC-V calling convention (arguments/results in
//! `a0`–`a2`, `t`-registers caller-saved) and are addressed by the labels
//! below.

use vpdift_asm::{Asm, Reg};

use Reg::*;

/// UART base address baked into `rt_putc` (matches `vpdift_soc::map`).
pub const UART_BASE: i32 = 0x1000_0000;
/// Terminal (console input) base address for `rt_getc`.
pub const TERMINAL_BASE: i32 = 0x1001_0000;

/// Emits the whole runtime at the current position. Programs `call` the
/// routines by label:
///
/// | label         | signature (RISC-V ABI)                             |
/// |---------------|----------------------------------------------------|
/// | `rt_putc`     | `a0` = byte → UART                                 |
/// | `rt_puts`     | `a0` = NUL-terminated string pointer               |
/// | `rt_put_hex`  | `a0` = word, printed as 8 lowercase hex digits     |
/// | `rt_getc`     | → `a0` = next console byte, or -1 if none          |
/// | `rt_memcpy`   | `a0` = dst, `a1` = src, `a2` = len                 |
/// | `rt_memset`   | `a0` = dst, `a1` = byte, `a2` = len                |
/// | `rt_strcmp`   | `a0`,`a1` = strings → `a0` = 0 iff equal           |
/// | `rt_rand`     | → `a0` = next PRNG word (LCG, seeded `rt_srand`)   |
/// | `rt_srand`    | `a0` = seed                                        |
/// | `rt_setjmp`   | `a0` = 16-word buffer → `a0` = 0 (or longjmp val)  |
/// | `rt_longjmp`  | `a0` = buffer, `a1` = value (0 mapped to 1)        |
/// | `rt_ok`       | prints `OK\n`, then `ebreak`                       |
/// | `rt_fail`     | prints `FAIL\n`, then `ebreak`                     |
pub fn emit_runtime(a: &mut Asm) {
    // --- console ---------------------------------------------------------
    a.label("rt_putc");
    a.li(T0, UART_BASE);
    a.sw(A0, 0, T0);
    a.ret();

    a.label("rt_puts");
    a.li(T0, UART_BASE);
    a.label("rt_puts_loop");
    a.lbu(T1, 0, A0);
    a.beqz(T1, "rt_puts_done");
    a.sw(T1, 0, T0);
    a.addi(A0, A0, 1);
    a.j("rt_puts_loop");
    a.label("rt_puts_done");
    a.ret();

    a.label("rt_put_hex");
    a.li(T0, UART_BASE);
    a.li(T1, 8); // digit count
    a.label("rt_put_hex_loop");
    a.srli(T2, A0, 28);
    a.slli(A0, A0, 4);
    a.li(T3, 10);
    a.blt(T2, T3, "rt_put_hex_digit");
    a.addi(T2, T2, b'a' as i32 - 10 - b'0' as i32);
    a.label("rt_put_hex_digit");
    a.addi(T2, T2, b'0' as i32);
    a.sw(T2, 0, T0);
    a.addi(T1, T1, -1);
    a.bnez(T1, "rt_put_hex_loop");
    a.ret();

    a.label("rt_getc");
    a.li(T0, TERMINAL_BASE);
    a.lw(T1, 4, T0); // RXAVAIL
    a.beqz(T1, "rt_getc_empty");
    a.lw(A0, 0, T0); // RXDATA
    a.ret();
    a.label("rt_getc_empty");
    a.li(A0, -1);
    a.ret();

    // --- memory / strings -----------------------------------------------
    a.label("rt_memcpy");
    a.beqz(A2, "rt_memcpy_done");
    a.lbu(T0, 0, A1);
    a.sb(T0, 0, A0);
    a.addi(A0, A0, 1);
    a.addi(A1, A1, 1);
    a.addi(A2, A2, -1);
    a.j("rt_memcpy");
    a.label("rt_memcpy_done");
    a.ret();

    a.label("rt_memset");
    a.beqz(A2, "rt_memset_done");
    a.sb(A1, 0, A0);
    a.addi(A0, A0, 1);
    a.addi(A2, A2, -1);
    a.j("rt_memset");
    a.label("rt_memset_done");
    a.ret();

    a.label("rt_strcmp");
    a.label("rt_strcmp_loop");
    a.lbu(T0, 0, A0);
    a.lbu(T1, 0, A1);
    a.bne(T0, T1, "rt_strcmp_ne");
    a.beqz(T0, "rt_strcmp_eq");
    a.addi(A0, A0, 1);
    a.addi(A1, A1, 1);
    a.j("rt_strcmp_loop");
    a.label("rt_strcmp_eq");
    a.li(A0, 0);
    a.ret();
    a.label("rt_strcmp_ne");
    a.sub(A0, T0, T1);
    a.ret();

    // --- PRNG (glibc-style LCG) -------------------------------------------
    a.label("rt_srand");
    a.la(T0, "rt_lcg_state");
    a.sw(A0, 0, T0);
    a.ret();

    a.label("rt_rand");
    a.la(T0, "rt_lcg_state");
    a.lw(A0, 0, T0);
    a.li(T1, 1103515245);
    a.mul(A0, A0, T1);
    a.li(T1, 12345);
    a.add(A0, A0, T1);
    a.sw(A0, 0, T0);
    a.srli(A0, A0, 1); // non-negative
    a.ret();

    // --- setjmp / longjmp -------------------------------------------------
    // Buffer layout: [ra, sp, s0..s11, gp, tp] = 16 words.
    a.label("rt_setjmp");
    a.sw(Ra, 0, A0);
    a.sw(Sp, 4, A0);
    let s_regs = [S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11];
    for (i, r) in s_regs.iter().enumerate() {
        a.sw(*r, 8 + 4 * i as i32, A0);
    }
    a.sw(Gp, 56, A0);
    a.sw(Tp, 60, A0);
    a.li(A0, 0);
    a.ret();

    a.label("rt_longjmp");
    a.lw(Ra, 0, A0);
    a.lw(Sp, 4, A0);
    for (i, r) in s_regs.iter().enumerate() {
        a.lw(*r, 8 + 4 * i as i32, A0);
    }
    a.lw(Gp, 56, A0);
    a.lw(Tp, 60, A0);
    // Return value: longjmp(_, 0) must deliver 1, per C semantics.
    a.mv(A0, A1);
    a.bnez(A0, "rt_longjmp_ret");
    a.li(A0, 1);
    a.label("rt_longjmp_ret");
    a.ret();

    // --- verdicts ----------------------------------------------------------
    a.label("rt_ok");
    a.la(A0, "rt_ok_msg");
    a.call("rt_puts");
    a.ebreak();
    a.label("rt_fail");
    a.la(A0, "rt_fail_msg");
    a.call("rt_puts");
    a.ebreak();

    // --- runtime data -------------------------------------------------------
    a.align(4);
    a.label("rt_lcg_state");
    a.word(1);
    a.label("rt_ok_msg");
    a.asciiz("OK\n");
    a.label("rt_fail_msg");
    a.asciiz("FAIL\n");
    a.align(4);
}

/// The host-side twin of `rt_rand`, for computing expected results.
#[derive(Debug, Clone)]
pub struct HostLcg {
    state: u32,
}

impl HostLcg {
    /// Seeds the generator (matches `rt_srand`).
    pub fn new(seed: u32) -> Self {
        HostLcg { state: seed }
    }

    /// Next value (matches `rt_rand`).
    pub fn next_value(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(1103515245).wrapping_add(12345);
        self.state >> 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_lcg_matches_formula() {
        let mut l = HostLcg::new(1);
        let first = 1u32.wrapping_mul(1103515245).wrapping_add(12345) >> 1;
        assert_eq!(l.next_value(), first);
        // Deterministic sequence.
        let mut a = HostLcg::new(7);
        let mut b = HostLcg::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_value(), b.next_value());
        }
    }
}
