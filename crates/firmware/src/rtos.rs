//! The `rtos-tasks` benchmark (the paper's `freertos-tasks` analogue): a
//! miniature preemptive RTOS — two tasks with private stacks, round-robin
//! scheduled by the CLINT machine-timer interrupt, with full 30-register
//! context save/restore in the ISR.

use vpdift_asm::{csr, Asm, Reg};

use crate::rt::emit_runtime;
use crate::workload::{Check, Workload};

use Reg::*;

const CLINT_BASE: i32 = 0x0200_0000;

/// The registers saved in a context frame (everything except `sp`, which
/// is the frame pointer itself, and `zero`).
const FRAME_REGS: [Reg; 30] = [
    Ra, Gp, Tp, T0, T1, T2, S0, S1, A0, A1, A2, A3, A4, A5, A6, A7, S2, S3, S4, S5, S6, S7, S8, S9,
    S10, S11, T3, T4, T5, T6,
];

/// Context frame size: 30 registers + saved `mepc`, rounded to 128.
const FRAME: i32 = 128;
const FRAME_MEPC: i32 = 120;

fn emit_task(a: &mut Asm, id: usize, increments: u32, work: u32) {
    let me = format!("task{id}");
    let my_counter = format!("counter{id}");
    let other_counter = format!("counter{}", 1 - id);
    a.label(&me);
    a.la(S0, &my_counter);
    a.la(S1, &other_counter);
    a.li(S2, increments as i32);

    a.label(&format!("{me}_loop"));
    // Busy work: a small arithmetic kernel.
    a.li(T0, work as i32);
    a.li(T1, 0);
    a.label(&format!("{me}_work"));
    a.add(T1, T1, T0);
    a.xori(T1, T1, 0x2A);
    a.addi(T0, T0, -1);
    a.bnez(T0, &format!("{me}_work"));
    // counter++ (volatile).
    a.lw(T2, 0, S0);
    a.addi(T2, T2, 1);
    a.sw(T2, 0, S0);
    a.blt(T2, S2, &format!("{me}_loop"));

    // Finished: spin until the other task is done too.
    a.label(&format!("{me}_wait"));
    a.lw(T3, 0, S1);
    a.blt(T3, S2, &format!("{me}_wait"));
    a.j("finish");
}

/// Builds the workload: two tasks × `increments` counter increments with
/// `work` busy-iterations each, preempted every `slice_us` microseconds.
pub fn build(increments: u32, work: u32, slice_us: u32) -> Workload {
    assert!(increments > 0 && work > 0 && slice_us > 0);
    let mut a = Asm::new(0);
    a.entry();

    // Trap vector.
    a.la(T0, "isr");
    a.csrw(csr::MTVEC, T0);

    // Build task 1's initial context frame on its own stack.
    a.la(T0, "stack1_top");
    a.addi(T0, T0, -FRAME);
    a.la(T1, "task1");
    a.sw(T1, FRAME_MEPC, T0);
    a.la(T2, "task_sp");
    a.sw(T0, 4, T2); // task_sp[1]
    a.sw(Zero, 0, T2); // task_sp[0] (filled on first switch)
    a.la(T2, "cur_task");
    a.sw(Zero, 0, T2);

    // Arm the timer: mtimecmp = mtime + slice.
    a.li(T0, CLINT_BASE + 0xBFF8);
    a.lw(T1, 0, T0);
    a.li(T2, slice_us as i32);
    a.add(T1, T1, T2);
    a.li(T0, CLINT_BASE + 0x4000);
    a.sw(T1, 0, T0);
    a.sw(Zero, 4, T0);

    // Enable the machine timer interrupt.
    a.li(T1, csr::MIE_MTIE as i32);
    a.csrw(csr::MIE, T1);
    a.li(T1, csr::MSTATUS_MIE as i32);
    a.csrw(csr::MSTATUS, T1);

    // Become task 0 on its own stack.
    a.la(Sp, "stack0_top");
    a.j("task0");

    emit_task(&mut a, 0, increments, work);
    emit_task(&mut a, 1, increments, work);

    // Common finish: require that preemption actually happened.
    a.label("finish");
    a.la(T0, "switches");
    a.lw(T1, 0, T0);
    a.li(T2, 2);
    a.blt(T1, T2, "rt_fail");
    a.la(A0, "msg_done");
    a.call("rt_puts");
    a.ebreak();

    // ===== timer ISR: save context, switch task, re-arm, restore ========
    a.label("isr");
    a.addi(Sp, Sp, -FRAME);
    for (i, r) in FRAME_REGS.iter().enumerate() {
        a.sw(*r, 4 * i as i32, Sp);
    }
    a.csrr(T0, csr::MEPC);
    a.sw(T0, FRAME_MEPC, Sp);

    // switches++
    a.la(T0, "switches");
    a.lw(T1, 0, T0);
    a.addi(T1, T1, 1);
    a.sw(T1, 0, T0);

    // task_sp[cur] = sp; cur ^= 1; sp = task_sp[cur]
    a.la(T1, "cur_task");
    a.lw(T2, 0, T1);
    a.la(T3, "task_sp");
    a.slli(T4, T2, 2);
    a.add(T4, T3, T4);
    a.sw(Sp, 0, T4);
    a.xori(T2, T2, 1);
    a.sw(T2, 0, T1);
    a.slli(T4, T2, 2);
    a.add(T4, T3, T4);
    a.lw(Sp, 0, T4);

    // Re-arm: mtimecmp = mtime + slice (clears the pending level).
    a.li(T0, CLINT_BASE + 0xBFF8);
    a.lw(T1, 0, T0);
    a.li(T2, slice_us as i32);
    a.add(T1, T1, T2);
    a.li(T0, CLINT_BASE + 0x4000);
    a.sw(T1, 0, T0);
    a.sw(Zero, 4, T0);

    // Restore the next task's context.
    a.lw(T0, FRAME_MEPC, Sp);
    a.csrw(csr::MEPC, T0);
    for (i, r) in FRAME_REGS.iter().enumerate() {
        a.lw(*r, 4 * i as i32, Sp);
    }
    a.addi(Sp, Sp, FRAME);
    a.mret();

    emit_runtime(&mut a);

    // ----- data ----------------------------------------------------------
    a.align(16);
    a.label("cur_task");
    a.word(0);
    a.label("task_sp");
    a.word(0);
    a.word(0);
    a.label("switches");
    a.word(0);
    a.label("counter0");
    a.word(0);
    a.label("counter1");
    a.word(0);
    a.label("msg_done");
    a.asciiz("RTOS OK\n");
    a.align(16);
    a.zero(4096);
    a.label("stack0_top");
    a.zero(4096);
    a.label("stack1_top");

    let program = a.assemble().expect("rtos assembles");
    let per_task = increments as u64 * (work as u64 * 4 + 10);
    Workload {
        name: "rtos-tasks",
        program,
        check: Check::UartEquals(b"RTOS OK\n".to_vec()),
        max_insns: per_task * 2 * 4 + 10_000_000,
        needs_sensor: false,
    }
}
