//! The `crc32` extended benchmark: table-driven CRC-32 (IEEE 802.3) over a
//! PRNG buffer — byte loads, table lookups and XOR chains, a classic
//! embedded checksum kernel.

use vpdift_asm::{Asm, Reg};

use crate::rt::{emit_runtime, HostLcg};
use crate::workload::{Check, Workload};

use Reg::*;

/// Host-side CRC-32 (reflected, polynomial 0xEDB88320).
pub fn crc32_host(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The same table the guest builds, for cross-checking.
#[cfg(test)]
fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            let mask = (c & 1).wrapping_neg();
            c = (c >> 1) ^ (0xEDB8_8320 & mask);
        }
        *slot = c;
    }
    table
}

/// Builds the workload: CRC-32 of `len` PRNG bytes, `rounds` times, with
/// the guest building its own lookup table first.
pub fn build(len: u32, rounds: u32) -> Workload {
    assert!(len > 0 && rounds > 0);
    let mut a = Asm::new(0);
    a.entry();

    // Generate the input buffer.
    a.li(A0, 0x32C3);
    a.call("rt_srand");
    a.la(S0, "buf");
    a.li(S1, len as i32);
    a.label("gen");
    a.call("rt_rand");
    a.sb(A0, 0, S0);
    a.addi(S0, S0, 1);
    a.addi(S1, S1, -1);
    a.bnez(S1, "gen");

    // Build the 256-entry table (like the classic crc32 init).
    a.la(S0, "table");
    a.li(S1, 0); // i
    a.label("tbl_outer");
    a.mv(T0, S1); // c = i
    a.li(T1, 8);
    a.label("tbl_inner");
    a.andi(T2, T0, 1);
    a.neg(T2, T2); // mask = -(c & 1)
    a.srli(T0, T0, 1);
    a.li(T3, 0xEDB8_8320u32 as i32);
    a.and(T3, T3, T2);
    a.xor(T0, T0, T3);
    a.addi(T1, T1, -1);
    a.bnez(T1, "tbl_inner");
    a.slli(T2, S1, 2);
    a.add(T2, S0, T2);
    a.sw(T0, 0, T2);
    a.addi(S1, S1, 1);
    a.li(T1, 256);
    a.blt(S1, T1, "tbl_outer");

    // rounds × table-driven CRC over the buffer.
    a.li(S5, rounds as i32);
    a.label("round");
    a.li(S2, -1); // crc = 0xFFFFFFFF
    a.la(S3, "buf");
    a.li(S4, len as i32);
    a.label("crc_loop");
    a.lbu(T0, 0, S3);
    a.xor(T1, S2, T0);
    a.andi(T1, T1, 0xFF);
    a.slli(T1, T1, 2);
    a.la(T2, "table");
    a.add(T1, T2, T1);
    a.lw(T1, 0, T1);
    a.srli(S2, S2, 8);
    a.xor(S2, S2, T1);
    a.addi(S3, S3, 1);
    a.addi(S4, S4, -1);
    a.bnez(S4, "crc_loop");
    a.addi(S5, S5, -1);
    a.bnez(S5, "round");

    a.not(A0, S2); // final ~crc
    a.call("rt_put_hex");
    a.li(A0, b'\n' as i32);
    a.call("rt_putc");
    a.ebreak();

    emit_runtime(&mut a);

    a.align(4);
    a.label("table");
    a.zero(256 * 4);
    a.label("buf");
    a.zero(len as usize);

    // Host expected value over the identical PRNG bytes.
    let mut lcg = HostLcg::new(0x32C3);
    let data: Vec<u8> = (0..len).map(|_| lcg.next_value() as u8).collect();
    let expected = format!("{:08x}\n", crc32_host(&data));

    Workload {
        name: "crc32",
        program: a.assemble().expect("crc32 assembles"),
        check: Check::UartEquals(expected.into_bytes()),
        max_insns: (len as u64 * rounds as u64) * 25 + (len as u64) * 25 + 500_000,
        needs_sensor: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_crc32_known_vectors() {
        assert_eq!(crc32_host(b""), 0);
        assert_eq!(crc32_host(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_host(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn table_based_equals_bitwise() {
        let table = crc_table();
        let data = b"taintvp";
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            let idx = ((crc ^ b as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ table[idx];
        }
        assert_eq!(!crc, crc32_host(data));
    }
}
