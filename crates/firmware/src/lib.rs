//! # vpdift-firmware — guest workloads for the virtual prototype
//!
//! The Table II benchmark programs, hand-written in the `vpdift-asm`
//! builder DSL (no offline RISC-V toolchain exists in this environment):
//!
//! * [`qsort`] — recursive quicksort with in-guest verification,
//! * [`dhrystone`] — the classic synthetic integer workload re-created,
//! * [`primes`] — trial-division prime counting (M-extension heavy),
//! * [`sha512`] — full FIPS-180-4 SHA-512 built from 32-bit register pairs,
//! * [`sensor_app`] — interrupt-driven sensor→UART streaming,
//! * [`rtos`] — a preemptive two-task RTOS on the machine timer,
//!
//! plus [`rt`], the miniature bare-metal runtime they share, and the
//! [`Workload`] abstraction the Table II harness consumes. The seventh
//! Table II row (`immo-fixed`) lives in `vpdift-immo`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aes_soft;
pub mod crc32;
pub mod dhrystone;
pub mod matmul;
pub mod primes;
pub mod qsort;
pub mod rt;
pub mod rtos;
pub mod sensor_app;
pub mod sha512;
mod workload;

pub use workload::{Check, Workload};

/// Builds the six in-crate Table II workloads at a given scale factor
/// (`1` ≈ a quick CI run, larger values approach the paper's instruction
/// counts).
pub fn table2_workloads(scale: u32) -> Vec<Workload> {
    let s = scale.max(1);
    vec![
        qsort::build(4_000 * s, 2),
        dhrystone::build(6_000 * s),
        primes::build(20_000 * s),
        sha512::build(40 * s),
        sensor_app::build(100 * s),
        rtos::build(400 * s, 250, 100),
    ]
}

/// Two further workloads beyond the paper's set, for the extended
/// overhead study (`table2 --extended`): CRC-32 and integer matmul.
pub fn extended_workloads(scale: u32) -> Vec<Workload> {
    let s = scale.max(1);
    vec![crc32::build(8_192 * s, 2), matmul::build(24 * s.min(8))]
}
