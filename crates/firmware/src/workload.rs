//! The workload abstraction consumed by the benchmark harness (Table II)
//! and the integration tests.

use vpdift_asm::Program;

/// How to validate a finished run from its UART output.
#[derive(Debug, Clone)]
pub enum Check {
    /// The UART output must equal these bytes exactly.
    UartEquals(Vec<u8>),
    /// The UART output must end with these bytes (prefix may be progress
    /// chatter).
    UartEndsWith(Vec<u8>),
    /// Custom predicate identified by name, checked by the caller.
    UartPredicate(fn(&[u8]) -> bool),
}

/// A guest benchmark program plus its host-side ground truth.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (Table II row).
    pub name: &'static str,
    /// The assembled guest image.
    pub program: Program,
    /// Output validation.
    pub check: Check,
    /// Safety bound on retired instructions for one run.
    pub max_insns: u64,
    /// Whether the sensor's 40 Hz thread must run.
    pub needs_sensor: bool,
}

impl Workload {
    /// Validates the UART output of a finished run.
    pub fn verify(&self, uart: &[u8]) -> bool {
        match &self.check {
            Check::UartEquals(expect) => uart == &expect[..],
            Check::UartEndsWith(suffix) => uart.ends_with(suffix),
            Check::UartPredicate(f) => f(uart),
        }
    }

    /// The paper's "LoC ASM" metric: instruction words in the image.
    pub fn loc_asm(&self) -> usize {
        self.program.insn_count()
    }
}
