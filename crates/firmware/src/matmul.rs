//! The `matmul` extended benchmark: dense `n×n` integer matrix
//! multiplication with a FNV-style checksum — the load/mul/accumulate
//! pattern of DSP-ish embedded code.

use vpdift_asm::{Asm, Reg};

use crate::rt::{emit_runtime, HostLcg};
use crate::workload::{Check, Workload};

use Reg::*;

/// Host-side model producing the expected checksum.
pub fn expected_checksum(n: u32, seed: u32) -> u32 {
    let n = n as usize;
    let mut lcg = HostLcg::new(seed);
    let a: Vec<u32> = (0..n * n).map(|_| lcg.next_value() & 0xFF).collect();
    let b: Vec<u32> = (0..n * n).map(|_| lcg.next_value() & 0xFF).collect();
    let mut checksum = 0x811C_9DC5u32;
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0u32;
            for (k, _) in (0..n).enumerate() {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            checksum = (checksum ^ acc).wrapping_mul(0x0100_0193);
        }
    }
    checksum
}

/// Builds the workload: multiply two PRNG `n×n` matrices and print the
/// checksum.
pub fn build(n: u32) -> Workload {
    assert!(n >= 2);
    const SEED: u32 = 0xA11C;
    let cells = (n * n) as usize;

    let mut a = Asm::new(0);
    a.entry();

    // Fill A then B with PRNG bytes (values masked to 8 bits).
    a.li(A0, SEED as i32);
    a.call("rt_srand");
    for mat in ["mat_a", "mat_b"] {
        a.la(S0, mat);
        a.li(S1, cells as i32);
        a.label(&format!("gen_{mat}"));
        a.call("rt_rand");
        a.andi(A0, A0, 0xFF);
        a.sw(A0, 0, S0);
        a.addi(S0, S0, 4);
        a.addi(S1, S1, -1);
        a.bnez(S1, &format!("gen_{mat}"));
    }

    // checksum in s4; i in s1, j in s2, k in s3.
    a.li(S4, 0x811C_9DC5u32 as i32);
    a.li(S1, 0);
    a.label("matmul_i");
    a.li(S2, 0);
    a.label("matmul_j");
    a.li(S3, 0);
    a.li(S5, 0); // acc
    a.label("matmul_k");
    // a[i*n + k]
    a.li(T0, n as i32);
    a.mul(T1, S1, T0);
    a.add(T1, T1, S3);
    a.slli(T1, T1, 2);
    a.la(T2, "mat_a");
    a.add(T1, T2, T1);
    a.lw(T3, 0, T1);
    // b[k*n + j]
    a.mul(T1, S3, T0);
    a.add(T1, T1, S2);
    a.slli(T1, T1, 2);
    a.la(T2, "mat_b");
    a.add(T1, T2, T1);
    a.lw(T4, 0, T1);
    a.mul(T3, T3, T4);
    a.add(S5, S5, T3);
    a.addi(S3, S3, 1);
    a.li(T0, n as i32);
    a.blt(S3, T0, "matmul_k");
    // checksum = (checksum ^ acc) * FNV_PRIME
    a.xor(S4, S4, S5);
    a.li(T0, 0x0100_0193);
    a.mul(S4, S4, T0);
    a.addi(S2, S2, 1);
    a.li(T0, n as i32);
    a.blt(S2, T0, "matmul_j");
    a.addi(S1, S1, 1);
    a.li(T0, n as i32);
    a.blt(S1, T0, "matmul_i");

    a.mv(A0, S4);
    a.call("rt_put_hex");
    a.li(A0, b'\n' as i32);
    a.call("rt_putc");
    a.ebreak();

    emit_runtime(&mut a);

    a.align(4);
    a.label("mat_a");
    a.zero(cells * 4);
    a.label("mat_b");
    a.zero(cells * 4);

    let expected = format!("{:08x}\n", expected_checksum(n, SEED));
    Workload {
        name: "matmul",
        program: a.assemble().expect("matmul assembles"),
        check: Check::UartEquals(expected.into_bytes()),
        max_insns: (n as u64).pow(3) * 30 + 1_000_000,
        needs_sensor: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic_and_size_sensitive() {
        assert_eq!(expected_checksum(8, 1), expected_checksum(8, 1));
        assert_ne!(expected_checksum(8, 1), expected_checksum(8, 2));
        assert_ne!(expected_checksum(8, 1), expected_checksum(9, 1));
    }
}
