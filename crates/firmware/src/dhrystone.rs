//! The `dhrystone` benchmark: a faithful-in-spirit re-creation of the
//! classic synthetic integer workload — record assignment/copy, string
//! comparison, nested function calls, and branchy integer arithmetic in a
//! fixed iteration loop — with an in-guest checksum verified against the
//! host-computed value.

use vpdift_asm::{Asm, Reg};

use crate::rt::emit_runtime;
use crate::workload::{Check, Workload};

use Reg::*;

/// Host-side model of the guest loop, producing the expected checksum.
pub fn expected_checksum(iterations: u32) -> u32 {
    let mut int_1: u32 = 1;
    let mut int_2: u32 = 3;
    let mut int_3: u32;
    let mut checksum: u32 = 0;
    for run in 1..=iterations {
        // Proc_7 analogue: int_3 = int_1 + int_2 + run
        int_3 = int_1.wrapping_add(int_2).wrapping_add(run);
        // Func_2 analogue: branch on comparison
        if int_3 > int_2 {
            int_1 = int_3.wrapping_sub(int_2);
        } else {
            int_1 = int_3.wrapping_mul(2);
        }
        // Proc_8 analogue: array-ish arithmetic
        int_2 = int_2.wrapping_mul(3).wrapping_rem(101).wrapping_add(int_1 & 7);
        checksum =
            checksum.wrapping_mul(31).wrapping_add(int_1).wrapping_add(int_2).wrapping_add(int_3);
    }
    checksum
}

/// Builds the workload: `iterations` dhrystone-style loop passes, then the
/// checksum printed as hex.
pub fn build(iterations: u32) -> Workload {
    let mut a = Asm::new(0);
    a.entry();

    // s0 = run counter (1..=iterations), s1 = int_1, s2 = int_2,
    // s3 = int_3, s4 = checksum, s5 = iterations.
    a.li(S0, 1);
    a.li(S1, 1);
    a.li(S2, 3);
    a.li(S4, 0);
    a.li(S5, iterations as i32);

    a.label("dhry_loop");
    a.bgtu(S0, S5, "dhry_done");

    // Record copy (Proc_1 analogue): memcpy 32 bytes B <- A.
    a.la(A0, "rec_b");
    a.la(A1, "rec_a");
    a.li(A2, 32);
    a.call("rt_memcpy");

    // String comparison (Func_2's Str_Comp analogue): equal strings.
    a.la(A0, "str_1");
    a.la(A1, "str_2");
    a.call("rt_strcmp");
    a.bnez(A0, "rt_fail");

    // Proc_7: int_3 = int_1 + int_2 + run (via a call, like dhrystone).
    a.mv(A0, S1);
    a.mv(A1, S2);
    a.mv(A2, S0);
    a.call("proc_7");
    a.mv(S3, A0);

    // Func_2 analogue.
    a.bleu(S3, S2, "else_branch");
    a.sub(S1, S3, S2);
    a.j("after_branch");
    a.label("else_branch");
    a.slli(S1, S3, 1);
    a.label("after_branch");

    // Proc_8 analogue.
    a.li(T0, 3);
    a.mul(S2, S2, T0);
    a.li(T0, 101);
    a.remu(S2, S2, T0);
    a.andi(T1, S1, 7);
    a.add(S2, S2, T1);

    // checksum = checksum*31 + int_1 + int_2 + int_3
    a.li(T0, 31);
    a.mul(S4, S4, T0);
    a.add(S4, S4, S1);
    a.add(S4, S4, S2);
    a.add(S4, S4, S3);

    a.addi(S0, S0, 1);
    a.j("dhry_loop");

    a.label("dhry_done");
    a.mv(A0, S4);
    a.call("rt_put_hex");
    a.li(A0, b'\n' as i32);
    a.call("rt_putc");
    a.ebreak();

    // fn proc_7(a0, a1, a2) -> a0 = a0 + a1 + a2, through a second call
    // level (Proc_7 calls Proc_6 in the original).
    a.label("proc_7");
    a.addi(Sp, Sp, -16);
    a.sw(Ra, 12, Sp);
    a.add(A0, A0, A1);
    a.mv(A1, A2);
    a.call("proc_6");
    a.lw(Ra, 12, Sp);
    a.addi(Sp, Sp, 16);
    a.ret();
    a.label("proc_6");
    a.add(A0, A0, A1);
    a.ret();

    emit_runtime(&mut a);

    a.align(4);
    a.label("rec_a");
    for i in 0..8u32 {
        a.word(0x1111_1111u32.wrapping_mul(i));
    }
    a.label("rec_b");
    a.zero(32);
    a.label("str_1");
    a.asciiz("DHRYSTONE PROGRAM, 1'ST STRING");
    a.label("str_2");
    a.asciiz("DHRYSTONE PROGRAM, 1'ST STRING");
    a.align(4);

    let expected = format!("{:08x}\n", expected_checksum(iterations));
    Workload {
        name: "dhrystone",
        program: a.assemble().expect("dhrystone assembles"),
        check: Check::UartEquals(expected.into_bytes()),
        max_insns: iterations as u64 * 1_200 + 1_000_000,
        needs_sensor: false,
    }
}
