//! Software AES-128 as *guest code* — the counterpoint to the AES
//! peripheral.
//!
//! The paper's policy architecture grants declassification only to trusted
//! hardware (§IV-A). This module makes the consequence tangible: a guest
//! that encrypts *in software* produces ciphertext that still carries the
//! key's `(HC,HI)` tag — taint tracking correctly sees through the cipher
//! (every output byte depends on the key) — so the "encrypted" data can
//! never leave on a `(LC,LI)` interface. Only the hardware engine's
//! capability can lower the tag. The encryption itself is verified against
//! the host-side FIPS-197 implementation.

use vpdift_asm::{Asm, Reg};

use crate::rt::emit_runtime;
use crate::workload::{Check, Workload};

use Reg::*;

/// The AES S-box (emitted into the guest image).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Emits `aes_encrypt` — a callable guest routine:
/// `a0` = key ptr (16B), `a1` = plaintext ptr (16B), `a2` = output ptr
/// (16B). Clobbers `t0..t6`, `s6..s11` (saved/restored), uses the static
/// scratch areas emitted alongside.
///
/// The implementation is the byte-oriented FIPS-197 algorithm: key
/// expansion into a 176-byte schedule, then 10 rounds of
/// SubBytes/ShiftRows/MixColumns/AddRoundKey with `xtime` computed
/// branchlessly (mask = `-(b >> 7)`).
pub fn emit_aes_encrypt(a: &mut Asm) {
    a.label("aes_encrypt");
    a.addi(Sp, Sp, -32);
    a.sw(Ra, 28, Sp);
    a.sw(S6, 24, Sp);
    a.sw(S7, 20, Sp);
    a.sw(S8, 16, Sp);
    a.sw(S9, 12, Sp);
    a.sw(S10, 8, Sp);
    a.sw(S11, 4, Sp);
    a.mv(S6, A0); // key
    a.mv(S7, A1); // plaintext
    a.mv(S8, A2); // out

    // ---- key expansion into aes_rk[176] --------------------------------
    a.la(S9, "aes_rk");
    // first 16 bytes = key
    a.mv(A0, S9);
    a.mv(A1, S6);
    a.li(A2, 16);
    a.call("rt_memcpy");
    // words 4..44
    a.li(T0, 4); // i
    a.label("aes_ks");
    // temp = rk[4*(i-1) .. +4]
    a.slli(T1, T0, 2);
    a.add(T1, S9, T1);
    a.lbu(T2, -4, T1);
    a.lbu(T3, -3, T1);
    a.lbu(T4, -2, T1);
    a.lbu(T5, -1, T1);
    // if i % 4 == 0: rotword + subword + rcon
    a.andi(T6, T0, 3);
    a.bnez(T6, "aes_ks_plain");
    // rot: (t2,t3,t4,t5) <- (t3,t4,t5,t2), then sbox each
    a.mv(T6, T2);
    a.mv(T2, T3);
    a.mv(T3, T4);
    a.mv(T4, T5);
    a.mv(T5, T6);
    a.la(T6, "aes_sbox");
    a.add(T2, T6, T2);
    a.lbu(T2, 0, T2);
    a.add(T3, T6, T3);
    a.lbu(T3, 0, T3);
    a.add(T4, T6, T4);
    a.lbu(T4, 0, T4);
    a.add(T5, T6, T5);
    a.lbu(T5, 0, T5);
    // rcon[i/4 - 1] ^= into T2
    a.srli(T6, T0, 2);
    a.la(S10, "aes_rcon");
    a.add(T6, S10, T6);
    a.lbu(T6, -1, T6);
    a.xor(T2, T2, T6);
    a.label("aes_ks_plain");
    // rk[4i..] = rk[4(i-4)..] ^ temp
    a.slli(T1, T0, 2);
    a.add(T1, S9, T1);
    a.lbu(T6, -16, T1);
    a.xor(T2, T2, T6);
    a.sb(T2, 0, T1);
    a.lbu(T6, -15, T1);
    a.xor(T3, T3, T6);
    a.sb(T3, 1, T1);
    a.lbu(T6, -14, T1);
    a.xor(T4, T4, T6);
    a.sb(T4, 2, T1);
    a.lbu(T6, -13, T1);
    a.xor(T5, T5, T6);
    a.sb(T5, 3, T1);
    a.addi(T0, T0, 1);
    a.li(T6, 44);
    a.blt(T0, T6, "aes_ks");

    // ---- state = plaintext ^ rk[0..16] ----------------------------------
    a.la(S10, "aes_state");
    a.li(T0, 0);
    a.label("aes_ark0");
    a.add(T1, S7, T0);
    a.lbu(T2, 0, T1);
    a.add(T1, S9, T0);
    a.lbu(T3, 0, T1);
    a.xor(T2, T2, T3);
    a.add(T1, S10, T0);
    a.sb(T2, 0, T1);
    a.addi(T0, T0, 1);
    a.li(T6, 16);
    a.blt(T0, T6, "aes_ark0");

    // ---- 10 rounds -------------------------------------------------------
    a.li(S11, 1); // round
    a.label("aes_round");
    // SubBytes + ShiftRows into aes_tmp: tmp[i] = sbox[state[shift_map[i]]]
    a.la(T5, "aes_shiftmap");
    a.la(T6, "aes_sbox");
    a.li(T0, 0);
    a.label("aes_sbsr");
    a.add(T1, T5, T0);
    a.lbu(T1, 0, T1); // src index
    a.add(T1, S10, T1);
    a.lbu(T2, 0, T1); // state byte
    a.add(T2, T6, T2);
    a.lbu(T2, 0, T2); // sbox
    a.la(T3, "aes_tmp");
    a.add(T3, T3, T0);
    a.sb(T2, 0, T3);
    a.addi(T0, T0, 1);
    a.li(T1, 16);
    a.blt(T0, T1, "aes_sbsr");

    // MixColumns (skipped in round 10), result back into state, then
    // AddRoundKey with rk[16*round ..].
    a.li(T0, 10);
    a.beq(S11, T0, "aes_last_round");
    // for each column c: standard xtime dance.
    a.li(S7, 0); // column byte base (reusing S7; plaintext no longer needed)
    a.label("aes_mix");
    a.la(T5, "aes_tmp");
    a.add(T5, T5, S7);
    a.lbu(T0, 0, T5); // a0
    a.lbu(T1, 1, T5); // a1
    a.lbu(T2, 2, T5); // a2
    a.lbu(T3, 3, T5); // a3
                      // t = a0^a1^a2^a3
    a.xor(T4, T0, T1);
    a.xor(T4, T4, T2);
    a.xor(T4, T4, T3);
    // helper: xtime(x) = (x<<1) ^ (0x1b & -(x>>7)), all mod 256
    // b0 = a0 ^ t ^ xtime(a0^a1)
    a.xor(T6, T0, T1);
    emit_xtime(a, T6, S6); // careful: S6 (key ptr) is dead after key schedule
    a.xor(T6, T6, T4);
    a.xor(T6, T6, T0);
    a.la(T5, "aes_state");
    a.add(T5, T5, S7);
    a.sb(T6, 0, T5);
    // b1 = a1 ^ t ^ xtime(a1^a2)
    a.xor(T6, T1, T2);
    emit_xtime(a, T6, S6);
    a.xor(T6, T6, T4);
    a.xor(T6, T6, T1);
    a.sb(T6, 1, T5);
    // b2 = a2 ^ t ^ xtime(a2^a3)
    a.xor(T6, T2, T3);
    emit_xtime(a, T6, S6);
    a.xor(T6, T6, T4);
    a.xor(T6, T6, T2);
    a.sb(T6, 2, T5);
    // b3 = a3 ^ t ^ xtime(a3^a0)
    a.xor(T6, T3, T0);
    emit_xtime(a, T6, S6);
    a.xor(T6, T6, T4);
    a.xor(T6, T6, T3);
    a.sb(T6, 3, T5);
    a.addi(S7, S7, 4);
    a.li(T6, 16);
    a.blt(S7, T6, "aes_mix");
    a.j("aes_ark");

    a.label("aes_last_round");
    // state = tmp (no MixColumns)
    a.la(A0, "aes_state");
    a.la(A1, "aes_tmp");
    a.li(A2, 16);
    a.call("rt_memcpy");

    a.label("aes_ark");
    // state ^= rk[16*round ..]
    a.slli(T0, S11, 4);
    a.add(T0, S9, T0); // round key base
    a.la(T5, "aes_state");
    a.li(T1, 0);
    a.label("aes_ark_loop");
    a.add(T2, T5, T1);
    a.lbu(T3, 0, T2);
    a.add(T4, T0, T1);
    a.lbu(T6, 0, T4);
    a.xor(T3, T3, T6);
    a.sb(T3, 0, T2);
    a.addi(T1, T1, 1);
    a.li(T6, 16);
    a.blt(T1, T6, "aes_ark_loop");

    a.addi(S11, S11, 1);
    a.li(T0, 11);
    a.blt(S11, T0, "aes_round");

    // ---- out = state ------------------------------------------------------
    a.mv(A0, S8);
    a.la(A1, "aes_state");
    a.li(A2, 16);
    a.call("rt_memcpy");

    a.lw(Ra, 28, Sp);
    a.lw(S6, 24, Sp);
    a.lw(S7, 20, Sp);
    a.lw(S8, 16, Sp);
    a.lw(S9, 12, Sp);
    a.lw(S10, 8, Sp);
    a.lw(S11, 4, Sp);
    a.addi(Sp, Sp, 32);
    a.ret();
}

/// Branchless GF(2^8) doubling of the byte in `reg` (modifies it in
/// place; clobbers `scratch`).
fn emit_xtime(a: &mut Asm, reg: Reg, scratch: Reg) {
    a.srli(scratch, reg, 7);
    a.neg(scratch, scratch);
    a.andi(scratch, scratch, 0x1B);
    a.slli(reg, reg, 1);
    a.andi(reg, reg, 0xFF);
    a.xor(reg, reg, scratch);
}

/// Emits the constant tables and scratch areas `aes_encrypt` needs.
pub fn emit_aes_data(a: &mut Asm) {
    a.align(4);
    a.label("aes_sbox");
    a.bytes(&SBOX);
    a.label("aes_rcon");
    a.bytes(&RCON);
    // ShiftRows source map: out[i] = in[map[i]] for the column-major
    // FIPS-197 state layout.
    a.label("aes_shiftmap");
    a.bytes(&[0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]);
    a.align(4);
    a.label("aes_rk");
    a.zero(176);
    a.label("aes_state");
    a.zero(16);
    a.label("aes_tmp");
    a.zero(16);
    a.align(4);
}

/// Builds a self-checking workload: encrypt the FIPS-197 appendix-C block
/// in software and print the ciphertext as hex.
pub fn build() -> Workload {
    let mut a = Asm::new(0);
    a.entry();
    a.la(A0, "key");
    a.la(A1, "pt");
    a.la(A2, "ct");
    a.call("aes_encrypt");
    a.la(S0, "ct");
    a.li(S1, 16);
    a.label("print");
    a.lbu(T0, 0, S0);
    // two hex digits per byte via rt_put_hex of a shifted word is clumsy;
    // print with a small nibble loop instead.
    a.srli(A0, T0, 4);
    a.call("hexdigit");
    a.lbu(T0, 0, S0);
    a.andi(A0, T0, 0xF);
    a.call("hexdigit");
    a.addi(S0, S0, 1);
    a.addi(S1, S1, -1);
    a.bnez(S1, "print");
    a.li(A0, b'\n' as i32);
    a.call("rt_putc");
    a.ebreak();

    a.label("hexdigit");
    a.addi(Sp, Sp, -16);
    a.sw(Ra, 12, Sp);
    a.li(T1, 10);
    a.blt(A0, T1, "hexdigit_num");
    a.addi(A0, A0, b'a' as i32 - 10 - b'0' as i32);
    a.label("hexdigit_num");
    a.addi(A0, A0, b'0' as i32);
    a.call("rt_putc");
    a.lw(Ra, 12, Sp);
    a.addi(Sp, Sp, 16);
    a.ret();

    emit_aes_encrypt(&mut a);
    emit_runtime(&mut a);
    emit_aes_data(&mut a);

    a.align(4);
    a.label("key");
    a.bytes(&(0..16u8).collect::<Vec<_>>());
    a.label("pt");
    a.bytes(&[
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ]);
    a.label("ct");
    a.zero(16);

    Workload {
        name: "aes-soft",
        program: a.assemble().expect("aes-soft assembles"),
        check: Check::UartEquals(b"69c4e0d86a7b0430d8cdb78070b4c55a\n".to_vec()),
        max_insns: 2_000_000,
        needs_sensor: false,
    }
}
