//! The `primes` benchmark: count primes below a limit by trial division
//! (exercising the M extension's `mul`/`remu` heavily).

use vpdift_asm::{Asm, Reg};

use crate::rt::emit_runtime;
use crate::workload::{Check, Workload};

use Reg::*;

/// Host-side ground truth.
pub fn count_primes_below(limit: u32) -> u32 {
    let mut count = 0;
    for n in 2..limit {
        let mut d = 2u32;
        let mut prime = true;
        while d * d <= n {
            if n % d == 0 {
                prime = false;
                break;
            }
            d += 1;
        }
        if prime {
            count += 1;
        }
    }
    count
}

/// Builds the workload: count primes `< limit`, print the count as hex.
pub fn build(limit: u32) -> Workload {
    let mut a = Asm::new(0);
    a.entry();
    a.li(S0, 2); // candidate
    a.li(S1, 0); // count
    a.li(S2, limit as i32);

    a.label("primes_outer");
    a.bgeu(S0, S2, "primes_done");
    a.li(T0, 2); // divisor
    a.label("primes_inner");
    a.mul(T1, T0, T0);
    a.bgtu(T1, S0, "prime"); // d*d > n  ⇒ prime
    a.remu(T2, S0, T0);
    a.beqz(T2, "composite");
    a.addi(T0, T0, 1);
    a.j("primes_inner");
    a.label("prime");
    a.addi(S1, S1, 1);
    a.label("composite");
    a.addi(S0, S0, 1);
    a.j("primes_outer");

    a.label("primes_done");
    a.mv(A0, S1);
    a.call("rt_put_hex");
    a.li(A0, b'\n' as i32);
    a.call("rt_putc");
    a.ebreak();

    emit_runtime(&mut a);

    let expected = format!("{:08x}\n", count_primes_below(limit));
    Workload {
        name: "primes",
        program: a.assemble().expect("primes assembles"),
        check: Check::UartEquals(expected.into_bytes()),
        max_insns: (limit as u64) * (limit as u64).isqrt().max(1) * 12 + 1_000_000,
        needs_sensor: false,
    }
}
