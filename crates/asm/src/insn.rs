//! RV32IM + Zicsr instruction definitions: a structured [`Insn`] type with
//! exact binary `encode`/`decode` and textual disassembly.
//!
//! This module is the single source of truth for the ISA; both the
//! assembler ([`crate::Asm`]) and the instruction-set simulator
//! (`vpdift-rv32`) consume it, so encode/decode stay in lock-step and are
//! property-tested as a round trip.

use core::fmt;

use crate::reg::Reg;

/// Branch comparison performed by a `Branch` instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    const fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0b000,
            BranchCond::Ne => 0b001,
            BranchCond::Lt => 0b100,
            BranchCond::Ge => 0b101,
            BranchCond::Ltu => 0b110,
            BranchCond::Geu => 0b111,
        }
    }
    fn from_funct3(f: u32) -> Option<Self> {
        Some(match f {
            0b000 => BranchCond::Eq,
            0b001 => BranchCond::Ne,
            0b100 => BranchCond::Lt,
            0b101 => BranchCond::Ge,
            0b110 => BranchCond::Ltu,
            0b111 => BranchCond::Geu,
            _ => return None,
        })
    }
    const fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Access width/signedness of a `Load`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum LoadWidth {
    B,
    H,
    W,
    Bu,
    Hu,
}

impl LoadWidth {
    const fn funct3(self) -> u32 {
        match self {
            LoadWidth::B => 0b000,
            LoadWidth::H => 0b001,
            LoadWidth::W => 0b010,
            LoadWidth::Bu => 0b100,
            LoadWidth::Hu => 0b101,
        }
    }
    fn from_funct3(f: u32) -> Option<Self> {
        Some(match f {
            0b000 => LoadWidth::B,
            0b001 => LoadWidth::H,
            0b010 => LoadWidth::W,
            0b100 => LoadWidth::Bu,
            0b101 => LoadWidth::Hu,
            _ => return None,
        })
    }
    /// Number of bytes accessed.
    pub const fn size(self) -> u32 {
        match self {
            LoadWidth::B | LoadWidth::Bu => 1,
            LoadWidth::H | LoadWidth::Hu => 2,
            LoadWidth::W => 4,
        }
    }
    const fn mnemonic(self) -> &'static str {
        match self {
            LoadWidth::B => "lb",
            LoadWidth::H => "lh",
            LoadWidth::W => "lw",
            LoadWidth::Bu => "lbu",
            LoadWidth::Hu => "lhu",
        }
    }
}

/// Access width of a `Store`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum StoreWidth {
    B,
    H,
    W,
}

impl StoreWidth {
    const fn funct3(self) -> u32 {
        match self {
            StoreWidth::B => 0b000,
            StoreWidth::H => 0b001,
            StoreWidth::W => 0b010,
        }
    }
    fn from_funct3(f: u32) -> Option<Self> {
        Some(match f {
            0b000 => StoreWidth::B,
            0b001 => StoreWidth::H,
            0b010 => StoreWidth::W,
            _ => return None,
        })
    }
    /// Number of bytes accessed.
    pub const fn size(self) -> u32 {
        match self {
            StoreWidth::B => 1,
            StoreWidth::H => 2,
            StoreWidth::W => 4,
        }
    }
    const fn mnemonic(self) -> &'static str {
        match self {
            StoreWidth::B => "sb",
            StoreWidth::H => "sh",
            StoreWidth::W => "sw",
        }
    }
}

/// ALU operation of `Alu`/`AluImm` instructions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
}

impl AluOp {
    const fn funct3(self) -> u32 {
        match self {
            AluOp::Add | AluOp::Sub => 0b000,
            AluOp::Sll => 0b001,
            AluOp::Slt => 0b010,
            AluOp::Sltu => 0b011,
            AluOp::Xor => 0b100,
            AluOp::Srl | AluOp::Sra => 0b101,
            AluOp::Or => 0b110,
            AluOp::And => 0b111,
        }
    }
    const fn funct7(self) -> u32 {
        match self {
            AluOp::Sub | AluOp::Sra => 0b0100000,
            _ => 0,
        }
    }
    const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
    /// `true` for the shift operations (whose immediates are 5-bit shamts).
    pub const fn is_shift(self) -> bool {
        matches!(self, AluOp::Sll | AluOp::Srl | AluOp::Sra)
    }
}

/// M-extension operation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum MulOp {
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

impl MulOp {
    const fn funct3(self) -> u32 {
        match self {
            MulOp::Mul => 0b000,
            MulOp::Mulh => 0b001,
            MulOp::Mulhsu => 0b010,
            MulOp::Mulhu => 0b011,
            MulOp::Div => 0b100,
            MulOp::Divu => 0b101,
            MulOp::Rem => 0b110,
            MulOp::Remu => 0b111,
        }
    }
    fn from_funct3(f: u32) -> Self {
        match f {
            0b000 => MulOp::Mul,
            0b001 => MulOp::Mulh,
            0b010 => MulOp::Mulhsu,
            0b011 => MulOp::Mulhu,
            0b100 => MulOp::Div,
            0b101 => MulOp::Divu,
            0b110 => MulOp::Rem,
            _ => MulOp::Remu,
        }
    }
    const fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Mulh => "mulh",
            MulOp::Mulhsu => "mulhsu",
            MulOp::Mulhu => "mulhu",
            MulOp::Div => "div",
            MulOp::Divu => "divu",
            MulOp::Rem => "rem",
            MulOp::Remu => "remu",
        }
    }
}

/// A-extension atomic read-modify-write operation (the `amo*.w` family;
/// LR/SC are separate [`Insn`] variants).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AmoOp {
    Swap,
    Add,
    Xor,
    And,
    Or,
    Min,
    Max,
    Minu,
    Maxu,
}

impl AmoOp {
    /// All nine AMO operations, in funct5 order.
    pub const ALL: [AmoOp; 9] = [
        AmoOp::Add,
        AmoOp::Swap,
        AmoOp::Xor,
        AmoOp::Or,
        AmoOp::And,
        AmoOp::Min,
        AmoOp::Max,
        AmoOp::Minu,
        AmoOp::Maxu,
    ];

    const fn funct5(self) -> u32 {
        match self {
            AmoOp::Add => 0b00000,
            AmoOp::Swap => 0b00001,
            AmoOp::Xor => 0b00100,
            AmoOp::Or => 0b01000,
            AmoOp::And => 0b01100,
            AmoOp::Min => 0b10000,
            AmoOp::Max => 0b10100,
            AmoOp::Minu => 0b11000,
            AmoOp::Maxu => 0b11100,
        }
    }
    fn from_funct5(f: u32) -> Option<Self> {
        Some(match f {
            0b00000 => AmoOp::Add,
            0b00001 => AmoOp::Swap,
            0b00100 => AmoOp::Xor,
            0b01000 => AmoOp::Or,
            0b01100 => AmoOp::And,
            0b10000 => AmoOp::Min,
            0b10100 => AmoOp::Max,
            0b11000 => AmoOp::Minu,
            0b11100 => AmoOp::Maxu,
            _ => return None,
        })
    }
    const fn mnemonic(self) -> &'static str {
        match self {
            AmoOp::Swap => "amoswap.w",
            AmoOp::Add => "amoadd.w",
            AmoOp::Xor => "amoxor.w",
            AmoOp::And => "amoand.w",
            AmoOp::Or => "amoor.w",
            AmoOp::Min => "amomin.w",
            AmoOp::Max => "amomax.w",
            AmoOp::Minu => "amominu.w",
            AmoOp::Maxu => "amomaxu.w",
        }
    }
    /// Applies the operation to (loaded value, rs2 value), returning the
    /// value written back to memory. Min/Max are signed, Minu/Maxu
    /// unsigned, per the RISC-V A extension.
    pub const fn apply(self, loaded: u32, rs2: u32) -> u32 {
        match self {
            AmoOp::Swap => rs2,
            AmoOp::Add => loaded.wrapping_add(rs2),
            AmoOp::Xor => loaded ^ rs2,
            AmoOp::And => loaded & rs2,
            AmoOp::Or => loaded | rs2,
            AmoOp::Min => {
                if (loaded as i32) < (rs2 as i32) {
                    loaded
                } else {
                    rs2
                }
            }
            AmoOp::Max => {
                if (loaded as i32) > (rs2 as i32) {
                    loaded
                } else {
                    rs2
                }
            }
            AmoOp::Minu => {
                if loaded < rs2 {
                    loaded
                } else {
                    rs2
                }
            }
            AmoOp::Maxu => {
                if loaded > rs2 {
                    loaded
                } else {
                    rs2
                }
            }
        }
    }
}

/// Zicsr operation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CsrOp {
    Rw,
    Rs,
    Rc,
}

impl CsrOp {
    const fn mnemonic(self, imm: bool) -> &'static str {
        match (self, imm) {
            (CsrOp::Rw, false) => "csrrw",
            (CsrOp::Rs, false) => "csrrs",
            (CsrOp::Rc, false) => "csrrc",
            (CsrOp::Rw, true) => "csrrwi",
            (CsrOp::Rs, true) => "csrrsi",
            (CsrOp::Rc, true) => "csrrci",
        }
    }
}

/// Source operand of a CSR instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CsrSrc {
    /// Register form (`csrrw`/`csrrs`/`csrrc`).
    Reg(Reg),
    /// 5-bit zero-extended immediate form (`csrrwi`/…).
    Imm(u8),
}

/// A decoded RV32IM + Zicsr instruction.
///
/// ```
/// use vpdift_asm::{Insn, Reg};
/// let add = Insn::Alu { op: vpdift_asm::AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
/// let word = add.encode();
/// assert_eq!(Insn::decode(word).unwrap(), add);
/// assert_eq!(add.to_string(), "add a0, a1, a2");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Insn {
    /// `lui rd, imm20` — load upper immediate (`imm20` is the raw 20-bit
    /// field; the register receives `imm20 << 12`).
    Lui {
        /// Destination.
        rd: Reg,
        /// Raw 20-bit upper-immediate field.
        imm20: u32,
    },
    /// `auipc rd, imm20` — add upper immediate to PC.
    Auipc {
        /// Destination.
        rd: Reg,
        /// Raw 20-bit upper-immediate field.
        imm20: u32,
    },
    /// `jal rd, offset` — jump and link, PC-relative.
    Jal {
        /// Link register.
        rd: Reg,
        /// Signed byte offset, multiple of 2, ±1 MiB.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Conditional branch, PC-relative.
    Branch {
        /// Comparison.
        cond: BranchCond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed byte offset, multiple of 2, ±4 KiB.
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Width and signedness.
        width: LoadWidth,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        width: StoreWidth,
        /// Source register (value to store).
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Register–immediate ALU operation. For shifts the immediate is the
    /// 5-bit shamt.
    AluImm {
        /// Operation (never [`AluOp::Sub`]; use `addi` with a negative
        /// immediate).
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Signed 12-bit immediate (0–31 for shifts).
        imm: i32,
    },
    /// Register–register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left source.
        rs1: Reg,
        /// Right source.
        rs2: Reg,
    },
    /// M-extension multiply/divide.
    MulDiv {
        /// Operation.
        op: MulOp,
        /// Destination.
        rd: Reg,
        /// Left source.
        rs1: Reg,
        /// Right source.
        rs2: Reg,
    },
    /// Zicsr read-modify-write.
    Csr {
        /// Operation.
        op: CsrOp,
        /// Destination for the old CSR value.
        rd: Reg,
        /// CSR number.
        csr: u16,
        /// Source operand (register or 5-bit immediate).
        src: CsrSrc,
    },
    /// `lr.w rd, (rs1)` — load-reserved word: loads the word at `rs1` and
    /// registers a reservation on that address. Acquire/release bits are
    /// accepted on decode but carry no semantics in this sequentially
    /// consistent VP (encode always emits aq=rl=0).
    Lr {
        /// Destination for the loaded word.
        rd: Reg,
        /// Address register (no offset in the A extension).
        rs1: Reg,
    },
    /// `sc.w rd, rs2, (rs1)` — store-conditional word: stores `rs2` at
    /// `rs1` iff a reservation from a prior `lr.w` on the same address is
    /// still valid; `rd` receives 0 on success, 1 on failure.
    Sc {
        /// Destination for the success code (0 = stored, 1 = failed).
        rd: Reg,
        /// Value stored on success.
        rs2: Reg,
        /// Address register.
        rs1: Reg,
    },
    /// `amo<op>.w rd, rs2, (rs1)` — atomic read-modify-write: loads the
    /// word at `rs1` into `rd`, applies [`AmoOp::apply`] to (loaded,
    /// `rs2`) and stores the result back.
    Amo {
        /// The read-modify-write operation.
        op: AmoOp,
        /// Destination for the *original* memory value.
        rd: Reg,
        /// Right-hand operand of the operation.
        rs2: Reg,
        /// Address register.
        rs1: Reg,
    },
    /// `fence` (a no-op in this sequentially consistent VP).
    Fence,
    /// `fence.i` instruction-stream fence.
    FenceI,
    /// Environment call.
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Machine-mode trap return.
    Mret,
    /// Wait for interrupt.
    Wfi,
}

/// Errors from [`Insn::decode`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The word does not encode a supported instruction.
    Illegal(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Illegal(w) => write!(f, "illegal instruction word {w:#010x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP: u32 = 0b0110011;
const OPC_MISC_MEM: u32 = 0b0001111;
const OPC_AMO: u32 = 0b0101111;
const OPC_SYSTEM: u32 = 0b1110011;

/// funct5 values of LR/SC within the AMO opcode space (the nine
/// read-modify-write funct5s live in [`AmoOp`]).
const AMO_F5_LR: u32 = 0b00010;
const AMO_F5_SC: u32 = 0b00011;

fn enc_r(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn enc_i(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "I-type immediate {imm} out of range");
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn enc_s(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "S-type immediate {imm} out of range");
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode
}

fn enc_b(offset: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    assert!(
        (-4096..=4094).contains(&offset) && offset % 2 == 0,
        "branch offset {offset} out of range or misaligned"
    );
    let imm = offset as u32 & 0x1FFF;
    let b12 = (imm >> 12) & 1;
    let b11 = (imm >> 11) & 1;
    let b10_5 = (imm >> 5) & 0x3F;
    let b4_1 = (imm >> 1) & 0xF;
    (b12 << 31)
        | (b10_5 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (b4_1 << 8)
        | (b11 << 7)
        | opcode
}

fn enc_u(imm20: u32, rd: u32, opcode: u32) -> u32 {
    assert!(imm20 < (1 << 20), "U-type immediate {imm20:#x} exceeds 20 bits");
    (imm20 << 12) | (rd << 7) | opcode
}

fn enc_j(offset: i32, rd: u32, opcode: u32) -> u32 {
    assert!(
        (-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0,
        "jal offset {offset} out of range or misaligned"
    );
    let imm = offset as u32 & 0x1F_FFFF;
    let b20 = (imm >> 20) & 1;
    let b19_12 = (imm >> 12) & 0xFF;
    let b11 = (imm >> 11) & 1;
    let b10_1 = (imm >> 1) & 0x3FF;
    (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd << 7) | opcode
}

fn dec_i_imm(word: u32) -> i32 {
    (word as i32) >> 20
}

fn dec_s_imm(word: u32) -> i32 {
    let hi = (word as i32) >> 25; // sign-extended [11:5]
    let lo = ((word >> 7) & 0x1F) as i32;
    (hi << 5) | lo
}

fn dec_b_imm(word: u32) -> i32 {
    let b12 = ((word >> 31) & 1) as i32;
    let b11 = ((word >> 7) & 1) as i32;
    let b10_5 = ((word >> 25) & 0x3F) as i32;
    let b4_1 = ((word >> 8) & 0xF) as i32;
    let imm = (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1);
    (imm << 19) >> 19
}

fn dec_j_imm(word: u32) -> i32 {
    let b20 = ((word >> 31) & 1) as i32;
    let b19_12 = ((word >> 12) & 0xFF) as i32;
    let b11 = ((word >> 20) & 1) as i32;
    let b10_1 = ((word >> 21) & 0x3FF) as i32;
    let imm = (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1);
    (imm << 11) >> 11
}

impl Insn {
    /// Encodes the instruction into its 32-bit word.
    ///
    /// # Panics
    /// Panics if an immediate/offset is out of range for the encoding —
    /// the assembler validates ranges before calling this.
    pub fn encode(self) -> u32 {
        match self {
            Insn::Lui { rd, imm20 } => enc_u(imm20, rd.num(), OPC_LUI),
            Insn::Auipc { rd, imm20 } => enc_u(imm20, rd.num(), OPC_AUIPC),
            Insn::Jal { rd, offset } => enc_j(offset, rd.num(), OPC_JAL),
            Insn::Jalr { rd, rs1, offset } => enc_i(offset, rs1.num(), 0b000, rd.num(), OPC_JALR),
            Insn::Branch { cond, rs1, rs2, offset } => {
                enc_b(offset, rs2.num(), rs1.num(), cond.funct3(), OPC_BRANCH)
            }
            Insn::Load { width, rd, rs1, offset } => {
                enc_i(offset, rs1.num(), width.funct3(), rd.num(), OPC_LOAD)
            }
            Insn::Store { width, rs2, rs1, offset } => {
                enc_s(offset, rs2.num(), rs1.num(), width.funct3(), OPC_STORE)
            }
            Insn::AluImm { op, rd, rs1, imm } => {
                assert!(op != AluOp::Sub, "subi does not exist; use addi with -imm");
                if op.is_shift() {
                    assert!((0..32).contains(&imm), "shift amount {imm} out of range");
                    enc_r(op.funct7(), imm as u32, rs1.num(), op.funct3(), rd.num(), OPC_OP_IMM)
                } else {
                    enc_i(imm, rs1.num(), op.funct3(), rd.num(), OPC_OP_IMM)
                }
            }
            Insn::Alu { op, rd, rs1, rs2 } => {
                enc_r(op.funct7(), rs2.num(), rs1.num(), op.funct3(), rd.num(), OPC_OP)
            }
            Insn::MulDiv { op, rd, rs1, rs2 } => {
                enc_r(0b0000001, rs2.num(), rs1.num(), op.funct3(), rd.num(), OPC_OP)
            }
            Insn::Csr { op, rd, csr, src } => {
                let (funct3, field) = match (op, src) {
                    (CsrOp::Rw, CsrSrc::Reg(r)) => (0b001, r.num()),
                    (CsrOp::Rs, CsrSrc::Reg(r)) => (0b010, r.num()),
                    (CsrOp::Rc, CsrSrc::Reg(r)) => (0b011, r.num()),
                    (CsrOp::Rw, CsrSrc::Imm(i)) => (0b101, i as u32),
                    (CsrOp::Rs, CsrSrc::Imm(i)) => (0b110, i as u32),
                    (CsrOp::Rc, CsrSrc::Imm(i)) => (0b111, i as u32),
                };
                assert!(field < 32, "CSR immediate out of range");
                ((csr as u32) << 20) | (field << 15) | (funct3 << 12) | (rd.num() << 7) | OPC_SYSTEM
            }
            Insn::Lr { rd, rs1 } => enc_r(AMO_F5_LR << 2, 0, rs1.num(), 0b010, rd.num(), OPC_AMO),
            Insn::Sc { rd, rs2, rs1 } => {
                enc_r(AMO_F5_SC << 2, rs2.num(), rs1.num(), 0b010, rd.num(), OPC_AMO)
            }
            Insn::Amo { op, rd, rs2, rs1 } => {
                enc_r(op.funct5() << 2, rs2.num(), rs1.num(), 0b010, rd.num(), OPC_AMO)
            }
            Insn::Fence => 0x0FF0_000F,
            Insn::FenceI => 0x0000_100F,
            Insn::Ecall => 0x0000_0073,
            Insn::Ebreak => 0x0010_0073,
            Insn::Mret => 0x3020_0073,
            Insn::Wfi => 0x1050_0073,
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    /// [`DecodeError::Illegal`] for unsupported or malformed words.
    pub fn decode(word: u32) -> Result<Insn, DecodeError> {
        let opcode = word & 0x7F;
        let rd = Reg::from_num((word >> 7) & 0x1F).expect("5-bit field");
        let rs1 = Reg::from_num((word >> 15) & 0x1F).expect("5-bit field");
        let rs2 = Reg::from_num((word >> 20) & 0x1F).expect("5-bit field");
        let funct3 = (word >> 12) & 0x7;
        let funct7 = word >> 25;
        let ill = Err(DecodeError::Illegal(word));
        Ok(match opcode {
            OPC_LUI => Insn::Lui { rd, imm20: word >> 12 },
            OPC_AUIPC => Insn::Auipc { rd, imm20: word >> 12 },
            OPC_JAL => Insn::Jal { rd, offset: dec_j_imm(word) },
            OPC_JALR if funct3 == 0 => Insn::Jalr { rd, rs1, offset: dec_i_imm(word) },
            OPC_BRANCH => match BranchCond::from_funct3(funct3) {
                Some(cond) => Insn::Branch { cond, rs1, rs2, offset: dec_b_imm(word) },
                None => return ill,
            },
            OPC_LOAD => match LoadWidth::from_funct3(funct3) {
                Some(width) => Insn::Load { width, rd, rs1, offset: dec_i_imm(word) },
                None => return ill,
            },
            OPC_STORE => match StoreWidth::from_funct3(funct3) {
                Some(width) => Insn::Store { width, rs2, rs1, offset: dec_s_imm(word) },
                None => return ill,
            },
            OPC_OP_IMM => {
                let op = match funct3 {
                    0b000 => AluOp::Add,
                    0b001 if funct7 == 0 => AluOp::Sll,
                    0b010 => AluOp::Slt,
                    0b011 => AluOp::Sltu,
                    0b100 => AluOp::Xor,
                    0b101 if funct7 == 0 => AluOp::Srl,
                    0b101 if funct7 == 0b0100000 => AluOp::Sra,
                    0b110 => AluOp::Or,
                    0b111 => AluOp::And,
                    _ => return ill,
                };
                let imm =
                    if op.is_shift() { ((word >> 20) & 0x1F) as i32 } else { dec_i_imm(word) };
                Insn::AluImm { op, rd, rs1, imm }
            }
            OPC_OP => match funct7 {
                0b0000000 | 0b0100000 => {
                    let op = match (funct3, funct7) {
                        (0b000, 0) => AluOp::Add,
                        (0b000, _) => AluOp::Sub,
                        (0b001, 0) => AluOp::Sll,
                        (0b010, 0) => AluOp::Slt,
                        (0b011, 0) => AluOp::Sltu,
                        (0b100, 0) => AluOp::Xor,
                        (0b101, 0) => AluOp::Srl,
                        (0b101, _) => AluOp::Sra,
                        (0b110, 0) => AluOp::Or,
                        (0b111, 0) => AluOp::And,
                        _ => return ill,
                    };
                    Insn::Alu { op, rd, rs1, rs2 }
                }
                0b0000001 => Insn::MulDiv { op: MulOp::from_funct3(funct3), rd, rs1, rs2 },
                _ => return ill,
            },
            OPC_MISC_MEM => match funct3 {
                0b000 => Insn::Fence,
                0b001 => Insn::FenceI,
                _ => return ill,
            },
            // A extension: funct5 in [31:27]; aq/rl in [26:25] are accepted
            // and discarded (ordering is vacuous in this sequential VP).
            OPC_AMO if funct3 == 0b010 => match funct7 >> 2 {
                AMO_F5_LR if rs2 == Reg::Zero => Insn::Lr { rd, rs1 },
                AMO_F5_LR => return ill,
                AMO_F5_SC => Insn::Sc { rd, rs2, rs1 },
                f5 => match AmoOp::from_funct5(f5) {
                    Some(op) => Insn::Amo { op, rd, rs2, rs1 },
                    None => return ill,
                },
            },
            OPC_SYSTEM => match funct3 {
                0b000 => match word {
                    0x0000_0073 => Insn::Ecall,
                    0x0010_0073 => Insn::Ebreak,
                    0x3020_0073 => Insn::Mret,
                    0x1050_0073 => Insn::Wfi,
                    _ => return ill,
                },
                _ => {
                    let csr = (word >> 20) as u16;
                    let field = (word >> 15) & 0x1F;
                    let (op, src) = match funct3 {
                        0b001 => (CsrOp::Rw, CsrSrc::Reg(rs1)),
                        0b010 => (CsrOp::Rs, CsrSrc::Reg(rs1)),
                        0b011 => (CsrOp::Rc, CsrSrc::Reg(rs1)),
                        0b101 => (CsrOp::Rw, CsrSrc::Imm(field as u8)),
                        0b110 => (CsrOp::Rs, CsrSrc::Imm(field as u8)),
                        0b111 => (CsrOp::Rc, CsrSrc::Imm(field as u8)),
                        _ => return ill,
                    };
                    Insn::Csr { op, rd, csr, src }
                }
            },
            _ => return ill,
        })
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Lui { rd, imm20 } => write!(f, "lui {rd}, {imm20:#x}"),
            Insn::Auipc { rd, imm20 } => write!(f, "auipc {rd}, {imm20:#x}"),
            Insn::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Insn::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Insn::Branch { cond, rs1, rs2, offset } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", cond.mnemonic())
            }
            Insn::Load { width, rd, rs1, offset } => {
                write!(f, "{} {rd}, {offset}({rs1})", width.mnemonic())
            }
            Insn::Store { width, rs2, rs1, offset } => {
                write!(f, "{} {rs2}, {offset}({rs1})", width.mnemonic())
            }
            Insn::AluImm { op, rd, rs1, imm } => {
                let m = match op {
                    AluOp::Add => "addi",
                    AluOp::Slt => "slti",
                    AluOp::Sltu => "sltiu",
                    AluOp::Xor => "xori",
                    AluOp::Or => "ori",
                    AluOp::And => "andi",
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    AluOp::Sub => "subi?",
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Insn::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Insn::MulDiv { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Insn::Csr { op, rd, csr, src } => match src {
                CsrSrc::Reg(r) => write!(f, "{} {rd}, {csr:#x}, {r}", op.mnemonic(false)),
                CsrSrc::Imm(i) => write!(f, "{} {rd}, {csr:#x}, {i}", op.mnemonic(true)),
            },
            Insn::Lr { rd, rs1 } => write!(f, "lr.w {rd}, ({rs1})"),
            Insn::Sc { rd, rs2, rs1 } => write!(f, "sc.w {rd}, {rs2}, ({rs1})"),
            Insn::Amo { op, rd, rs2, rs1 } => {
                write!(f, "{} {rd}, {rs2}, ({rs1})", op.mnemonic())
            }
            Insn::Fence => write!(f, "fence"),
            Insn::FenceI => write!(f, "fence.i"),
            Insn::Ecall => write!(f, "ecall"),
            Insn::Ebreak => write!(f, "ebreak"),
            Insn::Mret => write!(f, "mret"),
            Insn::Wfi => write!(f, "wfi"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_golden_encodings() {
        // Cross-checked against the RISC-V spec / GNU as output.
        // addi a0, a0, 1  => 0x00150513
        assert_eq!(
            Insn::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 1 }.encode(),
            0x0015_0513
        );
        // add a0, a1, a2 => 0x00C58533
        assert_eq!(
            Insn::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 }.encode(),
            0x00C5_8533
        );
        // sub t0, t1, t2 => 0x407302B3
        assert_eq!(
            Insn::Alu { op: AluOp::Sub, rd: Reg::T0, rs1: Reg::T1, rs2: Reg::T2 }.encode(),
            0x4073_02B3
        );
        // lw a0, 8(sp) => 0x00812503
        assert_eq!(
            Insn::Load { width: LoadWidth::W, rd: Reg::A0, rs1: Reg::Sp, offset: 8 }.encode(),
            0x0081_2503
        );
        // sw a0, -4(sp) => 0xFEA12E23
        assert_eq!(
            Insn::Store { width: StoreWidth::W, rs2: Reg::A0, rs1: Reg::Sp, offset: -4 }.encode(),
            0xFEA1_2E23
        );
        // beq a0, a1, +8 => 0x00B50463
        assert_eq!(
            Insn::Branch { cond: BranchCond::Eq, rs1: Reg::A0, rs2: Reg::A1, offset: 8 }.encode(),
            0x00B5_0463
        );
        // jal ra, +16 => 0x010000EF
        assert_eq!(Insn::Jal { rd: Reg::Ra, offset: 16 }.encode(), 0x0100_00EF);
        // jalr zero, 0(ra) (ret) => 0x00008067
        assert_eq!(Insn::Jalr { rd: Reg::Zero, rs1: Reg::Ra, offset: 0 }.encode(), 0x0000_8067);
        // lui t0, 0x12345 => 0x123452B7
        assert_eq!(Insn::Lui { rd: Reg::T0, imm20: 0x12345 }.encode(), 0x1234_52B7);
        // mul a0, a1, a2 => 0x02C58533
        assert_eq!(
            Insn::MulDiv { op: MulOp::Mul, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 }.encode(),
            0x02C5_8533
        );
        // csrrw zero, mtvec(0x305), t0 => 0x30529073
        assert_eq!(
            Insn::Csr { op: CsrOp::Rw, rd: Reg::Zero, csr: 0x305, src: CsrSrc::Reg(Reg::T0) }
                .encode(),
            0x3052_9073
        );
        // srai a0, a0, 4 => 0x40455513
        assert_eq!(
            Insn::AluImm { op: AluOp::Sra, rd: Reg::A0, rs1: Reg::A0, imm: 4 }.encode(),
            0x4045_5513
        );
        assert_eq!(Insn::Ecall.encode(), 0x0000_0073);
        assert_eq!(Insn::Mret.encode(), 0x3020_0073);
    }

    #[test]
    fn amo_golden_encodings() {
        // Cross-checked against the RISC-V A-extension encoding table
        // (funct5 in [31:27], aq=rl=0, funct3=010, opcode 0101111).
        assert_eq!(Insn::Lr { rd: Reg::A0, rs1: Reg::A1 }.encode(), 0x1005_A52F);
        assert_eq!(Insn::Sc { rd: Reg::A0, rs2: Reg::A2, rs1: Reg::A1 }.encode(), 0x18C5_A52F);
        let amo = |op| Insn::Amo { op, rd: Reg::A0, rs2: Reg::A2, rs1: Reg::A1 }.encode();
        assert_eq!(amo(AmoOp::Add), 0x00C5_A52F);
        assert_eq!(amo(AmoOp::Swap), 0x08C5_A52F);
        assert_eq!(amo(AmoOp::Xor), 0x20C5_A52F);
        assert_eq!(amo(AmoOp::Or), 0x40C5_A52F);
        assert_eq!(amo(AmoOp::And), 0x60C5_A52F);
        assert_eq!(amo(AmoOp::Min), 0x80C5_A52F);
        assert_eq!(amo(AmoOp::Max), 0xA0C5_A52F);
        assert_eq!(amo(AmoOp::Minu), 0xC0C5_A52F);
        assert_eq!(amo(AmoOp::Maxu), 0xE0C5_A52F);
    }

    #[test]
    fn amo_aq_rl_bits_accepted_and_canonicalised() {
        // lr.w.aqrl a0, (a1): same as the golden with aq=rl=1.
        let word = 0x1005_A52F | (0b11 << 25);
        let insn = Insn::decode(word).unwrap();
        assert_eq!(insn, Insn::Lr { rd: Reg::A0, rs1: Reg::A1 });
        // Re-encode canonicalises the ordering bits away.
        assert_eq!(insn.encode(), 0x1005_A52F);
    }

    #[test]
    fn amo_illegal_forms_rejected() {
        // lr.w with rs2 != x0 is reserved.
        assert!(Insn::decode(0x10C5_A52F).is_err());
        // Unassigned funct5 (0b00110).
        assert!(Insn::decode(0x30C5_A52F).is_err());
        // AMO opcode with funct3 != 010 (e.g. 011 = RV64 amoadd.d).
        assert!(Insn::decode(0x00C5_B52F).is_err());
    }

    #[test]
    fn amo_display() {
        assert_eq!(Insn::Lr { rd: Reg::A0, rs1: Reg::A1 }.to_string(), "lr.w a0, (a1)");
        assert_eq!(
            Insn::Sc { rd: Reg::A0, rs2: Reg::A2, rs1: Reg::A1 }.to_string(),
            "sc.w a0, a2, (a1)"
        );
        assert_eq!(
            Insn::Amo { op: AmoOp::Maxu, rd: Reg::T0, rs2: Reg::T1, rs1: Reg::T2 }.to_string(),
            "amomaxu.w t0, t1, (t2)"
        );
    }

    #[test]
    fn amo_apply_semantics() {
        assert_eq!(AmoOp::Swap.apply(5, 9), 9);
        assert_eq!(AmoOp::Add.apply(u32::MAX, 2), 1);
        assert_eq!(AmoOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AmoOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AmoOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AmoOp::Min.apply(-3i32 as u32, 2), -3i32 as u32);
        assert_eq!(AmoOp::Max.apply(-3i32 as u32, 2), 2);
        assert_eq!(AmoOp::Minu.apply(-3i32 as u32, 2), 2);
        assert_eq!(AmoOp::Maxu.apply(-3i32 as u32, 2), -3i32 as u32);
    }

    #[test]
    fn decode_round_trips_goldens() {
        for word in [
            0x0015_0513u32,
            0x00C5_8533,
            0x4073_02B3,
            0x0081_2503,
            0xFEA1_2E23,
            0x00B5_0463,
            0x0100_00EF,
            0x0000_8067,
            0x1234_52B7,
            0x02C5_8533,
            0x3052_9073,
            0x4045_5513,
            0x0000_0073,
            0x0010_0073,
            0x3020_0073,
            0x1050_0073,
            0x0FF0_000F,
            0x0000_100F,
            0x1005_A52F, // lr.w a0, (a1)
            0x18C5_A52F, // sc.w a0, a2, (a1)
            0x00C5_A52F, // amoadd.w a0, a2, (a1)
            0xE0C5_A52F, // amomaxu.w a0, a2, (a1)
        ] {
            let insn = Insn::decode(word).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(insn.encode(), word, "{insn}");
        }
    }

    #[test]
    fn negative_offsets_round_trip() {
        let b = Insn::Branch { cond: BranchCond::Ne, rs1: Reg::T0, rs2: Reg::Zero, offset: -12 };
        assert_eq!(Insn::decode(b.encode()).unwrap(), b);
        let j = Insn::Jal { rd: Reg::Zero, offset: -2048 };
        assert_eq!(Insn::decode(j.encode()).unwrap(), j);
        let l = Insn::Load { width: LoadWidth::Bu, rd: Reg::A0, rs1: Reg::Gp, offset: -1 };
        assert_eq!(Insn::decode(l.encode()).unwrap(), l);
    }

    #[test]
    fn illegal_words_rejected() {
        for word in
            [0x0000_0000u32, 0xFFFF_FFFF, 0x0000_2073 /* csrrs? no: funct3=010 is valid */]
        {
            if word == 0x0000_2073 {
                // actually a valid csrrs x0, 0, x0 — ensure it decodes
                assert!(Insn::decode(word).is_ok());
            } else {
                assert!(Insn::decode(word).is_err(), "{word:#010x} should be illegal");
            }
        }
        // Branch with funct3 = 0b010 is illegal.
        assert!(Insn::decode(0x0000_2063).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn branch_offset_range_checked() {
        let _ = Insn::Branch { cond: BranchCond::Eq, rs1: Reg::Zero, rs2: Reg::Zero, offset: 5000 }
            .encode();
    }

    #[test]
    fn display_disassembly() {
        assert_eq!(
            Insn::Load { width: LoadWidth::W, rd: Reg::A0, rs1: Reg::Sp, offset: 8 }.to_string(),
            "lw a0, 8(sp)"
        );
        assert_eq!(
            Insn::Branch { cond: BranchCond::Ltu, rs1: Reg::T0, rs2: Reg::T1, offset: -4 }
                .to_string(),
            "bltu t0, t1, -4"
        );
        assert_eq!(
            Insn::Csr { op: CsrOp::Rs, rd: Reg::A0, csr: 0x344, src: CsrSrc::Imm(8) }.to_string(),
            "csrrsi a0, 0x344, 8"
        );
    }
}
