//! ELF32 emission: serialise an assembled [`Program`] into a minimal but
//! standard-conforming ELF executable.
//!
//! With no offline RISC-V toolchain in this environment (see DESIGN.md),
//! the assembler itself doubles as the producer of "external binaries":
//! `Program::to_elf` emits a little-endian `ET_EXEC` image with one
//! `PT_LOAD` segment covering the flat image, plus `.symtab`/`.strtab`
//! sections carrying every label so the profiler can attribute samples by
//! name after a load/parse round trip. The `vpdift-loader` crate is the
//! matching consumer; the conformance harness runs every self-checking
//! program through emit → parse → execute to pin the two ends together.

use crate::builder::{Asm, AsmError, Program};

const EHDR_SIZE: u32 = 52;
const PHDR_SIZE: u32 = 32;
const SHDR_SIZE: u32 = 40;

/// Section-name string table, with each name's offset hard-wired below.
const SHSTRTAB: &[u8] = b"\0.text\0.symtab\0.strtab\0.shstrtab\0";
const NAME_TEXT: u32 = 1;
const NAME_SYMTAB: u32 = 7;
const NAME_STRTAB: u32 = 15;
const NAME_SHSTRTAB: u32 = 23;

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn pad_to_4(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(4) {
        out.push(0);
    }
}

#[allow(clippy::too_many_arguments)]
fn push_shdr(
    out: &mut Vec<u8>,
    name: u32,
    sh_type: u32,
    flags: u32,
    addr: u32,
    offset: u32,
    size: u32,
    link: u32,
    info: u32,
    addralign: u32,
    entsize: u32,
) {
    for v in [name, sh_type, flags, addr, offset, size, link, info, addralign, entsize] {
        push_u32(out, v);
    }
}

impl Program {
    /// Serialises the program as an ELF32 little-endian RISC-V executable:
    /// one `PT_LOAD` segment at [`Program::base`], entry at
    /// [`Program::entry`], and all labels exported as global function
    /// symbols.
    pub fn to_elf(&self) -> Vec<u8> {
        let image_off = EHDR_SIZE + PHDR_SIZE; // 84
        let image_len = self.image().len() as u32;

        // Build .strtab and the symbol entries together (sorted by
        // address so the output is deterministic).
        let mut strtab: Vec<u8> = vec![0];
        let mut syms: Vec<u8> = vec![0; 16]; // index 0: the null symbol
        for (addr, name) in self.symbols_by_addr() {
            let name_off = strtab.len() as u32;
            strtab.extend_from_slice(name.as_bytes());
            strtab.push(0);
            push_u32(&mut syms, name_off); // st_name
            push_u32(&mut syms, addr); // st_value
            push_u32(&mut syms, 0); // st_size
            syms.push(0x12); // st_info: GLOBAL | FUNC
            syms.push(0); // st_other
            push_u16(&mut syms, 1); // st_shndx: .text
        }

        let mut out = Vec::with_capacity(
            (image_off + image_len) as usize + syms.len() + strtab.len() + SHSTRTAB.len() + 256,
        );

        // ELF header.
        out.extend_from_slice(&[0x7F, b'E', b'L', b'F', 1, 1, 1, 0]);
        out.extend_from_slice(&[0; 8]); // EI_PAD
        push_u16(&mut out, 2); // e_type: ET_EXEC
        push_u16(&mut out, 0xF3); // e_machine: RISC-V
        push_u32(&mut out, 1); // e_version
        push_u32(&mut out, self.entry()); // e_entry
        push_u32(&mut out, EHDR_SIZE); // e_phoff
        let shoff_at = out.len();
        push_u32(&mut out, 0); // e_shoff (patched below)
        push_u32(&mut out, 0); // e_flags
        push_u16(&mut out, EHDR_SIZE as u16); // e_ehsize
        push_u16(&mut out, PHDR_SIZE as u16); // e_phentsize
        push_u16(&mut out, 1); // e_phnum
        push_u16(&mut out, SHDR_SIZE as u16); // e_shentsize
        push_u16(&mut out, 5); // e_shnum
        push_u16(&mut out, 4); // e_shstrndx

        // Program header: the whole image, RWX (flat RAM, no MMU).
        push_u32(&mut out, 1); // p_type: PT_LOAD
        push_u32(&mut out, image_off); // p_offset
        push_u32(&mut out, self.base()); // p_vaddr
        push_u32(&mut out, self.base()); // p_paddr
        push_u32(&mut out, image_len); // p_filesz
        push_u32(&mut out, image_len); // p_memsz
        push_u32(&mut out, 7); // p_flags: RWX
        push_u32(&mut out, 4); // p_align

        debug_assert_eq!(out.len() as u32, image_off);
        out.extend_from_slice(self.image());

        pad_to_4(&mut out);
        let symtab_off = out.len() as u32;
        out.extend_from_slice(&syms);
        let strtab_off = out.len() as u32;
        out.extend_from_slice(&strtab);
        let shstrtab_off = out.len() as u32;
        out.extend_from_slice(SHSTRTAB);
        pad_to_4(&mut out);

        let shoff = out.len() as u32;
        out[shoff_at..shoff_at + 4].copy_from_slice(&shoff.to_le_bytes());
        push_shdr(&mut out, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0); // SHN_UNDEF
        push_shdr(&mut out, NAME_TEXT, 1, 0x6, self.base(), image_off, image_len, 0, 0, 4, 0);
        push_shdr(&mut out, NAME_SYMTAB, 2, 0, 0, symtab_off, syms.len() as u32, 3, 1, 4, 16);
        push_shdr(&mut out, NAME_STRTAB, 3, 0, 0, strtab_off, strtab.len() as u32, 0, 0, 1, 0);
        push_shdr(
            &mut out,
            NAME_SHSTRTAB,
            3,
            0,
            0,
            shstrtab_off,
            SHSTRTAB.len() as u32,
            0,
            0,
            1,
            0,
        );
        out
    }
}

impl Asm {
    /// Assembles and serialises in one step: `a.to_elf()?` is
    /// `a.assemble()?.to_elf()`.
    ///
    /// # Errors
    /// Any [`AsmError`] from assembly.
    pub fn to_elf(self) -> Result<Vec<u8>, AsmError> {
        Ok(self.assemble()?.to_elf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn elf_header_is_well_formed() {
        let mut a = Asm::new(0x100);
        a.label("main");
        a.li(Reg::A0, 42);
        a.ebreak();
        let elf = a.to_elf().unwrap();
        assert_eq!(&elf[..4], &[0x7F, b'E', b'L', b'F']);
        assert_eq!(elf[4], 1); // 32-bit
        assert_eq!(elf[5], 1); // little-endian
        assert_eq!(u16::from_le_bytes([elf[16], elf[17]]), 2); // ET_EXEC
        assert_eq!(u16::from_le_bytes([elf[18], elf[19]]), 0xF3); // RISC-V
        assert_eq!(u32::from_le_bytes([elf[24], elf[25], elf[26], elf[27]]), 0x100);
        // The PT_LOAD payload is the raw image.
        let p_offset = u32::from_le_bytes([elf[56], elf[57], elf[58], elf[59]]) as usize;
        let p_filesz = u32::from_le_bytes([elf[68], elf[69], elf[70], elf[71]]) as usize;
        assert_eq!(p_filesz, 12); // li = 2 insns, ebreak = 1
        let word = u32::from_le_bytes(elf[p_offset..p_offset + 4].try_into().unwrap());
        assert!(crate::insn::Insn::decode(word).is_ok());
    }
}
