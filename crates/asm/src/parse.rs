//! A textual RISC-V assembler frontend.
//!
//! Parses GNU-as-flavoured RV32IM assembly source into a [`Program`] via
//! the [`Asm`] builder, so guest code can live in `.s` files (or strings)
//! instead of Rust:
//!
//! ```
//! use vpdift_asm::parse_asm;
//! let program = parse_asm(r#"
//!     ; sum 1..=10
//!         li   t0, 10
//!         li   a0, 0
//!     loop:
//!         add  a0, a0, t0
//!         addi t0, t0, -1
//!         bnez t0, loop
//!         ebreak
//! "#, 0)?;
//! assert!(program.insn_count() > 0);
//! # Ok::<(), vpdift_asm::ParseError>(())
//! ```
//!
//! Supported: all RV32IM + Zicsr instructions and the pseudo-instructions
//! of [`Asm`]; labels; `.word`/`.half`/`.byte`/`.ascii`/`.asciiz`/
//! `.zero`/`.align`/`.entry` directives; decimal, hex (`0x`), binary
//! (`0b`), negative and character (`'c'`) immediates; `#`, `;` and `//`
//! comments; named CSRs (`mstatus`, `mtvec`, …).

use core::fmt;

use crate::builder::{Asm, AsmError, Program};
use crate::csr;
use crate::insn::CsrOp;
use crate::reg::Reg;

/// Errors from [`parse_asm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A syntax problem at a source line (1-based).
    Syntax {
        /// Line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Label resolution failed during final assembly.
    Assemble(AsmError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Assemble(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> Self {
        ParseError::Assemble(e)
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax { line, message: message.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let t = tok.trim();
    if let Some(num) = t.strip_prefix('x') {
        if let Ok(n) = num.parse::<u32>() {
            return Reg::from_num(n).ok_or_else(|| err(line, format!("register {t} out of range")));
        }
    }
    let by_name = match t {
        "zero" => Some(Reg::Zero),
        "ra" => Some(Reg::Ra),
        "sp" => Some(Reg::Sp),
        "gp" => Some(Reg::Gp),
        "tp" => Some(Reg::Tp),
        "fp" => Some(Reg::FP),
        _ => Reg::ALL.iter().copied().find(|r| r.to_string() == t),
    };
    by_name.ok_or_else(|| err(line, format!("unknown register `{t}`")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let t = tok.trim();
    // Character literal.
    if let Some(rest) = t.strip_prefix('\'') {
        let inner =
            rest.strip_suffix('\'').ok_or_else(|| err(line, "unterminated char literal"))?;
        let c = match inner {
            "\\n" => b'\n',
            "\\t" => b'\t',
            "\\0" => 0,
            "\\\\" => b'\\',
            "\\'" => b'\'',
            s if s.len() == 1 => s.as_bytes()[0],
            _ => return Err(err(line, format!("bad char literal `{t}`"))),
        };
        return Ok(c as i64);
    }
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_csr(tok: &str, line: usize) -> Result<u16, ParseError> {
    let named = match tok.trim() {
        "mstatus" => Some(csr::MSTATUS),
        "misa" => Some(csr::MISA),
        "mie" => Some(csr::MIE),
        "mtvec" => Some(csr::MTVEC),
        "mscratch" => Some(csr::MSCRATCH),
        "mepc" => Some(csr::MEPC),
        "mcause" => Some(csr::MCAUSE),
        "mtval" => Some(csr::MTVAL),
        "mip" => Some(csr::MIP),
        "cycle" => Some(csr::CYCLE),
        "instret" => Some(csr::INSTRET),
        "cycleh" => Some(csr::CYCLEH),
        "instreth" => Some(csr::INSTRETH),
        "mhartid" => Some(csr::MHARTID),
        _ => None,
    };
    if let Some(n) = named {
        return Ok(n);
    }
    let v = parse_imm(tok, line)?;
    if (0..4096).contains(&v) {
        Ok(v as u16)
    } else {
        Err(err(line, format!("CSR number `{tok}` out of range")))
    }
}

/// `offset(reg)` operands.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, Reg), ParseError> {
    let t = tok.trim();
    let open =
        t.find('(').ok_or_else(|| err(line, format!("expected `offset(reg)`, got `{t}`")))?;
    let close = t.rfind(')').ok_or_else(|| err(line, format!("missing `)` in `{t}`")))?;
    let off_str = &t[..open];
    let off = if off_str.trim().is_empty() { 0 } else { parse_imm(off_str, line)? };
    let reg = parse_reg(&t[open + 1..close], line)?;
    Ok((off as i32, reg))
}

fn imm32(v: i64, line: usize) -> Result<i32, ParseError> {
    i32::try_from(v)
        .or_else(|_| u32::try_from(v).map(|u| u as i32))
        .map_err(|_| err(line, format!("immediate {v} exceeds 32 bits")))
}

fn imm12(v: i64, line: usize) -> Result<i32, ParseError> {
    if (-2048..=2047).contains(&v) {
        Ok(v as i32)
    } else {
        Err(err(line, format!("immediate {v} does not fit 12 bits")))
    }
}

/// Strips a comment.
fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in ["#", "//", ";"] {
        if let Some(i) = line.find(marker) {
            end = end.min(i);
        }
    }
    &line[..end]
}

/// Splits an operand list on commas that are not inside parentheses or
/// quotes.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '(' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ')' if !in_str => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 && !in_str => {
                out.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

fn unquote(tok: &str, line: usize) -> Result<String, ParseError> {
    let t = tok.trim();
    let inner = t
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected quoted string, got `{t}`")))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                other => return Err(err(line, format!("bad escape `\\{other:?}`"))),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Parses assembly `source` into a program based at `base`.
///
/// # Errors
/// [`ParseError`] with the offending line number, or a label-resolution
/// failure from final assembly.
pub fn parse_asm(source: &str, base: u32) -> Result<Program, ParseError> {
    let mut a = Asm::new(base);
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = strip_comment(raw).trim();
        // Leading labels (possibly several).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                return Err(err(line_no, format!("bad label `{label}`")));
            }
            a.label(label);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops = split_operands(rest);
        emit_line(&mut a, mnemonic, &ops, line_no)?;
    }
    Ok(a.assemble()?)
}

fn expect_n(ops: &[String], n: usize, mnemonic: &str, line: usize) -> Result<(), ParseError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(err(line, format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len())))
    }
}

#[allow(clippy::too_many_lines)] // one flat dispatch table is the clearest shape
fn emit_line(a: &mut Asm, mnemonic: &str, ops: &[String], line: usize) -> Result<(), ParseError> {
    let m = mnemonic.to_ascii_lowercase();
    let reg = |i: usize| parse_reg(&ops[i], line);
    let immv = |i: usize| parse_imm(&ops[i], line);
    let lab = |i: usize| -> &str { &ops[i] };

    macro_rules! rrr {
        ($f:ident) => {{
            expect_n(ops, 3, &m, line)?;
            a.$f(reg(0)?, reg(1)?, reg(2)?);
        }};
    }
    macro_rules! rri {
        ($f:ident) => {{
            expect_n(ops, 3, &m, line)?;
            a.$f(reg(0)?, reg(1)?, imm12(immv(2)?, line)?);
        }};
    }
    macro_rules! shift {
        ($f:ident) => {{
            expect_n(ops, 3, &m, line)?;
            let sh = immv(2)?;
            if !(0..32).contains(&sh) {
                return Err(err(line, format!("shift amount {sh} out of range")));
            }
            a.$f(reg(0)?, reg(1)?, sh as i32);
        }};
    }
    macro_rules! mem {
        ($f:ident) => {{
            expect_n(ops, 2, &m, line)?;
            let (off, base) = parse_mem(&ops[1], line)?;
            a.$f(reg(0)?, off, base);
        }};
    }
    macro_rules! branch {
        ($f:ident) => {{
            expect_n(ops, 3, &m, line)?;
            a.$f(reg(0)?, reg(1)?, lab(2));
        }};
    }
    macro_rules! branch_z {
        ($f:ident) => {{
            expect_n(ops, 2, &m, line)?;
            a.$f(reg(0)?, lab(1));
        }};
    }

    match m.as_str() {
        // R-type
        "add" => rrr!(add),
        "sub" => rrr!(sub),
        "sll" => rrr!(sll),
        "slt" => rrr!(slt),
        "sltu" => rrr!(sltu),
        "xor" => rrr!(xor),
        "srl" => rrr!(srl),
        "sra" => rrr!(sra),
        "or" => rrr!(or),
        "and" => rrr!(and),
        "mul" => rrr!(mul),
        "mulh" => rrr!(mulh),
        "mulhsu" => rrr!(mulhsu),
        "mulhu" => rrr!(mulhu),
        "div" => rrr!(div),
        "divu" => rrr!(divu),
        "rem" => rrr!(rem),
        "remu" => rrr!(remu),
        // I-type
        "addi" => rri!(addi),
        "slti" => rri!(slti),
        "sltiu" => rri!(sltiu),
        "xori" => rri!(xori),
        "ori" => rri!(ori),
        "andi" => rri!(andi),
        "slli" => shift!(slli),
        "srli" => shift!(srli),
        "srai" => shift!(srai),
        // loads/stores
        "lb" => mem!(lb),
        "lh" => mem!(lh),
        "lw" => mem!(lw),
        "lbu" => mem!(lbu),
        "lhu" => mem!(lhu),
        "sb" => mem!(sb),
        "sh" => mem!(sh),
        "sw" => mem!(sw),
        // branches
        "beq" => branch!(beq),
        "bne" => branch!(bne),
        "blt" => branch!(blt),
        "bge" => branch!(bge),
        "bltu" => branch!(bltu),
        "bgeu" => branch!(bgeu),
        "bgt" => branch!(bgt),
        "ble" => branch!(ble),
        "bgtu" => branch!(bgtu),
        "bleu" => branch!(bleu),
        "beqz" => branch_z!(beqz),
        "bnez" => branch_z!(bnez),
        // jumps
        "jal" => match ops.len() {
            1 => {
                a.jal(Reg::Ra, lab(0));
            }
            2 => {
                a.jal(reg(0)?, lab(1));
            }
            n => return Err(err(line, format!("`jal` expects 1 or 2 operands, got {n}"))),
        },
        "jalr" => match ops.len() {
            1 => {
                a.jalr(Reg::Ra, reg(0)?, 0);
            }
            2 => {
                let (off, base) = parse_mem(&ops[1], line)?;
                a.jalr(reg(0)?, base, off);
            }
            n => return Err(err(line, format!("`jalr` expects 1 or 2 operands, got {n}"))),
        },
        "j" => {
            expect_n(ops, 1, &m, line)?;
            a.j(lab(0));
        }
        "jr" => {
            expect_n(ops, 1, &m, line)?;
            a.jr(reg(0)?);
        }
        "call" => {
            expect_n(ops, 1, &m, line)?;
            a.call(lab(0));
        }
        "ret" => {
            expect_n(ops, 0, &m, line)?;
            a.ret();
        }
        // upper immediates & constants
        "lui" => {
            expect_n(ops, 2, &m, line)?;
            let v = immv(1)?;
            if !(0..(1 << 20)).contains(&v) {
                return Err(err(line, format!("lui immediate {v} exceeds 20 bits")));
            }
            a.lui(reg(0)?, v as u32);
        }
        "auipc" => {
            expect_n(ops, 2, &m, line)?;
            let v = immv(1)?;
            if !(0..(1 << 20)).contains(&v) {
                return Err(err(line, format!("auipc immediate {v} exceeds 20 bits")));
            }
            a.auipc(reg(0)?, v as u32);
        }
        "li" => {
            expect_n(ops, 2, &m, line)?;
            a.li(reg(0)?, imm32(immv(1)?, line)?);
        }
        "la" => {
            expect_n(ops, 2, &m, line)?;
            a.la(reg(0)?, lab(1));
        }
        // other pseudo
        "nop" => {
            expect_n(ops, 0, &m, line)?;
            a.nop();
        }
        "mv" => {
            expect_n(ops, 2, &m, line)?;
            a.mv(reg(0)?, reg(1)?);
        }
        "not" => {
            expect_n(ops, 2, &m, line)?;
            a.not(reg(0)?, reg(1)?);
        }
        "neg" => {
            expect_n(ops, 2, &m, line)?;
            a.neg(reg(0)?, reg(1)?);
        }
        "seqz" => {
            expect_n(ops, 2, &m, line)?;
            a.seqz(reg(0)?, reg(1)?);
        }
        "snez" => {
            expect_n(ops, 2, &m, line)?;
            a.snez(reg(0)?, reg(1)?);
        }
        // CSRs
        "csrr" => {
            expect_n(ops, 2, &m, line)?;
            a.csrr(reg(0)?, parse_csr(&ops[1], line)?);
        }
        "csrw" => {
            expect_n(ops, 2, &m, line)?;
            a.csrw(parse_csr(&ops[0], line)?, reg(1)?);
        }
        "csrs" => {
            expect_n(ops, 2, &m, line)?;
            a.csrs(parse_csr(&ops[0], line)?, reg(1)?);
        }
        "csrc" => {
            expect_n(ops, 2, &m, line)?;
            a.csrc(parse_csr(&ops[0], line)?, reg(1)?);
        }
        "csrrw" | "csrrs" | "csrrc" => {
            expect_n(ops, 3, &m, line)?;
            let op = match m.as_str() {
                "csrrw" => CsrOp::Rw,
                "csrrs" => CsrOp::Rs,
                _ => CsrOp::Rc,
            };
            a.csr(op, reg(0)?, parse_csr(&ops[1], line)?, reg(2)?);
        }
        "csrrwi" | "csrrsi" | "csrrci" => {
            expect_n(ops, 3, &m, line)?;
            let op = match m.as_str() {
                "csrrwi" => CsrOp::Rw,
                "csrrsi" => CsrOp::Rs,
                _ => CsrOp::Rc,
            };
            let v = immv(2)?;
            if !(0..32).contains(&v) {
                return Err(err(line, format!("CSR immediate {v} out of range")));
            }
            a.csri(op, reg(0)?, parse_csr(&ops[1], line)?, v as u8);
        }
        // system
        "ecall" => {
            expect_n(ops, 0, &m, line)?;
            a.ecall();
        }
        "ebreak" => {
            expect_n(ops, 0, &m, line)?;
            a.ebreak();
        }
        "mret" => {
            expect_n(ops, 0, &m, line)?;
            a.mret();
        }
        "wfi" => {
            expect_n(ops, 0, &m, line)?;
            a.wfi();
        }
        "fence" => {
            a.fence();
        }
        // directives
        ".word" => {
            for op in ops {
                a.word(imm32(parse_imm(op, line)?, line)? as u32);
            }
        }
        ".half" => {
            for op in ops {
                let v = parse_imm(op, line)?;
                if !(-(1 << 15)..(1 << 16)).contains(&v) {
                    return Err(err(line, format!("half value {v} out of range")));
                }
                a.half(v as u16);
            }
        }
        ".byte" => {
            for op in ops {
                let v = parse_imm(op, line)?;
                if !(-128..256).contains(&v) {
                    return Err(err(line, format!("byte value {v} out of range")));
                }
                a.byte(v as u8);
            }
        }
        ".ascii" => {
            expect_n(ops, 1, &m, line)?;
            a.ascii(&unquote(&ops[0], line)?);
        }
        ".asciiz" | ".string" => {
            expect_n(ops, 1, &m, line)?;
            a.asciiz(&unquote(&ops[0], line)?);
        }
        ".zero" | ".space" => {
            expect_n(ops, 1, &m, line)?;
            let n = parse_imm(&ops[0], line)?;
            if !(0..=(64 << 20)).contains(&n) {
                return Err(err(line, format!("bad .zero size {n}")));
            }
            a.zero(n as usize);
        }
        ".align" => {
            expect_n(ops, 1, &m, line)?;
            let n = parse_imm(&ops[0], line)?;
            if !(0..=16).contains(&n) {
                return Err(err(line, format!("bad .align exponent {n}")));
            }
            // GNU as semantics: .align N aligns to 2^N bytes.
            a.align(1usize << n);
        }
        ".entry" => {
            expect_n(ops, 0, &m, line)?;
            a.entry();
        }
        ".globl" | ".global" | ".text" | ".data" | ".section" => {
            // Accepted and ignored: the flat image has one section.
        }
        other => return Err(err(line, format!("unknown mnemonic or directive `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;

    fn words(p: &Program) -> Vec<u32> {
        p.image().chunks(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
    }

    #[test]
    fn parses_a_loop() {
        let p = parse_asm(
            r#"
                li t0, 3
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ebreak
            "#,
            0,
        )
        .unwrap();
        assert_eq!(p.insn_count(), 5); // li = 2
        assert_eq!(p.symbol("loop"), Some(8));
    }

    #[test]
    fn matches_builder_output() {
        let text =
            parse_asm("start:\n  lw a0, 8(sp)\n  sw a0, -4(sp)\n  jalr ra, 0(t0)\n  ret\n", 0x100)
                .unwrap();
        let mut b = Asm::new(0x100);
        b.label("start");
        b.lw(Reg::A0, 8, Reg::Sp);
        b.sw(Reg::A0, -4, Reg::Sp);
        b.jalr(Reg::Ra, Reg::T0, 0);
        b.ret();
        assert_eq!(text.image(), b.assemble().unwrap().image());
    }

    #[test]
    fn immediates_in_all_bases() {
        let p = parse_asm("li a0, 0x10\nli a1, 0b101\nli a2, -7\nli a3, 'A'\nebreak\n", 0).unwrap();
        let ws = words(&p);
        // Each li is lui+addi; check the addi immediates.
        let addi_imm = |i: usize| match Insn::decode(ws[i]).unwrap() {
            Insn::AluImm { imm, .. } => imm,
            other => panic!("expected addi, got {other}"),
        };
        assert_eq!(addi_imm(1), 0x10);
        assert_eq!(addi_imm(3), 0b101);
        assert_eq!(addi_imm(5), -7);
        assert_eq!(addi_imm(7), 65);
    }

    #[test]
    fn directives_and_strings() {
        let p = parse_asm(
            ".word 0xDEADBEEF, 1\n.half 0x1234\n.byte 1, 2\n.ascii \"ab\"\n.asciiz \"c\\n\"\n.zero 3\n.align 2\nmsg: .string \"hi\"\n",
            0,
        )
        .unwrap();
        assert_eq!(&p.image()[..4], &0xDEAD_BEEFu32.to_le_bytes());
        assert_eq!(p.image()[8], 0x34);
        assert_eq!(p.image()[12], b'a');
        let msg = p.symbol("msg").unwrap() as usize;
        assert_eq!(&p.image()[msg..msg + 3], b"hi\0");
        assert_eq!(msg % 4, 0, ".align 2 => 4-byte alignment");
    }

    #[test]
    fn csr_names_resolve() {
        let p = parse_asm("csrw mtvec, t0\ncsrr a0, mepc\ncsrrsi a1, mip, 8\n", 0).unwrap();
        let ws = words(&p);
        match Insn::decode(ws[0]).unwrap() {
            Insn::Csr { csr, .. } => assert_eq!(csr, csr::MTVEC),
            other => panic!("{other}"),
        }
        match Insn::decode(ws[2]).unwrap() {
            Insn::Csr { csr, .. } => assert_eq!(csr, csr::MIP),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = parse_asm(
            "# full line\n  nop # trailing\n  nop // c++ style\n  nop ; asm style\n\n",
            0,
        )
        .unwrap();
        assert_eq!(p.insn_count(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("nop\nbogus t0, t1\n", 0).unwrap_err();
        assert_eq!(
            e,
            ParseError::Syntax { line: 2, message: "unknown mnemonic or directive `bogus`".into() }
        );
        let e = parse_asm("addi t0, t9, 1\n", 0).unwrap_err();
        assert!(matches!(e, ParseError::Syntax { line: 1, .. }));
        let e = parse_asm("addi t0, t1, 5000\n", 0).unwrap_err();
        assert!(e.to_string().contains("12 bits"));
        let e = parse_asm("j nowhere\n", 0).unwrap_err();
        assert!(matches!(e, ParseError::Assemble(AsmError::UnknownLabel(_))));
    }

    #[test]
    fn labels_inline_and_multiple() {
        let p = parse_asm("a: b: nop\nc: .word 7\n", 0).unwrap();
        assert_eq!(p.symbol("a"), Some(0));
        assert_eq!(p.symbol("b"), Some(0));
        assert_eq!(p.symbol("c"), Some(4));
    }

    #[test]
    fn runs_on_the_iss() {
        // End-to-end: text -> program -> execution.
        let p = parse_asm(
            r#"
                .globl main
            main:
                li   a0, 6
                li   a1, 7
                mul  a0, a0, a1
                ebreak
            "#,
            0,
        )
        .unwrap();
        assert_eq!(p.insn_count(), 6);
    }

    #[test]
    fn jal_forms() {
        let p = parse_asm("jal f\njal t0, f\nf: ret\n", 0).unwrap();
        let ws = words(&p);
        assert_eq!(Insn::decode(ws[0]).unwrap(), Insn::Jal { rd: Reg::Ra, offset: 8 });
        assert_eq!(Insn::decode(ws[1]).unwrap(), Insn::Jal { rd: Reg::T0, offset: 4 });
    }
}
