//! The programmatic two-pass assembler.
//!
//! Guest workloads are written directly against this builder (there is no
//! offline RISC-V toolchain in this environment — see DESIGN.md). The
//! builder emits instructions and data into a flat image at a fixed base
//! address, records label fixups, and resolves them in [`Asm::assemble`].
//!
//! Pseudo-instructions expand to a *fixed* number of words (`li`/`la` are
//! always `lui`+`addi`), so label addresses are stable across passes.

use core::fmt;
use std::collections::HashMap;

use crate::insn::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Insn, LoadWidth, MulOp, StoreWidth};
use crate::reg::Reg;

/// Errors reported by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UnknownLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch/jump target is out of encodable range.
    OutOfRange {
        /// The label that could not be reached.
        label: String,
        /// Distance in bytes from the instruction to the label.
        distance: i64,
        /// Human-readable instruction kind (`"branch"` / `"jal"`).
        kind: &'static str,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::OutOfRange { label, distance, kind } => {
                write!(f, "{kind} to `{label}` out of range ({distance} bytes)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FixupKind {
    /// Patch the B-type offset of the branch at the fixup site.
    Branch,
    /// Patch the J-type offset of the `jal` at the fixup site.
    Jal,
    /// Patch a `lui`+`addi` pair with the absolute address of the label.
    AbsHiLo,
    /// Patch a data word with the absolute address of the label.
    AbsWord,
}

#[derive(Debug, Clone)]
struct Fixup {
    offset: usize,
    label: String,
    kind: FixupKind,
}

/// An assembled program image.
#[derive(Debug, Clone)]
pub struct Program {
    base: u32,
    entry: u32,
    image: Vec<u8>,
    symbols: HashMap<String, u32>,
    insn_count: usize,
}

impl Program {
    /// Builds a program directly from its parts — the path taken by
    /// loaders (e.g. the ELF32 parser in `vpdift-loader`) that obtain an
    /// image from outside the assembler. `insn_count` is estimated as one
    /// instruction per word; external images do not distinguish code from
    /// data.
    pub fn from_parts(
        base: u32,
        entry: u32,
        image: Vec<u8>,
        symbols: HashMap<String, u32>,
    ) -> Self {
        let insn_count = image.len() / 4;
        Program { base, entry, image, symbols, insn_count }
    }

    /// Load address of the first image byte.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Entry point (defaults to `base`, see [`Asm::entry`]).
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The raw image bytes.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Image size in bytes.
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    /// Address of a label.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols, unordered.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// All symbols sorted by address (name breaks ties) — the natural
    /// order for building profiler symbol maps and annotated listings.
    pub fn symbols_by_addr(&self) -> Vec<(u32, &str)> {
        let mut out: Vec<(u32, &str)> =
            self.symbols.iter().map(|(n, &a)| (a, n.as_str())).collect();
        out.sort();
        out
    }

    /// Number of instruction words in the image (the "LoC ASM" metric of
    /// the paper's Table II).
    pub fn insn_count(&self) -> usize {
        self.insn_count
    }

    /// Best-effort linear disassembly of the whole image (data bytes render
    /// as `.word`).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let by_addr: HashMap<u32, &str> =
            self.symbols.iter().map(|(n, &a)| (a, n.as_str())).collect();
        for (i, chunk) in self.image.chunks(4).enumerate() {
            let addr = self.base + (i * 4) as u32;
            if let Some(label) = by_addr.get(&addr) {
                out.push_str(&format!("{label}:\n"));
            }
            if chunk.len() == 4 {
                let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                match Insn::decode(word) {
                    Ok(insn) => out.push_str(&format!("  {addr:#010x}: {insn}\n")),
                    Err(_) => out.push_str(&format!("  {addr:#010x}: .word {word:#010x}\n")),
                }
            } else {
                out.push_str(&format!("  {addr:#010x}: .bytes {chunk:02x?}\n"));
            }
        }
        out
    }
}

/// The assembler builder. See the crate docs for a full example.
///
/// ```
/// use vpdift_asm::{Asm, Reg};
/// let mut a = Asm::new(0x0);
/// a.li(Reg::T0, 5);
/// a.label("loop");
/// a.addi(Reg::T1, Reg::T1, 1);
/// a.addi(Reg::T0, Reg::T0, -1);
/// a.bnez(Reg::T0, "loop");
/// a.ebreak();
/// let prog = a.assemble()?;
/// assert_eq!(prog.symbol("loop"), Some(8));
/// assert_eq!(prog.insn_count(), 6); // li expands to two instructions
/// # Ok::<(), vpdift_asm::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Asm {
    base: u32,
    entry: Option<u32>,
    image: Vec<u8>,
    symbols: HashMap<String, u32>,
    fixups: Vec<Fixup>,
    duplicate: Option<String>,
    insn_count: usize,
}

impl Asm {
    /// Starts a program at load address `base`.
    pub fn new(base: u32) -> Self {
        Asm {
            base,
            entry: None,
            image: Vec::new(),
            symbols: HashMap::new(),
            fixups: Vec::new(),
            duplicate: None,
            insn_count: 0,
        }
    }

    /// Address of the next emitted byte.
    pub fn here(&self) -> u32 {
        self.base + self.image.len() as u32
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let addr = self.here();
        if self.symbols.insert(name.to_owned(), addr).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.to_owned());
        }
        self
    }

    /// Marks the current position as the program entry point.
    pub fn entry(&mut self) -> &mut Self {
        self.entry = Some(self.here());
        self
    }

    /// Emits a raw instruction.
    ///
    /// # Panics
    /// Panics if the emission point is not 4-byte aligned (use
    /// [`Asm::align`] after data).
    pub fn emit(&mut self, insn: Insn) -> &mut Self {
        assert!(
            self.image.len().is_multiple_of(4),
            "instructions must be 4-byte aligned; call align(4)"
        );
        let word = insn.encode();
        self.image.extend_from_slice(&word.to_le_bytes());
        self.insn_count += 1;
        self
    }

    fn fixup(&mut self, label: &str, kind: FixupKind) {
        self.fixups.push(Fixup { offset: self.image.len(), label: label.to_owned(), kind });
    }

    // ----- data directives ---------------------------------------------

    /// Emits raw bytes.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        self.image.extend_from_slice(data);
        self
    }

    /// Emits one byte.
    pub fn byte(&mut self, b: u8) -> &mut Self {
        self.image.push(b);
        self
    }

    /// Emits a little-endian 16-bit value.
    pub fn half(&mut self, h: u16) -> &mut Self {
        self.image.extend_from_slice(&h.to_le_bytes());
        self
    }

    /// Emits a little-endian 32-bit value.
    pub fn word(&mut self, w: u32) -> &mut Self {
        self.image.extend_from_slice(&w.to_le_bytes());
        self
    }

    /// Emits a little-endian 32-bit word holding the address of `label`
    /// (resolved at assembly time).
    pub fn word_of(&mut self, label: &str) -> &mut Self {
        self.fixup(label, FixupKind::AbsWord);
        self.word(0)
    }

    /// Emits the string bytes (no terminator).
    pub fn ascii(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Emits the string bytes plus a NUL terminator.
    pub fn asciiz(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes()).byte(0)
    }

    /// Emits `n` zero bytes.
    pub fn zero(&mut self, n: usize) -> &mut Self {
        self.image.resize(self.image.len() + n, 0);
        self
    }

    /// Pads with zero bytes to an `n`-byte boundary.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn align(&mut self, n: usize) -> &mut Self {
        assert!(n.is_power_of_two(), "alignment must be a power of two");
        while !(self.base as usize + self.image.len()).is_multiple_of(n) {
            self.image.push(0);
        }
        self
    }

    // ----- finalisation --------------------------------------------------

    /// Resolves all fixups and produces the [`Program`].
    ///
    /// # Errors
    /// See [`AsmError`].
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        if let Some(l) = self.duplicate.take() {
            return Err(AsmError::DuplicateLabel(l));
        }
        let fixups = std::mem::take(&mut self.fixups);
        for fx in fixups {
            let &target = self
                .symbols
                .get(&fx.label)
                .ok_or_else(|| AsmError::UnknownLabel(fx.label.clone()))?;
            let site = self.base + fx.offset as u32;
            match fx.kind {
                FixupKind::Branch => {
                    let distance = target as i64 - site as i64;
                    if !(-4096..=4094).contains(&distance) {
                        return Err(AsmError::OutOfRange {
                            label: fx.label,
                            distance,
                            kind: "branch",
                        });
                    }
                    let word = self.read_word(fx.offset);
                    let Ok(Insn::Branch { cond, rs1, rs2, .. }) = Insn::decode(word) else {
                        unreachable!("branch fixup site holds a branch");
                    };
                    let patched = Insn::Branch { cond, rs1, rs2, offset: distance as i32 }.encode();
                    self.write_word(fx.offset, patched);
                }
                FixupKind::Jal => {
                    let distance = target as i64 - site as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&distance) {
                        return Err(AsmError::OutOfRange {
                            label: fx.label,
                            distance,
                            kind: "jal",
                        });
                    }
                    let word = self.read_word(fx.offset);
                    let Ok(Insn::Jal { rd, .. }) = Insn::decode(word) else {
                        unreachable!("jal fixup site holds a jal");
                    };
                    self.write_word(fx.offset, Insn::Jal { rd, offset: distance as i32 }.encode());
                }
                FixupKind::AbsHiLo => {
                    let (hi, lo) = split_hi_lo(target);
                    let lui = self.read_word(fx.offset);
                    let Ok(Insn::Lui { rd, .. }) = Insn::decode(lui) else {
                        unreachable!("abs fixup site holds lui");
                    };
                    self.write_word(fx.offset, Insn::Lui { rd, imm20: hi }.encode());
                    let addi = self.read_word(fx.offset + 4);
                    let Ok(Insn::AluImm { op: AluOp::Add, rd, rs1, .. }) = Insn::decode(addi)
                    else {
                        unreachable!("abs fixup site holds addi");
                    };
                    self.write_word(
                        fx.offset + 4,
                        Insn::AluImm { op: AluOp::Add, rd, rs1, imm: lo }.encode(),
                    );
                }
                FixupKind::AbsWord => {
                    self.write_word(fx.offset, target);
                }
            }
        }
        Ok(Program {
            base: self.base,
            entry: self.entry.unwrap_or(self.base),
            image: self.image,
            symbols: self.symbols,
            insn_count: self.insn_count,
        })
    }

    fn read_word(&self, offset: usize) -> u32 {
        u32::from_le_bytes([
            self.image[offset],
            self.image[offset + 1],
            self.image[offset + 2],
            self.image[offset + 3],
        ])
    }

    fn write_word(&mut self, offset: usize, word: u32) {
        self.image[offset..offset + 4].copy_from_slice(&word.to_le_bytes());
    }
}

/// Splits an absolute value into `lui`/`addi` halves, compensating for the
/// sign extension of the low 12 bits.
pub fn split_hi_lo(value: u32) -> (u32, i32) {
    let hi = value.wrapping_add(0x800) >> 12;
    let lo = (value as i32).wrapping_sub((hi << 12) as i32);
    debug_assert!((-2048..=2047).contains(&lo));
    (hi & 0xF_FFFF, lo)
}

// One-liner instruction helpers. Grouped with a macro to stay readable.
macro_rules! alu_rr {
    ($($name:ident => $op:expr),* $(,)?) => {$(
        #[doc = concat!("Emits `", stringify!($name), " rd, rs1, rs2`.")]
        pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
            self.emit(Insn::Alu { op: $op, rd, rs1, rs2 })
        }
    )*};
}

macro_rules! alu_ri {
    ($($name:ident => $op:expr),* $(,)?) => {$(
        #[doc = concat!("Emits `", stringify!($name), " rd, rs1, imm`.")]
        pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
            self.emit(Insn::AluImm { op: $op, rd, rs1, imm })
        }
    )*};
}

macro_rules! muldiv_rr {
    ($($name:ident => $op:expr),* $(,)?) => {$(
        #[doc = concat!("Emits `", stringify!($name), " rd, rs1, rs2`.")]
        pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
            self.emit(Insn::MulDiv { op: $op, rd, rs1, rs2 })
        }
    )*};
}

macro_rules! loads {
    ($($name:ident => $w:expr),* $(,)?) => {$(
        #[doc = concat!("Emits `", stringify!($name), " rd, offset(rs1)`.")]
        pub fn $name(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
            self.emit(Insn::Load { width: $w, rd, rs1, offset })
        }
    )*};
}

macro_rules! stores {
    ($($name:ident => $w:expr),* $(,)?) => {$(
        #[doc = concat!("Emits `", stringify!($name), " rs2, offset(rs1)`.")]
        pub fn $name(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
            self.emit(Insn::Store { width: $w, rs2, rs1, offset })
        }
    )*};
}

macro_rules! branches {
    ($($name:ident => $c:expr),* $(,)?) => {$(
        #[doc = concat!("Emits `", stringify!($name), " rs1, rs2, label` (label resolved at assembly).")]
        pub fn $name(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
            self.fixup(label, FixupKind::Branch);
            self.emit(Insn::Branch { cond: $c, rs1, rs2, offset: 0 })
        }
    )*};
}

impl Asm {
    alu_rr! {
        add => AluOp::Add, sub => AluOp::Sub, sll => AluOp::Sll, slt => AluOp::Slt,
        sltu => AluOp::Sltu, xor => AluOp::Xor, srl => AluOp::Srl, sra => AluOp::Sra,
        or => AluOp::Or, and => AluOp::And,
    }
    alu_ri! {
        addi => AluOp::Add, slti => AluOp::Slt, sltiu => AluOp::Sltu, xori => AluOp::Xor,
        ori => AluOp::Or, andi => AluOp::And, slli => AluOp::Sll, srli => AluOp::Srl,
        srai => AluOp::Sra,
    }
    muldiv_rr! {
        mul => MulOp::Mul, mulh => MulOp::Mulh, mulhsu => MulOp::Mulhsu, mulhu => MulOp::Mulhu,
        div => MulOp::Div, divu => MulOp::Divu, rem => MulOp::Rem, remu => MulOp::Remu,
    }
    loads! {
        lb => LoadWidth::B, lh => LoadWidth::H, lw => LoadWidth::W,
        lbu => LoadWidth::Bu, lhu => LoadWidth::Hu,
    }
    stores! { sb => StoreWidth::B, sh => StoreWidth::H, sw => StoreWidth::W }
    branches! {
        beq => BranchCond::Eq, bne => BranchCond::Ne, blt => BranchCond::Lt,
        bge => BranchCond::Ge, bltu => BranchCond::Ltu, bgeu => BranchCond::Geu,
    }

    /// Emits `lui rd, imm20`.
    pub fn lui(&mut self, rd: Reg, imm20: u32) -> &mut Self {
        self.emit(Insn::Lui { rd, imm20 })
    }

    /// Emits `auipc rd, imm20`.
    pub fn auipc(&mut self, rd: Reg, imm20: u32) -> &mut Self {
        self.emit(Insn::Auipc { rd, imm20 })
    }

    /// Emits `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.fixup(label, FixupKind::Jal);
        self.emit(Insn::Jal { rd, offset: 0 })
    }

    /// Emits `jalr rd, offset(rs1)`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.emit(Insn::Jalr { rd, rs1, offset })
    }

    /// Emits a CSR register op.
    pub fn csr(&mut self, op: CsrOp, rd: Reg, csr: u16, rs1: Reg) -> &mut Self {
        self.emit(Insn::Csr { op, rd, csr, src: CsrSrc::Reg(rs1) })
    }

    /// Emits a CSR immediate op.
    pub fn csri(&mut self, op: CsrOp, rd: Reg, csr: u16, imm: u8) -> &mut Self {
        self.emit(Insn::Csr { op, rd, csr, src: CsrSrc::Imm(imm) })
    }

    /// Emits `ecall`.
    pub fn ecall(&mut self) -> &mut Self {
        self.emit(Insn::Ecall)
    }

    /// Emits `ebreak`.
    pub fn ebreak(&mut self) -> &mut Self {
        self.emit(Insn::Ebreak)
    }

    /// Emits `mret`.
    pub fn mret(&mut self) -> &mut Self {
        self.emit(Insn::Mret)
    }

    /// Emits `wfi`.
    pub fn wfi(&mut self) -> &mut Self {
        self.emit(Insn::Wfi)
    }

    /// Emits `fence`.
    pub fn fence(&mut self) -> &mut Self {
        self.emit(Insn::Fence)
    }

    // ----- A extension --------------------------------------------------

    /// Emits `lr.w rd, (rs1)`.
    pub fn lr_w(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.emit(Insn::Lr { rd, rs1 })
    }

    /// Emits `sc.w rd, rs2, (rs1)`.
    pub fn sc_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.emit(Insn::Sc { rd, rs2, rs1 })
    }

    /// Emits `amo<op>.w rd, rs2, (rs1)`.
    pub fn amo_w(&mut self, op: AmoOp, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.emit(Insn::Amo { op, rd, rs2, rs1 })
    }

    /// Emits `amoswap.w rd, rs2, (rs1)`.
    pub fn amoswap_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.amo_w(AmoOp::Swap, rd, rs2, rs1)
    }

    /// Emits `amoadd.w rd, rs2, (rs1)`.
    pub fn amoadd_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.amo_w(AmoOp::Add, rd, rs2, rs1)
    }

    /// Emits `amoxor.w rd, rs2, (rs1)`.
    pub fn amoxor_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.amo_w(AmoOp::Xor, rd, rs2, rs1)
    }

    /// Emits `amoand.w rd, rs2, (rs1)`.
    pub fn amoand_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.amo_w(AmoOp::And, rd, rs2, rs1)
    }

    /// Emits `amoor.w rd, rs2, (rs1)`.
    pub fn amoor_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.amo_w(AmoOp::Or, rd, rs2, rs1)
    }

    /// Emits `amomin.w rd, rs2, (rs1)`.
    pub fn amomin_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.amo_w(AmoOp::Min, rd, rs2, rs1)
    }

    /// Emits `amomax.w rd, rs2, (rs1)`.
    pub fn amomax_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.amo_w(AmoOp::Max, rd, rs2, rs1)
    }

    /// Emits `amominu.w rd, rs2, (rs1)`.
    pub fn amominu_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.amo_w(AmoOp::Minu, rd, rs2, rs1)
    }

    /// Emits `amomaxu.w rd, rs2, (rs1)`.
    pub fn amomaxu_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.amo_w(AmoOp::Maxu, rd, rs2, rs1)
    }

    // ----- pseudo-instructions ------------------------------------------

    /// `nop` (= `addi zero, zero, 0`).
    pub fn nop(&mut self) -> &mut Self {
        self.addi(Reg::Zero, Reg::Zero, 0)
    }

    /// `mv rd, rs` (= `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// `not rd, rs` (= `xori rd, rs, -1`).
    pub fn not(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.xori(rd, rs, -1)
    }

    /// `neg rd, rs` (= `sub rd, zero, rs`).
    pub fn neg(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.sub(rd, Reg::Zero, rs)
    }

    /// `seqz rd, rs` (= `sltiu rd, rs, 1`).
    pub fn seqz(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.sltiu(rd, rs, 1)
    }

    /// `snez rd, rs` (= `sltu rd, zero, rs`).
    pub fn snez(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.sltu(rd, Reg::Zero, rs)
    }

    /// Loads a 32-bit constant; always expands to `lui`+`addi` (2 words).
    pub fn li(&mut self, rd: Reg, value: i32) -> &mut Self {
        let (hi, lo) = split_hi_lo(value as u32);
        self.lui(rd, hi);
        self.addi(rd, rd, lo)
    }

    /// Loads the absolute address of `label`; always `lui`+`addi` (2 words).
    pub fn la(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.fixup(label, FixupKind::AbsHiLo);
        self.lui(rd, 0);
        self.addi(rd, rd, 0)
    }

    /// Unconditional jump to `label` (= `jal zero, label`).
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.jal(Reg::Zero, label)
    }

    /// Call `label` (= `jal ra, label`).
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.jal(Reg::Ra, label)
    }

    /// Return (= `jalr zero, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(Reg::Zero, Reg::Ra, 0)
    }

    /// Indirect jump through `rs` (= `jalr zero, 0(rs)`).
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.jalr(Reg::Zero, rs, 0)
    }

    /// `beqz rs, label`.
    pub fn beqz(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.beq(rs, Reg::Zero, label)
    }

    /// `bnez rs, label`.
    pub fn bnez(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.bne(rs, Reg::Zero, label)
    }

    /// `bgt rs1, rs2, label` (= `blt rs2, rs1, label`).
    pub fn bgt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.blt(rs2, rs1, label)
    }

    /// `ble rs1, rs2, label` (= `bge rs2, rs1, label`).
    pub fn ble(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.bge(rs2, rs1, label)
    }

    /// `bgtu rs1, rs2, label` (= `bltu rs2, rs1, label`).
    pub fn bgtu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.bltu(rs2, rs1, label)
    }

    /// `bleu rs1, rs2, label` (= `bgeu rs2, rs1, label`).
    pub fn bleu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.bgeu(rs2, rs1, label)
    }

    /// `csrr rd, csr` (= `csrrs rd, csr, zero`).
    pub fn csrr(&mut self, rd: Reg, csr: u16) -> &mut Self {
        self.csr(CsrOp::Rs, rd, csr, Reg::Zero)
    }

    /// `csrw csr, rs` (= `csrrw zero, csr, rs`).
    pub fn csrw(&mut self, csr: u16, rs: Reg) -> &mut Self {
        self.csr(CsrOp::Rw, Reg::Zero, csr, rs)
    }

    /// `csrs csr, rs` (= `csrrs zero, csr, rs`).
    pub fn csrs(&mut self, csr: u16, rs: Reg) -> &mut Self {
        self.csr(CsrOp::Rs, Reg::Zero, csr, rs)
    }

    /// `csrc csr, rs` (= `csrrc zero, csr, rs`).
    pub fn csrc(&mut self, csr: u16, rs: Reg) -> &mut Self {
        self.csr(CsrOp::Rc, Reg::Zero, csr, rs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new(0x100);
        a.label("start");
        a.addi(Reg::T0, Reg::Zero, 3); // 0x100
        a.label("loop");
        a.addi(Reg::T0, Reg::T0, -1); // 0x104
        a.bnez(Reg::T0, "loop"); // 0x108 -> -4
        a.beqz(Reg::T0, "end"); // 0x10c -> +8
        a.j("start"); // 0x110 -> -16
        a.label("end");
        a.ebreak(); // 0x114
        let p = a.assemble().unwrap();
        let words: Vec<u32> =
            p.image().chunks(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        assert_eq!(
            Insn::decode(words[2]).unwrap(),
            Insn::Branch { cond: BranchCond::Ne, rs1: Reg::T0, rs2: Reg::Zero, offset: -4 }
        );
        assert_eq!(
            Insn::decode(words[3]).unwrap(),
            Insn::Branch { cond: BranchCond::Eq, rs1: Reg::T0, rs2: Reg::Zero, offset: 8 }
        );
        assert_eq!(Insn::decode(words[4]).unwrap(), Insn::Jal { rd: Reg::Zero, offset: -16 });
    }

    #[test]
    fn symbols_by_addr_is_sorted() {
        let mut a = Asm::new(0x100);
        a.label("first");
        a.nop();
        a.label("second");
        a.nop();
        a.label("also_second"); // same address as the next insn's label
        a.nop();
        let p = a.assemble().unwrap();
        let syms = p.symbols_by_addr();
        assert_eq!(syms[0], (0x100, "first"));
        assert_eq!(syms[1], (0x104, "second"));
        assert_eq!(syms[2], (0x108, "also_second"));
        assert!(syms.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn li_handles_sign_boundary() {
        for value in [0i32, 1, -1, 0x7FF, 0x800, 0x801, -2048, 0x1234_5678, i32::MIN, i32::MAX] {
            let (hi, lo) = split_hi_lo(value as u32);
            let reconstructed = ((hi << 12) as i32).wrapping_add(lo);
            assert_eq!(reconstructed, value, "value {value:#x}");
        }
    }

    #[test]
    fn la_patches_absolute_address() {
        let mut a = Asm::new(0x2000);
        a.la(Reg::A0, "data");
        a.ebreak();
        a.align(4);
        a.label("data");
        a.word(0xDEAD_BEEF);
        let p = a.assemble().unwrap();
        assert_eq!(p.symbol("data"), Some(0x200C));
        let words: Vec<u32> =
            p.image().chunks(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        let Insn::Lui { imm20, .. } = Insn::decode(words[0]).unwrap() else { panic!() };
        let Insn::AluImm { imm, .. } = Insn::decode(words[1]).unwrap() else { panic!() };
        assert_eq!(((imm20 << 12) as i32).wrapping_add(imm) as u32, 0x200C);
    }

    #[test]
    fn word_of_emits_label_address() {
        let mut a = Asm::new(0);
        a.j("code");
        a.label("table");
        a.word_of("code");
        a.label("code");
        a.ebreak();
        let p = a.assemble().unwrap();
        let w = u32::from_le_bytes(p.image()[4..8].try_into().unwrap());
        assert_eq!(w, p.symbol("code").unwrap());
    }

    #[test]
    fn unknown_label_reported() {
        let mut a = Asm::new(0);
        a.j("nowhere");
        assert_eq!(a.assemble().unwrap_err(), AsmError::UnknownLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_reported() {
        let mut a = Asm::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(a.assemble().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn out_of_range_branch_reported() {
        let mut a = Asm::new(0);
        a.beqz(Reg::Zero, "far");
        for _ in 0..2000 {
            a.nop();
        }
        a.label("far");
        a.ebreak();
        match a.assemble().unwrap_err() {
            AsmError::OutOfRange { label, kind, .. } => {
                assert_eq!(label, "far");
                assert_eq!(kind, "branch");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn data_directives_lay_out_bytes() {
        let mut a = Asm::new(0x10);
        a.byte(1).half(0x0302).word(0x0706_0504);
        a.ascii("ab").asciiz("c");
        a.zero(2);
        a.align(4);
        assert_eq!(a.here() % 4, 0);
        let p = a.assemble().unwrap();
        assert_eq!(p.image()[..13], [1, 2, 3, 4, 5, 6, 7, b'a', b'b', b'c', 0, 0, 0]);
    }

    #[test]
    fn entry_defaults_to_base() {
        let mut a = Asm::new(0x400);
        a.nop();
        let p = a.assemble().unwrap();
        assert_eq!(p.entry(), 0x400);

        let mut a = Asm::new(0x400);
        a.word(0); // vector table
        a.entry();
        a.nop();
        let p = a.assemble().unwrap();
        assert_eq!(p.entry(), 0x404);
    }

    #[test]
    fn disassemble_round_trip_text() {
        let mut a = Asm::new(0);
        a.label("main");
        a.li(Reg::A0, 42);
        a.ret();
        let p = a.assemble().unwrap();
        let text = p.disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("lui"));
        assert!(text.contains("jalr"));
        assert_eq!(p.insn_count(), 3);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_code_panics() {
        let mut a = Asm::new(0);
        a.byte(1);
        a.nop();
    }
}
