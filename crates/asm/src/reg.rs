//! RV32 integer registers with ABI names.

use core::fmt;

/// One of the 32 RV32I integer registers.
///
/// Variants are named after the ABI mnemonics; `Reg::X0` aliases are
/// available through [`Reg::from_num`].
///
/// ```
/// use vpdift_asm::Reg;
/// assert_eq!(Reg::Sp.num(), 2);
/// assert_eq!(Reg::from_num(10), Some(Reg::A0));
/// assert_eq!(Reg::A0.to_string(), "a0");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)] // the ABI mnemonics are their own documentation
pub enum Reg {
    Zero = 0,
    Ra = 1,
    Sp = 2,
    Gp = 3,
    Tp = 4,
    T0 = 5,
    T1 = 6,
    T2 = 7,
    S0 = 8,
    S1 = 9,
    A0 = 10,
    A1 = 11,
    A2 = 12,
    A3 = 13,
    A4 = 14,
    A5 = 15,
    A6 = 16,
    A7 = 17,
    S2 = 18,
    S3 = 19,
    S4 = 20,
    S5 = 21,
    S6 = 22,
    S7 = 23,
    S8 = 24,
    S9 = 25,
    S10 = 26,
    S11 = 27,
    T3 = 28,
    T4 = 29,
    T5 = 30,
    T6 = 31,
}

impl Reg {
    /// All registers in numeric order.
    pub const ALL: [Reg; 32] = [
        Reg::Zero,
        Reg::Ra,
        Reg::Sp,
        Reg::Gp,
        Reg::Tp,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
        Reg::S11,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
    ];

    /// The hardware register number (0–31).
    pub const fn num(self) -> u32 {
        self as u32
    }

    /// Register for a hardware number, if in range.
    pub fn from_num(n: u32) -> Option<Reg> {
        Reg::ALL.get(n as usize).copied()
    }

    /// The frame-pointer alias of `s0`.
    pub const FP: Reg = Reg::S0;
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        f.write_str(NAMES[self.num() as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_round_trips() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.num() as usize, i);
            assert_eq!(Reg::from_num(i as u32), Some(*r));
        }
        assert_eq!(Reg::from_num(32), None);
    }

    #[test]
    fn abi_names() {
        assert_eq!(Reg::Zero.to_string(), "zero");
        assert_eq!(Reg::S0.to_string(), "s0");
        assert_eq!(Reg::FP, Reg::S0);
        assert_eq!(Reg::T6.to_string(), "t6");
        assert_eq!(Reg::A7.num(), 17);
    }
}
