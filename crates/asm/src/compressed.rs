//! RV32C — the compressed instruction extension.
//!
//! The original RISC-V VP the paper instruments is RV32IMC. Our own
//! assembler emits only 32-bit encodings, but the ISS accepts compressed
//! code too (e.g. images produced by an external toolchain): every 16-bit
//! instruction *decompresses* to its 32-bit [`Insn`] equivalent here, so
//! the execution core and the taint semantics stay single-source.

use crate::insn::{AluOp, BranchCond, DecodeError, Insn, LoadWidth, StoreWidth};
use crate::reg::Reg;

/// `true` iff the 16-bit parcel starts a *compressed* instruction
/// (lowest two bits ≠ 0b11).
pub const fn is_compressed(parcel: u16) -> bool {
    parcel & 0b11 != 0b11
}

/// The three-bit register fields of compressed formats map to x8–x15.
fn c_reg(field: u16) -> Reg {
    Reg::from_num(8 + (field as u32 & 0x7)).expect("x8..x15")
}

fn full_reg(field: u16) -> Reg {
    Reg::from_num(field as u32 & 0x1F).expect("5-bit register field")
}

fn bit(v: u16, i: u32) -> u32 {
    ((v >> i) & 1) as u32
}

/// Decompresses one RV32C instruction to its 32-bit equivalent.
///
/// # Errors
/// [`DecodeError::Illegal`] for reserved or non-RV32 encodings (including
/// the all-zero parcel, which the spec defines as illegal).
pub fn decompress(parcel: u16) -> Result<Insn, DecodeError> {
    let ill = Err(DecodeError::Illegal(parcel as u32));
    let op = parcel & 0b11;
    let funct3 = (parcel >> 13) & 0b111;
    match (op, funct3) {
        // --- quadrant 0 --------------------------------------------------
        (0b00, 0b000) => {
            // C.ADDI4SPN: addi rd', sp, nzuimm
            let imm = (bit(parcel, 5) << 3)
                | (bit(parcel, 6) << 2)
                | (((parcel >> 7) & 0xF) as u32) << 6
                | (((parcel >> 11) & 0x3) as u32) << 4;
            if imm == 0 {
                return ill; // includes the canonical illegal all-zeros
            }
            Ok(Insn::AluImm {
                op: AluOp::Add,
                rd: c_reg(parcel >> 2),
                rs1: Reg::Sp,
                imm: imm as i32,
            })
        }
        (0b00, 0b010) => {
            // C.LW: lw rd', offset(rs1')
            let imm = (bit(parcel, 6) << 2)
                | ((((parcel >> 10) & 0x7) as u32) << 3)
                | (bit(parcel, 5) << 6);
            Ok(Insn::Load {
                width: LoadWidth::W,
                rd: c_reg(parcel >> 2),
                rs1: c_reg(parcel >> 7),
                offset: imm as i32,
            })
        }
        (0b00, 0b110) => {
            // C.SW: sw rs2', offset(rs1')
            let imm = (bit(parcel, 6) << 2)
                | ((((parcel >> 10) & 0x7) as u32) << 3)
                | (bit(parcel, 5) << 6);
            Ok(Insn::Store {
                width: StoreWidth::W,
                rs2: c_reg(parcel >> 2),
                rs1: c_reg(parcel >> 7),
                offset: imm as i32,
            })
        }
        // --- quadrant 1 --------------------------------------------------
        (0b01, 0b000) => {
            // C.ADDI (C.NOP when rd = x0)
            let rd = full_reg(parcel >> 7);
            let imm = sext6(parcel);
            Ok(Insn::AluImm { op: AluOp::Add, rd, rs1: rd, imm })
        }
        (0b01, 0b001) => {
            // C.JAL (RV32 only)
            Ok(Insn::Jal { rd: Reg::Ra, offset: cj_offset(parcel) })
        }
        (0b01, 0b010) => {
            // C.LI: addi rd, x0, imm
            Ok(Insn::AluImm {
                op: AluOp::Add,
                rd: full_reg(parcel >> 7),
                rs1: Reg::Zero,
                imm: sext6(parcel),
            })
        }
        (0b01, 0b011) => {
            let rd = full_reg(parcel >> 7);
            if rd == Reg::Sp {
                // C.ADDI16SP
                let imm = (bit(parcel, 6) << 4)
                    | (bit(parcel, 2) << 5)
                    | (bit(parcel, 5) << 6)
                    | (((parcel >> 3) & 0x3) as u32) << 7
                    | (bit(parcel, 12) << 9);
                let imm = ((imm as i32) << 22) >> 22; // sign-extend 10 bits
                if imm == 0 {
                    return ill;
                }
                Ok(Insn::AluImm { op: AluOp::Add, rd: Reg::Sp, rs1: Reg::Sp, imm })
            } else {
                // C.LUI
                let imm = (((parcel >> 2) & 0x1F) as u32) | (bit(parcel, 12) << 5);
                let imm = ((imm as i32) << 26) >> 26; // sign-extend 6 bits
                if imm == 0 {
                    return ill;
                }
                Ok(Insn::Lui { rd, imm20: (imm as u32) & 0xF_FFFF })
            }
        }
        (0b01, 0b100) => {
            let sub = (parcel >> 10) & 0b11;
            let rd = c_reg(parcel >> 7);
            match sub {
                0b00 => {
                    // C.SRLI
                    let sh = shamt6(parcel)?;
                    Ok(Insn::AluImm { op: AluOp::Srl, rd, rs1: rd, imm: sh })
                }
                0b01 => {
                    // C.SRAI
                    let sh = shamt6(parcel)?;
                    Ok(Insn::AluImm { op: AluOp::Sra, rd, rs1: rd, imm: sh })
                }
                0b10 => {
                    // C.ANDI
                    Ok(Insn::AluImm { op: AluOp::And, rd, rs1: rd, imm: sext6(parcel) })
                }
                _ => {
                    if bit(parcel, 12) != 0 {
                        return ill; // RV64 C.SUBW/C.ADDW
                    }
                    let rs2 = c_reg(parcel >> 2);
                    let op = match (parcel >> 5) & 0b11 {
                        0b00 => AluOp::Sub,
                        0b01 => AluOp::Xor,
                        0b10 => AluOp::Or,
                        _ => AluOp::And,
                    };
                    Ok(Insn::Alu { op, rd, rs1: rd, rs2 })
                }
            }
        }
        (0b01, 0b101) => Ok(Insn::Jal { rd: Reg::Zero, offset: cj_offset(parcel) }),
        (0b01, 0b110) | (0b01, 0b111) => {
            // C.BEQZ / C.BNEZ
            let imm = (bit(parcel, 3) << 1)
                | (bit(parcel, 4) << 2)
                | (bit(parcel, 10) << 3)
                | (bit(parcel, 11) << 4)
                | (bit(parcel, 2) << 5)
                | (bit(parcel, 5) << 6)
                | (bit(parcel, 6) << 7)
                | (bit(parcel, 12) << 8);
            let offset = ((imm as i32) << 23) >> 23;
            let cond = if funct3 == 0b110 { BranchCond::Eq } else { BranchCond::Ne };
            Ok(Insn::Branch { cond, rs1: c_reg(parcel >> 7), rs2: Reg::Zero, offset })
        }
        // --- quadrant 2 --------------------------------------------------
        (0b10, 0b000) => {
            // C.SLLI
            let rd = full_reg(parcel >> 7);
            let sh = shamt6(parcel)?;
            Ok(Insn::AluImm { op: AluOp::Sll, rd, rs1: rd, imm: sh })
        }
        (0b10, 0b010) => {
            // C.LWSP
            let rd = full_reg(parcel >> 7);
            if rd == Reg::Zero {
                return ill;
            }
            let imm = ((((parcel >> 4) & 0x7) as u32) << 2)
                | (bit(parcel, 12) << 5)
                | ((((parcel >> 2) & 0x3) as u32) << 6);
            Ok(Insn::Load { width: LoadWidth::W, rd, rs1: Reg::Sp, offset: imm as i32 })
        }
        (0b10, 0b100) => {
            let rs2 = full_reg(parcel >> 2);
            let rd = full_reg(parcel >> 7);
            match (bit(parcel, 12) != 0, rd, rs2) {
                (false, Reg::Zero, _) => ill,
                (false, rs1, Reg::Zero) => {
                    Ok(Insn::Jalr { rd: Reg::Zero, rs1, offset: 0 }) // C.JR
                }
                (false, rd, rs2) => {
                    Ok(Insn::Alu { op: AluOp::Add, rd, rs1: Reg::Zero, rs2 }) // C.MV
                }
                (true, Reg::Zero, Reg::Zero) => Ok(Insn::Ebreak),
                (true, rs1, Reg::Zero) => {
                    Ok(Insn::Jalr { rd: Reg::Ra, rs1, offset: 0 }) // C.JALR
                }
                (true, rd, rs2) => Ok(Insn::Alu { op: AluOp::Add, rd, rs1: rd, rs2 }), // C.ADD
            }
        }
        (0b10, 0b110) => {
            // C.SWSP
            let imm = ((((parcel >> 9) & 0xF) as u32) << 2) | ((((parcel >> 7) & 0x3) as u32) << 6);
            Ok(Insn::Store {
                width: StoreWidth::W,
                rs2: full_reg(parcel >> 2),
                rs1: Reg::Sp,
                offset: imm as i32,
            })
        }
        _ => ill,
    }
}

/// Sign-extended 6-bit immediate of CI-format instructions.
fn sext6(parcel: u16) -> i32 {
    let imm = (((parcel >> 2) & 0x1F) as i32) | ((bit(parcel, 12) as i32) << 5);
    (imm << 26) >> 26
}

/// 6-bit shift amount; RV32 requires bit 5 (the `12` bit) clear.
fn shamt6(parcel: u16) -> Result<i32, DecodeError> {
    if bit(parcel, 12) != 0 {
        return Err(DecodeError::Illegal(parcel as u32));
    }
    Ok(((parcel >> 2) & 0x1F) as i32)
}

/// The CJ-format jump offset.
fn cj_offset(parcel: u16) -> i32 {
    let imm = (bit(parcel, 3) << 1)
        | (bit(parcel, 4) << 2)
        | (bit(parcel, 5) << 3)
        | (bit(parcel, 11) << 4)
        | (bit(parcel, 2) << 5)
        | (bit(parcel, 7) << 6)
        | (bit(parcel, 6) << 7)
        | (bit(parcel, 9) << 8)
        | (bit(parcel, 10) << 9)
        | (bit(parcel, 8) << 10)
        | (bit(parcel, 12) << 11);
    ((imm as i32) << 20) >> 20
}

#[cfg(test)]
mod tests {
    use super::*;

    // Golden encodings cross-checked against the RISC-V spec / GNU as.
    #[test]
    fn quadrant0() {
        // c.addi4spn a0, sp, 16  => 0x0808
        assert_eq!(
            decompress(0x0808).unwrap(),
            Insn::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::Sp, imm: 16 }
        );
        // c.lw a2, 8(a0) => 0x4510
        assert_eq!(
            decompress(0x4510).unwrap(),
            Insn::Load { width: LoadWidth::W, rd: Reg::A2, rs1: Reg::A0, offset: 8 }
        );
        // c.sw a2, 8(a0) => 0xC510
        assert_eq!(
            decompress(0xC510).unwrap(),
            Insn::Store { width: StoreWidth::W, rs2: Reg::A2, rs1: Reg::A0, offset: 8 }
        );
        // All zeros is the canonical illegal instruction.
        assert!(decompress(0x0000).is_err());
    }

    #[test]
    fn quadrant1_immediates() {
        // c.addi a0, -1 => 0x157D
        assert_eq!(
            decompress(0x157D).unwrap(),
            Insn::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: -1 }
        );
        // c.nop => 0x0001
        assert_eq!(
            decompress(0x0001).unwrap(),
            Insn::AluImm { op: AluOp::Add, rd: Reg::Zero, rs1: Reg::Zero, imm: 0 }
        );
        // c.li a0, 5 => 0x4515
        assert_eq!(
            decompress(0x4515).unwrap(),
            Insn::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::Zero, imm: 5 }
        );
        // c.lui a1, 1 => 0x6585
        assert_eq!(decompress(0x6585).unwrap(), Insn::Lui { rd: Reg::A1, imm20: 1 });
        // c.lui a1, -1 (imm6 = 0b111111) => 0x75FD
        match decompress(0x75FD).unwrap() {
            Insn::Lui { rd: Reg::A1, imm20 } => assert_eq!(imm20, 0xF_FFFF),
            other => panic!("{other}"),
        }
        // c.addi16sp 32 => 0x6105
        assert_eq!(
            decompress(0x6105).unwrap(),
            Insn::AluImm { op: AluOp::Add, rd: Reg::Sp, rs1: Reg::Sp, imm: 32 }
        );
        // c.addi16sp -64 => 0x7139
        assert_eq!(
            decompress(0x7139).unwrap(),
            Insn::AluImm { op: AluOp::Add, rd: Reg::Sp, rs1: Reg::Sp, imm: -64 }
        );
    }

    #[test]
    fn quadrant1_alu_and_branches() {
        // c.srli a0, 3 => 0x810D
        assert_eq!(
            decompress(0x810D).unwrap(),
            Insn::AluImm { op: AluOp::Srl, rd: Reg::A0, rs1: Reg::A0, imm: 3 }
        );
        // c.srai a0, 3 => 0x850D
        assert_eq!(
            decompress(0x850D).unwrap(),
            Insn::AluImm { op: AluOp::Sra, rd: Reg::A0, rs1: Reg::A0, imm: 3 }
        );
        // c.andi a0, 15 => 0x893D
        assert_eq!(
            decompress(0x893D).unwrap(),
            Insn::AluImm { op: AluOp::And, rd: Reg::A0, rs1: Reg::A0, imm: 15 }
        );
        // c.sub a0, a1 => 0x8D0D
        assert_eq!(
            decompress(0x8D0D).unwrap(),
            Insn::Alu { op: AluOp::Sub, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A1 }
        );
        // c.xor a0, a1 => 0x8D2D
        assert_eq!(
            decompress(0x8D2D).unwrap(),
            Insn::Alu { op: AluOp::Xor, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A1 }
        );
        // c.beqz a0, +8 => 0xC501
        assert_eq!(
            decompress(0xC501).unwrap(),
            Insn::Branch { cond: BranchCond::Eq, rs1: Reg::A0, rs2: Reg::Zero, offset: 8 }
        );
        // c.bnez a0, -4 => 0xFD75
        assert_eq!(
            decompress(0xFD75).unwrap(),
            Insn::Branch { cond: BranchCond::Ne, rs1: Reg::A0, rs2: Reg::Zero, offset: -4 }
        );
        // c.j +16 => 0xA801
        assert_eq!(decompress(0xA801).unwrap(), Insn::Jal { rd: Reg::Zero, offset: 16 });
        // c.jal -2 => 0x3FFD
        assert_eq!(decompress(0x3FFD).unwrap(), Insn::Jal { rd: Reg::Ra, offset: -2 });
    }

    #[test]
    fn quadrant2() {
        // c.slli a0, 4 => 0x0512
        assert_eq!(
            decompress(0x0512).unwrap(),
            Insn::AluImm { op: AluOp::Sll, rd: Reg::A0, rs1: Reg::A0, imm: 4 }
        );
        // c.lwsp a0, 12(sp) => 0x4532
        assert_eq!(
            decompress(0x4532).unwrap(),
            Insn::Load { width: LoadWidth::W, rd: Reg::A0, rs1: Reg::Sp, offset: 12 }
        );
        // c.swsp a0, 12(sp) => 0xC62A
        assert_eq!(
            decompress(0xC62A).unwrap(),
            Insn::Store { width: StoreWidth::W, rs2: Reg::A0, rs1: Reg::Sp, offset: 12 }
        );
        // c.jr a0 => 0x8502
        assert_eq!(
            decompress(0x8502).unwrap(),
            Insn::Jalr { rd: Reg::Zero, rs1: Reg::A0, offset: 0 }
        );
        // c.jalr a0 => 0x9502
        assert_eq!(
            decompress(0x9502).unwrap(),
            Insn::Jalr { rd: Reg::Ra, rs1: Reg::A0, offset: 0 }
        );
        // c.mv a0, a1 => 0x852E
        assert_eq!(
            decompress(0x852E).unwrap(),
            Insn::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::Zero, rs2: Reg::A1 }
        );
        // c.add a0, a1 => 0x952E
        assert_eq!(
            decompress(0x952E).unwrap(),
            Insn::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A1 }
        );
        // c.ebreak => 0x9002
        assert_eq!(decompress(0x9002).unwrap(), Insn::Ebreak);
    }

    #[test]
    fn compressed_predicate() {
        assert!(is_compressed(0x0001));
        assert!(is_compressed(0x8502));
        assert!(!is_compressed(0x0003)); // 32-bit parcels end in 0b11
        assert!(!is_compressed(0x0073 | 3));
    }

    #[test]
    fn rv64_only_forms_rejected() {
        // c.subw (bit 12 set in the 100-11 group) is RV64.
        assert!(decompress(0x9D0D).is_err());
        // shamt with bit 5 set is reserved on RV32: c.slli a0, 32.
        assert!(decompress(0x1502).is_err());
    }
}
