//! Machine-mode CSR numbers used by the VP (RISC-V privileged spec).

/// Machine status register.
pub const MSTATUS: u16 = 0x300;
/// Machine ISA register.
pub const MISA: u16 = 0x301;
/// Machine interrupt-enable register.
pub const MIE: u16 = 0x304;
/// Machine trap-vector base address.
pub const MTVEC: u16 = 0x305;
/// Machine scratch register.
pub const MSCRATCH: u16 = 0x340;
/// Machine exception program counter.
pub const MEPC: u16 = 0x341;
/// Machine trap cause.
pub const MCAUSE: u16 = 0x342;
/// Machine bad address or instruction.
pub const MTVAL: u16 = 0x343;
/// Machine interrupt-pending register.
pub const MIP: u16 = 0x344;
/// Cycle counter, low 32 bits (read-only shadow).
pub const CYCLE: u16 = 0xC00;
/// Instructions-retired counter, low 32 bits.
pub const INSTRET: u16 = 0xC02;
/// Cycle counter, high 32 bits.
pub const CYCLEH: u16 = 0xC80;
/// Instructions-retired counter, high 32 bits.
pub const INSTRETH: u16 = 0xC82;
/// Hart ID (read-only).
pub const MHARTID: u16 = 0xF14;

/// `mstatus.MIE` bit: globally enable machine interrupts.
pub const MSTATUS_MIE: u32 = 1 << 3;
/// `mstatus.MPIE` bit: previous MIE, restored by `mret`.
pub const MSTATUS_MPIE: u32 = 1 << 7;
/// `mie.MTIE` / `mip.MTIP`: machine timer interrupt.
pub const MIE_MTIE: u32 = 1 << 7;
/// `mie.MSIE` / `mip.MSIP`: machine software interrupt.
pub const MIE_MSIE: u32 = 1 << 3;
/// `mie.MEIE` / `mip.MEIP`: machine external interrupt.
pub const MIE_MEIE: u32 = 1 << 11;

/// Interrupt-cause values (with the high bit set in `mcause`).
pub mod cause {
    /// Machine software interrupt.
    pub const M_SOFT_IRQ: u32 = 3;
    /// Machine timer interrupt.
    pub const M_TIMER_IRQ: u32 = 7;
    /// Machine external interrupt.
    pub const M_EXT_IRQ: u32 = 11;
    /// Instruction address misaligned exception.
    pub const MISALIGNED_FETCH: u32 = 0;
    /// Illegal instruction exception.
    pub const ILLEGAL_INSN: u32 = 2;
    /// Breakpoint exception.
    pub const BREAKPOINT: u32 = 3;
    /// Load address misaligned.
    pub const MISALIGNED_LOAD: u32 = 4;
    /// Load access fault.
    pub const LOAD_FAULT: u32 = 5;
    /// Store address misaligned.
    pub const MISALIGNED_STORE: u32 = 6;
    /// Store access fault.
    pub const STORE_FAULT: u32 = 7;
    /// Environment call from M-mode.
    pub const ECALL_M: u32 = 11;
    /// DIFT security-policy violation (custom cause, as the paper's engine
    /// "triggers a runtime error upon violation").
    pub const DIFT_VIOLATION: u32 = 24;
}
