//! # vpdift-asm — RV32IM assembler, disassembler and ISA definitions
//!
//! The single source of truth for the RV32IM + Zicsr instruction set used
//! across the workspace: the [`Insn`] type with exact binary
//! encode/decode (consumed by the `vpdift-rv32` ISS), plus the two-pass
//! programmatic assembler [`Asm`] in which all guest workloads and attack
//! programs are written (no offline RISC-V toolchain is available — see
//! DESIGN.md).
//!
//! ```
//! use vpdift_asm::{Asm, Reg};
//!
//! // Sum the numbers 1..=10, leave the result in a0, stop at ebreak.
//! let mut a = Asm::new(0);
//! a.li(Reg::T0, 10);
//! a.li(Reg::A0, 0);
//! a.label("loop");
//! a.add(Reg::A0, Reg::A0, Reg::T0);
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, "loop");
//! a.ebreak();
//! let program = a.assemble()?;
//! assert_eq!(program.insn_count(), 8);
//! # Ok::<(), vpdift_asm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
pub mod compressed;
pub mod csr;
mod elf;
mod insn;
mod parse;
mod reg;

pub use builder::{split_hi_lo, Asm, AsmError, Program};
pub use compressed::{decompress, is_compressed};
pub use insn::{
    AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, DecodeError, Insn, LoadWidth, MulOp, StoreWidth,
};
pub use parse::{parse_asm, ParseError};
pub use reg::Reg;
