//! Property tests: every constructible instruction encodes to a word that
//! decodes back to itself, and decode never panics on arbitrary words.

use proptest::prelude::*;
use vpdift_asm::{
    AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Insn, LoadWidth, MulOp, Reg, StoreWidth,
};

fn reg() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(|n| Reg::from_num(n).unwrap())
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn branch_offset() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|o| o * 2)
}

fn jal_offset() -> impl Strategy<Value = i32> {
    (-(1i32 << 19)..(1 << 19)).prop_map(|o| o * 2)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (reg(), 0u32..(1 << 20)).prop_map(|(rd, imm20)| Insn::Lui { rd, imm20 }),
        (reg(), 0u32..(1 << 20)).prop_map(|(rd, imm20)| Insn::Auipc { rd, imm20 }),
        (reg(), jal_offset()).prop_map(|(rd, offset)| Insn::Jal { rd, offset }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, offset)| Insn::Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchCond::Eq),
                Just(BranchCond::Ne),
                Just(BranchCond::Lt),
                Just(BranchCond::Ge),
                Just(BranchCond::Ltu),
                Just(BranchCond::Geu)
            ],
            reg(),
            reg(),
            branch_offset()
        )
            .prop_map(|(cond, rs1, rs2, offset)| Insn::Branch { cond, rs1, rs2, offset }),
        (
            prop_oneof![
                Just(LoadWidth::B),
                Just(LoadWidth::H),
                Just(LoadWidth::W),
                Just(LoadWidth::Bu),
                Just(LoadWidth::Hu)
            ],
            reg(),
            reg(),
            imm12()
        )
            .prop_map(|(width, rd, rs1, offset)| Insn::Load { width, rd, rs1, offset }),
        (
            prop_oneof![Just(StoreWidth::B), Just(StoreWidth::H), Just(StoreWidth::W)],
            reg(),
            reg(),
            imm12()
        )
            .prop_map(|(width, rs2, rs1, offset)| Insn::Store { width, rs2, rs1, offset }),
        (alu_op(), reg(), reg(), imm12()).prop_filter_map("no subi", |(op, rd, rs1, imm)| {
            if op == AluOp::Sub {
                return None;
            }
            let imm = if op.is_shift() { imm.rem_euclid(32) } else { imm };
            Some(Insn::AluImm { op, rd, rs1, imm })
        }),
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Insn::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (
            prop_oneof![
                Just(MulOp::Mul),
                Just(MulOp::Mulh),
                Just(MulOp::Mulhsu),
                Just(MulOp::Mulhu),
                Just(MulOp::Div),
                Just(MulOp::Divu),
                Just(MulOp::Rem),
                Just(MulOp::Remu)
            ],
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Insn::MulDiv { op, rd, rs1, rs2 }),
        (
            prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)],
            reg(),
            0u16..4096,
            prop_oneof![reg().prop_map(CsrSrc::Reg), (0u8..32).prop_map(CsrSrc::Imm)]
        )
            .prop_map(|(op, rd, csr, src)| Insn::Csr { op, rd, csr, src }),
        (reg(), reg()).prop_map(|(rd, rs1)| Insn::Lr { rd, rs1 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs2, rs1)| Insn::Sc { rd, rs2, rs1 }),
        (
            prop_oneof![
                Just(AmoOp::Swap),
                Just(AmoOp::Add),
                Just(AmoOp::Xor),
                Just(AmoOp::And),
                Just(AmoOp::Or),
                Just(AmoOp::Min),
                Just(AmoOp::Max),
                Just(AmoOp::Minu),
                Just(AmoOp::Maxu)
            ],
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rd, rs2, rs1)| Insn::Amo { op, rd, rs2, rs1 }),
        Just(Insn::Fence),
        Just(Insn::FenceI),
        Just(Insn::Ecall),
        Just(Insn::Ebreak),
        Just(Insn::Mret),
        Just(Insn::Wfi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_round_trip(i in insn()) {
        let word = i.encode();
        let back = Insn::decode(word).expect("encoded instructions decode");
        prop_assert_eq!(back, i);
        // And encoding is stable.
        prop_assert_eq!(back.encode(), word);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        if let Ok(insn) = Insn::decode(word) {
            // Whatever decodes must re-encode to an equivalent instruction
            // (not necessarily bit-identical: unused fields are canonical).
            let re = Insn::decode(insn.encode()).unwrap();
            prop_assert_eq!(re, insn);
        }
    }

    #[test]
    fn disassembly_never_empty(i in insn()) {
        prop_assert!(!i.to_string().is_empty());
    }
}
